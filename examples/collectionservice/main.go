// Collection service: the full FRAPP deployment in one process — a
// miner-side HTTP server that publishes the schema and privacy contract,
// a population of clients that perturb locally and submit over HTTP, a
// mining query against the reconstructed model, and a restart that
// restores the server's state from disk without losing a submission.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"time"

	frapp "repro"
)

var nClients = exampleN(15000)

func main() {
	schema := frapp.CensusSchema()
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}

	server, err := frapp.NewCollectionServer(schema, priv, frapp.WithMineWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Printf("server up at %s (schema %s)\n", ts.URL, schema.Name)

	// The client library fetches the contract and perturbs locally; the
	// server never sees a raw record.
	client, err := frapp.NewCollectionClient(ts.URL,
		frapp.WithHTTPClient(ts.Client()),
		frapp.WithClientRandomization(0.5)) // extra client-side privacy
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client contract: gamma = %.4g\n", client.Gamma())

	population, err := frapp.GenerateCensus(nClients, 77)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := client.SubmitBatch(population.Records, rng); err != nil {
		log.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d perturbed submissions (cond=%.4g)\n", stats.Records, stats.ConditionNumber)

	// Mining runs as an asynchronous job: submit, poll to completion,
	// read the result. (client.Mine is the synchronous wrapper over the
	// same job pool.)
	job, err := client.SubmitMineJob(frapp.MineParams{MinSupport: 0.05, MinConf: 0.8, Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted mining job %s (state %s)\n", job.ID, job.State)
	done, err := client.AwaitMineJob(context.Background(), job.ID, 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	mr := done.Result
	fmt.Printf("job %s done at snapshot version %d\n", done.ID, done.SnapshotVersion)
	fmt.Printf("reconstructed itemset counts by length: %v\n", mr.Counts)
	for _, is := range mr.Itemsets[:min(3, len(mr.Itemsets))] {
		fmt.Printf("  %v (sup=%.3f)\n", is.Items, is.Support)
	}

	// The collection hasn't changed, so an identical re-mine is a cache
	// hit: same snapshot version, no second Apriori run.
	again, err := client.MineAsync(context.Background(), frapp.MineParams{MinSupport: 0.05, MinConf: 0.8, Limit: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-mine served from cache: %v (version %d)\n", again.Cached, again.SnapshotVersion)

	// Durability: persist, restart, and verify nothing was lost.
	statePath := filepath.Join(os.TempDir(), "frapp-example-state.gob")
	defer os.Remove(statePath)
	if err := server.PersistStateFile(statePath); err != nil {
		log.Fatal(err)
	}
	restored, err := frapp.NewCollectionServer(schema, priv)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(statePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.LoadState(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("after restart: %d submissions restored from %s\n", restored.N(), statePath)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
