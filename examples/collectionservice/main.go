// Collection service: the full FRAPP deployment in one process — a
// miner-side HTTP server that publishes the schema and privacy contract,
// a population of clients that perturb locally and submit over HTTP, a
// mining query against the reconstructed model, and a restart that
// restores the server's state from disk without losing a submission.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"

	frapp "repro"
)

const nClients = 15000

func main() {
	schema := frapp.CensusSchema()
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}

	server, err := frapp.NewCollectionServer(schema, priv)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()
	fmt.Printf("server up at %s (schema %s)\n", ts.URL, schema.Name)

	// The client library fetches the contract and perturbs locally; the
	// server never sees a raw record.
	client, err := frapp.NewCollectionClient(ts.URL,
		frapp.WithHTTPClient(ts.Client()),
		frapp.WithClientRandomization(0.5)) // extra client-side privacy
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client contract: gamma = %.4g\n", client.Gamma())

	population, err := frapp.GenerateCensus(nClients, 77)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := client.SubmitBatch(population.Records, rng); err != nil {
		log.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d perturbed submissions (cond=%.4g)\n", stats.Records, stats.ConditionNumber)

	mr, err := client.Mine(0.05, 0.8, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed itemset counts by length: %v\n", mr.Counts)
	for _, is := range mr.Itemsets[:min(3, len(mr.Itemsets))] {
		fmt.Printf("  %v (sup=%.3f)\n", is.Items, is.Support)
	}

	// Durability: persist, restart, and verify nothing was lost.
	statePath := filepath.Join(os.TempDir(), "frapp-example-state.gob")
	defer os.Remove(statePath)
	if err := server.PersistStateFile(statePath); err != nil {
		log.Fatal(err)
	}
	restored, err := frapp.NewCollectionServer(schema, priv)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(statePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.LoadState(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("after restart: %d submissions restored from %s\n", restored.N(), statePath)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
