// Command schemecompare is the paper's headline accuracy-comparison
// experiment (Table 3 / Figures 1–2 style) run through the LIVE counter
// stack: one CENSUS dataset is perturbed under all three schemes —
// gamma-diagonal (DET-GD), MASK, and cut-and-paste — ingested into each
// scheme's scheme-polymorphic ShardedCounter record by record (exactly
// what the collection service does per submission), mined with Apriori,
// and scored against exact ground truth with the paper's metrics:
//
//	ρ   mean relative support error over correctly identified itemsets
//	σ+  false positives as % of the true frequent set
//	σ−  false negatives (false drops) as % of the true frequent set
//
// All three schemes run under ONE privacy contract (ρ1=5%, ρ2=50%,
// γ=19) with their parameters derived from it, so the comparison is
// accuracy at equal privacy — the paper's framing. Expect gamma to win:
// its matrix minimizes the reconstruction condition number under the γ
// bound, which is the paper's central optimality result and why gamma
// remains the server default.
package main

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"os"
	"strconv"

	frapp "repro"
)

const (
	minsup = 0.02
	seed   = 2005
)

var records = exampleN(40000)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schemecompare:", err)
		os.Exit(1)
	}
}

func run() error {
	schema := frapp.CensusSchema()
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	gamma, err := priv.Gamma()
	if err != nil {
		return err
	}
	db, err := frapp.GenerateCensus(records, seed)
	if err != nil {
		return err
	}

	// Exact ground truth — what a non-private miner would find.
	truth, err := frapp.Apriori(&frapp.ExactCounter{DB: db}, minsup)
	if err != nil {
		return err
	}
	fmt.Printf("CENSUS n=%d supmin=%.0f%% gamma=%.4g — true frequent itemsets by length: %v\n\n",
		records, minsup*100, gamma, truth.Counts())

	fmt.Printf("%-10s %-22s %8s %8s %8s   %s\n", "scheme", "params", "rho%", "sigma+%", "sigma-%", "itemsets by length (true "+fmt.Sprint(truth.Counts())+")")
	for _, name := range frapp.SchemeNames() {
		scheme, err := frapp.SchemeForContract(name, schema, gamma)
		if err != nil {
			return err
		}
		params, items, err := perturb(scheme, db)
		if err != nil {
			return err
		}

		// The live path: one scheme-generic sharded counter, fed one
		// perturbed record at a time.
		counter, err := frapp.NewShardedCounter(scheme, 0)
		if err != nil {
			return err
		}
		for _, rec := range items {
			if err := counter.Ingest(rec); err != nil {
				return err
			}
		}
		snapshot, _ := counter.SnapshotVersioned()
		mined, err := frapp.Apriori(snapshot, minsup)
		if err != nil {
			return err
		}
		report, err := frapp.EvaluateAccuracy(truth, mined)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-22s %8s %8.1f %8.1f   %v\n", name, params,
			fmtRho(report.Overall.SupportError),
			report.Overall.FalsePositives, report.Overall.FalseNegatives, mined.Counts())
	}
	fmt.Println("\n(gamma is the paper's optimal scheme: lowest support error at equal privacy;")
	fmt.Println(" it stays the frapp-server default — run -scheme mask|cutpaste to serve a baseline live)")
	return nil
}

func fmtRho(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	if v >= 1000 {
		// C&P's reconstruction matrix condition number explodes with
		// itemset length (Figure 4), so its long-itemset estimates — and
		// with them the averaged support error — blow up. That collapse
		// is the paper's finding, not a bug; render it readably.
		return fmt.Sprintf("%.2g", v)
	}
	return fmt.Sprintf("%.1f", v)
}

// perturb applies the scheme's client-side mechanism to every record
// and returns the item lists a client would submit, plus a parameter
// summary for display.
func perturb(scheme frapp.CounterScheme, db *frapp.Database) (string, [][]frapp.Item, error) {
	rng := rand.New(rand.NewSource(seed + 1))
	switch sc := scheme.(type) {
	case *frapp.GammaScheme:
		p, err := frapp.NewGammaPerturber(db.Schema, sc.Matrix())
		if err != nil {
			return "", nil, err
		}
		pdb, err := frapp.PerturbDatabase(db, p, rng)
		if err != nil {
			return "", nil, err
		}
		out := make([][]frapp.Item, pdb.N())
		for i, rec := range pdb.Records {
			items := make([]frapp.Item, len(rec))
			for j, v := range rec {
				items[j] = frapp.Item{Attr: j, Value: v}
			}
			out[i] = items
		}
		return fmt.Sprintf("cond=%.3g", sc.Matrix().Cond()), out, nil
	case *frapp.MaskCounterScheme:
		bdb, err := sc.Mask().PerturbDatabase(db, rng)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("p=%.4f", sc.Mask().P), rowsToItems(bdb.Mapping, bdb.Rows), nil
	case *frapp.CutPasteCounterScheme:
		bdb, err := sc.CutPaste().PerturbDatabase(db, rng)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("K=%d rho=%.3f", sc.CutPaste().K, sc.CutPaste().Rho), rowsToItems(bdb.Mapping, bdb.Rows), nil
	default:
		return "", nil, fmt.Errorf("unknown scheme %q", scheme.Name())
	}
}

// rowsToItems converts perturbed boolean rows into the item lists the
// live counter ingests.
func rowsToItems(m *frapp.BoolMapping, rows []uint64) [][]frapp.Item {
	out := make([][]frapp.Item, len(rows))
	for i, row := range rows {
		var items []frapp.Item
		for b := row; b != 0; b &= b - 1 {
			bit := bits.TrailingZeros64(b)
			for j := m.Schema.M() - 1; j >= 0; j-- {
				if bit >= m.Offsets[j] {
					items = append(items, frapp.Item{Attr: j, Value: bit - m.Offsets[j]})
					break
				}
			}
		}
		out[i] = items
	}
	return out
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
