// Package examples_test smoke-checks every example program: go vet
// must be clean and a FRAPP_EXAMPLE_N-shrunk run must exit 0. The
// examples are documentation that executes; this test keeps them from
// rotting as the API underneath them moves.
package examples_test

import (
	"os"
	"os/exec"
	"testing"
)

// smokeN shrinks each example's dataset; every example must still
// succeed at this size (including their internal sanity assertions).
const smokeN = "3000"

// exampleDirs lists every example program directory.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(e.Name() + "/main.go"); err == nil {
			dirs = append(dirs, e.Name())
		}
	}
	if len(dirs) < 9 {
		t.Fatalf("found only %d example programs: %v", len(dirs), dirs)
	}
	return dirs
}

func TestExamplesSmoke(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	for _, dir := range exampleDirs(t) {
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			vet := exec.Command("go", "vet", "./examples/"+dir)
			vet.Dir = ".."
			if out, err := vet.CombinedOutput(); err != nil {
				t.Fatalf("go vet: %v\n%s", err, out)
			}
			run := exec.Command("go", "run", "./examples/"+dir)
			run.Dir = ".."
			run.Env = append(os.Environ(), "FRAPP_EXAMPLE_N="+smokeN)
			if out, err := run.CombinedOutput(); err != nil {
				t.Fatalf("go run: %v\n%s", err, out)
			}
		})
	}
}
