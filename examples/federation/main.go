// Federated collection across three independent sites. FRAPP perturbs
// at the data provider, so each site's counter is already privacy-safe
// — which means site counters merge additively with no extra privacy
// cost. This demo runs 3 collector sites and 1 coordinator: clients
// submit locally perturbed records to their nearest site, the
// coordinator pulls versioned counter deltas from every site and
// answers queries over the merged GLOBAL counter. Because the example
// generates the population itself, it checks that the global estimate's
// 95% confidence interval brackets the ground truth of the full
// population — something no single site could even phrase.
//
// The last act is the operational hard case: one site restores an older
// -state snapshot mid-run. Its counter generation bumps, the
// coordinator full-resyncs that site, and the global view re-converges
// to the true union — never double-counting, never serving the stale
// contribution.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"strconv"

	frapp "repro"
)

var clientsPerSite = exampleN(15000)

func main() {
	schema := frapp.CensusSchema()
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50} // γ = 19

	// Three independent collector sites.
	var (
		sites   []*frapp.CollectionServer
		siteTS  []*httptest.Server
		peerURL []string
	)
	for i := 0; i < 3; i++ {
		srv, err := frapp.NewCollectionServer(schema, priv)
		check(err)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		sites = append(sites, srv)
		siteTS = append(siteTS, ts)
		peerURL = append(peerURL, ts.URL)
	}

	// One coordinator serving the merged global view, built over the
	// coordinator server's own scheme contract so the contracts cannot
	// drift.
	coordSrv, err := frapp.NewCollectionServer(schema, priv)
	check(err)
	defer coordSrv.Close()
	coord, err := frapp.NewFederationCoordinator(coordSrv.CounterScheme(), peerURL, coordSrv.ReplaceCounter)
	check(err)
	defer coord.Close()
	check(coordSrv.EnableFederation(coord))
	coordTS := httptest.NewServer(coordSrv.Handler())
	defer coordTS.Close()

	// Each site's clients perturb locally and submit to their own site.
	population, err := frapp.GenerateCensus(3*clientsPerSite, 7)
	check(err)
	rng := rand.New(rand.NewSource(1))
	for i, ts := range siteTS {
		client, err := frapp.NewCollectionClient(ts.URL, frapp.WithHTTPClient(ts.Client()))
		check(err)
		part := population.Records[i*clientsPerSite : (i+1)*clientsPerSite]
		check(client.SubmitBatch(part, rng))
		fmt.Printf("site %d collected %d perturbed submissions\n", i, sites[i].N())
	}

	// One synchronous pull of every site (production uses the jittered
	// background loop via coord.Start()).
	check(coord.SyncAll(context.Background()))

	coordClient, err := frapp.NewCollectionClient(coordTS.URL, frapp.WithHTTPClient(coordTS.Client()))
	check(err)
	fs, err := coordClient.FederationStats()
	check(err)
	fmt.Printf("\ncoordinator merged %d records from %d sites (version vector %v)\n\n",
		fs.Records, len(fs.Peers), fs.VersionVector)

	// Global estimates with 95% CIs, checked against the ground truth of
	// the FULL population.
	filters := []frapp.QueryFilter{
		{},
		{"sex": "Male"},
		{"age": "(15-35]", "sex": "Male"},
		{"age": "(15-35]", "sex": "Female", "native-country": "United-States"},
	}
	showEstimates(coordClient, schema, population, filters)

	// The hard case: site 0 saves state, keeps collecting, then restores
	// the older snapshot (a crash recovery). Generation handling forces
	// the coordinator into a clean full re-pull of that site.
	var snapshot bytes.Buffer
	check(sites[0].SaveState(&snapshot))
	extra, err := frapp.GenerateCensus(5000, 11)
	check(err)
	site0Client, err := frapp.NewCollectionClient(siteTS[0].URL, frapp.WithHTTPClient(siteTS[0].Client()))
	check(err)
	check(site0Client.SubmitBatch(extra.Records, rng))
	check(coord.SyncAll(context.Background()))
	preRestore, err := coordClient.Stats()
	check(err)

	check(sites[0].LoadState(&snapshot))
	check(coord.SyncAll(context.Background()))
	postRestore, err := coordClient.Stats()
	check(err)
	fmt.Printf("\nsite 0 restored an older -state snapshot: global %d → %d records "+
		"(the %d post-snapshot submissions left the global view cleanly — no double count, no stale serve)\n",
		preRestore.Records, postRestore.Records, preRestore.Records-postRestore.Records)
	fs, err = coordClient.FederationStats()
	check(err)
	for _, p := range fs.Peers {
		fmt.Printf("  peer %-28s healthy=%-5v syncs=%d full_resyncs=%d records=%d\n",
			p.URL, p.Healthy, p.Syncs, p.FullSyncs, p.Records)
	}
}

// showEstimates prints global estimates next to the full-population
// ground truth only this demo has.
func showEstimates(client *frapp.CollectionClient, schema *frapp.Schema, population *frapp.Database, filters []frapp.QueryFilter) {
	resp, err := client.QueryAll(filters)
	check(err)
	for i, est := range resp.Estimates {
		truth := trueCount(population, schema, filters[i])
		bracket := "MISS"
		if truth >= est.Lo && truth <= est.Hi {
			bracket = "ok"
		}
		fmt.Printf("%-62s  est %8.0f ± %5.0f  CI [%8.0f, %8.0f]  truth %6.0f  %s\n",
			describe(filters[i]), est.Count, est.StdErr, est.Lo, est.Hi, truth, bracket)
	}
}

func describe(f frapp.QueryFilter) string {
	if len(f) == 0 {
		return "(all records, all sites)"
	}
	out := ""
	for k, v := range f {
		if out != "" {
			out += " & "
		}
		out += k + "=" + v
	}
	return out
}

// trueCount scans the ORIGINAL population — which only the demo has;
// no site and no coordinator ever sees a raw record.
func trueCount(db *frapp.Database, schema *frapp.Schema, f frapp.QueryFilter) float64 {
	var items []frapp.Item
	for j, a := range schema.Attrs {
		if cat, ok := f[a.Name]; ok {
			items = append(items, frapp.Item{Attr: j, Value: a.CategoryIndex(cat)})
		}
	}
	set, err := frapp.NewItemset(items...)
	check(err)
	var c float64
	for _, rec := range db.Records {
		if set.Supports(rec) {
			c++
		}
	}
	return c
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
