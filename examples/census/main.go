// Census study: reproduces the paper's headline comparison (Figure 1) in
// miniature using only the public API — the gamma-diagonal scheme versus
// the MASK and Cut-and-Paste baselines on the CENSUS dataset, all at the
// same strict privacy level γ = 19.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"

	frapp "repro"
)

const minSup = 0.02

var nRecords = exampleN(30000)

func main() {
	db, err := frapp.GenerateCensus(nRecords, 2005)
	if err != nil {
		log.Fatal(err)
	}
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	gamma, err := priv.Gamma()
	if err != nil {
		log.Fatal(err)
	}
	truth, err := frapp.Apriori(&frapp.ExactCounter{DB: db}, minSup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CENSUS n=%d, gamma=%.4g, true itemset counts %v\n\n", db.N(), gamma, truth.Counts())

	// --- DET-GD: the paper's optimal mechanism ---------------------------
	pipe, err := frapp.NewPipeline(db.Schema, priv)
	if err != nil {
		log.Fatal(err)
	}
	perturbed, err := pipe.Perturb(db, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	detMined, err := pipe.Mine(perturbed, minSup)
	if err != nil {
		log.Fatal(err)
	}
	report("DET-GD", truth, detMined)

	// --- MASK baseline ---------------------------------------------------
	bm, err := frapp.NewBoolMapping(db.Schema)
	if err != nil {
		log.Fatal(err)
	}
	mask, err := frapp.NewMaskSchemeForPrivacy(bm, gamma)
	if err != nil {
		log.Fatal(err)
	}
	maskDB, err := mask.PerturbDatabase(db, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	maskMined, err := frapp.Apriori(&frapp.MaskCounter{Perturbed: maskDB, Scheme: mask}, minSup)
	if err != nil {
		log.Fatal(err)
	}
	report(fmt.Sprintf("MASK (p=%.4f)", mask.P), truth, maskMined)

	// --- Cut-and-Paste baseline ------------------------------------------
	cnp, err := frapp.NewCutPasteScheme(bm, 3, 0.494)
	if err != nil {
		log.Fatal(err)
	}
	cnpDB, err := cnp.PerturbDatabase(db, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	cnpMined, err := frapp.Apriori(&frapp.CutPasteCounter{Perturbed: cnpDB, Scheme: cnp}, minSup)
	if err != nil {
		log.Fatal(err)
	}
	report("C&P (K=3, rho=0.494)", truth, cnpMined)
}

func report(name string, truth, mined *frapp.MiningResult) {
	rep, err := frapp.EvaluateAccuracy(truth, mined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — mined counts %v\n", name, mined.Counts())
	fmt.Printf("  len   rho%%   sigma-%%  sigma+%%\n")
	for _, le := range rep.Levels {
		rho := "   n/a"
		if !math.IsNaN(le.SupportError) {
			rho = fmt.Sprintf("%6.1f", le.SupportError)
		}
		fmt.Printf("  %3d %s %8.1f %8.1f\n", le.Length, rho, le.FalseNegatives, le.FalsePositives)
	}
	fmt.Println()
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
