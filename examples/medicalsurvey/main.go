// Medical survey: the paper's motivating scenario — a pharmaceutical
// company collects health records from patients who do not trust anyone
// with their raw data. Each patient (client goroutine) perturbs their own
// record locally with the randomized gamma-diagonal mechanism and submits
// only the distorted version; the miner reconstructs association rules
// such as the paper's "adult females with malarial infections are also
// prone to contract tuberculosis" example, without ever seeing a true
// record.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"

	frapp "repro"
)

const (
	minSup  = 0.02
	minConf = 0.75
)

var nPatients = exampleN(40000)

func main() {
	// The true patient population (HEALTH schema, Table 2). In a real
	// deployment this never exists in one place — it is only the union
	// of what each patient privately knows.
	truthDB, err := frapp.GenerateHealth(nPatients, 99)
	if err != nil {
		log.Fatal(err)
	}
	schema := truthDB.Schema

	// Each patient gets the published privacy contract: priors ≤ 5% stay
	// below 50% posterior, with extra randomization so even that bound
	// is only known to the miner as a range.
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	pipe, err := frapp.NewPipeline(schema, priv, frapp.WithRandomization(0.5))
	if err != nil {
		log.Fatal(err)
	}
	lo, hi, err := pipe.WorstCasePosterior()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy contract: gamma=%.4g, miner-determinable posterior only in [%.1f%%, %.1f%%]\n",
		pipe.Gamma(), lo*100, hi*100)

	// Clients perturb concurrently — perturbation happens at the client,
	// so the work is embarrassingly parallel across patients.
	perturbed := submitRecords(pipe, truthDB)

	// The miner sees only the perturbed database.
	mined, err := pipe.Mine(perturbed, minSup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed frequent itemsets by length: %v\n", mined.Counts())

	rules, err := frapp.GenerateRules(mined, minConf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("association rules at confidence >= %.0f%%: %d\n\n", minConf*100, len(rules))
	for i, r := range rules {
		if i >= 10 {
			fmt.Printf("… %d more\n", len(rules)-i)
			break
		}
		fmt.Printf("  %s => %s (sup=%.3f conf=%.2f)\n",
			r.Antecedent.FormatWith(schema), r.Consequent.FormatWith(schema),
			r.Support, r.Confidence)
	}

	// Sanity panel the real miner could never print: how close are the
	// reconstructed supports to the (secret) truth?
	truth, err := frapp.Apriori(&frapp.ExactCounter{DB: truthDB}, minSup)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := frapp.EvaluateAccuracy(truth, mined)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[oracle check] overall support error %.1f%%, sigma- %.1f%%, sigma+ %.1f%%\n",
		rep.Overall.SupportError, rep.Overall.FalseNegatives, rep.Overall.FalsePositives)
}

// submitRecords fans patients out over worker goroutines; each worker
// perturbs its patients' records with its own RNG and sends the distorted
// records to the collector, mimicking independent client submissions.
func submitRecords(pipe *frapp.Pipeline, truthDB *frapp.Database) *frapp.Database {
	workers := runtime.GOMAXPROCS(0)
	type span struct{ lo, hi int }
	spans := make(chan span, workers)
	submissions := make(chan frapp.Record, 1024)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			pert, err := pipe.Perturber()
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for s := range spans {
				for i := s.lo; i < s.hi; i++ {
					rec, err := pert.Perturb(truthDB.Records[i], rng)
					if err != nil {
						log.Fatal(err)
					}
					submissions <- rec
				}
			}
		}(int64(w) + 1000)
	}
	const chunk = 512
	go func() {
		for lo := 0; lo < truthDB.N(); lo += chunk {
			hi := lo + chunk
			if hi > truthDB.N() {
				hi = truthDB.N()
			}
			spans <- span{lo, hi}
		}
		close(spans)
		wg.Wait()
		close(submissions)
	}()

	perturbed := frapp.NewDatabase(truthDB.Schema, truthDB.N())
	for rec := range submissions {
		if err := perturbed.Append(rec); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("collected %d perturbed submissions\n", perturbed.N())
	return perturbed
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
