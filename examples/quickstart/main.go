// Quickstart: the minimal FRAPP end-to-end flow — define a privacy
// requirement, perturb a database client-side with the optimal
// gamma-diagonal mechanism, and mine frequent itemsets from the perturbed
// data with per-pass support reconstruction.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	frapp "repro"
)

func main() {
	// A CENSUS-like database of 20,000 records (Table 1 schema).
	db, err := frapp.GenerateCensus(exampleN(20000), 42)
	if err != nil {
		log.Fatal(err)
	}

	// Strict privacy: properties with prior ≤ 5% must stay below
	// posterior 50% — the paper's running example, γ = 19.
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	pipe, err := frapp.NewPipeline(db.Schema, priv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gamma = %.4g, reconstruction condition number = %.4g\n",
		pipe.Gamma(), pipe.ConditionNumber())

	// Client side: every record is perturbed independently before it
	// ever leaves the client.
	perturbed, err := pipe.Perturb(db, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	changed := 0
	for i := range db.Records {
		for j := range db.Records[i] {
			if db.Records[i][j] != perturbed.Records[i][j] {
				changed++
				break
			}
		}
	}
	fmt.Printf("perturbation changed %.1f%% of records\n",
		100*float64(changed)/float64(db.N()))

	// Miner side: Apriori with per-pass support reconstruction.
	mined, err := pipe.Mine(perturbed, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets by length (reconstructed): %v\n", mined.Counts())

	// Compare with the ground truth the miner never sees.
	truth, err := frapp.Apriori(&frapp.ExactCounter{DB: db}, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets by length (true):          %v\n", truth.Counts())

	rep, err := frapp.EvaluateAccuracy(truth, mined)
	if err != nil {
		log.Fatal(err)
	}
	for _, le := range rep.Levels {
		fmt.Printf("  length %d: support error %.1f%%, sigma- %.1f%%, sigma+ %.1f%%\n",
			le.Length, le.SupportError, le.FalseNegatives, le.FalsePositives)
	}
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
