// Interactive queries against the collection service: clients perturb
// locally and submit over HTTP, then ask the server reconstructed
// count/proportion questions — "how many respondents are young males?"
// — and get point estimates with 95% confidence intervals, answered in
// O(#filters) histogram lookups from the live counter (the server
// stores no records to scan). Because the example generates the
// population itself, it can show the ground truth next to each
// estimate and check the interval actually brackets it.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"strconv"

	frapp "repro"
)

var nClients = exampleN(40000)

func main() {
	schema := frapp.CensusSchema()
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50} // γ = 19

	server, err := frapp.NewCollectionServer(schema, priv, frapp.WithQueryLimit(256))
	if err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	client, err := frapp.NewCollectionClient(ts.URL, frapp.WithHTTPClient(ts.Client()))
	if err != nil {
		log.Fatal(err)
	}
	population, err := frapp.GenerateCensus(nClients, 7)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := client.SubmitBatch(population.Records, rng); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d perturbed submissions\n", server.N())

	// One batch of conjunctive filters, arity 0 through 3.
	filters := []frapp.QueryFilter{
		{},
		{"sex": "Male"},
		{"age": "(15-35]", "sex": "Male"},
		{"age": "(15-35]", "sex": "Female", "native-country": "United-States"},
	}
	resp, err := client.QueryAll(filters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("response over %d records, exact for snapshot version %d\n\n",
		resp.Records, resp.SnapshotVersion)

	for i, est := range resp.Estimates {
		truth := trueCount(population, schema, filters[i])
		bracket := "MISS"
		if truth >= est.Lo && truth <= est.Hi {
			bracket = "ok"
		}
		fmt.Printf("%-62s  est %8.0f ± %5.0f  CI [%8.0f, %8.0f]  truth %6.0f  %s\n",
			describe(filters[i]), est.Count, est.StdErr, est.Lo, est.Hi, truth, bracket)
	}

	// The same estimator is available offline, straight over a counter,
	// without the HTTP layer (frapp.NewCounterQueryEngine); the service
	// path above is that engine wired to the live ingestion counter.
}

// describe renders a filter for the table.
func describe(f frapp.QueryFilter) string {
	if len(f) == 0 {
		return "(all records)"
	}
	out := ""
	for k, v := range f {
		if out != "" {
			out += " & "
		}
		out += k + "=" + v
	}
	return out
}

// trueCount scans the ORIGINAL (pre-perturbation) population — which
// only this example has; the server never does.
func trueCount(db *frapp.Database, schema *frapp.Schema, f frapp.QueryFilter) float64 {
	var items []frapp.Item
	for j, a := range schema.Attrs {
		if cat, ok := f[a.Name]; ok {
			items = append(items, frapp.Item{Attr: j, Value: a.CategoryIndex(cat)})
		}
	}
	set, err := frapp.NewItemset(items...)
	if err != nil {
		log.Fatal(err)
	}
	var c float64
	for _, rec := range db.Records {
		if set.Supports(rec) {
			c++
		}
	}
	return c
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
