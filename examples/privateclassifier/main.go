// Private classifier: the paper's future-work direction ("extend our
// modeling approach to other flavors of mining tasks") realized for
// classification. A Naive Bayes model predicting self-reported health
// status is trained entirely on gamma-perturbed records — the trainer
// never sees a true record — and compared against the non-private model
// and the majority-class floor.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	frapp "repro"
)

const classAttr = 6 // HEALTH status, the last attribute of Table 2

// The test set keeps the default 8:1 train:test ratio when shrunk.
var (
	nTrain = exampleN(80000)
	nTest  = nTrain / 8
)

func main() {
	// Disjoint train and test populations from the same distribution.
	train, err := frapp.GenerateHealth(nTrain, 21)
	if err != nil {
		log.Fatal(err)
	}
	test, err := frapp.GenerateHealth(nTest, 22)
	if err != nil {
		log.Fatal(err)
	}
	// The test records share the train schema value so models built on
	// one validate against the other.
	test.Schema = train.Schema

	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	pipe, err := frapp.NewPipeline(train.Schema, priv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicting %q from the other %d attributes; gamma=%.4g\n",
		train.Schema.Attrs[classAttr].Name, train.Schema.M()-1, pipe.Gamma())

	perturbed, err := pipe.Perturb(train, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}

	exact, err := frapp.TrainExactNaiveBayes(train, classAttr)
	if err != nil {
		log.Fatal(err)
	}
	private, err := frapp.TrainPerturbedNaiveBayes(perturbed, pipe.Matrix(), classAttr)
	if err != nil {
		log.Fatal(err)
	}

	base, err := frapp.MajorityBaseline(test, classAttr)
	if err != nil {
		log.Fatal(err)
	}
	accExact, err := frapp.ClassifierAccuracy(exact, test)
	if err != nil {
		log.Fatal(err)
	}
	accPrivate, err := frapp.ClassifierAccuracy(private, test)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("majority-class baseline:     %.1f%%\n", base*100)
	fmt.Printf("Naive Bayes on raw data:     %.1f%% (no privacy)\n", accExact*100)
	fmt.Printf("Naive Bayes on perturbed:    %.1f%% (strict (5%%, 50%%) privacy)\n", accPrivate*100)
	fmt.Printf("privacy cost:                %.1f points of accuracy\n", (accExact-accPrivate)*100)
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
