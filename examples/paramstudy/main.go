// Parameter study: the Section 4 privacy/accuracy tradeoff (Figure 3).
// Sweeping the randomization amplitude α from 0 (deterministic DET-GD)
// to γx shows the posterior-probability range the miner can determine
// widening — more privacy — while the support reconstruction error grows
// only marginally.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"

	frapp "repro"
)

const (
	minSup    = 0.02
	targetLen = 4 // the paper's Figure 3 itemset length
	steps     = 6
)

var nRecords = exampleN(30000)

func main() {
	db, err := frapp.GenerateCensus(nRecords, 11)
	if err != nil {
		log.Fatal(err)
	}
	priv := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	gamma, err := priv.Gamma()
	if err != nil {
		log.Fatal(err)
	}
	// Ground-truth frequent 4-itemsets, whose supports we re-estimate
	// under every randomization level.
	truth, err := frapp.Apriori(&frapp.ExactCounter{DB: db}, minSup)
	if err != nil {
		log.Fatal(err)
	}
	if len(truth.ByLength) < targetLen {
		log.Fatalf("dataset has no frequent %d-itemsets", targetLen)
	}
	level := truth.ByLength[targetLen-1]
	fmt.Printf("CENSUS n=%d, gamma=%.4g, %d true frequent %d-itemsets\n\n",
		db.N(), gamma, len(level), targetLen)
	fmt.Println("alpha/(gamma·x)   posterior range      support error (len-4)")

	m, err := frapp.NewGammaDiagonal(db.Schema.DomainSize(), gamma)
	if err != nil {
		log.Fatal(err)
	}
	for step := 0; step < steps; step++ {
		frac := float64(step) / float64(steps-1)
		var pipe *frapp.Pipeline
		if frac == 0 {
			pipe, err = frapp.NewPipeline(db.Schema, priv)
		} else {
			pipe, err = frapp.NewPipeline(db.Schema, priv, frapp.WithRandomization(frac))
		}
		if err != nil {
			log.Fatal(err)
		}
		perturbed, err := pipe.Perturb(db, rand.New(rand.NewSource(int64(step)+500)))
		if err != nil {
			log.Fatal(err)
		}
		counter, err := frapp.NewGammaCounter(perturbed, m)
		if err != nil {
			log.Fatal(err)
		}
		targets := make([]frapp.Itemset, len(level))
		for i, f := range level {
			targets[i] = f.Items
		}
		est, err := counter.Supports(targets)
		if err != nil {
			log.Fatal(err)
		}
		var rho float64
		for i, f := range level {
			trueCount := f.Support * float64(db.N())
			rho += math.Abs(est[i]-trueCount) / trueCount
		}
		rho = rho / float64(len(level)) * 100

		lo, hi, err := pipe.WorstCasePosterior()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%15.2f   [%5.1f%%, %5.1f%%]     %8.1f%%\n", frac, lo*100, hi*100, rho)
	}
	fmt.Println("\nThe range widens (better privacy) while the error moves only slightly —")
	fmt.Println("the Section 4 tradeoff the paper calls 'very much in our favour'.")
}

// exampleN returns def, unless the FRAPP_EXAMPLE_N environment variable
// overrides it — the examples smoke test shrinks runs to seconds with it.
func exampleN(def int) int {
	if s := os.Getenv("FRAPP_EXAMPLE_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}
