package frapp_test

import (
	"fmt"
	"math/rand"

	frapp "repro"
)

// Example shows the minimal FRAPP flow: derive the optimal perturbation
// matrix from a privacy requirement, perturb client-side, and mine with
// reconstruction.
func Example() {
	db, err := frapp.GenerateCensus(30000, 1)
	if err != nil {
		panic(err)
	}
	pipe, err := frapp.NewPipeline(db.Schema, frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		panic(err)
	}
	fmt.Printf("gamma = %.0f\n", pipe.Gamma())
	fmt.Printf("condition number = %.1f\n", pipe.ConditionNumber())

	perturbed, err := pipe.Perturb(db, rand.New(rand.NewSource(2)))
	if err != nil {
		panic(err)
	}
	result, err := pipe.Mine(perturbed, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("frequent itemset lengths mined: %d\n", len(result.Counts()))
	// Output:
	// gamma = 19
	// condition number = 112.1
	// frequent itemset lengths mined: 6
}

// ExamplePrivacySpec_Gamma reproduces the paper's running example: a
// (5%, 50%) amplification requirement implies γ = 19.
func ExamplePrivacySpec_Gamma() {
	gamma, err := frapp.PrivacySpec{Rho1: 0.05, Rho2: 0.50}.Gamma()
	if err != nil {
		panic(err)
	}
	fmt.Printf("gamma = %.0f\n", gamma)
	// Output:
	// gamma = 19
}

// ExampleNewGammaDiagonal shows the Section 3 optimal matrix and its
// closed-form condition number (γ+n−1)/(γ−1).
func ExampleNewGammaDiagonal() {
	m, err := frapp.NewGammaDiagonal(2000, 19)
	if err != nil {
		panic(err)
	}
	fmt.Printf("diagonal = gamma*x = %.6f\n", m.Diag)
	fmt.Printf("off-diagonal = x = %.6f\n", m.Off)
	fmt.Printf("condition number = %.1f\n", m.Cond())
	// Output:
	// diagonal = gamma*x = 0.009415
	// off-diagonal = x = 0.000496
	// condition number = 112.1
}

// ExamplePosteriorRange shows the Section 4.1 randomized-matrix privacy
// analysis: at α = γx/2 the miner can only bound the posterior within
// [33%, 60%] instead of pinning it at 50%.
func ExamplePosteriorRange() {
	const gamma, n = 19.0, 2000
	x := 1 / (gamma + float64(n) - 1)
	lo, hi, err := frapp.PosteriorRange(gamma, n, 0.05, gamma*x/2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("posterior range: [%.0f%%, %.0f%%]\n", lo*100, hi*100)
	// Output:
	// posterior range: [33%, 60%]
}

// ExampleMaskPForGamma reproduces the Section 7 MASK parameter
// derivation for both evaluation datasets.
func ExampleMaskPForGamma() {
	pCensus, _ := frapp.MaskPForGamma(6, 19)
	pHealth, _ := frapp.MaskPForGamma(7, 19)
	fmt.Printf("CENSUS p = %.4f\n", pCensus)
	fmt.Printf("HEALTH p = %.4f\n", pHealth)
	// Output:
	// CENSUS p = 0.5610
	// HEALTH p = 0.5524
}
