module repro

// The go directive must be >= 1.22: internal/service/server.go registers
// handlers with method-qualified patterns ("GET /v1/schema"). Before 1.22
// net/http treats those strings as literal paths, so every endpoint 404s
// and all service tests fail.
go 1.24
