package main

import (
	"os"
	"testing"

	"repro/internal/experiment"
)

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunLightweightExperiments(t *testing.T) {
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	for _, exp := range []string{"table1", "table2", "params"} {
		if err := run(exp, cfg, 3, 1); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunDataExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("data experiments are slow")
	}
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	for _, exp := range []string{"table3", "fig4", "recon"} {
		if err := run(exp, cfg, 3, 1); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	cfg.MinSupport = -1
	// Lightweight experiments don't need bundles, but the gamma
	// derivation still validates the privacy spec.
	cfg.Privacy.Rho1 = 0.9
	if err := run("table1", cfg, 3, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
}
