package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
)

func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunLightweightExperiments(t *testing.T) {
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	for _, exp := range []string{"table1", "table2", "params"} {
		if err := run(exp, cfg, 3, 1, ""); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunDataExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("data experiments are slow")
	}
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	for _, exp := range []string{"table3", "fig4", "recon"} {
		if err := run(exp, cfg, 3, 1, ""); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	cfg.MinSupport = -1
	// Lightweight experiments don't need bundles, but the gamma
	// derivation still validates the privacy spec.
	cfg.Privacy.Rho1 = 0.9
	if err := run("table1", cfg, 3, 1, ""); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestRunJSONReport checks the -json trajectory format: a config block
// pinning the knobs and one record per measurement, timings carrying
// ns/op.
func TestRunJSONReport(t *testing.T) {
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	cfg.CensusN = 500 // keep the smoke run fast
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run("table3", cfg, 3, 1, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if report.Config.Exp != "table3" || report.Config.CensusN != 500 || report.Config.Gamma <= 1 {
		t.Fatalf("config block %+v", report.Config)
	}
	if len(report.Results) == 0 {
		t.Fatal("no results recorded")
	}
	timings := 0
	for _, r := range report.Results {
		if r.Experiment == "" || r.Metric == "" {
			t.Fatalf("incomplete record %+v", r)
		}
		if r.Metric == "wall_time" {
			timings++
			if r.NsPerOp <= 0 || r.Unit != "ns" || r.Value != r.NsPerOp {
				t.Fatalf("bad timing record %+v", r)
			}
		}
	}
	if timings < 2 { // prep + at least the experiment section
		t.Fatalf("only %d timing records", timings)
	}
}

// TestRunJSONReportUnwritablePath: the run must fail loudly, not drop
// the report silently.
func TestRunJSONReportUnwritablePath(t *testing.T) {
	silenceStdout(t)
	cfg := experiment.QuickConfig()
	if err := run("table1", cfg, 3, 1, filepath.Join(t.TempDir(), "missing-dir", "bench.json")); err == nil {
		t.Fatal("unwritable -json path accepted")
	}
}
