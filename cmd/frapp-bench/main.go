// Command frapp-bench regenerates every table and figure of the FRAPP
// paper's evaluation (Section 7) on the synthetic CENSUS and HEALTH
// datasets.
//
// Usage:
//
//	frapp-bench [-exp all|table1|table2|table3|fig1|fig2|fig3|fig4|params|live]
//	            [-quick] [-census-n N] [-health-n N] [-seed S]
//	            [-minsup F] [-steps K] [-json results.json]
//	            [-ops-addr 127.0.0.1:9091]
//
// -exp live benchmarks the LIVE counter stack (the collection service's
// substrate) across every perturbation scheme — gamma, MASK, and
// cut-and-paste: ingest throughput, snapshot+Apriori mining latency,
// and query-estimate latency, each emitted into the -json report with a
// "scheme" dimension so BENCH_smoke.json tracks per-scheme throughput
// across commits.
//
// Each experiment prints a text rendering of the corresponding paper
// artifact. -quick shrinks the datasets for a fast smoke run.
//
// With -json, a machine-readable run report is additionally written to
// the given path: the effective configuration plus one record per
// measurement (experiment name, metric, value, unit, ns/op where the
// metric is a timing) — the format CI records as a BENCH_*.json perf
// trajectory across commits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/bits"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/mining"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// benchRecord is one measurement in the -json report.
type benchRecord struct {
	Experiment string `json:"experiment"`
	// Scheme is the perturbation-scheme dimension of live-counter
	// measurements (gamma, mask, cutpaste); empty for scheme-free
	// experiments.
	Scheme string  `json:"scheme,omitempty"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit,omitempty"`
	// NsPerOp is set for timing metrics: nanoseconds for one run of the
	// experiment at this configuration.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
}

// benchReport is the -json payload.
type benchReport struct {
	Config  benchConfig   `json:"config"`
	Results []benchRecord `json:"results"`
}

// benchConfig pins the knobs a trajectory point was measured under.
type benchConfig struct {
	Exp        string  `json:"exp"`
	Rho1       float64 `json:"rho1"`
	Rho2       float64 `json:"rho2"`
	Gamma      float64 `json:"gamma"`
	MinSupport float64 `json:"minsup"`
	CensusN    int     `json:"census_n"`
	HealthN    int     `json:"health_n"`
	Seed       int64   `json:"seed"`
	Trials     int     `json:"trials"`
}

// recorder accumulates -json records; a nil recorder records nothing.
type recorder struct {
	results []benchRecord
}

func (r *recorder) timing(experiment string, d time.Duration) {
	if r == nil {
		return
	}
	ns := float64(d.Nanoseconds())
	r.results = append(r.results, benchRecord{
		Experiment: experiment, Metric: "wall_time", Value: ns, Unit: "ns", NsPerOp: ns,
	})
}

func (r *recorder) value(experiment, metric string, v float64, unit string) {
	if r == nil {
		return
	}
	r.results = append(r.results, benchRecord{Experiment: experiment, Metric: metric, Value: v, Unit: unit})
}

// schemeRecord is one measurement of the per-scheme live-counter bench.
func (r *recorder) schemeRecord(experiment, scheme, metric string, v float64, unit string, nsPerOp float64) {
	if r == nil {
		return
	}
	r.results = append(r.results, benchRecord{
		Experiment: experiment, Scheme: scheme, Metric: metric, Value: v, Unit: unit, NsPerOp: nsPerOp,
	})
}

// write renders the report atomically enough for CI consumption (one
// final write, no partial sections).
func (r *recorder) write(path string, cfg benchConfig) error {
	if r == nil {
		return nil
	}
	report := benchReport{Config: cfg, Results: r.results}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, table1, table2, table3, fig1, fig2, fig3, fig4, params, recon, classify, relax, gammasweep, live")
		quick    = flag.Bool("quick", false, "use reduced dataset sizes for a fast smoke run")
		censusN  = flag.Int("census-n", 0, "override CENSUS record count (default 50000, 8000 with -quick)")
		healthN  = flag.Int("health-n", 0, "override HEALTH record count (default 100000, 8000 with -quick)")
		seed     = flag.Int64("seed", 0, "override random seed (default 2005)")
		minsup   = flag.Float64("minsup", 0, "override minimum support (default 0.02)")
		steps    = flag.Int("steps", 11, "number of alpha sweep steps for fig3")
		trials   = flag.Int("trials", 1, "if > 1, average fig1/fig2 over this many perturbation trials (mean±std)")
		jsonPath = flag.String("json", "", "write a machine-readable run report to this path")
		opsAddr  = flag.String("ops-addr", "", "serve pprof/metrics/health on this address during the run (empty = off; bind localhost in production)")
	)
	flag.Parse()

	if *opsAddr != "" {
		ops, err := telemetry.ServeOps(*opsAddr, telemetry.OpsHandler(telemetry.NewRegistry(), nil))
		if err != nil {
			fmt.Fprintln(os.Stderr, "frapp-bench:", err)
			os.Exit(1)
		}
		defer ops.Close()
		fmt.Fprintf(os.Stderr, "ops listener (pprof, /metrics) on http://%s\n", ops.Addr)
	}

	cfg := experiment.DefaultConfig()
	if *quick {
		cfg = experiment.QuickConfig()
	}
	if *censusN > 0 {
		cfg.CensusN = *censusN
	}
	if *healthN > 0 {
		cfg.HealthN = *healthN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *minsup > 0 {
		cfg.MinSupport = *minsup
	}
	if err := run(*exp, cfg, *steps, *trials, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiment.Config, steps, trials int, jsonPath string) error {
	gamma, err := cfg.Gamma()
	if err != nil {
		return err
	}
	var rec *recorder
	if jsonPath != "" {
		rec = &recorder{}
	}
	fmt.Printf("FRAPP evaluation — (rho1,rho2)=(%.0f%%,%.0f%%) gamma=%.4g supmin=%.2g census-n=%d health-n=%d seed=%d\n\n",
		cfg.Privacy.Rho1*100, cfg.Privacy.Rho2*100, gamma, cfg.MinSupport, cfg.CensusN, cfg.HealthN, cfg.Seed)

	needCensus := exp == "all" || exp == "table3" || exp == "fig1" || exp == "fig3" || exp == "fig4" || exp == "recon" || exp == "relax" || exp == "gammasweep"
	needHealth := exp == "all" || exp == "table3" || exp == "fig2" || exp == "fig3" || exp == "fig4" || exp == "classify"

	var census, health *experiment.Bundle
	if needCensus {
		t0 := time.Now()
		census, err = experiment.LoadCensus(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("[prep] CENSUS: %d records, truth %v (%s)\n", census.DB.N(), census.Truth.Counts(), time.Since(t0).Round(time.Millisecond))
		rec.timing("prep_census", time.Since(t0))
		rec.value("prep_census", "records", float64(census.DB.N()), "records")
	}
	if needHealth {
		t0 := time.Now()
		health, err = experiment.LoadHealth(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("[prep] HEALTH: %d records, truth %v (%s)\n", health.DB.N(), health.Truth.Counts(), time.Since(t0).Round(time.Millisecond))
		rec.timing("prep_health", time.Since(t0))
		rec.value("prep_health", "records", float64(health.DB.N()), "records")
	}
	fmt.Println()

	section := func(name string, f func() error) error {
		t0 := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s)\n\n", time.Since(t0).Round(time.Millisecond))
		rec.timing(name, time.Since(t0))
		return nil
	}

	want := func(name string) bool { return exp == "all" || exp == name }

	if want("table1") {
		if err := section("Table 1 — CENSUS schema", func() error {
			fmt.Print(experiment.Table1())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := section("Table 2 — HEALTH schema", func() error {
			fmt.Print(experiment.Table2())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table3") {
		if err := section("Table 3 — frequent itemsets", func() error {
			fmt.Print(experiment.Table3(census, health, cfg))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("params") {
		if err := section("Derived scheme parameters", func() error { return printParams(cfg, gamma) }); err != nil {
			return err
		}
	}
	accuracy := func(b *experiment.Bundle) error {
		if trials > 1 {
			fig, err := experiment.AveragedAccuracyStudy(b, cfg, trials)
			if err != nil {
				return err
			}
			fmt.Print(fig)
			return nil
		}
		fig, err := experiment.AccuracyStudy(b, cfg)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return nil
	}
	if want("fig1") {
		if err := section("Figure 1 — CENSUS accuracy", func() error { return accuracy(census) }); err != nil {
			return err
		}
	}
	if want("fig2") {
		if err := section("Figure 2 — HEALTH accuracy", func() error { return accuracy(health) }); err != nil {
			return err
		}
	}
	if want("fig3") {
		if err := section("Figure 3 — randomization tradeoff", func() error {
			for _, b := range []*experiment.Bundle{census, health} {
				target := 4
				if b.MaxLen() < target {
					target = b.MaxLen()
				}
				fig, err := experiment.RandomizationStudy(b, cfg, steps, target)
				if err != nil {
					return err
				}
				fmt.Print(fig)
				fmt.Println()
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if want("recon") {
		if err := section("Theorem 1 — reconstruction error study (CENSUS)", func() error {
			pts, err := experiment.ReconstructionStudy(census, cfg, 5)
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatReconstruction("CENSUS", pts))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("classify") {
		if err := section("Extension — privacy-preserving Naive Bayes (HEALTH)", func() error {
			res, err := experiment.ClassifyStudy(health, cfg, health.DB.Schema.M()-1)
			if err != nil {
				return err
			}
			fmt.Print(res)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("gammasweep") {
		if err := section("Extension — DET-GD accuracy vs privacy level (CENSUS)", func() error {
			specs := []core.PrivacySpec{
				{Rho1: 0.05, Rho2: 0.30},
				{Rho1: 0.05, Rho2: 0.50}, // the paper's setting
				{Rho1: 0.05, Rho2: 0.70},
				{Rho1: 0.05, Rho2: 0.90},
			}
			pts, err := experiment.GammaSweepStudy(census, cfg, specs)
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatGammaSweep("CENSUS", pts))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("relax") {
		if err := section("Extension — Apriori candidate-relaxation ablation (CENSUS)", func() error {
			pts, err := experiment.RelaxationStudy(census, cfg, []float64{1.0, 0.8, 0.6, 0.4})
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatRelaxation("CENSUS", pts))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("live") {
		if err := section("Live counters — per-scheme ingest/mine/query throughput", func() error {
			return liveBench(cfg, gamma, rec)
		}); err != nil {
			return err
		}
	}
	if want("fig4") {
		if err := section("Figure 4 — condition numbers", func() error {
			for _, b := range []*experiment.Bundle{census, health} {
				fig, err := experiment.ConditionStudy(b, cfg, b.DB.Schema.M())
				if err != nil {
					return err
				}
				fmt.Print(fig)
				fmt.Println()
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := rec.write(jsonPath, benchConfig{
			Exp: exp, Rho1: cfg.Privacy.Rho1, Rho2: cfg.Privacy.Rho2, Gamma: gamma,
			MinSupport: cfg.MinSupport, CensusN: cfg.CensusN, HealthN: cfg.HealthN,
			Seed: cfg.Seed, Trials: trials,
		}); err != nil {
			return fmt.Errorf("writing -json report: %w", err)
		}
		fmt.Printf("[json] %d results written to %s\n", len(rec.results), jsonPath)
	}
	return nil
}

// liveBench measures the scheme-polymorphic live counter stack — the
// exact substrate frapp-server runs per -scheme — on a CENSUS-sized
// workload: ingest (records/s through a sharded counter), mine
// (snapshot + Apriori wall time), and query (a 32-filter estimate
// batch). One row and one set of -json records per scheme.
func liveBench(cfg experiment.Config, gamma float64, rec *recorder) error {
	schema := dataset.CensusSchema()
	n := cfg.CensusN / 4
	if n < 1000 {
		n = 1000
	}
	db, err := dataset.GenerateCensus(n, cfg.Seed)
	if err != nil {
		return err
	}
	// A 32-filter query batch over arities 1..2.
	var filters []mining.Itemset
	for a := 0; a < schema.M() && len(filters) < 16; a++ {
		for v := 0; v < schema.Attrs[a].Cardinality() && len(filters) < 16; v += 2 {
			filters = append(filters, mining.Itemset{{Attr: a, Value: v}})
		}
	}
	for a := 0; a+1 < schema.M() && len(filters) < 32; a++ {
		filters = append(filters, mining.Itemset{{Attr: a, Value: 0}, {Attr: a + 1, Value: 1}})
	}

	for _, name := range mining.SchemeNames() {
		scheme, err := mining.SchemeForContract(name, schema, gamma)
		if err != nil {
			return err
		}
		records, err := perturbForScheme(scheme, db, cfg.Seed)
		if err != nil {
			return err
		}
		counter, err := mining.NewShardedCounter(scheme, 0)
		if err != nil {
			return err
		}

		t0 := time.Now()
		for _, items := range records {
			if err := counter.Ingest(items); err != nil {
				return err
			}
		}
		ingest := time.Since(t0)

		t0 = time.Now()
		snap, _ := counter.SnapshotVersioned()
		if _, err := mining.Apriori(snap, cfg.MinSupport); err != nil {
			return err
		}
		mine := time.Since(t0)

		t0 = time.Now()
		const queryReps = 20
		for i := 0; i < queryReps; i++ {
			if _, _, err := counter.Estimates(filters); err != nil {
				return err
			}
		}
		query := time.Since(t0) / queryReps

		ingestNs := float64(ingest.Nanoseconds()) / float64(len(records))
		fmt.Printf("%-9s ingest %8.0f rec/s (%6.0f ns/rec)   mine %8s   query(32 filters) %8s\n",
			name, float64(len(records))/ingest.Seconds(), ingestNs, mine.Round(time.Microsecond), query.Round(time.Microsecond))
		rec.schemeRecord("live_ingest", name, "ns_per_record", ingestNs, "ns", ingestNs)
		rec.schemeRecord("live_mine", name, "wall_time", float64(mine.Nanoseconds()), "ns", float64(mine.Nanoseconds()))
		rec.schemeRecord("live_query_batch32", name, "wall_time", float64(query.Nanoseconds()), "ns", float64(query.Nanoseconds()))

		if err := liveBatchIngest(name, cfg, db, rec); err != nil {
			return err
		}
	}
	return nil
}

// liveBatchIngest measures the batched submit-batch ingest path end to
// end through the HTTP handler stack — decode + IngestBatch + response
// — for both wire forms, on one scheme. Requests are driven straight
// into the handler (no socket) so the numbers isolate the server-side
// cost: records/sec and heap allocations per record, the two figures
// the binary form exists to improve.
func liveBatchIngest(name string, cfg experiment.Config, db *dataset.Database, rec *recorder) error {
	srv, err := service.NewServer(db.Schema, cfg.Privacy, service.WithScheme(name))
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := service.NewClient(ts.URL, service.WithHTTPClient(ts.Client()))
	if err != nil {
		return err
	}
	handler := srv.Handler()
	const batchSize = 256
	rates := map[string]float64{}
	for _, wire := range []string{service.WireJSON, service.WireBinary} {
		var batches []*service.PreparedBatch
		for lo := 0; lo < len(db.Records); lo += batchSize {
			hi := lo + batchSize
			if hi > len(db.Records) {
				hi = len(db.Records)
			}
			p, err := client.PrepareBatchWire(db.Records[lo:hi], rand.New(rand.NewSource(cfg.Seed+int64(lo))), wire)
			if err != nil {
				return err
			}
			batches = append(batches, p)
		}
		// One warm pass primes the decode pool and the counter, so the
		// measured pass sees steady state.
		serve := func() (int, error) {
			total := 0
			for _, p := range batches {
				req := httptest.NewRequest(http.MethodPost, "/v1/submit-batch", bytes.NewReader(p.Body()))
				req.Header.Set("Content-Type", p.ContentType())
				if fp := p.Fingerprint(); fp != "" {
					req.Header.Set(service.FingerprintHeader, fp)
				}
				w := httptest.NewRecorder()
				handler.ServeHTTP(w, req)
				if w.Code != http.StatusAccepted {
					return 0, fmt.Errorf("live batch ingest (%s, %s): status %d: %s", name, wire, w.Code, w.Body.String())
				}
				total += p.Len()
			}
			return total, nil
		}
		if _, err := serve(); err != nil {
			return err
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		total, err := serve()
		if err != nil {
			return err
		}
		elapsed := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		allocsPerRec := float64(ms1.Mallocs-ms0.Mallocs) / float64(total)
		rps := float64(total) / elapsed.Seconds()
		nsPerRec := float64(elapsed.Nanoseconds()) / float64(total)
		rates[wire] = rps
		fmt.Printf("%-9s batch-ingest[%-6s] %9.0f rec/s (%6.0f ns/rec, %5.1f allocs/rec)\n",
			name, wire, rps, nsPerRec, allocsPerRec)
		exp := "live_batch_ingest_" + wire
		rec.schemeRecord(exp, name, "records_per_sec", rps, "rec/s", nsPerRec)
		rec.schemeRecord(exp, name, "allocs_per_record", allocsPerRec, "allocs", 0)
	}
	fmt.Printf("%-9s batch-ingest speedup binary/json: %.1fx\n", name, rates[service.WireBinary]/rates[service.WireJSON])
	return nil
}

// perturbForScheme perturbs the database client-side under the scheme's
// contract and renders each perturbed record as the item list the live
// counter ingests.
func perturbForScheme(scheme mining.CounterScheme, db *dataset.Database, seed int64) ([][]mining.Item, error) {
	rng := rand.New(rand.NewSource(seed))
	schema := db.Schema
	switch sc := scheme.(type) {
	case *mining.GammaScheme:
		p, err := core.NewGammaPerturber(schema, sc.Matrix())
		if err != nil {
			return nil, err
		}
		pdb, err := core.PerturbDatabase(db, p, rng)
		if err != nil {
			return nil, err
		}
		out := make([][]mining.Item, pdb.N())
		for i, rec := range pdb.Records {
			items := make([]mining.Item, len(rec))
			for j, v := range rec {
				items[j] = mining.Item{Attr: j, Value: v}
			}
			out[i] = items
		}
		return out, nil
	case *mining.MaskCounterScheme:
		bdb, err := sc.Mask().PerturbDatabase(db, rng)
		if err != nil {
			return nil, err
		}
		return rowsToItems(sc.Mask().Mapping, bdb.Rows), nil
	case *mining.CutPasteCounterScheme:
		bdb, err := sc.CutPaste().PerturbDatabase(db, rng)
		if err != nil {
			return nil, err
		}
		return rowsToItems(sc.CutPaste().Mapping, bdb.Rows), nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", scheme.Name())
	}
}

// rowsToItems converts perturbed boolean rows into ingestable item
// lists.
func rowsToItems(m *core.BoolMapping, rows []uint64) [][]mining.Item {
	out := make([][]mining.Item, len(rows))
	for i, row := range rows {
		var items []mining.Item
		for b := row; b != 0; b &= b - 1 {
			bit := bits.TrailingZeros64(b)
			for j := m.Schema.M() - 1; j >= 0; j-- {
				if bit >= m.Offsets[j] {
					items = append(items, mining.Item{Attr: j, Value: bit - m.Offsets[j]})
					break
				}
			}
		}
		out[i] = items
	}
	return out
}

func printParams(cfg experiment.Config, gamma float64) error {
	for _, sc := range []*dataset.Schema{dataset.CensusSchema(), dataset.HealthSchema()} {
		p, err := core.MaskPForGamma(sc.M(), gamma)
		if err != nil {
			return err
		}
		bm, err := core.NewBoolMapping(sc)
		if err != nil {
			return err
		}
		cnp, err := core.NewCutPasteScheme(bm, cfg.CnPK, cfg.CnPRho)
		if err != nil {
			return err
		}
		gd, err := core.NewGammaDiagonal(sc.DomainSize(), gamma)
		if err != nil {
			return err
		}
		fmt.Printf("%-7s |S_U|=%-6d Mb=%-3d gamma-diagonal cond=%.4g  MASK p=%.4f (amp=%.4g)  C&P K=%d rho=%.3f (amp=%.4g)\n",
			sc.Name, sc.DomainSize(), bm.Mb, gd.Cond(), p,
			func() float64 {
				m, err := core.NewMaskScheme(bm, p)
				if err != nil {
					return -1
				}
				return m.Amplification()
			}(),
			cnp.K, cnp.Rho, cnp.Amplification())
	}
	return nil
}
