// Command frapp-bench regenerates every table and figure of the FRAPP
// paper's evaluation (Section 7) on the synthetic CENSUS and HEALTH
// datasets.
//
// Usage:
//
//	frapp-bench [-exp all|table1|table2|table3|fig1|fig2|fig3|fig4|params]
//	            [-quick] [-census-n N] [-health-n N] [-seed S]
//	            [-minsup F] [-steps K] [-json results.json]
//
// Each experiment prints a text rendering of the corresponding paper
// artifact. -quick shrinks the datasets for a fast smoke run.
//
// With -json, a machine-readable run report is additionally written to
// the given path: the effective configuration plus one record per
// measurement (experiment name, metric, value, unit, ns/op where the
// metric is a timing) — the format CI records as a BENCH_*.json perf
// trajectory across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
)

// benchRecord is one measurement in the -json report.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit,omitempty"`
	// NsPerOp is set for timing metrics: nanoseconds for one run of the
	// experiment at this configuration.
	NsPerOp float64 `json:"ns_per_op,omitempty"`
}

// benchReport is the -json payload.
type benchReport struct {
	Config  benchConfig   `json:"config"`
	Results []benchRecord `json:"results"`
}

// benchConfig pins the knobs a trajectory point was measured under.
type benchConfig struct {
	Exp        string  `json:"exp"`
	Rho1       float64 `json:"rho1"`
	Rho2       float64 `json:"rho2"`
	Gamma      float64 `json:"gamma"`
	MinSupport float64 `json:"minsup"`
	CensusN    int     `json:"census_n"`
	HealthN    int     `json:"health_n"`
	Seed       int64   `json:"seed"`
	Trials     int     `json:"trials"`
}

// recorder accumulates -json records; a nil recorder records nothing.
type recorder struct {
	results []benchRecord
}

func (r *recorder) timing(experiment string, d time.Duration) {
	if r == nil {
		return
	}
	ns := float64(d.Nanoseconds())
	r.results = append(r.results, benchRecord{
		Experiment: experiment, Metric: "wall_time", Value: ns, Unit: "ns", NsPerOp: ns,
	})
}

func (r *recorder) value(experiment, metric string, v float64, unit string) {
	if r == nil {
		return
	}
	r.results = append(r.results, benchRecord{Experiment: experiment, Metric: metric, Value: v, Unit: unit})
}

// write renders the report atomically enough for CI consumption (one
// final write, no partial sections).
func (r *recorder) write(path string, cfg benchConfig) error {
	if r == nil {
		return nil
	}
	report := benchReport{Config: cfg, Results: r.results}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, table1, table2, table3, fig1, fig2, fig3, fig4, params, recon, classify, relax, gammasweep")
		quick    = flag.Bool("quick", false, "use reduced dataset sizes for a fast smoke run")
		censusN  = flag.Int("census-n", 0, "override CENSUS record count (default 50000, 8000 with -quick)")
		healthN  = flag.Int("health-n", 0, "override HEALTH record count (default 100000, 8000 with -quick)")
		seed     = flag.Int64("seed", 0, "override random seed (default 2005)")
		minsup   = flag.Float64("minsup", 0, "override minimum support (default 0.02)")
		steps    = flag.Int("steps", 11, "number of alpha sweep steps for fig3")
		trials   = flag.Int("trials", 1, "if > 1, average fig1/fig2 over this many perturbation trials (mean±std)")
		jsonPath = flag.String("json", "", "write a machine-readable run report to this path")
	)
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *quick {
		cfg = experiment.QuickConfig()
	}
	if *censusN > 0 {
		cfg.CensusN = *censusN
	}
	if *healthN > 0 {
		cfg.HealthN = *healthN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *minsup > 0 {
		cfg.MinSupport = *minsup
	}
	if err := run(*exp, cfg, *steps, *trials, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg experiment.Config, steps, trials int, jsonPath string) error {
	gamma, err := cfg.Gamma()
	if err != nil {
		return err
	}
	var rec *recorder
	if jsonPath != "" {
		rec = &recorder{}
	}
	fmt.Printf("FRAPP evaluation — (rho1,rho2)=(%.0f%%,%.0f%%) gamma=%.4g supmin=%.2g census-n=%d health-n=%d seed=%d\n\n",
		cfg.Privacy.Rho1*100, cfg.Privacy.Rho2*100, gamma, cfg.MinSupport, cfg.CensusN, cfg.HealthN, cfg.Seed)

	needCensus := exp == "all" || exp == "table3" || exp == "fig1" || exp == "fig3" || exp == "fig4" || exp == "recon" || exp == "relax" || exp == "gammasweep"
	needHealth := exp == "all" || exp == "table3" || exp == "fig2" || exp == "fig3" || exp == "fig4" || exp == "classify"

	var census, health *experiment.Bundle
	if needCensus {
		t0 := time.Now()
		census, err = experiment.LoadCensus(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("[prep] CENSUS: %d records, truth %v (%s)\n", census.DB.N(), census.Truth.Counts(), time.Since(t0).Round(time.Millisecond))
		rec.timing("prep_census", time.Since(t0))
		rec.value("prep_census", "records", float64(census.DB.N()), "records")
	}
	if needHealth {
		t0 := time.Now()
		health, err = experiment.LoadHealth(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("[prep] HEALTH: %d records, truth %v (%s)\n", health.DB.N(), health.Truth.Counts(), time.Since(t0).Round(time.Millisecond))
		rec.timing("prep_health", time.Since(t0))
		rec.value("prep_health", "records", float64(health.DB.N()), "records")
	}
	fmt.Println()

	section := func(name string, f func() error) error {
		t0 := time.Now()
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("(%s)\n\n", time.Since(t0).Round(time.Millisecond))
		rec.timing(name, time.Since(t0))
		return nil
	}

	want := func(name string) bool { return exp == "all" || exp == name }

	if want("table1") {
		if err := section("Table 1 — CENSUS schema", func() error {
			fmt.Print(experiment.Table1())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := section("Table 2 — HEALTH schema", func() error {
			fmt.Print(experiment.Table2())
			return nil
		}); err != nil {
			return err
		}
	}
	if want("table3") {
		if err := section("Table 3 — frequent itemsets", func() error {
			fmt.Print(experiment.Table3(census, health, cfg))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("params") {
		if err := section("Derived scheme parameters", func() error { return printParams(cfg, gamma) }); err != nil {
			return err
		}
	}
	accuracy := func(b *experiment.Bundle) error {
		if trials > 1 {
			fig, err := experiment.AveragedAccuracyStudy(b, cfg, trials)
			if err != nil {
				return err
			}
			fmt.Print(fig)
			return nil
		}
		fig, err := experiment.AccuracyStudy(b, cfg)
		if err != nil {
			return err
		}
		fmt.Print(fig)
		return nil
	}
	if want("fig1") {
		if err := section("Figure 1 — CENSUS accuracy", func() error { return accuracy(census) }); err != nil {
			return err
		}
	}
	if want("fig2") {
		if err := section("Figure 2 — HEALTH accuracy", func() error { return accuracy(health) }); err != nil {
			return err
		}
	}
	if want("fig3") {
		if err := section("Figure 3 — randomization tradeoff", func() error {
			for _, b := range []*experiment.Bundle{census, health} {
				target := 4
				if b.MaxLen() < target {
					target = b.MaxLen()
				}
				fig, err := experiment.RandomizationStudy(b, cfg, steps, target)
				if err != nil {
					return err
				}
				fmt.Print(fig)
				fmt.Println()
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if want("recon") {
		if err := section("Theorem 1 — reconstruction error study (CENSUS)", func() error {
			pts, err := experiment.ReconstructionStudy(census, cfg, 5)
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatReconstruction("CENSUS", pts))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("classify") {
		if err := section("Extension — privacy-preserving Naive Bayes (HEALTH)", func() error {
			res, err := experiment.ClassifyStudy(health, cfg, health.DB.Schema.M()-1)
			if err != nil {
				return err
			}
			fmt.Print(res)
			return nil
		}); err != nil {
			return err
		}
	}
	if want("gammasweep") {
		if err := section("Extension — DET-GD accuracy vs privacy level (CENSUS)", func() error {
			specs := []core.PrivacySpec{
				{Rho1: 0.05, Rho2: 0.30},
				{Rho1: 0.05, Rho2: 0.50}, // the paper's setting
				{Rho1: 0.05, Rho2: 0.70},
				{Rho1: 0.05, Rho2: 0.90},
			}
			pts, err := experiment.GammaSweepStudy(census, cfg, specs)
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatGammaSweep("CENSUS", pts))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("relax") {
		if err := section("Extension — Apriori candidate-relaxation ablation (CENSUS)", func() error {
			pts, err := experiment.RelaxationStudy(census, cfg, []float64{1.0, 0.8, 0.6, 0.4})
			if err != nil {
				return err
			}
			fmt.Print(experiment.FormatRelaxation("CENSUS", pts))
			return nil
		}); err != nil {
			return err
		}
	}
	if want("fig4") {
		if err := section("Figure 4 — condition numbers", func() error {
			for _, b := range []*experiment.Bundle{census, health} {
				fig, err := experiment.ConditionStudy(b, cfg, b.DB.Schema.M())
				if err != nil {
					return err
				}
				fmt.Print(fig)
				fmt.Println()
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		if err := rec.write(jsonPath, benchConfig{
			Exp: exp, Rho1: cfg.Privacy.Rho1, Rho2: cfg.Privacy.Rho2, Gamma: gamma,
			MinSupport: cfg.MinSupport, CensusN: cfg.CensusN, HealthN: cfg.HealthN,
			Seed: cfg.Seed, Trials: trials,
		}); err != nil {
			return fmt.Errorf("writing -json report: %w", err)
		}
		fmt.Printf("[json] %d results written to %s\n", len(rec.results), jsonPath)
	}
	return nil
}

func printParams(cfg experiment.Config, gamma float64) error {
	for _, sc := range []*dataset.Schema{dataset.CensusSchema(), dataset.HealthSchema()} {
		p, err := core.MaskPForGamma(sc.M(), gamma)
		if err != nil {
			return err
		}
		bm, err := core.NewBoolMapping(sc)
		if err != nil {
			return err
		}
		cnp, err := core.NewCutPasteScheme(bm, cfg.CnPK, cfg.CnPRho)
		if err != nil {
			return err
		}
		gd, err := core.NewGammaDiagonal(sc.DomainSize(), gamma)
		if err != nil {
			return err
		}
		fmt.Printf("%-7s |S_U|=%-6d Mb=%-3d gamma-diagonal cond=%.4g  MASK p=%.4f (amp=%.4g)  C&P K=%d rho=%.3f (amp=%.4g)\n",
			sc.Name, sc.DomainSize(), bm.Mb, gd.Cond(), p,
			func() float64 {
				m, err := core.NewMaskScheme(bm, p)
				if err != nil {
					return -1
				}
				return m.Amplification()
			}(),
			cnp.K, cnp.Rho, cnp.Amplification())
	}
	return nil
}
