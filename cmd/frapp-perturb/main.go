// Command frapp-perturb applies a FRAPP perturbation mechanism to a
// categorical CSV database, producing the distorted database a client
// population would submit to the miner.
//
// Usage:
//
//	frapp-perturb -schema census|health -in data.csv [-out out.csv]
//	              [-scheme det-gd|ran-gd|mask|cnp]
//	              [-rho1 0.05] [-rho2 0.50] [-alpha 0.5]
//	              [-cnp-k 3] [-cnp-rho 0.494] [-seed S]
//
// det-gd and ran-gd emit categorical CSV in the input schema. mask and
// cnp perturb the boolean encoding, so their output is one line per
// record listing the boolean items present as attr=category tokens.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	var (
		schemaName = flag.String("schema", "census", "schema of the input: census or health")
		in         = flag.String("in", "", "input CSV (required)")
		out        = flag.String("out", "", "output file (default stdout)")
		scheme     = flag.String("scheme", "det-gd", "perturbation scheme: det-gd, ran-gd, mask, cnp")
		rho1       = flag.Float64("rho1", 0.05, "privacy prior bound rho1")
		rho2       = flag.Float64("rho2", 0.50, "privacy posterior bound rho2")
		alpha      = flag.Float64("alpha", 0.5, "ran-gd randomization amplitude as a fraction of gamma*x")
		cnpK       = flag.Int("cnp-k", 3, "C&P cut parameter K")
		cnpRho     = flag.Float64("cnp-rho", 0.494, "C&P paste probability rho")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*schemaName, *in, *out, *scheme, *rho1, *rho2, *alpha, *cnpK, *cnpRho, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-perturb:", err)
		os.Exit(1)
	}
}

func run(schemaName, in, out, scheme string, rho1, rho2, alpha float64, cnpK int, cnpRho float64, seed int64) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	sc, err := schemaByName(schemaName)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := dataset.ReadCSV(f, sc)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		of, err := os.Create(out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	gamma, err := (core.PrivacySpec{Rho1: rho1, Rho2: rho2}).Gamma()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))

	switch scheme {
	case "det-gd", "ran-gd":
		m, err := core.NewGammaDiagonal(sc.DomainSize(), gamma)
		if err != nil {
			return err
		}
		var p core.Perturber
		if scheme == "det-gd" {
			p, err = core.NewGammaPerturber(sc, m)
		} else {
			p, err = core.NewRandomizedGammaPerturber(sc, m, alpha*m.Diag)
		}
		if err != nil {
			return err
		}
		pdb, err := core.PerturbDatabase(db, p, rng)
		if err != nil {
			return err
		}
		return dataset.WriteCSV(w, pdb)

	case "mask", "cnp":
		bm, err := core.NewBoolMapping(sc)
		if err != nil {
			return err
		}
		var bdb *core.BoolDatabase
		if scheme == "mask" {
			s, err := core.NewMaskSchemeForPrivacy(bm, gamma)
			if err != nil {
				return err
			}
			bdb, err = s.PerturbDatabase(db, rng)
			if err != nil {
				return err
			}
		} else {
			s, err := core.NewCutPasteScheme(bm, cnpK, cnpRho)
			if err != nil {
				return err
			}
			bdb, err = s.PerturbDatabase(db, rng)
			if err != nil {
				return err
			}
		}
		return writeBoolDB(w, bdb)

	default:
		return fmt.Errorf("unknown scheme %q", scheme)
	}
}

func schemaByName(name string) (*dataset.Schema, error) {
	switch name {
	case "census":
		return dataset.CensusSchema(), nil
	case "health":
		return dataset.HealthSchema(), nil
	default:
		return nil, fmt.Errorf("unknown schema %q (want census or health)", name)
	}
}

// writeBoolDB emits one line per record listing the present boolean items
// as attribute=category tokens separated by spaces.
func writeBoolDB(w io.Writer, bdb *core.BoolDatabase) error {
	bw := bufio.NewWriter(w)
	sc := bdb.Mapping.Schema
	for _, row := range bdb.Rows {
		first := true
		for j, a := range sc.Attrs {
			for v := 0; v < a.Cardinality(); v++ {
				bit, err := bdb.Mapping.Bit(j, v)
				if err != nil {
					return err
				}
				if row&(1<<uint(bit)) == 0 {
					continue
				}
				if !first {
					if _, err := bw.WriteString(" "); err != nil {
						return err
					}
				}
				first = false
				if _, err := fmt.Fprintf(bw, "%s=%s", a.Name, a.Categories[v]); err != nil {
					return err
				}
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
