package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func writeInput(t *testing.T, dir string) string {
	t.Helper()
	db, err := dataset.GenerateCensus(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(dir, "in.csv")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, db); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestRunGammaSchemes(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir)
	for _, scheme := range []string{"det-gd", "ran-gd"} {
		out := filepath.Join(dir, scheme+".csv")
		if err := run("census", in, out, scheme, 0.05, 0.50, 0.5, 3, 0.494, 1); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		db, err := dataset.ReadCSV(f, dataset.CensusSchema())
		f.Close()
		if err != nil {
			t.Fatalf("%s output unreadable: %v", scheme, err)
		}
		if db.N() != 200 {
			t.Fatalf("%s produced %d records", scheme, db.N())
		}
	}
}

func TestRunBooleanSchemes(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir)
	for _, scheme := range []string{"mask", "cnp"} {
		out := filepath.Join(dir, scheme+".txt")
		if err := run("census", in, out, scheme, 0.05, 0.50, 0.5, 3, 0.494, 1); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) != 200 {
			t.Fatalf("%s produced %d lines", scheme, len(lines))
		}
		// Item tokens must use schema names.
		if !strings.Contains(string(data), "=") {
			t.Fatalf("%s output has no attr=category tokens", scheme)
		}
	}
}

func TestRunValidation(t *testing.T) {
	dir := t.TempDir()
	in := writeInput(t, dir)
	if err := run("census", "", "", "det-gd", 0.05, 0.5, 0.5, 3, 0.494, 1); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run("bogus", in, "", "det-gd", 0.05, 0.5, 0.5, 3, 0.494, 1); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if err := run("census", in, "", "bogus", 0.05, 0.5, 0.5, 3, 0.494, 1); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run("census", filepath.Join(dir, "nope.csv"), "", "det-gd", 0.05, 0.5, 0.5, 3, 0.494, 1); err == nil {
		t.Fatal("missing input accepted")
	}
	if err := run("census", in, "", "det-gd", 0.5, 0.05, 0.5, 3, 0.494, 1); err == nil {
		t.Fatal("inverted privacy spec accepted")
	}
}
