// Command frapp-loadgen drives a FRAPP collection server with a
// million-user-scale synthetic workload and gates latency/throughput
// regressions against a committed baseline.
//
// Usage:
//
//	frapp-loadgen [-target URL] [-scheme gamma|mask|cutpaste]
//	              [-collection NAME] [-duration 30s] [-workers 256]
//	              [-rate 2000] [-mix 90:9:1] [-population 100000]
//	              [-seed S] [-out BENCH_load.json]
//	              [-baseline bench_baseline.json]
//	              [-ops-target URL] [-metrics-out load_metrics.txt]
//
// The harness synthesizes a seeded Zipf-skewed population with
// correlated attribute profiles, perturbs and encodes it off the
// latency path, then replays an OPEN-LOOP schedule of submit-batch,
// query, and mine-job operations at the offered -rate. Latency is
// measured from each operation's scheduled time, so queueing under
// saturation counts against the server (no coordinated omission).
//
// With -target empty the command self-hosts an in-process frapp-server
// on a loopback listener — the same handler stack CI runs, with no
// external process to manage. Adding -state DIR gives the self-hosted
// server a durable store, so the run measures ingestion with the WAL
// and checkpoint machinery enabled.
//
// -collection NAME scopes the whole workload to a named collection via
// the /v1/collections/NAME/ routes. Against a remote -target the
// collection must already exist; a self-hosted run creates it inside an
// in-process collection registry, so the measured stack includes
// multi-tenant dispatch.
//
// After the run the harness scrapes the target's ops listener
// (-ops-target, or the self-hosted server's built-in loopback ops
// listener) and folds the server-observed latency quantiles into the
// report next to the client-observed ones; an unparseable scrape or a
// missing declared metric family fails the run. -metrics-out saves the
// raw scrape for CI artifacts.
//
// Exit status: 0 on success, 1 when the -baseline gate finds a
// regression, 2 on bad configuration or a failed run.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	cfg, err := loadgen.ParseArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frapp-loadgen: %v\n\n%s", err, loadgen.Usage())
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "building population: %d records, schema %s, zipf %g, seed %d\n",
		cfg.Population, cfg.Schema, cfg.Skew, cfg.Seed)
	pop, err := loadgen.BuildPopulation(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frapp-loadgen: %v\n", err)
		return 2
	}

	if cfg.Target == "" {
		shutdown, url, opsURL, err := selfHost(cfg, pop)
		if err != nil {
			fmt.Fprintf(os.Stderr, "frapp-loadgen: self-host: %v\n", err)
			return 2
		}
		defer shutdown()
		cfg.Target = url
		if cfg.OpsTarget == "" {
			cfg.OpsTarget = opsURL
		}
		fmt.Fprintf(os.Stderr, "self-hosting frapp-server at %s (scheme %s, ops %s)\n", url, cfg.Scheme, opsURL)
	}
	if cfg.Collection != "" {
		// Scope the whole workload to the named collection; the alias
		// routes accept the client's /v1/... suffix after this prefix.
		cfg.Target = strings.TrimRight(cfg.Target, "/") + "/v1/collections/" + cfg.Collection
		fmt.Fprintf(os.Stderr, "targeting collection %q at %s\n", cfg.Collection, cfg.Target)
	}

	fmt.Fprintf(os.Stderr, "driving %s open-loop: %g ops/s, %d workers, mix %s\n",
		cfg.Target, cfg.Rate, cfg.Workers, cfg.Mix)
	stats, err := loadgen.Run(ctx, cfg, pop)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frapp-loadgen: %v\n", err)
		return 2
	}

	rpt := loadgen.BuildReport(cfg, stats)

	// The scrape runs before the report is written and before the gate:
	// a broken exporter (unparseable text, missing declared family) is a
	// run failure, and the server-side quantiles land in the report next
	// to the client-observed ones.
	if cfg.OpsTarget != "" {
		raw, expo, err := loadgen.ScrapeOps(cfg.OpsTarget)
		if cfg.MetricsOut != "" && len(raw) > 0 {
			if werr := os.WriteFile(cfg.MetricsOut, raw, 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "frapp-loadgen: write metrics: %v\n", werr)
				return 2
			}
			fmt.Fprintf(os.Stderr, "metrics scrape written to %s\n", cfg.MetricsOut)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "frapp-loadgen: %v\n", err)
			return 2
		}
		loadgen.AddServerMetrics(rpt, expo)
	}

	fmt.Print(rpt.Summary())
	if cfg.Out != "" {
		if err := rpt.Write(cfg.Out); err != nil {
			fmt.Fprintf(os.Stderr, "frapp-loadgen: write report: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", cfg.Out)
	}

	if cfg.Baseline != "" {
		base, err := loadgen.ReadReport(cfg.Baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "frapp-loadgen: baseline: %v\n", err)
			return 2
		}
		if violations := loadgen.CompareBaseline(rpt, base, cfg.P99Tol, cfg.RateTol); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "REGRESSION GATE FAILED vs %s:\n", cfg.Baseline)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "regression gate passed vs %s (p99 ×%g, rate ≥%g×)\n",
			cfg.Baseline, cfg.P99Tol, cfg.RateTol)
	}
	return 0
}

// selfHost starts an in-process frapp-server matching cfg's contract on
// a loopback listener — instrumented, with a loopback ops listener of
// its own — returning its shutdown func, base URL, and ops URL. The
// built-in ops listener means the -ops-target scrape gate exercises the
// same /metrics path CI scrapes, with no external process to manage.
//
// With -collection set, the server is created inside an in-process
// collection registry instead, so the workload traverses the full
// multi-tenant /v1/collections/{name}/ dispatch path — the same stack a
// named tenant sees in production.
func selfHost(cfg *loadgen.Config, pop *loadgen.Population) (func(), string, string, error) {
	reg := telemetry.NewRegistry()
	handler, closeServer, err := selfHostHandler(cfg, pop, reg)
	if err != nil {
		return nil, "", "", err
	}
	ops, err := telemetry.ServeOps("127.0.0.1:0", telemetry.OpsHandler(reg, nil))
	if err != nil {
		closeServer()
		return nil, "", "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ops.Close()
		closeServer()
		return nil, "", "", err
	}
	hs := &http.Server{Handler: handler}
	go func() { _ = hs.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		_ = ops.Close()
		closeServer()
	}
	return shutdown, "http://" + ln.Addr().String(), "http://" + ops.Addr, nil
}

// selfHostHandler builds the HTTP handler under test: a bare server for
// the legacy single-tenant path, or a registry hosting the named
// collection when -collection is set.
func selfHostHandler(cfg *loadgen.Config, pop *loadgen.Population, reg *telemetry.Registry) (http.Handler, func(), error) {
	if cfg.Collection == "" {
		opts := []service.Option{service.WithScheme(cfg.Scheme), service.WithTelemetry(reg)}
		if cfg.State != "" {
			st, err := store.Open(cfg.State)
			if err != nil {
				return nil, nil, err
			}
			opts = append(opts, service.WithStore(st))
		}
		srv, err := service.NewServer(pop.Schema,
			core.PrivacySpec{Rho1: cfg.Rho1, Rho2: cfg.Rho2}, opts...)
		if err != nil {
			return nil, nil, err
		}
		return srv.Handler(), srv.Close, nil
	}
	tenants, err := registry.New(registry.Options{BaseDir: cfg.State, Metrics: reg})
	if err != nil {
		return nil, nil, err
	}
	col, _, err := tenants.Create(cfg.Collection, registry.CollectionSpec{
		Schema: &registry.SchemaSpec{Name: pop.Schema.Name, Attrs: pop.Schema.Attrs},
		Scheme: cfg.Scheme,
		Rho1:   cfg.Rho1,
		Rho2:   cfg.Rho2,
	})
	if err != nil {
		tenants.Close()
		return nil, nil, err
	}
	// The client's first request is GET /v1/schema; wait out WAL
	// recovery so it can't race a 503.
	if err := col.AwaitReady(); err != nil {
		tenants.Close()
		return nil, nil, err
	}
	return tenants.Handler(), tenants.Close, nil
}
