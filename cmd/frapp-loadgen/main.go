// Command frapp-loadgen drives a FRAPP collection server with a
// million-user-scale synthetic workload and gates latency/throughput
// regressions against a committed baseline.
//
// Usage:
//
//	frapp-loadgen [-target URL] [-scheme gamma|mask|cutpaste]
//	              [-duration 30s] [-workers 256] [-rate 2000]
//	              [-mix 90:9:1] [-population 100000] [-seed S]
//	              [-out BENCH_load.json] [-baseline bench_baseline.json]
//
// The harness synthesizes a seeded Zipf-skewed population with
// correlated attribute profiles, perturbs and encodes it off the
// latency path, then replays an OPEN-LOOP schedule of submit-batch,
// query, and mine-job operations at the offered -rate. Latency is
// measured from each operation's scheduled time, so queueing under
// saturation counts against the server (no coordinated omission).
//
// With -target empty the command self-hosts an in-process frapp-server
// on a loopback listener — the same handler stack CI runs, with no
// external process to manage. Adding -state DIR gives the self-hosted
// server a durable store, so the run measures ingestion with the WAL
// and checkpoint machinery enabled.
//
// Exit status: 0 on success, 1 when the -baseline gate finds a
// regression, 2 on bad configuration or a failed run.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	cfg, err := loadgen.ParseArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frapp-loadgen: %v\n\n%s", err, loadgen.Usage())
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "building population: %d records, schema %s, zipf %g, seed %d\n",
		cfg.Population, cfg.Schema, cfg.Skew, cfg.Seed)
	pop, err := loadgen.BuildPopulation(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frapp-loadgen: %v\n", err)
		return 2
	}

	if cfg.Target == "" {
		shutdown, url, err := selfHost(cfg, pop)
		if err != nil {
			fmt.Fprintf(os.Stderr, "frapp-loadgen: self-host: %v\n", err)
			return 2
		}
		defer shutdown()
		cfg.Target = url
		fmt.Fprintf(os.Stderr, "self-hosting frapp-server at %s (scheme %s)\n", url, cfg.Scheme)
	}

	fmt.Fprintf(os.Stderr, "driving %s open-loop: %g ops/s, %d workers, mix %s\n",
		cfg.Target, cfg.Rate, cfg.Workers, cfg.Mix)
	stats, err := loadgen.Run(ctx, cfg, pop)
	if err != nil {
		fmt.Fprintf(os.Stderr, "frapp-loadgen: %v\n", err)
		return 2
	}

	rpt := loadgen.BuildReport(cfg, stats)
	fmt.Print(rpt.Summary())
	if cfg.Out != "" {
		if err := rpt.Write(cfg.Out); err != nil {
			fmt.Fprintf(os.Stderr, "frapp-loadgen: write report: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", cfg.Out)
	}

	if cfg.Baseline != "" {
		base, err := loadgen.ReadReport(cfg.Baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "frapp-loadgen: baseline: %v\n", err)
			return 2
		}
		if violations := loadgen.CompareBaseline(rpt, base, cfg.P99Tol, cfg.RateTol); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "REGRESSION GATE FAILED vs %s:\n", cfg.Baseline)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "regression gate passed vs %s (p99 ×%g, rate ≥%g×)\n",
			cfg.Baseline, cfg.P99Tol, cfg.RateTol)
	}
	return 0
}

// selfHost starts an in-process frapp-server matching cfg's contract on
// a loopback listener, returning its shutdown func and base URL.
func selfHost(cfg *loadgen.Config, pop *loadgen.Population) (func(), string, error) {
	opts := []service.Option{service.WithScheme(cfg.Scheme)}
	if cfg.State != "" {
		st, err := store.Open(cfg.State)
		if err != nil {
			return nil, "", err
		}
		opts = append(opts, service.WithStore(st))
	}
	srv, err := service.NewServer(pop.Schema,
		core.PrivacySpec{Rho1: cfg.Rho1, Rho2: cfg.Rho2}, opts...)
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
	}
	return shutdown, "http://" + ln.Addr().String(), nil
}
