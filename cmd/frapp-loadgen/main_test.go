package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/loadgen"
	"repro/internal/telemetry"
)

// shortArgs is a fast self-hosted run small enough for a unit test.
func shortArgs(extra ...string) []string {
	args := []string{
		"-duration", "500ms", "-workers", "16", "-rate", "300",
		"-population", "2048", "-batch", "64", "-query-batch", "4",
		"-seed", "7",
	}
	return append(args, extra...)
}

func TestRunSelfHosted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	if code := run(shortArgs("-out", out)); code != 0 {
		t.Fatalf("exit %d", code)
	}
	rpt, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if rpt.Config.Scheme != "gamma" || rpt.Config.Seed != 7 {
		t.Fatalf("report config %+v", rpt.Config)
	}
	if len(rpt.Results) == 0 {
		t.Fatal("empty results")
	}
}

func TestRunBadConfigExits2(t *testing.T) {
	if code := run([]string{"-scheme", "rot13"}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-nonsense"}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-collection", "Not A Name"}); code != 2 {
		t.Fatalf("bad collection name exit %d, want 2", code)
	}
}

func TestRunSelfHostedCollection(t *testing.T) {
	// A named collection drives the multi-tenant dispatch path; the
	// scrape must carry its collection label, proving the workload ran
	// against the registry-built server, not a bare one.
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_load.json")
	metrics := filepath.Join(dir, "load_metrics.txt")
	if code := run(shortArgs("-out", out, "-metrics-out", metrics, "-collection", "perf-tenant")); code != 0 {
		t.Fatalf("exit %d", code)
	}
	rpt, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rpt.Results) == 0 {
		t.Fatal("empty results")
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `collection="perf-tenant"`) {
		t.Fatal("scrape has no collection=\"perf-tenant\" label; workload did not traverse the registry")
	}
}

func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_load.json")
	if code := run(shortArgs("-out", out)); code != 0 {
		t.Fatalf("baseline run exit %d", code)
	}

	// Gating a run against its own output must pass.
	out2 := filepath.Join(dir, "BENCH_load2.json")
	if code := run(shortArgs("-out", out2, "-baseline", out)); code != 0 {
		t.Fatalf("self-gate exit %d, want 0", code)
	}

	// An impossible baseline must fail the gate with exit 1.
	base, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		switch base.Results[i].Metric {
		case "p99_ns":
			base.Results[i].Value = 1 // 1ns p99: unbeatable
		case "records_per_sec":
			base.Results[i].Value = 1e12
		}
	}
	impossible := filepath.Join(dir, "impossible.json")
	if err := base.Write(impossible); err != nil {
		t.Fatal(err)
	}
	if code := run(shortArgs("-out", "", "-baseline", impossible)); code != 1 {
		t.Fatalf("impossible gate exit %d, want 1", code)
	}

	// A missing baseline file is a config error, not a regression.
	if code := run(shortArgs("-out", "", "-baseline", filepath.Join(dir, "absent.json"))); code != 2 {
		t.Fatalf("absent baseline exit %d, want 2", code)
	}
}

func TestRunScrapesOpsMetrics(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_load.json")
	metrics := filepath.Join(dir, "load_metrics.txt")
	if code := run(shortArgs("-out", out, "-metrics-out", metrics)); code != 0 {
		t.Fatalf("exit %d", code)
	}

	rpt, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	var clientP99, serverP99 bool
	for _, rec := range rpt.Results {
		if rec.Experiment == "load_submit" {
			switch rec.Metric {
			case "p99_ns":
				clientP99 = true
			case "server_p99_ns":
				if rec.Value <= 0 {
					t.Fatalf("server_p99_ns = %v, want > 0", rec.Value)
				}
				serverP99 = true
			}
		}
	}
	if !clientP99 || !serverP99 {
		t.Fatalf("report has client p99=%v server p99=%v, want both", clientP99, serverP99)
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	expo, err := telemetry.ParseExposition(raw)
	if err != nil {
		t.Fatalf("saved scrape unparseable: %v", err)
	}
	if missing := expo.CheckFamilies(loadgen.RequiredFamilies); len(missing) > 0 {
		t.Fatalf("saved scrape missing families %v", missing)
	}
}

func TestRunBadOpsTargetExits2(t *testing.T) {
	// An explicit but unreachable ops target must fail the run.
	if code := run(shortArgs("-out", "", "-ops-target", "http://127.0.0.1:1")); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestMainSmoke(t *testing.T) {
	// Default -out writes into the cwd; run from a temp dir so the repo
	// tree stays clean.
	t.Chdir(t.TempDir())
	if code := run(shortArgs()); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if _, err := os.Stat("BENCH_load.json"); err != nil {
		t.Fatalf("default report not written: %v", err)
	}
}
