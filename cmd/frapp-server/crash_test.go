package main

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// Kill-9 crash recovery, end to end: a real frapp-server process (this
// test binary re-executed into TestCrashServerProcess) ingests records
// over HTTP, is SIGKILLed with no shutdown path whatsoever, and a fresh
// boot over the same -state directory must recover every record that
// was durable — which, after a quiet period longer than the WAL flush
// interval, is all of them. The cycle runs twice per scheme so recovery
// of an already-recovered store (checkpoint + WAL + token regeneration)
// is exercised too.
//
// FRAPP_STRESS_SCHEME narrows the scheme matrix to one scheme (the CI
// stress matrix sets it); unset means all three.

// crashFlushInterval is the child's WAL flush cadence; the parent waits
// many multiples of it before killing, so every acknowledged record has
// been flushed (and fsynced — the child runs -wal-sync always).
const crashFlushInterval = 10 * time.Millisecond

// TestCrashServerProcess is the re-exec helper, not a test: it becomes
// the server process the driver kills. Skipped unless the driver's env
// marker is present.
func TestCrashServerProcess(t *testing.T) {
	if os.Getenv("FRAPP_CRASH_SERVER") != "1" {
		t.Skip("re-exec helper")
	}
	cfg := serverConfig{
		addr:   os.Getenv("FRAPP_CRASH_SERVER_ADDR"),
		schema: "census", scheme: os.Getenv("FRAPP_CRASH_SERVER_SCHEME"),
		rho1: 0.05, rho2: 0.5,
		state:           os.Getenv("FRAPP_CRASH_SERVER_STATE"),
		walFlush:        crashFlushInterval,
		checkpointEvery: 25, // small, so checkpoints happen mid-run
		shards:          2, mineWorkers: 1, jobTTL: time.Minute,
	}
	// Serves until SIGKILL; there is no graceful path in this process.
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
}

func crashSchemes() []string {
	if s := os.Getenv("FRAPP_STRESS_SCHEME"); s != "" {
		return []string{s}
	}
	return []string{"gamma", "mask", "cutpaste"}
}

func TestKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	for _, scheme := range crashSchemes() {
		t.Run(scheme, func(t *testing.T) {
			stateDir := filepath.Join(t.TempDir(), "state")
			const perCycle = 40
			total := 0
			for cycle := 0; cycle < 2; cycle++ {
				addr := freePort(t)
				child := exec.Command(os.Args[0], "-test.run", "^TestCrashServerProcess$", "-test.v")
				child.Env = append(os.Environ(),
					"FRAPP_CRASH_SERVER=1",
					"FRAPP_CRASH_SERVER_ADDR="+addr,
					"FRAPP_CRASH_SERVER_STATE="+stateDir,
					"FRAPP_CRASH_SERVER_SCHEME="+scheme,
				)
				if err := child.Start(); err != nil {
					t.Fatal(err)
				}
				base := "http://" + addr
				waitUp(t, base)
				if n := statsRecords(t, base); n != total {
					child.Process.Kill()
					child.Wait()
					t.Fatalf("cycle %d: recovered %d records, want %d", cycle, n, total)
				}
				for i := 0; i < perCycle; i++ {
					submitOne(t, base)
				}
				total += perCycle
				// Quiet period: every acknowledged record crosses a flush
				// boundary (with margin) before the plug is pulled.
				time.Sleep(50 * crashFlushInterval)
				if err := child.Process.Kill(); err != nil { // SIGKILL
					t.Fatal(err)
				}
				child.Wait()
			}

			// Final boot, in-process: the store must hold exactly every
			// acknowledged record across both kill cycles.
			addr := freePort(t)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				done <- run(ctx, serverConfig{
					addr: addr, schema: "census", scheme: scheme, rho1: 0.05, rho2: 0.5,
					state: stateDir, mineWorkers: 1, jobTTL: time.Minute,
				})
			}()
			waitUp(t, "http://"+addr)
			if n := statsRecords(t, "http://"+addr); n != total {
				t.Errorf("recovered %d records after kill -9, want %d", n, total)
			}
			cancel()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(15 * time.Second):
				t.Fatal("final server did not shut down")
			}
		})
	}
}
