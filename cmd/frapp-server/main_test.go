package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunValidation(t *testing.T) {
	if err := run(serverConfig{addr: ":0", schema: "bogus", rho1: 0.05, rho2: 0.5}); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if err := run(serverConfig{addr: ":0", schema: "census", rho1: 0.5, rho2: 0.05}); err == nil {
		t.Fatal("inverted privacy spec accepted")
	}
}

func TestRunRejectsCorruptState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{
		addr: ":0", schema: "census", rho1: 0.05, rho2: 0.5,
		state: path, shards: 4, mineWorkers: 1, jobTTL: time.Minute,
	}
	if err := run(cfg); err == nil {
		t.Fatal("corrupt state accepted")
	}
}
