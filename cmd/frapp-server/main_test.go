package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, serverConfig{addr: ":0", schema: "bogus", rho1: 0.05, rho2: 0.5}); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if err := run(ctx, serverConfig{addr: ":0", schema: "census", rho1: 0.5, rho2: 0.05}); err == nil {
		t.Fatal("inverted privacy spec accepted")
	}
	if err := run(ctx, serverConfig{addr: ":0", schema: "census", rho1: 0.05, rho2: 0.5,
		state: "state.gob", peers: "http://a:1"}); err == nil {
		t.Fatal("-state accepted together with -peers")
	}
	if err := run(ctx, serverConfig{addr: ":0", schema: "census", rho1: 0.05, rho2: 0.5,
		peers: "not-a-url"}); err == nil {
		t.Fatal("bad peer URL accepted")
	}
}

func TestRunRejectsCorruptState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := serverConfig{
		addr: ":0", schema: "census", rho1: 0.05, rho2: 0.5,
		state: path, shards: 4, mineWorkers: 1, jobTTL: time.Minute,
	}
	if err := run(context.Background(), cfg); err == nil {
		t.Fatal("corrupt state accepted")
	}
}

// freePort reserves a listen address for a short-lived test server.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitUp polls the server's stats endpoint until it answers.
func waitUp(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", base)
}

// submitOne pushes one (nominally perturbed) record through the public
// API, shaped per the advertised scheme.
func submitOne(t *testing.T, base string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Scheme struct {
			Name string `json:"name"`
		} `json:"scheme"`
		Attributes []struct {
			Name       string   `json:"name"`
			Categories []string `json:"categories"`
		} `json:"attributes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var body []byte
	if sr.Scheme.Name == "" || sr.Scheme.Name == "gamma" {
		rec := map[string]string{}
		for _, a := range sr.Attributes {
			rec[a.Name] = a.Categories[0]
		}
		body, err = json.Marshal(rec)
	} else {
		rec := map[string][]string{}
		for _, a := range sr.Attributes {
			rec[a.Name] = []string{a.Categories[0]}
		}
		body, err = json.Marshal(rec)
	}
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit returned %s", resp.Status)
	}
}

// statsRecords reads the record count off /v1/stats.
func statsRecords(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Records int `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return stats.Records
}

// TestRunGracefulShutdownPersistsStateOnce is the shutdown-audit
// regression: on the SIGTERM path (modeled by context cancellation —
// main wires the real signals to the same context), the accepted
// submissions must be persisted exactly once, and a restart from the
// persisted file must see them.
func TestRunGracefulShutdownPersistsStateOnce(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "state.gob")
	addr := freePort(t)
	cfg := serverConfig{
		addr: addr, schema: "census", rho1: 0.05, rho2: 0.5,
		state: statePath, shards: 2, mineWorkers: 1, jobTTL: time.Minute,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()
	base := "http://" + addr
	waitUp(t, base)

	// Submit one (nominally perturbed) record through the public API.
	submitOne(t, base)

	cancel() // the SIGTERM path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not shut down")
	}

	info, err := os.Stat(statePath)
	if err != nil {
		t.Fatalf("state not persisted: %v", err)
	}
	if !info.IsDir() {
		t.Fatal("-state did not become a store directory")
	}
	// The persisted store holds the complete final state — a restart
	// restores the submission (this guards the restore half of the
	// graceful path).
	addr2 := freePort(t)
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(ctx2, serverConfig{
			addr: addr2, schema: "census", rho1: 0.05, rho2: 0.5,
			state: statePath, mineWorkers: 1, jobTTL: time.Minute,
		})
	}()
	base2 := "http://" + addr2
	waitUp(t, base2)
	if n := statsRecords(t, base2); n != 1 {
		t.Fatalf("restored server has %d records, want 1", n)
	}
	cancel2()
	select {
	case <-done2:
	case <-time.After(15 * time.Second):
		t.Fatal("restored server did not shut down")
	}
}

// TestRunListenFailureKeepsStoredState: a server that never managed to
// listen must not lose or clobber the records the store already holds
// (the directory-store successor of the shutdown-audit finding that a
// half-started server must not rewrite good state).
func TestRunListenFailureKeepsStoredState(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")

	// Seed the store with one record via a successful run.
	addr := freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, serverConfig{
			addr: addr, schema: "census", rho1: 0.05, rho2: 0.5,
			state: stateDir, mineWorkers: 1, jobTTL: time.Minute,
		})
	}()
	waitUp(t, "http://"+addr)
	submitOne(t, "http://"+addr)
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// A boot that fails to listen must leave the store intact.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close() // occupy the port so run's listen fails
	cfg := serverConfig{
		addr: l.Addr().String(), schema: "census", rho1: 0.05, rho2: 0.5,
		state: stateDir, mineWorkers: 1, jobTTL: time.Minute,
	}
	if err := run(context.Background(), cfg); err == nil {
		t.Fatal("run succeeded on an occupied port")
	}

	// The stored record is still there.
	addr2 := freePort(t)
	ctx2, cancel2 := context.WithCancel(context.Background())
	done2 := make(chan error, 1)
	go func() {
		done2 <- run(ctx2, serverConfig{
			addr: addr2, schema: "census", rho1: 0.05, rho2: 0.5,
			state: stateDir, mineWorkers: 1, jobTTL: time.Minute,
		})
	}()
	waitUp(t, "http://"+addr2)
	if n := statsRecords(t, "http://"+addr2); n != 1 {
		t.Fatalf("store holds %d records after failed boot, want 1", n)
	}
	cancel2()
	select {
	case <-done2:
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestRunFederationCoordinator boots two collector runs and one
// coordinator run end-to-end through the real flag surface.
func TestRunFederationCoordinator(t *testing.T) {
	var (
		cancels []context.CancelFunc
		dones   []chan error
	)
	startRun := func(cfg serverConfig) {
		t.Helper()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- run(ctx, cfg) }()
		cancels = append(cancels, cancel)
		dones = append(dones, done)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
		for _, d := range dones {
			select {
			case <-d:
			case <-time.After(15 * time.Second):
				t.Error("a run did not shut down")
			}
		}
	}()

	siteA, siteB := freePort(t), freePort(t)
	startRun(serverConfig{addr: siteA, schema: "census", rho1: 0.05, rho2: 0.5, mineWorkers: 1, jobTTL: time.Minute})
	startRun(serverConfig{addr: siteB, schema: "census", rho1: 0.05, rho2: 0.5, mineWorkers: 1, jobTTL: time.Minute})
	waitUp(t, "http://"+siteA)
	waitUp(t, "http://"+siteB)

	coordAddr := freePort(t)
	startRun(serverConfig{
		addr: coordAddr, schema: "census", rho1: 0.05, rho2: 0.5, mineWorkers: 1, jobTTL: time.Minute,
		peers:        fmt.Sprintf("http://%s,http://%s", siteA, siteB),
		syncInterval: 20 * time.Millisecond,
	})
	coordBase := "http://" + coordAddr
	waitUp(t, coordBase)

	// The coordinator exposes the federation block and refuses submits.
	resp, err := http.Get(coordBase + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Federation *struct {
			Peers []struct {
				URL string `json:"url"`
			} `json:"peers"`
		} `json:"federation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Federation == nil || len(stats.Federation.Peers) != 2 {
		t.Fatalf("coordinator stats federation block %+v", stats.Federation)
	}
	resp, err = http.Post(coordBase+"/v1/submit", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("coordinator submit returned %s, want 403", resp.Status)
	}
}

// TestRunSchemeFlag: -scheme selects the live perturbation scheme for
// the whole stack — advertised on /v1/schema and /v1/stats, with
// boolean-scheme submissions accepted on the wire — and unknown scheme
// names are rejected at startup.
func TestRunSchemeFlag(t *testing.T) {
	if err := run(context.Background(), serverConfig{addr: ":0", schema: "census",
		rho1: 0.05, rho2: 0.5, scheme: "rot13"}); err == nil {
		t.Fatal("unknown -scheme accepted")
	}

	addr := freePort(t)
	cfg := serverConfig{
		addr: addr, schema: "census", rho1: 0.05, rho2: 0.5,
		scheme: "mask", shards: 2, mineWorkers: 1, jobTTL: time.Minute,
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, cfg) }()
	base := "http://" + addr
	waitUp(t, base)

	resp, err := http.Get(base + "/v1/schema")
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Scheme struct {
			Name  string  `json:"name"`
			MaskP float64 `json:"mask_p"`
		} `json:"scheme"`
		Attributes []struct {
			Name       string   `json:"name"`
			Categories []string `json:"categories"`
		} `json:"attributes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Scheme.Name != "mask" || !(sr.Scheme.MaskP > 0.5 && sr.Scheme.MaskP < 1) {
		t.Fatalf("advertised scheme %+v, want mask with p in (0.5,1)", sr.Scheme)
	}

	// A boolean-scheme submission: attribute -> asserted category list.
	sub := map[string][]string{
		sr.Attributes[0].Name: {sr.Attributes[0].Categories[0], sr.Attributes[0].Categories[1]},
		sr.Attributes[1].Name: {sr.Attributes[1].Categories[0]},
	}
	body, err := json.Marshal(sub)
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := http.Post(base+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("mask submit returned %s", sresp.Status)
	}

	stats, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Scheme  string `json:"scheme"`
		Records int    `json:"records"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	stats.Body.Close()
	if st.Scheme != "mask" || st.Records != 1 {
		t.Fatalf("stats %+v, want scheme=mask records=1", st)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunOpsEndpoints: -ops-addr serves metrics, health, readiness, and
// pprof on a listener separate from the data plane, and the scrape must
// parse and carry the core instrument families.
func TestRunOpsEndpoints(t *testing.T) {
	addr, opsAddr := freePort(t), freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, serverConfig{
			addr: addr, schema: "census", rho1: 0.05, rho2: 0.5,
			mineWorkers: 1, jobTTL: time.Minute, opsAddr: opsAddr,
		})
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}()
	waitUp(t, "http://"+addr)
	submitOne(t, "http://"+addr)

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + opsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz = %d, want 200 (no peers, recovery done)", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", code)
	}
	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	expo, err := telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("scrape unparseable: %v", err)
	}
	for _, fam := range []string{
		"frapp_http_requests_total",
		"frapp_http_request_duration_seconds",
		"frapp_ingest_records_total",
		"frapp_jobs_queue_depth",
		"frapp_uptime_seconds",
	} {
		if _, ok := expo.Types[fam]; !ok {
			t.Errorf("scrape missing family %s", fam)
		}
	}
}
