package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := run(":0", "bogus", 0.05, 0.5, "", 0); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if err := run(":0", "census", 0.5, 0.05, "", 0); err == nil {
		t.Fatal("inverted privacy spec accepted")
	}
}

func TestRunRejectsCorruptState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(":0", "census", 0.05, 0.5, path, 4); err == nil {
		t.Fatal("corrupt state accepted")
	}
}
