// Command frapp-server runs the miner-side FRAPP collection service:
// clients fetch /v1/schema, perturb locally, POST /v1/submit, anyone
// can query /v1/mine for the reconstructed model, and POST /v1/query
// answers interactive filter-count estimates with confidence intervals
// straight from the live counter.
//
// Usage:
//
//	frapp-server [-addr :8080] [-schema census|health]
//	             [-scheme gamma|mask|cutpaste]
//	             [-rho1 0.05] [-rho2 0.50] [-state statedir]
//	             [-checkpoint-every 10000] [-wal-sync always|off]
//	             [-wal-flush 200ms]
//	             [-shards 0] [-mine-workers 2] [-job-ttl 15m]
//	             [-query-limit 1024] [-max-body 8388608]
//	             [-window-buckets 0] [-window-bucket 0]
//	             [-max-collections 32]
//	             [-peers http://site-a:8080,http://site-b:8080]
//	             [-sync-interval 5s]
//	             [-ops-addr 127.0.0.1:9090] [-access-log] [-log-level info]
//
// The server is multi-tenant: the flag-configured collection above is
// the DEFAULT collection, served on the classic un-prefixed routes,
// and further named collections — each with its own schema, privacy
// contract, scheme, counter, mining pool, and (with -state) its own
// WAL+checkpoint directory under statedir/tenants/<name>/ — are
// managed at runtime via PUT/GET/DELETE /v1/collections/{name} and
// reached under /v1/collections/{name}/v1/... (see
// docs/multitenancy.md). -max-collections caps how many are live at
// once. Named collections are recorded in statedir/collections.json
// and rebuilt (WAL recovery included) at next start; /readyz stays 503
// with a per-collection breakdown until every one of them finishes.
//
// -window-buckets/-window-bucket make the DEFAULT collection a sliding
// window: a ring of -window-buckets sub-counters each spanning
// -window-bucket of wall-clock time. Records expire as their bucket
// rotates out (retention = buckets x bucket), and /v1/query plus
// mining jobs accept a `window` parameter answering over only the last
// window of time at unchanged cost. Windowed collections are
// in-memory only: they refuse -state and -peers.
//
// -ops-addr (default off) binds a SEPARATE operational listener serving
// GET /metrics (Prometheus text exposition), GET /healthz, GET /readyz
// (503 until recovery and the initial federation sync finish), and the
// standard net/http/pprof endpoints. It exposes only aggregate
// operational data, but bind it to localhost in production anyway — see
// docs/observability.md for the metric catalog. -access-log emits one
// structured JSON line per API request to stderr at -log-level.
//
// -scheme selects the perturbation scheme the whole stack runs under:
// gamma (default — the paper's optimal gamma-diagonal matrix), mask, or
// cutpaste. The scheme's parameters are derived from the published
// (schema, γ) contract, advertised on GET /v1/schema and /v1/stats, and
// validated by clients at NewClient time; every subsystem (ingestion,
// /v1/query estimation, mining jobs, -state persistence, federation
// deltas) follows the negotiated scheme, and cross-scheme state or
// replication payloads are rejected, never merged.
//
// -shards stripes the ingestion counter so concurrent submissions never
// contend on one lock; 0 (the default) means one shard per core.
// -mine-workers bounds how many mining jobs (async /v1/mine-jobs and
// sync /v1/mine alike) execute concurrently, and -job-ttl controls how
// long finished jobs stay pollable; unchanged collections are served
// from the snapshot-versioned result cache without re-running Apriori.
// -query-limit caps the filters of one /v1/query batch, and -max-body
// caps the request body of every decoding POST endpoint (413 beyond).
//
// POST /v1/submit-batch additionally accepts a compact binary wire
// form (Content-Type application/x-frapp-batch with the scheme
// fingerprint in X-Frapp-Fingerprint) that ingests an order of
// magnitude faster than JSON; batches apply atomically in either form.
// See docs/http-api.md.
//
// With -state, the accumulated (perturbed) counts are durable
// CONTINUOUSLY, not just at shutdown: -state names a directory holding
// compacted checkpoints plus a write-ahead log of counter deltas. A
// background flusher appends batched deltas every -wal-flush (fsynced
// per -wal-sync), a fresh checkpoint is compacted every
// -checkpoint-every records, and after a crash — kill -9 included — the
// server restores the newest checkpoint and replays the WAL tail, so at
// most one flush interval of submissions is at risk instead of
// everything since startup. A legacy single-file -state path from older
// releases is migrated into the directory automatically. The state
// contains only perturbed marginal counts — no raw record ever reaches
// the server in the FRAPP trust model. See docs/persistence.md.
//
// With -peers, the server runs as a federation COORDINATOR: it pulls
// versioned counter deltas from the listed collector sites every
// -sync-interval (jittered, with exponential backoff on failures) and
// answers /v1/query, /v1/mine, and /v1/stats from the merged global
// counter, stamped with the per-peer version vector. A coordinator
// refuses direct submissions — records enter at collector sites — and
// refuses -state: its counter is rebuilt from the peers, which own the
// durable state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		schemaName   = flag.String("schema", "census", "published schema: census or health")
		scheme       = flag.String("scheme", "gamma", "perturbation scheme: gamma, mask, or cutpaste")
		rho1         = flag.Float64("rho1", 0.05, "privacy prior bound rho1")
		rho2         = flag.Float64("rho2", 0.50, "privacy posterior bound rho2")
		state        = flag.String("state", "", "state directory for crash durability (optional; legacy state files are migrated)")
		ckptEvery    = flag.Int("checkpoint-every", 0, "records between compacted checkpoints (0 = default 10000)")
		walSync      = flag.String("wal-sync", "always", "WAL fsync policy: always or off")
		walFlush     = flag.Duration("wal-flush", 0, "WAL flush interval (0 = default 200ms)")
		shards       = flag.Int("shards", 0, "ingestion shards (0 = one per core)")
		workers      = flag.Int("mine-workers", 0, "concurrent mining jobs (0 = default 2)")
		jobTTL       = flag.Duration("job-ttl", 0, "retention of finished mining jobs (0 = default 15m)")
		queryLimit   = flag.Int("query-limit", 0, "max filters per /v1/query batch (0 = default 1024)")
		maxBody      = flag.Int64("max-body", 0, "max request body bytes on POST endpoints, 413 beyond (0 = default 8MiB)")
		winBuckets   = flag.Int("window-buckets", 0, "sliding-window ring buckets for the default collection (0 = unwindowed)")
		winBucket    = flag.Duration("window-bucket", 0, "sliding-window bucket duration (with -window-buckets)")
		maxCols      = flag.Int("max-collections", 0, "max live collections including the default (0 = default 32)")
		peers        = flag.String("peers", "", "comma-separated collector base URLs; run as federation coordinator")
		syncInterval = flag.Duration("sync-interval", 0, "federation pull interval (0 = default 5s)")
		opsAddr      = flag.String("ops-addr", "", "ops listener address for /metrics, /healthz, /readyz, and pprof (empty = off; bind localhost in production)")
		accessLog    = flag.Bool("access-log", false, "emit one structured JSON line per request to stderr")
		logLevel     = flag.String("log-level", "info", "minimum structured log level: debug, info, warn, or error")
	)
	flag.Parse()
	cfg := serverConfig{
		addr: *addr, schema: *schemaName, scheme: *scheme, rho1: *rho1, rho2: *rho2,
		state: *state, checkpointEvery: *ckptEvery, walSync: *walSync, walFlush: *walFlush,
		shards: *shards, mineWorkers: *workers, jobTTL: *jobTTL,
		queryLimit: *queryLimit, maxBody: *maxBody, peers: *peers, syncInterval: *syncInterval,
		windowBuckets: *winBuckets, windowBucket: *winBucket, maxCollections: *maxCols,
		opsAddr: *opsAddr, accessLog: *accessLog, logLevel: *logLevel,
	}
	// The signal context lives in main so run stays testable: tests
	// drive the same graceful-shutdown path by canceling the context.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-server:", err)
		os.Exit(1)
	}
}

// serverConfig carries the flag set into run.
type serverConfig struct {
	addr            string
	schema          string
	scheme          string
	rho1, rho2      float64
	state           string
	checkpointEvery int
	walSync         string
	walFlush        time.Duration
	shards          int
	mineWorkers     int
	jobTTL          time.Duration
	queryLimit      int
	maxBody         int64
	peers           string
	syncInterval    time.Duration
	windowBuckets   int
	windowBucket    time.Duration
	maxCollections  int
	opsAddr         string
	accessLog       bool
	logLevel        string
}

// run serves until ctx is canceled (SIGINT/SIGTERM in production), then
// shuts down gracefully. With -state, durability is continuous — the
// store's WAL flusher runs for the whole serving window — and a
// graceful shutdown additionally compacts a final checkpoint; crashes
// at any other point recover from the store at next start.
func run(ctx context.Context, cfg serverConfig) error {
	var sc *dataset.Schema
	switch cfg.schema {
	case "census":
		sc = dataset.CensusSchema()
	case "health":
		sc = dataset.HealthSchema()
	default:
		return fmt.Errorf("unknown schema %q", cfg.schema)
	}
	if cfg.peers != "" && cfg.state != "" {
		return errors.New("-state cannot be combined with -peers: a coordinator's counter is rebuilt from its peers, which own the durable state")
	}
	windowed := cfg.windowBuckets != 0 || cfg.windowBucket != 0
	if windowed {
		if cfg.windowBuckets == 0 || cfg.windowBucket == 0 {
			return errors.New("-window-buckets and -window-bucket must be set together")
		}
		if cfg.state != "" {
			return errors.New("-state cannot be combined with a sliding window: bucket expiry is wall-clock-defined and cannot be replayed")
		}
		if cfg.peers != "" {
			return errors.New("-peers cannot be combined with a sliding window: expiry cannot be replicated")
		}
	}
	syncMode := store.SyncAlways
	switch cfg.walSync {
	case "", "always":
	case "off":
		syncMode = store.SyncOff
	default:
		return fmt.Errorf("bad -wal-sync %q (want always or off)", cfg.walSync)
	}
	spec := core.PrivacySpec{Rho1: cfg.rho1, Rho2: cfg.rho2}

	// Telemetry is always collected (the instruments are allocation-free
	// on the hot path); -ops-addr controls whether anything serves it.
	// The ops listener is bound BEFORE recovery so /readyz answers 503
	// during a long WAL replay instead of refusing connections. colReg
	// is published once the collection registry exists, so readiness
	// also reflects every named collection's background rebuild.
	reg := telemetry.NewRegistry()
	var recovered, warm atomic.Bool
	var colReg atomic.Pointer[registry.Registry]
	if cfg.opsAddr != "" {
		ready := func() error {
			if !recovered.Load() {
				return errors.New("state recovery in progress")
			}
			if !warm.Load() {
				return errors.New("initial federation sync not finished")
			}
			if r := colReg.Load(); r != nil {
				return r.Ready()
			}
			return nil
		}
		ops, err := telemetry.ServeOps(cfg.opsAddr, telemetry.OpsHandler(reg, ready))
		if err != nil {
			return err
		}
		defer ops.Close()
		log.Printf("frapp-server: ops endpoints (metrics, healthz, readyz, pprof) on %s", ops.Addr)
	}
	opts := []service.Option{
		service.WithScheme(cfg.scheme),
		service.WithShards(cfg.shards),
		service.WithMineWorkers(cfg.mineWorkers),
		service.WithJobTTL(cfg.jobTTL),
		service.WithQueryLimit(cfg.queryLimit),
		service.WithMaxBody(cfg.maxBody),
		service.WithTelemetry(reg),
	}
	var accessLogger *telemetry.Logger
	if cfg.accessLog {
		lvl, err := telemetry.ParseLevel(cfg.logLevel)
		if err != nil {
			return err
		}
		accessLogger = telemetry.NewLogger(os.Stderr, lvl)
		opts = append(opts, service.WithAccessLog(accessLogger))
	}
	if windowed {
		opts = append(opts, service.WithWindow(cfg.windowBuckets, cfg.windowBucket))
	}

	var (
		srv *service.Server
		err error
	)
	if cfg.state != "" {
		st, err := store.Open(cfg.state, store.WithSyncMode(syncMode))
		if err != nil {
			return err
		}
		opts = append(opts,
			service.WithStore(st),
			service.WithCheckpointEvery(cfg.checkpointEvery),
			service.WithWALFlushInterval(cfg.walFlush))
		srv, err = service.NewServer(sc, spec, opts...)
		if err != nil {
			st.Close()
			return err
		}
	} else if srv, err = service.NewServer(sc, spec, opts...); err != nil {
		return err
	}
	defer srv.Close()
	recovered.Store(true)

	// The collection registry hosts further named collections beside the
	// flag-configured default. With -state, their specs live in
	// statedir/collections.json and their stores under statedir/tenants/
	// — any that were recorded start rebuilding (WAL recovery included)
	// in the background now; /readyz covers them via colReg above.
	tenants, err := registry.New(registry.Options{
		BaseDir:        cfg.state,
		MaxCollections: cfg.maxCollections,
		Metrics:        reg,
		AccessLog:      accessLogger,
		SyncMode:       syncMode,
	})
	if err != nil {
		return err
	}
	defer tenants.Close()
	if _, err := tenants.Adopt(registry.DefaultCollection, srv); err != nil {
		return err
	}
	colReg.Store(tenants)

	var coord *federation.Coordinator
	if cfg.peers == "" {
		warm.Store(true)
	} else {
		// The coordinator is built over the server's OWN scheme contract
		// (not a re-derived one), so its compatibility fingerprint can
		// never drift from what ReplaceCounter will accept — and a peer
		// running a different scheme is rejected, never merged.
		coord, err = federation.NewCoordinator(srv.CounterScheme(), strings.Split(cfg.peers, ","),
			srv.ReplaceCounter,
			federation.WithSyncInterval(cfg.syncInterval),
			federation.WithMetrics(reg))
		if err != nil {
			return err
		}
		if err := srv.EnableFederation(coord); err != nil {
			return err
		}
		// Warm first view; per-peer failures are logged, not fatal — the
		// background loop keeps retrying with backoff. /readyz flips to
		// ready once the warm pass completes (degraded peers show up in
		// the federation health metrics, not as permanent unreadiness).
		if err := coord.SyncAll(ctx); err != nil {
			log.Printf("frapp-server: initial federation sync: %v", err)
		}
		warm.Store(true)
		coord.Start()
		log.Printf("frapp-server: federation coordinator over %d peers, sync interval %s",
			len(coord.Peers()), coord.SyncInterval())
	}

	log.Printf("frapp-server: schema=%s scheme=%s records=%d shards=%d mine-workers=%d collections=%d listening on %s",
		sc.Name, srv.Scheme(), srv.N(), srv.Shards(), srv.MineWorkers(), len(tenants.Names()), cfg.addr)

	httpSrv := &http.Server{Addr: cfg.addr, Handler: tenants.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		// Listen failed before any graceful shutdown: stop the sync loop
		// and report; deliberately no persist (see the run doc comment).
		if coord != nil {
			coord.Close()
		}
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		log.Printf("frapp-server: shutting down")
		// Stop pulling (and publishing) before draining HTTP, so the
		// counter stops moving under the final in-flight responses.
		if coord != nil {
			coord.Close()
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("frapp-server: shutdown: %v", err)
		}
	}
	// Named collections close (with a final checkpoint each) inside the
	// deferred tenants.Close; checkpoint the adopted default explicitly.
	if cfg.state != "" {
		// The WAL already holds everything flushed; the final checkpoint
		// compacts the shutdown state so the next boot replays nothing.
		if err := srv.CheckpointNow(); err != nil {
			return fmt.Errorf("persisting state: %w", err)
		}
		log.Printf("frapp-server: state checkpointed to %s (%d records)", cfg.state, srv.N())
	}
	return nil
}
