// Command frapp-server runs the miner-side FRAPP collection service:
// clients fetch /v1/schema, perturb locally, POST /v1/submit, anyone
// can query /v1/mine for the reconstructed model, and POST /v1/query
// answers interactive filter-count estimates with confidence intervals
// straight from the live counter.
//
// Usage:
//
//	frapp-server [-addr :8080] [-schema census|health]
//	             [-rho1 0.05] [-rho2 0.50] [-state state.gob]
//	             [-shards 0] [-mine-workers 2] [-job-ttl 15m]
//	             [-query-limit 1024]
//
// -shards stripes the ingestion counter so concurrent submissions never
// contend on one lock; 0 (the default) means one shard per core.
// -mine-workers bounds how many mining jobs (async /v1/mine-jobs and
// sync /v1/mine alike) execute concurrently, and -job-ttl controls how
// long finished jobs stay pollable; unchanged collections are served
// from the snapshot-versioned result cache without re-running Apriori.
// -query-limit caps the filters of one /v1/query batch.
//
// With -state, the accumulated (perturbed) counts are restored at start
// and persisted atomically on SIGINT/SIGTERM, so a restart loses no
// submissions. The state file contains only perturbed marginal counts —
// no raw record ever reaches the server in the FRAPP trust model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaName = flag.String("schema", "census", "published schema: census or health")
		rho1       = flag.Float64("rho1", 0.05, "privacy prior bound rho1")
		rho2       = flag.Float64("rho2", 0.50, "privacy posterior bound rho2")
		state      = flag.String("state", "", "state file for restart durability (optional)")
		shards     = flag.Int("shards", 0, "ingestion shards (0 = one per core)")
		workers    = flag.Int("mine-workers", 0, "concurrent mining jobs (0 = default 2)")
		jobTTL     = flag.Duration("job-ttl", 0, "retention of finished mining jobs (0 = default 15m)")
		queryLimit = flag.Int("query-limit", 0, "max filters per /v1/query batch (0 = default 1024)")
	)
	flag.Parse()
	cfg := serverConfig{
		addr: *addr, schema: *schemaName, rho1: *rho1, rho2: *rho2,
		state: *state, shards: *shards, mineWorkers: *workers, jobTTL: *jobTTL,
		queryLimit: *queryLimit,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-server:", err)
		os.Exit(1)
	}
}

// serverConfig carries the flag set into run.
type serverConfig struct {
	addr        string
	schema      string
	rho1, rho2  float64
	state       string
	shards      int
	mineWorkers int
	jobTTL      time.Duration
	queryLimit  int
}

func run(cfg serverConfig) error {
	var sc *dataset.Schema
	switch cfg.schema {
	case "census":
		sc = dataset.CensusSchema()
	case "health":
		sc = dataset.HealthSchema()
	default:
		return fmt.Errorf("unknown schema %q", cfg.schema)
	}
	spec := core.PrivacySpec{Rho1: cfg.rho1, Rho2: cfg.rho2}
	opts := []service.Option{
		service.WithShards(cfg.shards),
		service.WithMineWorkers(cfg.mineWorkers),
		service.WithJobTTL(cfg.jobTTL),
		service.WithQueryLimit(cfg.queryLimit),
	}

	var (
		srv *service.Server
		err error
	)
	if cfg.state != "" {
		srv, err = service.NewServerWithState(sc, spec, cfg.state, opts...)
	} else {
		srv, err = service.NewServer(sc, spec, opts...)
	}
	if err != nil {
		return err
	}
	defer srv.Close()
	log.Printf("frapp-server: schema=%s records=%d shards=%d mine-workers=%d listening on %s",
		sc.Name, srv.N(), srv.Shards(), srv.MineWorkers(), cfg.addr)

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		log.Printf("frapp-server: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("frapp-server: shutdown: %v", err)
		}
	}
	if cfg.state != "" {
		if err := srv.PersistStateFile(cfg.state); err != nil {
			return fmt.Errorf("persisting state: %w", err)
		}
		log.Printf("frapp-server: state persisted to %s (%d records)", cfg.state, srv.N())
	}
	return nil
}
