// Command frapp-server runs the miner-side FRAPP collection service:
// clients fetch /v1/schema, perturb locally, POST /v1/submit, and anyone
// can query /v1/mine for the reconstructed model.
//
// Usage:
//
//	frapp-server [-addr :8080] [-schema census|health]
//	             [-rho1 0.05] [-rho2 0.50] [-state state.gob]
//	             [-shards 0]
//
// -shards stripes the ingestion counter so concurrent submissions never
// contend on one lock; 0 (the default) means one shard per core.
//
// With -state, the accumulated (perturbed) counts are restored at start
// and persisted atomically on SIGINT/SIGTERM, so a restart loses no
// submissions. The state file contains only perturbed marginal counts —
// no raw record ever reaches the server in the FRAPP trust model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		schemaName = flag.String("schema", "census", "published schema: census or health")
		rho1       = flag.Float64("rho1", 0.05, "privacy prior bound rho1")
		rho2       = flag.Float64("rho2", 0.50, "privacy posterior bound rho2")
		state      = flag.String("state", "", "state file for restart durability (optional)")
		shards     = flag.Int("shards", 0, "ingestion shards (0 = one per core)")
	)
	flag.Parse()
	if err := run(*addr, *schemaName, *rho1, *rho2, *state, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-server:", err)
		os.Exit(1)
	}
}

func run(addr, schemaName string, rho1, rho2 float64, statePath string, shards int) error {
	var sc *dataset.Schema
	switch schemaName {
	case "census":
		sc = dataset.CensusSchema()
	case "health":
		sc = dataset.HealthSchema()
	default:
		return fmt.Errorf("unknown schema %q", schemaName)
	}
	spec := core.PrivacySpec{Rho1: rho1, Rho2: rho2}

	var (
		srv *service.Server
		err error
	)
	if statePath != "" {
		srv, err = service.NewServerWithState(sc, spec, statePath, service.WithShards(shards))
	} else {
		srv, err = service.NewServer(sc, spec, service.WithShards(shards))
	}
	if err != nil {
		return err
	}
	log.Printf("frapp-server: schema=%s records=%d shards=%d listening on %s", sc.Name, srv.N(), srv.Shards(), addr)

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case <-ctx.Done():
		log.Printf("frapp-server: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("frapp-server: shutdown: %v", err)
		}
	}
	if statePath != "" {
		if err := srv.PersistStateFile(statePath); err != nil {
			return fmt.Errorf("persisting state: %w", err)
		}
		log.Printf("frapp-server: state persisted to %s (%d records)", statePath, srv.N())
	}
	return nil
}
