package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
)

func writeInput(t *testing.T) string {
	t.Helper()
	db, err := dataset.GenerateCensus(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, db); err != nil {
		t.Fatal(err)
	}
	return in
}

// silenceStdout redirects the command's report to /dev/null for the
// duration of the test.
func silenceStdout(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		devnull.Close()
	})
}

func TestRunExactWithRules(t *testing.T) {
	in := writeInput(t)
	silenceStdout(t)
	if err := run("census", in, 0.05, "exact", 0.05, 0.50, 0.8, 3, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunGammaMode(t *testing.T) {
	in := writeInput(t)
	silenceStdout(t)
	if err := run("census", in, 0.05, "gamma", 0.05, 0.50, 0, 3, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	in := writeInput(t)
	silenceStdout(t)
	if err := run("census", "", 0.05, "exact", 0.05, 0.5, 0, 3, false); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run("bogus", in, 0.05, "exact", 0.05, 0.5, 0, 3, false); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if err := run("census", in, 0.05, "bogus", 0.05, 0.5, 0, 3, false); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run("census", in, 0.05, "gamma", 0.5, 0.05, 0, 3, false); err == nil {
		t.Fatal("inverted privacy accepted")
	}
	if err := run("census", "/nonexistent/x.csv", 0.05, "exact", 0.05, 0.5, 0, 3, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
