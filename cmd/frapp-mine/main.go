// Command frapp-mine runs Apriori frequent-itemset mining over a
// categorical CSV database, optionally reconstructing supports when the
// input was perturbed with a gamma-diagonal mechanism.
//
// Usage:
//
//	frapp-mine -schema census|health -in data.csv [-minsup 0.02]
//	           [-mode exact|gamma] [-rho1 0.05] [-rho2 0.50]
//	           [-rules 0.6] [-top 20] [-ops-addr 127.0.0.1:9091]
//
// In -mode gamma the input is assumed to be DET-GD/RAN-GD-perturbed with
// the matrix implied by (rho1, rho2); supports are reconstructed per pass
// exactly as the paper's miner does.
//
// -ops-addr binds an operational sidecar listener (net/http/pprof,
// /metrics, /healthz) for profiling long mining runs; bind it to
// localhost (see docs/observability.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/telemetry"
)

func main() {
	var (
		schemaName = flag.String("schema", "census", "schema of the input: census or health")
		in         = flag.String("in", "", "input CSV (required)")
		minsup     = flag.Float64("minsup", 0.02, "minimum support fraction")
		mode       = flag.String("mode", "exact", "support counting: exact or gamma (reconstruct)")
		rho1       = flag.Float64("rho1", 0.05, "privacy prior bound rho1 (gamma mode)")
		rho2       = flag.Float64("rho2", 0.50, "privacy posterior bound rho2 (gamma mode)")
		rules      = flag.Float64("rules", 0, "if > 0, also generate association rules at this confidence")
		top        = flag.Int("top", 20, "how many itemsets/rules to print per section")
		condensed  = flag.Bool("condensed", false, "also report maximal and closed itemset counts")
		opsAddr    = flag.String("ops-addr", "", "serve pprof/metrics/health on this address while mining (empty = off; bind localhost in production)")
	)
	flag.Parse()
	if *opsAddr != "" {
		ops, err := telemetry.ServeOps(*opsAddr, telemetry.OpsHandler(telemetry.NewRegistry(), nil))
		if err != nil {
			fmt.Fprintln(os.Stderr, "frapp-mine:", err)
			os.Exit(1)
		}
		defer ops.Close()
		fmt.Fprintf(os.Stderr, "ops listener (pprof, /metrics) on http://%s\n", ops.Addr)
	}
	if err := run(*schemaName, *in, *minsup, *mode, *rho1, *rho2, *rules, *top, *condensed); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-mine:", err)
		os.Exit(1)
	}
}

func run(schemaName, in string, minsup float64, mode string, rho1, rho2, rules float64, top int, condensed bool) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	var sc *dataset.Schema
	switch schemaName {
	case "census":
		sc = dataset.CensusSchema()
	case "health":
		sc = dataset.HealthSchema()
	default:
		return fmt.Errorf("unknown schema %q", schemaName)
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := dataset.ReadCSV(f, sc)
	if err != nil {
		return err
	}

	var counter mining.SupportCounter
	switch mode {
	case "exact":
		counter = &mining.ExactCounter{DB: db}
	case "gamma":
		gamma, err := (core.PrivacySpec{Rho1: rho1, Rho2: rho2}).Gamma()
		if err != nil {
			return err
		}
		m, err := core.NewGammaDiagonal(sc.DomainSize(), gamma)
		if err != nil {
			return err
		}
		counter, err = mining.NewGammaCounter(db, m)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (want exact or gamma)", mode)
	}

	res, err := mining.Apriori(counter, minsup)
	if err != nil {
		return err
	}
	fmt.Printf("mined %d records at supmin=%.3g (%s mode): counts by length %v\n",
		db.N(), minsup, mode, res.Counts())
	for _, level := range res.ByLength {
		printed := 0
		for _, fi := range level {
			if printed >= top {
				fmt.Printf("  … %d more of length %d\n", len(level)-printed, fi.Items.Len())
				break
			}
			fmt.Printf("  %-60s sup=%.4f\n", fi.Items.FormatWith(sc), fi.Support)
			printed++
		}
	}
	if condensed {
		max := mining.Maximal(res)
		closed := mining.Closed(res, 1e-9)
		fmt.Printf("\ncondensed representations: %d maximal, %d closed (of %d frequent)\n",
			len(max), len(closed), len(res.All()))
		for i, m := range max {
			if i >= top {
				fmt.Printf("  … %d more maximal\n", len(max)-i)
				break
			}
			fmt.Printf("  [maximal] %s (sup=%.4f)\n", m.Items.FormatWith(sc), m.Support)
		}
	}
	if rules > 0 {
		rs, err := mining.GenerateRules(res, rules)
		if err != nil {
			return err
		}
		fmt.Printf("\n%d association rules at confidence >= %.2f\n", len(rs), rules)
		for i, r := range rs {
			if i >= top {
				fmt.Printf("  … %d more\n", len(rs)-i)
				break
			}
			fmt.Printf("  %s => %s (sup=%.4f conf=%.3f)\n",
				r.Antecedent.FormatWith(sc), r.Consequent.FormatWith(sc), r.Support, r.Confidence)
		}
	}
	return nil
}
