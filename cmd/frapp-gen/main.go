// Command frapp-gen synthesizes the paper's evaluation datasets as CSV.
//
// Usage:
//
//	frapp-gen -dataset census|health [-n N] [-seed S] [-o out.csv]
//
// The output format is one header row of attribute names followed by one
// row of category names per record — readable back via frapp-mine and
// frapp-perturb.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	var (
		which = flag.String("dataset", "census", "dataset to generate: census or health")
		n     = flag.Int("n", 0, "record count (default: paper sizes, 50000 census / 100000 health)")
		seed  = flag.Int64("seed", 2005, "random seed")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*which, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "frapp-gen:", err)
		os.Exit(1)
	}
}

func run(which string, n int, seed int64, out string) error {
	var (
		db  *dataset.Database
		err error
	)
	switch which {
	case "census":
		if n == 0 {
			n = 50000
		}
		db, err = dataset.GenerateCensus(n, seed)
	case "health":
		if n == 0 {
			n = 100000
		}
		db, err = dataset.GenerateHealth(n, seed)
	default:
		return fmt.Errorf("unknown dataset %q (want census or health)", which)
	}
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dataset.WriteCSV(w, db)
}
