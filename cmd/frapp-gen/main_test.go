package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestRunGeneratesReadableCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "census.csv")
	if err := run("census", 120, 7, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db, err := dataset.ReadCSV(f, dataset.CensusSchema())
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 120 {
		t.Fatalf("generated %d records", db.N())
	}
}

func TestRunHealthDefaultsAndErrors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "health.csv")
	if err := run("health", 50, 1, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "AGE,") {
		t.Fatalf("unexpected header: %.40s", data)
	}
	if err := run("bogus", 10, 1, out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run("census", 10, 1, filepath.Join(dir, "missing", "x.csv")); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
