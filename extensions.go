package frapp

// Extension surfaces beyond the paper's core evaluation: privacy-
// preserving classification (the paper's stated future-work direction),
// the HTTP collection service realizing the client/miner trust model
// over a network, and continuous-attribute discretization (the paper's
// Section 1.1 conversion that produced the Tables 1–2 schemas).

import (
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
	"repro/internal/query"
	"repro/internal/service"
)

// Classification (see internal/classify).
type (
	// NaiveBayes is a categorical Naive Bayes model trainable on exact
	// or gamma-perturbed data.
	NaiveBayes = classify.NaiveBayes
)

var (
	// TrainExactNaiveBayes fits on unperturbed data (non-private baseline).
	TrainExactNaiveBayes = classify.TrainExact
	// TrainPerturbedNaiveBayes fits on gamma-perturbed data via Eq. 28
	// marginal reconstruction.
	TrainPerturbedNaiveBayes = classify.TrainPerturbed
	// ClassifierAccuracy scores a model on labeled data.
	ClassifierAccuracy = classify.Accuracy
	// MajorityBaseline is the trivial-classifier floor.
	MajorityBaseline = classify.MajorityBaseline
)

// Collection service (see internal/service).
type (
	// CollectionServer is the miner-side HTTP endpoint.
	CollectionServer = service.Server
	// CollectionClient perturbs locally and submits over HTTP.
	CollectionClient = service.Client
	// MineResponse is the wire form of a mining query result.
	MineResponse = service.MineResponse
	// MineParams are the mining-request parameters shared by the sync
	// endpoint and the asynchronous job API.
	MineParams = service.MineParams
	// MineJobResponse is the wire form of an asynchronous mining job.
	MineJobResponse = service.JobResponse
	// QueryFilter is one attribute=category conjunction on the query
	// wire (attribute names to category names; empty matches all).
	QueryFilter = service.QueryFilter
	// QueryResponse answers one POST /v1/query batch: estimates in
	// filter order, all based on one record count, stamped with the
	// snapshot version they are exact for.
	QueryResponse = service.QueryResponse
	// QueryEstimateJSON is one reconstructed count estimate on the wire.
	QueryEstimateJSON = service.QueryEstimate
)

var (
	// NewCollectionServer configures the miner-side service.
	NewCollectionServer = service.NewServer
	// NewCollectionClient fetches the contract and prepares local
	// perturbation.
	NewCollectionClient = service.NewClient
	// WithClientRandomization enables client-side RAN-GD.
	WithClientRandomization = service.WithClientRandomization
	// WithHTTPClient substitutes the client transport.
	WithHTTPClient = service.WithHTTPClient
	// WithCollectionShards sets the server's ingestion stripe count.
	WithCollectionShards = service.WithShards
	// WithCollectionScheme selects the server's perturbation scheme:
	// gamma (default), mask, or cutpaste.
	WithCollectionScheme = service.WithScheme
	// WithMineWorkers bounds concurrently executing mining jobs.
	WithMineWorkers = service.WithMineWorkers
	// WithJobTTL sets the retention of finished mining jobs.
	WithJobTTL = service.WithJobTTL
	// WithQueryLimit caps the filters of one /v1/query batch.
	WithQueryLimit = service.WithQueryLimit
)

// Federation (see internal/federation and internal/mining/delta.go):
// multi-site counter replication — collector sites expose versioned
// counter deltas over GET /v1/replicate, and a coordinator merges them
// into one global counter serving queries and mining unchanged.
type (
	// FederationCoordinator pulls versioned deltas from peer collection
	// servers and publishes the merged global counter.
	FederationCoordinator = federation.Coordinator
	// FederationStats is the coordinator health block of /v1/stats:
	// per-peer sync state, lag, and the global version vector.
	FederationStats = federation.Stats
	// FederationPeerStatus is one peer's row in FederationStats.
	FederationPeerStatus = federation.PeerStatus
	// CounterDelta is one replication pull's payload: the sparse joint-
	// histogram change between two stream positions, fingerprinted with
	// the (scheme, schema, parameters) contract it was counted under.
	CounterDelta = mining.CounterDelta
	// DeltaCell is one changed joint-histogram cell of a CounterDelta.
	DeltaCell = mining.DeltaCell
)

var (
	// NewFederationCoordinator validates a peer registry and prepares the
	// sync loop; wire its publish hook to CollectionServer.ReplaceCounter.
	NewFederationCoordinator = federation.NewCoordinator
	// WithSyncInterval sets the coordinator's per-peer pull interval.
	WithSyncInterval = federation.WithSyncInterval
	// WithSyncRequestTimeout bounds one replication request.
	WithSyncRequestTimeout = federation.WithRequestTimeout
	// WithSyncMaxBackoff caps the per-peer failure backoff.
	WithSyncMaxBackoff = federation.WithMaxBackoff
	// WithFederationHTTPClient substitutes the coordinator's transport.
	WithFederationHTTPClient = federation.WithHTTPClient
	// CounterCompatibilityFingerprint hashes the gamma (schema, matrix)
	// contract two sites must share before their counters may merge; the
	// boolean schemes seal their parameters through CounterScheme
	// fingerprints instead.
	CounterCompatibilityFingerprint = mining.CompatibilityFingerprint
	// NewShardedFromSnapshot wraps a frozen merged gamma counter for
	// serving; NewLiveFromCore is the scheme-generic form.
	NewShardedFromSnapshot = mining.NewShardedFromSnapshot
)

// Discretization (see internal/dataset).
type (
	// Binner maps a continuous column to category indices.
	Binner = dataset.Binner
)

var (
	// NewEquiWidthBinner is the paper's fixed-length-interval partitioning.
	NewEquiWidthBinner = dataset.NewEquiWidthBinner
	// NewQuantileBinner balances bin mass on skewed columns.
	NewQuantileBinner = dataset.NewQuantileBinner
	// Discretize converts a continuous table into a categorical Database.
	Discretize = dataset.Discretize
	// Split randomly partitions a database into train and test sets.
	Split = dataset.Split
	// Sample draws a uniform subsample without replacement.
	Sample = dataset.Sample
	// StratifiedSplit preserves class shares across the split.
	StratifiedSplit = dataset.StratifiedSplit
)

// MiningOptions tunes Apriori; see AprioriWithOptions.
type MiningOptions = mining.Options

var (
	// AprioriWithOptions exposes the candidate-relaxation extension for
	// noisy reconstructed supports and the MaxLen level cap used by the
	// collection service's cached mining jobs.
	AprioriWithOptions = mining.AprioriWithOptions
	// BreachProbability is P(posterior > threshold) under RAN-GD
	// randomization (Section 4.1's distributional privacy statement).
	BreachProbability = core.BreachProbability
)

// Condensed itemset representations (see internal/mining).
var (
	// MaximalItemsets returns the frequent itemsets with no frequent
	// proper superset.
	MaximalItemsets = mining.Maximal
	// ClosedItemsets returns the frequent itemsets with no equal-support
	// frequent superset.
	ClosedItemsets = mining.Closed
)

// MaterializedCounter incrementally maintains every marginal histogram
// so repeated mining queries never rescan submissions.
type MaterializedCounter = mining.MaterializedGammaCounter

// NewMaterializedCounter builds the incremental counter.
var NewMaterializedCounter = mining.NewMaterializedGammaCounter

// PerturbDatabaseParallel perturbs with a worker pool; deterministic in
// (database, perturber, seed, workers).
var PerturbDatabaseParallel = core.PerturbDatabaseParallel

// Interactive queries (see internal/query).
type (
	// QueryEngine answers filter-count queries by scanning a perturbed
	// database, with variance-based confidence intervals.
	QueryEngine = query.Engine
	// CounterQueryEngine answers the same queries from an incrementally
	// materialized counter in O(#filters) merged-observable lookups — the
	// collection service's live /v1/query path, usable directly over any
	// live counter (NewLiveCounterQueryEngine, any scheme) or gamma
	// counter (NewCounterQueryEngine).
	CounterQueryEngine = query.CounterEngine
	// PerturbedSupportCounter is the counter surface the counter-backed
	// query engine needs: raw perturbed match counts plus the record
	// count of the same sweep.
	PerturbedSupportCounter = query.PerturbedCounter
	// CountEstimate is a reconstructed count with its 95% CI.
	CountEstimate = query.Estimate
)

var (
	// NewQueryEngine builds the record-scan engine for one perturbed
	// database.
	NewQueryEngine = query.NewEngine
	// NewCounterQueryEngine builds the counter-backed engine over a
	// gamma counter; NewLiveCounterQueryEngine builds the scheme-generic
	// engine over any LiveCounter.
	NewCounterQueryEngine     = query.NewCounterEngine
	NewLiveCounterQueryEngine = query.NewLiveCounterEngine
	// ReconstructCountEstimate is the shared estimator core: marginal
	// inversion of a perturbed match count with standard error and 95%
	// z-interval.
	ReconstructCountEstimate = query.Reconstruct
)
