package frapp

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/mining"
)

// ErrPipeline is returned for invalid pipeline configuration or use.
var ErrPipeline = errors.New("frapp: invalid pipeline")

// Pipeline is the high-level end-to-end API: configure a schema and a
// privacy requirement once, then perturb databases client-side and mine
// them miner-side. It encapsulates the paper's recommended two-step
// process — derive the deterministic gamma-diagonal matrix for the
// requested privacy, then optionally randomize it for extra privacy at
// marginal accuracy cost.
type Pipeline struct {
	schema *Schema
	spec   PrivacySpec
	gamma  float64
	matrix UniformMatrix
	// alphaFraction ∈ [0,1]: randomization amplitude as a fraction of
	// γx. Zero means deterministic DET-GD.
	alphaFraction float64
}

// PipelineOption configures a Pipeline.
type PipelineOption func(*Pipeline) error

// WithRandomization enables RAN-GD with amplitude α = fraction·γx.
// fraction must lie in [0, 1].
func WithRandomization(fraction float64) PipelineOption {
	return func(p *Pipeline) error {
		if fraction < 0 || fraction > 1 {
			return fmt.Errorf("%w: randomization fraction %v not in [0,1]", ErrPipeline, fraction)
		}
		p.alphaFraction = fraction
		return nil
	}
}

// NewPipeline derives γ from the privacy spec and builds the
// gamma-diagonal matrix over the schema's record domain.
func NewPipeline(schema *Schema, spec PrivacySpec, opts ...PipelineOption) (*Pipeline, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrPipeline)
	}
	gamma, err := spec.Gamma()
	if err != nil {
		return nil, err
	}
	matrix, err := core.NewGammaDiagonal(schema.DomainSize(), gamma)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{schema: schema, spec: spec, gamma: gamma, matrix: matrix}
	for _, opt := range opts {
		if err := opt(p); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Gamma returns the derived amplification bound.
func (p *Pipeline) Gamma() float64 { return p.gamma }

// Matrix returns the gamma-diagonal matrix (the expected matrix under
// randomization).
func (p *Pipeline) Matrix() UniformMatrix { return p.matrix }

// ConditionNumber returns the reconstruction condition number
// (γ+n−1)/(γ−1), constant across itemset lengths.
func (p *Pipeline) ConditionNumber() float64 { return p.matrix.Cond() }

// Randomized reports whether the pipeline uses RAN-GD.
func (p *Pipeline) Randomized() bool { return p.alphaFraction > 0 }

// WorstCasePosterior returns the posterior-probability exposure: for
// DET-GD, the fixed ρ2; for RAN-GD, the determinable range [ρ2−, ρ2+]
// (lo is what the miner can actually assert; see Section 4.1).
func (p *Pipeline) WorstCasePosterior() (lo, hi float64, err error) {
	if !p.Randomized() {
		v, err := core.PosteriorFromGamma(p.gamma, p.spec.Rho1)
		if err != nil {
			return 0, 0, err
		}
		return v, v, nil
	}
	alpha := p.alphaFraction * p.matrix.Diag
	return core.PosteriorRange(p.gamma, p.matrix.N, p.spec.Rho1, alpha)
}

// Perturber returns the client-side perturbation engine.
func (p *Pipeline) Perturber() (Perturber, error) {
	if p.Randomized() {
		return core.NewRandomizedGammaPerturber(p.schema, p.matrix, p.alphaFraction*p.matrix.Diag)
	}
	return core.NewGammaPerturber(p.schema, p.matrix)
}

// Perturb perturbs every record of db, as the paper's clients do before
// submission.
func (p *Pipeline) Perturb(db *Database, rng *rand.Rand) (*Database, error) {
	if db == nil || db.Schema != p.schema {
		return nil, fmt.Errorf("%w: database schema does not match pipeline schema", ErrPipeline)
	}
	pert, err := p.Perturber()
	if err != nil {
		return nil, err
	}
	return core.PerturbDatabase(db, pert, rng)
}

// PerturbParallel perturbs every record using a worker pool — client
// perturbation is embarrassingly parallel. The output is deterministic
// in (db, pipeline parameters, seed, workers); workers ≤ 0 uses
// GOMAXPROCS.
func (p *Pipeline) PerturbParallel(db *Database, seed int64, workers int) (*Database, error) {
	if db == nil || db.Schema != p.schema {
		return nil, fmt.Errorf("%w: database schema does not match pipeline schema", ErrPipeline)
	}
	pert, err := p.Perturber()
	if err != nil {
		return nil, err
	}
	return core.PerturbDatabaseParallel(db, pert, seed, workers)
}

// Mine runs Apriori over a perturbed database with per-pass support
// reconstruction using the expected gamma-diagonal matrix.
func (p *Pipeline) Mine(perturbed *Database, minSupport float64) (*MiningResult, error) {
	if perturbed == nil || perturbed.Schema != p.schema {
		return nil, fmt.Errorf("%w: database schema does not match pipeline schema", ErrPipeline)
	}
	counter, err := mining.NewGammaCounter(perturbed, p.matrix)
	if err != nil {
		return nil, err
	}
	return mining.Apriori(counter, minSupport)
}

// ReconstructHistogram estimates the original record-count distribution
// from a perturbed database.
func (p *Pipeline) ReconstructHistogram(perturbed *Database) ([]float64, error) {
	if perturbed == nil || perturbed.Schema != p.schema {
		return nil, fmt.Errorf("%w: database schema does not match pipeline schema", ErrPipeline)
	}
	y, err := perturbed.Histogram()
	if err != nil {
		return nil, err
	}
	return p.matrix.Solve(y)
}
