package frapp

// One benchmark per table and figure of the paper's evaluation
// (Section 7), plus ablation benches for the design decisions called out
// in DESIGN.md §5. Each figure bench runs the same harness the
// frapp-bench command uses, at the paper's dataset sizes; the ablations
// isolate individual mechanisms.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/linalg"
	"repro/internal/mining"
	"repro/internal/query"
	"repro/internal/service"
	"repro/internal/stats"
)

var benchState struct {
	once   sync.Once
	cfg    experiment.Config
	census *experiment.Bundle
	health *experiment.Bundle
	err    error
}

// benchBundles prepares the paper-scale datasets once for all benches.
func benchBundles(b *testing.B) (experiment.Config, *experiment.Bundle, *experiment.Bundle) {
	b.Helper()
	benchState.once.Do(func() {
		benchState.cfg = experiment.DefaultConfig()
		benchState.census, benchState.err = experiment.LoadCensus(benchState.cfg)
		if benchState.err != nil {
			return
		}
		benchState.health, benchState.err = experiment.LoadHealth(benchState.cfg)
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.cfg, benchState.census, benchState.health
}

// BenchmarkTable1CensusSchema regenerates the paper's Table 1.
func BenchmarkTable1CensusSchema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2HealthSchema regenerates the paper's Table 2.
func BenchmarkTable2HealthSchema(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3FrequentItemsets regenerates Table 3: exact Apriori over
// both datasets at supmin = 2%.
func BenchmarkTable3FrequentItemsets(b *testing.B) {
	cfg, census, health := benchBundles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bun := range []*experiment.Bundle{census, health} {
			res, err := mining.Apriori(&mining.ExactCounter{DB: bun.DB}, cfg.MinSupport)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.ByLength) == 0 {
				b.Fatal("no frequent itemsets")
			}
		}
	}
	b.ReportMetric(float64(len(census.Truth.Counts())), "census-max-len")
	b.ReportMetric(float64(len(health.Truth.Counts())), "health-max-len")
}

// BenchmarkFig1CensusAccuracy regenerates Figure 1: all four schemes'
// support and identity errors on CENSUS.
func BenchmarkFig1CensusAccuracy(b *testing.B) {
	cfg, census, _ := benchBundles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiment.AccuracyStudy(census, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Runs) != 4 {
			b.Fatal("missing scheme runs")
		}
	}
}

// BenchmarkFig2HealthAccuracy regenerates Figure 2 on HEALTH.
func BenchmarkFig2HealthAccuracy(b *testing.B) {
	cfg, _, health := benchBundles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiment.AccuracyStudy(health, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Runs) != 4 {
			b.Fatal("missing scheme runs")
		}
	}
}

// BenchmarkFig3Randomization regenerates Figure 3: the α sweep of
// posterior ranges and length-4 support errors (CENSUS panel; the HEALTH
// panel is the same harness on the other bundle).
func BenchmarkFig3Randomization(b *testing.B) {
	cfg, census, _ := benchBundles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := experiment.RandomizationStudy(census, cfg, 11, 4)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Points) != 11 {
			b.Fatal("missing sweep points")
		}
	}
}

// BenchmarkFig4ConditionNumbers regenerates Figure 4: reconstruction
// matrix condition numbers per itemset length for both datasets.
func BenchmarkFig4ConditionNumbers(b *testing.B) {
	cfg, census, health := benchBundles(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bun := range []*experiment.Bundle{census, health} {
			fig, err := experiment.ConditionStudy(bun, cfg, bun.DB.Schema.M())
			if err != nil {
				b.Fatal(err)
			}
			if len(fig.Lengths) != bun.DB.Schema.M() {
				b.Fatal("missing lengths")
			}
		}
	}
}

// --- Ablation: closed-form vs LU reconstruction solve (DESIGN.md §5) ---

func benchSolveSetup(b *testing.B) (core.UniformMatrix, []float64) {
	b.Helper()
	m, err := core.NewGammaDiagonal(2000, 19)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, 2000)
	for i := range y {
		y[i] = rng.Float64() * 100
	}
	return m, y
}

func BenchmarkAblationSolverClosedForm(b *testing.B) {
	m, y := benchSolveSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolverLU(b *testing.B) {
	m, y := benchSolveSetup(b)
	dense := m.Dense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.Solve(dense, y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: Section 5 perturbation, O(M) chained vs O(|S_V|) naive ---

func benchPerturbSetup(b *testing.B) (*dataset.Schema, core.UniformMatrix, dataset.Record) {
	b.Helper()
	s := dataset.CensusSchema()
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	return s, m, dataset.Record{0, 1, 1, 0, 1, 0}
}

func BenchmarkAblationPerturbChained(b *testing.B) {
	s, m, rec := benchPerturbSetup(b)
	p, err := core.NewGammaPerturber(s, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Perturb(rec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPerturbNaiveCDF(b *testing.B) {
	s, m, rec := benchPerturbSetup(b)
	p, err := core.NewNaiveGammaPerturber(s, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Perturb(rec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: discrete sampling, alias method vs linear CDF walk ---

func benchSamplerWeights(b *testing.B) []float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(4))
	w := make([]float64, 2000)
	for i := range w {
		w[i] = rng.Float64()
	}
	return w
}

func BenchmarkAblationSamplingAlias(b *testing.B) {
	s, err := stats.NewAliasSampler(benchSamplerWeights(b))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}

func BenchmarkAblationSamplingCDF(b *testing.B) {
	s, err := stats.NewCDFSampler(benchSamplerWeights(b))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}

// --- Scheme perturbation throughput (records/op) ---

func BenchmarkPerturbThroughputDetGD(b *testing.B) {
	_, census, _ := benchBundles(b)
	m, err := core.NewGammaDiagonal(census.DB.Schema.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewGammaPerturber(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PerturbDatabase(census.DB, p, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(census.DB.N()), "records/op")
}

func BenchmarkPerturbThroughputMask(b *testing.B) {
	_, census, _ := benchBundles(b)
	bm, err := core.NewBoolMapping(census.DB.Schema)
	if err != nil {
		b.Fatal(err)
	}
	sch, err := core.NewMaskSchemeForPrivacy(bm, 19)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.PerturbDatabase(census.DB, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(census.DB.N()), "records/op")
}

func BenchmarkPerturbThroughputCutPaste(b *testing.B) {
	_, census, _ := benchBundles(b)
	bm, err := core.NewBoolMapping(census.DB.Schema)
	if err != nil {
		b.Fatal(err)
	}
	sch, err := core.NewCutPasteScheme(bm, 3, 0.494)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sch.PerturbDatabase(census.DB, rng); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(census.DB.N()), "records/op")
}

// BenchmarkMiningReconstruction isolates the miner-side cost: Apriori
// with gamma reconstruction over a pre-perturbed CENSUS database.
func BenchmarkMiningReconstruction(b *testing.B) {
	cfg, census, _ := benchBundles(b)
	m, err := core.NewGammaDiagonal(census.DB.Schema.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewGammaPerturber(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(census.DB, p, rand.New(rand.NewSource(10)))
	if err != nil {
		b.Fatal(err)
	}
	counter, err := mining.NewGammaCounter(pdb, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.Apriori(counter, cfg.MinSupport); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches: classification and the collection service ---

// BenchmarkPrivateNaiveBayesTrain measures training the Naive Bayes
// classifier from gamma-perturbed CENSUS data (reconstruction included).
func BenchmarkPrivateNaiveBayesTrain(b *testing.B) {
	_, census, _ := benchBundles(b)
	m, err := core.NewGammaDiagonal(census.DB.Schema.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewGammaPerturber(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(census.DB, p, rand.New(rand.NewSource(11)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := classify.TrainPerturbed(pdb, m, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSubmit measures the HTTP submission path end to end
// (client-side perturbation + POST + server-side validation/storage).
func BenchmarkServiceSubmit(b *testing.B) {
	srv, err := service.NewServer(dataset.CensusSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := service.NewClient(ts.URL, service.WithHTTPClient(ts.Client()))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	rec := dataset.Record{0, 1, 1, 0, 1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Submit(rec, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCounterScan vs BenchmarkAblationCounterMaterialized:
// the per-query database-scanning counter against the incrementally
// materialized counter, for repeated mining of the same collection (the
// service's workload). Materialization pays O(M·2^M) per insert to make
// each mining query O(candidates).
func BenchmarkAblationCounterScan(b *testing.B) {
	cfg, census, _ := benchBundles(b)
	m, err := core.NewGammaDiagonal(census.DB.Schema.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewGammaPerturber(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(census.DB, p, rand.New(rand.NewSource(13)))
	if err != nil {
		b.Fatal(err)
	}
	counter, err := mining.NewGammaCounter(pdb, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.Apriori(counter, cfg.MinSupport); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCounterMaterialized(b *testing.B) {
	cfg, census, _ := benchBundles(b)
	m, err := core.NewGammaDiagonal(census.DB.Schema.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewGammaPerturber(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(census.DB, p, rand.New(rand.NewSource(13)))
	if err != nil {
		b.Fatal(err)
	}
	counter, err := mining.NewMaterializedGammaCounter(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	if err := counter.AddDatabase(pdb); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.Apriori(counter, cfg.MinSupport); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaterializedInsert isolates the per-record ingestion cost of
// the materialized counter (the price of instant mining).
func BenchmarkMaterializedInsert(b *testing.B) {
	_, census, _ := benchBundles(b)
	m, err := core.NewGammaDiagonal(census.DB.Schema.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	counter, err := mining.NewMaterializedGammaCounter(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	rec := dataset.Record{0, 1, 1, 0, 1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := counter.Add(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent ingestion: single-mutex vs sharded counter ---

// ingestCounter is the submission-side surface shared by the
// single-striped and sharded counters.
type ingestCounter interface {
	Add(dataset.Record) error
	Snapshot() mining.SupportCounter
}

// singleCounter adapts the single-mutex counter's concrete Snapshot to
// the shared bench surface.
type singleCounter struct {
	*mining.MaterializedGammaCounter
}

func (s singleCounter) Snapshot() mining.SupportCounter { return s.MaterializedGammaCounter.Snapshot() }

// benchConcurrentIngest splits b.N submissions across g goroutines — the
// shape of g HTTP handlers draining a busy submit endpoint.
func benchConcurrentIngest(b *testing.B, c ingestCounter, g int) {
	b.Helper()
	recs := [4]dataset.Record{
		{0, 1, 1, 0, 1, 0},
		{1, 0, 2, 1, 0, 1},
		{2, 1, 0, 1, 1, 0},
		{0, 0, 3, 0, 0, 1},
	}
	b.ResetTimer()
	if err := core.ForEachSpan(b.N, g, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if err := c.Add(recs[i&3]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkConcurrentIngest compares ingestion throughput of the
// single-mutex MaterializedGammaCounter against the lock-striped
// ShardedGammaCounter under 1, 4, and 8 concurrent submitters. The
// single counter serializes every O(M·2^M) histogram update on one lock,
// so its throughput is flat in the submitter count; the sharded counter
// is expected to scale roughly linearly up to the core count.
func BenchmarkConcurrentIngest(b *testing.B) {
	sc := dataset.CensusSchema()
	m, err := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	for _, g := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("single/submitters=%d", g), func(b *testing.B) {
			c, err := mining.NewMaterializedGammaCounter(sc, m)
			if err != nil {
				b.Fatal(err)
			}
			benchConcurrentIngest(b, singleCounter{c}, g)
		})
		b.Run(fmt.Sprintf("sharded/submitters=%d", g), func(b *testing.B) {
			c, err := mining.NewShardedGammaCounter(sc, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			benchConcurrentIngest(b, c, g)
		})
	}
}

// BenchmarkConcurrentIngestAndMine is the mixed service workload: 4
// submitters ingest while a background miner periodically snapshots and
// runs Apriori over the live counter (1ms between passes — a busy /v1/mine
// endpoint). Measures ingestion throughput under mining interference
// (the sharded counter only blocks one shard at a time while the
// snapshot folds).
func BenchmarkConcurrentIngestAndMine(b *testing.B) {
	sc := dataset.CensusSchema()
	m, err := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	const submitters = 4
	run := func(b *testing.B, c ingestCounter) {
		// Seed so the miner always has data.
		if err := c.Add(dataset.Record{0, 1, 1, 0, 1, 0}); err != nil {
			b.Fatal(err)
		}
		stop := make(chan struct{})
		var minerWg sync.WaitGroup
		minerWg.Add(1)
		go func() {
			defer minerWg.Done()
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				snap := c.Snapshot()
				if _, err := mining.Apriori(snap, 0.05); err != nil {
					b.Error(err)
					return
				}
			}
		}()
		benchConcurrentIngest(b, c, submitters)
		b.StopTimer()
		close(stop)
		minerWg.Wait()
	}
	b.Run("single", func(b *testing.B) {
		c, err := mining.NewMaterializedGammaCounter(sc, m)
		if err != nil {
			b.Fatal(err)
		}
		run(b, singleCounter{c})
	})
	b.Run("sharded", func(b *testing.B) {
		c, err := mining.NewShardedGammaCounter(sc, m, 0)
		if err != nil {
			b.Fatal(err)
		}
		run(b, c)
	})
}

// --- Mining jobs: snapshot-versioned result cache ---

// benchMineServer starts a collection service with data already
// ingested, for the cached-mining benches.
func benchMineServer(b *testing.B) (*service.Server, *service.Client) {
	b.Helper()
	srv, err := service.NewServer(dataset.CensusSchema(), core.PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	client, err := service.NewClient(ts.URL, service.WithHTTPClient(ts.Client()))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(14))
	recs := make([]dataset.Record, 5000)
	for i := range recs {
		recs[i] = dataset.Record{rng.Intn(4), rng.Intn(5), rng.Intn(5), rng.Intn(5), rng.Intn(2), rng.Intn(2)}
	}
	if err := client.SubmitBatch(recs, rng); err != nil {
		b.Fatal(err)
	}
	return srv, client
}

// BenchmarkServiceMineCached measures repeated mining of an UNCHANGED
// collection end to end over HTTP: after the first request every mine
// is a cache hit keyed by (snapshot version, minsup, scheme, maxlen),
// so the cost is JSON rendering, not Apriori.
func BenchmarkServiceMineCached(b *testing.B) {
	_, client := benchMineServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Mine(0.05, 0, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceMineUncached is the contrast: one submission between
// mines bumps the snapshot version, so every request re-runs Apriori.
func BenchmarkServiceMineUncached(b *testing.B) {
	_, client := benchMineServer(b)
	rng := rand.New(rand.NewSource(15))
	rec := dataset.Record{0, 1, 1, 0, 1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Submit(rec, rng); err != nil {
			b.Fatal(err)
		}
		if _, err := client.Mine(0.05, 0, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Interactive queries: counter-backed vs record-scan estimation ---

// benchQueryData builds a perturbed CENSUS-like collection of n records
// plus a batch of 32 conjunctive filters (arity 1–3).
func benchQueryData(b *testing.B, n int) (*dataset.Database, core.UniformMatrix, []mining.Itemset) {
	b.Helper()
	sc := dataset.CensusSchema()
	db, err := dataset.GenerateCensus(n, 21)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewGammaPerturber(db.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(22)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	filters := make([]mining.Itemset, 32)
	for i := range filters {
		arity := 1 + rng.Intn(3)
		perm := rng.Perm(db.Schema.M())[:arity]
		items := make([]mining.Item, arity)
		for k, j := range perm {
			items[k] = mining.Item{Attr: j, Value: rng.Intn(db.Schema.Attrs[j].Cardinality())}
		}
		f, err := mining.NewItemset(items...)
		if err != nil {
			b.Fatal(err)
		}
		filters[i] = f
	}
	return pdb, m, filters
}

// BenchmarkQueryCounterVsScan compares one /v1/query-sized batch (32
// filters) answered by the record-scan engine (O(N) per filter) against
// the counter-backed engine (O(#filters) histogram lookups), at two
// collection sizes. The scan path scales with N; the counter path does
// not — that gap is why the service answers interactive queries from
// the live counter.
func BenchmarkQueryCounterVsScan(b *testing.B) {
	for _, n := range []int{5000, 50000} {
		pdb, m, filters := benchQueryData(b, n)
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			eng, err := query.NewEngine(pdb, m)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CountAll(filters); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("counter/n=%d", n), func(b *testing.B) {
			ctr, err := mining.NewShardedGammaCounter(pdb.Schema, m, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := ctr.AddDatabase(pdb); err != nil {
				b.Fatal(err)
			}
			eng, err := query.NewCounterEngine(ctr, m)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.CountAll(filters); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPerturbParallel vs the serial DET-GD throughput bench:
// client-side perturbation across a worker pool.
func BenchmarkPerturbParallel(b *testing.B) {
	_, census, _ := benchBundles(b)
	m, err := core.NewGammaDiagonal(census.DB.Schema.DomainSize(), 19)
	if err != nil {
		b.Fatal(err)
	}
	p, err := core.NewGammaPerturber(census.DB.Schema, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PerturbDatabaseParallel(census.DB, p, int64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(census.DB.N()), "records/op")
}
