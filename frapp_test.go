package frapp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestPipelineEndToEnd(t *testing.T) {
	schema := CensusSchema()
	db, err := GenerateCensus(20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pipe.Gamma()-19) > 1e-12 {
		t.Fatalf("Gamma = %v", pipe.Gamma())
	}
	wantCond := (19.0 + 2000 - 1) / 18
	if math.Abs(pipe.ConditionNumber()-wantCond) > 1e-9 {
		t.Fatalf("ConditionNumber = %v, want %v", pipe.ConditionNumber(), wantCond)
	}
	if pipe.Randomized() {
		t.Fatal("default pipeline should be deterministic")
	}

	// Pipeline schema check: GenerateCensus uses its own schema value, so
	// perturbing it through a pipeline built on a different *Schema must
	// fail — build the pipeline on the database's schema instead.
	if _, err := pipe.Perturb(db, rand.New(rand.NewSource(1))); !errors.Is(err, ErrPipeline) {
		t.Fatal("schema mismatch not caught")
	}
	pipe, err = NewPipeline(db.Schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := pipe.Perturb(db, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if perturbed.N() != db.N() {
		t.Fatalf("perturbed N = %d", perturbed.N())
	}

	mined, err := pipe.Mine(perturbed, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Apriori(&ExactCounter{DB: db}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := EvaluateAccuracy(truth, mined)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.TrueCount == 0 || rep.Overall.MinedCount == 0 {
		t.Fatal("mining produced nothing")
	}
	// At this scale DET-GD must keep false negatives under control at
	// short lengths.
	l1, ok := rep.Level(1)
	if !ok || l1.FalseNegatives > 50 {
		t.Fatalf("level-1 false negatives %v", l1.FalseNegatives)
	}
}

func TestPipelineRandomized(t *testing.T) {
	db, err := GenerateCensus(5000, 11)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(db.Schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50}, WithRandomization(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !pipe.Randomized() {
		t.Fatal("randomization not applied")
	}
	lo, hi, err := pipe.WorstCasePosterior()
	if err != nil {
		t.Fatal(err)
	}
	// Section 4.1: at α = γx/2 the determinable range is ≈ [1/3, 0.6].
	if math.Abs(lo-1.0/3) > 0.01 || math.Abs(hi-0.6) > 0.01 {
		t.Fatalf("posterior range [%v, %v], want ≈[0.333, 0.600]", lo, hi)
	}
	perturbed, err := pipe.Perturb(db, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Mine(perturbed, 0.02); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineDeterministicPosterior(t *testing.T) {
	schema := CensusSchema()
	pipe, err := NewPipeline(schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := pipe.WorstCasePosterior()
	if err != nil {
		t.Fatal(err)
	}
	if lo != hi || math.Abs(lo-0.5) > 1e-12 {
		t.Fatalf("DET-GD posterior [%v, %v], want exactly 0.5", lo, hi)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(nil, PrivacySpec{Rho1: 0.05, Rho2: 0.5}); !errors.Is(err, ErrPipeline) {
		t.Fatal("nil schema accepted")
	}
	if _, err := NewPipeline(CensusSchema(), PrivacySpec{Rho1: 0.5, Rho2: 0.05}); err == nil {
		t.Fatal("invalid privacy spec accepted")
	}
	if _, err := NewPipeline(CensusSchema(), PrivacySpec{Rho1: 0.05, Rho2: 0.5}, WithRandomization(2)); !errors.Is(err, ErrPipeline) {
		t.Fatal("fraction > 1 accepted")
	}
	pipe, err := NewPipeline(CensusSchema(), PrivacySpec{Rho1: 0.05, Rho2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Mine(nil, 0.02); !errors.Is(err, ErrPipeline) {
		t.Fatal("nil database accepted")
	}
	if _, err := pipe.ReconstructHistogram(nil); !errors.Is(err, ErrPipeline) {
		t.Fatal("nil database accepted by ReconstructHistogram")
	}
}

func TestPipelineReconstructHistogram(t *testing.T) {
	db, err := GenerateCensus(40000, 13)
	if err != nil {
		t.Fatal(err)
	}
	// A milder privacy setting (γ = 361, condition number ≈ 7.5) keeps
	// the statistical noise small enough for a tight accuracy assertion;
	// at the paper's γ=19 the per-marginal noise at N=40k is ~10k counts,
	// which is the regime Figures 1–2 quantify instead.
	pipe, err := NewPipeline(db.Schema, PrivacySpec{Rho1: 0.05, Rho2: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	perturbed, err := pipe.Perturb(db, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := pipe.ReconstructHistogram(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	x, err := db.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	// Per-cell reconstruction over the full 2000-cell domain is noisy
	// (cond ≈ 112 — this is exactly why the paper reconstructs itemset
	// marginals instead), but aggregates must be accurate: project the
	// reconstructed histogram onto attribute 0 and compare marginals.
	var margHat, margTrue [4]float64
	for idx := range x {
		rec, err := db.Schema.Decode(idx)
		if err != nil {
			t.Fatal(err)
		}
		margHat[rec[0]] += xhat[idx]
		margTrue[rec[0]] += x[idx]
	}
	// Statistical tolerance: the per-marginal estimator noise here has
	// std ≈ √(N·p̄(1−p̄))/(d̄−ō) ≈ 525 counts; allow 4σ plus 10% relative.
	for v := range margTrue {
		if margTrue[v] == 0 {
			continue
		}
		tol := 0.10*margTrue[v] + 2100
		if math.Abs(margHat[v]-margTrue[v]) > tol {
			t.Fatalf("attribute-0 marginal %d: reconstructed %v vs true %v (tol %v)", v, margHat[v], margTrue[v], tol)
		}
	}
	// Mass conservation: Σ X̂ = N exactly (the solve preserves totals).
	var total float64
	for _, v := range xhat {
		total += v
	}
	if math.Abs(total-float64(db.N())) > 1e-6*float64(db.N()) {
		t.Fatalf("reconstructed mass %v, want %d", total, db.N())
	}
}

func TestFacadeConstructorsUsable(t *testing.T) {
	// Smoke-test that the re-exported constructors compose.
	s, err := NewSchema("t", []Attribute{
		{Name: "x", Categories: []string{"x0", "x1"}},
		{Name: "y", Categories: []string{"y0", "y1", "y2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewGammaDiagonal(s.DomainSize(), 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	rec, err := p.Perturb(Record{1, 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(rec); err != nil {
		t.Fatal(err)
	}
	set, err := NewItemset(Item{Attr: 1, Value: 2}, Item{Attr: 0, Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	if set.Key() != "0=1,1=2" {
		t.Fatalf("Key = %q", set.Key())
	}
	if _, err := MaskPForGamma(6, 19); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinePerturbParallel(t *testing.T) {
	db, err := GenerateCensus(6000, 80)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(db.Schema, PrivacySpec{Rho1: 0.05, Rho2: 0.50})
	if err != nil {
		t.Fatal(err)
	}
	out, err := pipe.PerturbParallel(db, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != db.N() {
		t.Fatalf("N = %d", out.N())
	}
	// Deterministic for fixed (seed, workers).
	out2, err := pipe.PerturbParallel(db, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Records {
		for j := range out.Records[i] {
			if out.Records[i][j] != out2.Records[i][j] {
				t.Fatal("parallel perturbation not deterministic")
			}
		}
	}
	if _, err := pipe.PerturbParallel(nil, 1, 4); !errors.Is(err, ErrPipeline) {
		t.Fatal("nil database accepted")
	}
	// Mining the parallel output works end to end.
	if _, err := pipe.Mine(out, 0.05); err != nil {
		t.Fatal(err)
	}
}
