package loadgen

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// fakeReport builds a report by hand with the given p99s (ns) and
// record rate.
func fakeReport(submitP99, queryP99, recRate float64) *Report {
	return &Report{
		Config: ReportConfig{Scheme: "gamma", Mix: "90:9:1"},
		Results: []ReportRecord{
			{Experiment: "load_submit", Metric: "p99_ns", Value: submitP99},
			{Experiment: "load_query", Metric: "p99_ns", Value: queryP99},
			{Experiment: "load_total", Metric: "records_per_sec", Value: recRate},
		},
	}
}

func TestCompareBaselinePasses(t *testing.T) {
	base := fakeReport(1e6, 2e6, 100000)
	cur := fakeReport(2e6, 3e6, 80000)
	if v := CompareBaseline(cur, base, 4.0, 0.25); len(v) != 0 {
		t.Fatalf("gate failed: %v", v)
	}
}

func TestCompareBaselineP99Violation(t *testing.T) {
	base := fakeReport(1e6, 1e6, 100000)
	cur := fakeReport(5e6, 1e6, 100000) // submit p99 5× baseline
	v := CompareBaseline(cur, base, 4.0, 0.25)
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
}

func TestCompareBaselineRateViolation(t *testing.T) {
	base := fakeReport(1e6, 1e6, 100000)
	cur := fakeReport(1e6, 1e6, 10000) // 10% of baseline throughput
	v := CompareBaseline(cur, base, 4.0, 0.25)
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
}

func TestCompareBaselineMissingCurrentMetric(t *testing.T) {
	base := fakeReport(1e6, 1e6, 100000)
	cur := &Report{} // current run recorded nothing at all
	v := CompareBaseline(cur, base, 4.0, 0.25)
	if len(v) != 3 {
		t.Fatalf("want 3 violations (2 classes + rate), got %v", v)
	}
}

func TestCompareBaselineEmptyBaselineGatesNothing(t *testing.T) {
	cur := fakeReport(1e9, 1e9, 1)
	if v := CompareBaseline(cur, &Report{}, 4.0, 0.25); len(v) != 0 {
		t.Fatalf("empty baseline produced violations: %v", v)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rpt := fakeReport(1e6, 2e6, 123456)
	rpt.Config = ReportConfig{
		Target: "http://x", Schema: "census", Scheme: "gamma",
		Rho1: 0.05, Rho2: 0.5, DurationNs: int64(30 * time.Second),
		Workers: 256, Rate: 2000, Batch: 128, QueryBatch: 16,
		Mix: "90:9:1", Population: 100000, Seed: 2005, Skew: 1.1,
	}
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	if err := rpt.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != rpt.Config {
		t.Fatalf("config round-trip: %+v vs %+v", got.Config, rpt.Config)
	}
	if len(got.Results) != len(rpt.Results) {
		t.Fatalf("results round-trip: %d vs %d", len(got.Results), len(rpt.Results))
	}
	if v, ok := got.metric("load_total", "records_per_sec"); !ok || v != 123456 {
		t.Fatalf("records_per_sec %v %v", v, ok)
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("absent file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
