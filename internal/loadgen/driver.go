package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// The driver is OPEN-LOOP: operations arrive on a fixed schedule
// derived from -rate, independent of how fast the server answers, the
// way millions of independent respondents actually behave — no client
// politely waits for another's response before submitting. Latency is
// measured from each operation's SCHEDULED time, not its send time, so
// queueing delay under saturation counts against the server
// (coordinated omission is not hidden). The achieved-vs-offered rate
// gap is itself a primary signal: a server that keeps p99 low by
// admitting less load does not get away with it.

// mineProbeParams is the mining-job payload of ClassMine traffic:
// singleton-only Apriori at a high threshold — a cheap job shape, so
// mine traffic exercises the job queue and worker pool rather than
// turning the run into an Apriori benchmark.
var mineProbeParams = service.MineParams{MinSupport: 0.25, Limit: 16, MaxLen: 1}

// op is one scheduled operation.
type op struct {
	class     Class
	scheduled time.Time
	idx       int
}

// RunStats is everything one open-loop run measured.
type RunStats struct {
	Rec *Recorder
	// Elapsed is wall time from first scheduled op to full drain;
	// ScheduleSpan is the configured open-loop schedule length the
	// offered rate is defined over. Under saturation Elapsed exceeds
	// ScheduleSpan by the drain time.
	Elapsed      time.Duration
	ScheduleSpan time.Duration
	// Scheduled is the number of ops the schedule intended
	// (rate × duration); Dispatched is how many were actually issued
	// (the dispatcher skips nothing, but context cancellation cuts the
	// schedule short).
	Scheduled, Dispatched uint64
	// PrepareTime is the off-path cost of perturbing and encoding the
	// population; PreparedRecords the records prepared.
	PrepareTime     time.Duration
	PreparedRecords int
	// ServerRecords is the server's record count after the run
	// (best-effort; -1 if stats failed).
	ServerRecords int
	// Scheme is the scheme the client negotiated with the server.
	Scheme string
}

// OfferedRate returns the scheduled arrival rate in ops/sec — over the
// configured schedule span, not the (possibly drain-stretched) elapsed
// time, so the offered-vs-achieved gap is visible under saturation.
func (s *RunStats) OfferedRate() float64 {
	if s.ScheduleSpan <= 0 {
		return 0
	}
	return float64(s.Scheduled) / s.ScheduleSpan.Seconds()
}

// AchievedRate returns completed (successful) ops/sec across classes.
func (s *RunStats) AchievedRate() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	var ok uint64
	for _, c := range Classes() {
		ok += s.Rec.OK(c)
	}
	return float64(ok) / s.Elapsed.Seconds()
}

// RecordsPerSec returns sustained accepted records/sec of ingestion.
func (s *RunStats) RecordsPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Rec.Records()) / s.Elapsed.Seconds()
}

// RunOption configures Run.
type RunOption func(*runConfig)

type runConfig struct {
	httpClient *http.Client
}

// WithRunHTTPClient substitutes the HTTP transport (tests use the
// httptest server's client).
func WithRunHTTPClient(h *http.Client) RunOption {
	return func(c *runConfig) { c.httpClient = h }
}

// defaultTransport builds a transport with enough idle connections for
// the worker count — the default transport's per-host idle cap of 2
// would make every worker pay a fresh TCP handshake per op.
func defaultTransport(workers int) *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = workers + 16
	t.MaxIdleConnsPerHost = workers + 16
	return &http.Client{Transport: t, Timeout: 60 * time.Second}
}

// NewWorkloadClient negotiates a service client for cfg against its
// target, with a transport sized for cfg.Workers.
func NewWorkloadClient(cfg *Config, opts ...RunOption) (*service.Client, error) {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	if rc.httpClient == nil {
		rc.httpClient = defaultTransport(cfg.Workers)
	}
	client, err := service.NewClient(cfg.Target, service.WithHTTPClient(rc.httpClient))
	if err != nil {
		return nil, err
	}
	if client.Scheme() != cfg.Scheme {
		return nil, fmt.Errorf("%w: server runs scheme %q, config wants %q", ErrConfig, client.Scheme(), cfg.Scheme)
	}
	return client, nil
}

// PrepareBatches perturbs and encodes the whole population into
// submit-batch bodies, in parallel. Batch i draws from its own rng
// seeded cfg.Seed+i+1, so the prepared payloads are deterministic in
// cfg.Seed regardless of parallelism. The final batch may be short
// (population need not divide evenly); together the batches cover every
// population record exactly once.
func PrepareBatches(cfg *Config, pop *Population, client *service.Client) ([]*service.PreparedBatch, error) {
	recs := pop.DB.Records
	nb := (len(recs) + cfg.Batch - 1) / cfg.Batch
	prepared := make([]*service.PreparedBatch, nb)
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		firstErr atomic.Pointer[error]
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > nb {
		workers = nb
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nb || firstErr.Load() != nil {
					return
				}
				lo := i * cfg.Batch
				hi := lo + cfg.Batch
				if hi > len(recs) {
					hi = len(recs)
				}
				rng := rand.New(rand.NewSource(cfg.Seed + int64(i) + 1))
				p, err := client.PrepareBatchWire(recs[lo:hi], rng, cfg.Wire)
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				prepared[i] = p
			}
		}()
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	return prepared, nil
}

// Run drives one open-loop load run against cfg.Target and returns its
// measurements. The population must already be built; the server must
// be reachable and must run cfg's schema/scheme contract.
func Run(ctx context.Context, cfg *Config, pop *Population, opts ...RunOption) (*RunStats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("%w: Run needs a target URL (self-hosting is the command's job)", ErrConfig)
	}
	client, err := NewWorkloadClient(cfg, opts...)
	if err != nil {
		return nil, err
	}

	t0 := time.Now()
	batches, err := PrepareBatches(cfg, pop, client)
	if err != nil {
		return nil, err
	}
	stats := &RunStats{
		Rec:             NewRecorder(),
		ScheduleSpan:    cfg.Duration,
		PrepareTime:     time.Since(t0),
		PreparedRecords: pop.DB.N(),
		ServerRecords:   -1,
		Scheme:          client.Scheme(),
	}
	filterBatches := pop.FilterBatches(cfg.QueryBatch)
	if len(filterBatches) == 0 {
		return nil, fmt.Errorf("%w: population produced no probe filters", ErrConfig)
	}

	// Warm the collection with one batch before the clock starts, so
	// early query ops never race an empty counter into 409s.
	if err := client.SubmitPrepared(batches[0]); err != nil {
		return nil, fmt.Errorf("warm-up submit: %w", err)
	}

	total := uint64(cfg.Rate * cfg.Duration.Seconds())
	if total < 1 {
		total = 1
	}
	stats.Scheduled = total
	ops := make(chan op, cfg.Workers*2)

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range ops {
				runOp(client, cfg, stats.Rec, batches, filterBatches, o)
			}
		}()
	}

	// The dispatcher: class choice and payload rotation are seeded, so a
	// fixed seed replays the same operation sequence at the same
	// schedule.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x10adbeef))
	weights := cfg.Mix.weights()
	weightSum := weights[ClassSubmit] + weights[ClassQuery] + weights[ClassMine]
	var classIdx [numClasses]int
	start := time.Now()
	var dispatched uint64
dispatch:
	for i := uint64(0); i < total; i++ {
		at := start.Add(time.Duration(float64(i) * float64(time.Second) / cfg.Rate))
		if d := time.Until(at); d > 0 {
			select {
			case <-ctx.Done():
				break dispatch
			case <-time.After(d):
			}
		}
		r := rng.Float64() * weightSum
		class := ClassSubmit
		switch {
		case r < weights[ClassSubmit]:
			class = ClassSubmit
		case r < weights[ClassSubmit]+weights[ClassQuery]:
			class = ClassQuery
		default:
			class = ClassMine
		}
		idx := classIdx[class]
		classIdx[class]++
		select {
		case <-ctx.Done():
			break dispatch
		case ops <- op{class: class, scheduled: at, idx: idx}:
			dispatched++
		}
	}
	close(ops)
	wg.Wait()
	stats.Dispatched = dispatched
	stats.Elapsed = time.Since(start)

	if sr, err := client.Stats(); err == nil {
		stats.ServerRecords = sr.Records
	}
	return stats, nil
}

// runOp executes one operation and records its outcome. Latency is
// measured from the scheduled time: time an op spent waiting for a free
// worker is server-induced queueing under open-loop load and must count.
func runOp(client *service.Client, cfg *Config, rec *Recorder, batches []*service.PreparedBatch, filterBatches [][]service.QueryFilter, o op) {
	var err error
	records := 0
	switch o.class {
	case ClassSubmit:
		b := batches[o.idx%len(batches)]
		if err = client.SubmitPrepared(b); err == nil {
			records = b.Len()
		}
	case ClassQuery:
		_, err = client.QueryAll(filterBatches[o.idx%len(filterBatches)])
	case ClassMine:
		_, err = client.SubmitMineJob(mineProbeParams)
	}
	if err != nil {
		rec.Failure(o.class, errors.Is(err, service.ErrBusy))
		return
	}
	rec.Success(o.class, time.Since(o.scheduled), records)
}
