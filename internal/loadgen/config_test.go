package loadgen

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

func TestParseArgsDefaults(t *testing.T) {
	cfg, err := ParseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != "gamma" || cfg.Schema != "census" {
		t.Fatalf("defaults %q/%q", cfg.Scheme, cfg.Schema)
	}
	if cfg.Duration != 30*time.Second || cfg.Workers != 256 {
		t.Fatalf("defaults duration=%v workers=%d", cfg.Duration, cfg.Workers)
	}
	if cfg.Mix != (Mix{Submit: 90, Query: 9, Mine: 1}) {
		t.Fatalf("default mix %+v", cfg.Mix)
	}
	if cfg.Out != "BENCH_load.json" {
		t.Fatalf("default out %q", cfg.Out)
	}
	if cfg.Wire != service.WireJSON {
		t.Fatalf("default wire %q", cfg.Wire)
	}
}

func TestParseArgsWire(t *testing.T) {
	cfg, err := ParseArgs([]string{"-wire", "binary"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Wire != service.WireBinary {
		t.Fatalf("wire %q", cfg.Wire)
	}
	// An empty -wire normalizes to JSON, so zero-valued Config literals
	// (tests, embedders) keep their pre-flag behavior.
	empty := Config{}
	empty.Schema, empty.Scheme = "census", "gamma"
	empty.Duration, empty.Workers, empty.Rate = time.Second, 1, 1
	empty.Batch, empty.QueryBatch, empty.Population = 1, 1, 1
	empty.Mix = Mix{Submit: 1}
	empty.Rho1, empty.Rho2 = 0.05, 0.5
	empty.P99Tol, empty.RateTol = 1, 1
	if err := empty.Validate(); err != nil {
		t.Fatal(err)
	}
	if empty.Wire != service.WireJSON {
		t.Fatalf("empty wire normalized to %q", empty.Wire)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	cfg, err := ParseArgs([]string{
		"-target", "http://localhost:9999", "-scheme", "mask",
		"-duration", "5s", "-workers", "32", "-rate", "100",
		"-mix", "70:30", "-population", "5000", "-batch", "50",
		"-seed", "42", "-baseline", "base.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme != "mask" || cfg.Workers != 32 || cfg.Seed != 42 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.Mix != (Mix{Submit: 70, Query: 30}) {
		t.Fatalf("mix %+v", cfg.Mix)
	}
}

func TestParseArgsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-scheme", "rot13"},
		{"-schema", "tax"},
		{"-duration", "0s"},
		{"-duration", "-3s"},
		{"-duration", "25h"},
		{"-workers", "0"},
		{"-workers", "-1"},
		{"-rate", "0"},
		{"-rate", "NaN"},
		{"-rate", "+Inf"},
		{"-batch", "0"},
		{"-mix", "0:0:0"},
		{"-mix", "a:b"},
		{"-mix", "1:2:3:4"},
		{"-mix", "-5:1"},
		{"-population", "10", "-batch", "100"},
		{"-population", "99999999"},
		{"-zipf-skew", "-1"},
		{"-rho1", "0.9", "-rho2", "0.5"},
		{"-p99-tol", "0.5"},
		{"-rate-tol", "0"},
		{"-rate-tol", "2"},
		{"-wire", "carrier-pigeon"},
		{"-no-such-flag"},
		{"positional"},
	} {
		if _, err := ParseArgs(args); err == nil {
			t.Errorf("ParseArgs(%q) accepted", args)
		} else if !errors.Is(err, ErrConfig) {
			t.Errorf("ParseArgs(%q) error %v does not wrap ErrConfig", args, err)
		}
	}
}

func TestParseMix(t *testing.T) {
	for s, want := range map[string]Mix{
		"100":     {Submit: 100},
		"80:20":   {Submit: 80, Query: 20},
		"90:9:1":  {Submit: 90, Query: 9, Mine: 1},
		"0:0:1":   {Mine: 1},
		" 1 : 2 ": {Submit: 1, Query: 2},
	} {
		got, err := ParseMix(s)
		if err != nil {
			t.Errorf("ParseMix(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseMix(%q) = %+v, want %+v", s, got, want)
		}
	}
}

func TestUsageListsEveryFlag(t *testing.T) {
	u := Usage()
	for _, flag := range []string{
		"-target", "-schema", "-scheme", "-rho1", "-rho2", "-duration",
		"-workers", "-rate", "-batch", "-query-batch", "-mix",
		"-population", "-seed", "-zipf-skew", "-out", "-baseline",
		"-p99-tol", "-rate-tol", "-wire",
	} {
		if !strings.Contains(u, flag) {
			t.Errorf("usage text missing %s", flag)
		}
	}
}

// FuzzParseArgs proves bad command lines always come back as wrapped
// errors — never a panic, never a silent success with an invalid config.
func FuzzParseArgs(f *testing.F) {
	f.Add("-duration 5s -workers 8")
	f.Add("-mix 1:2:3 -rate 1e6")
	f.Add("-mix ::: -batch -9")
	f.Add("-rate inf -population 0")
	f.Add("-seed 9223372036854775807 -zipf-skew 1e308")
	f.Fuzz(func(t *testing.T, line string) {
		args := strings.Fields(line)
		cfg, err := ParseArgs(args)
		if err != nil {
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("ParseArgs(%q) error %v does not wrap ErrConfig", args, err)
			}
			return
		}
		// Whatever parses must also validate: ParseArgs may not hand the
		// driver a config Validate would reject.
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseArgs(%q) returned invalid config: %v", args, err)
		}
	})
}

// FuzzParseMix proves arbitrary mix strings never panic and never
// produce a zero-weight mix.
func FuzzParseMix(f *testing.F) {
	f.Add("90:9:1")
	f.Add("::::")
	f.Add("1e309:0")
	f.Add("-0:NaN")
	f.Add("\x00:\xff")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMix(s)
		if err != nil {
			if !errors.Is(err, ErrConfig) {
				t.Fatalf("ParseMix(%q) error %v does not wrap ErrConfig", s, err)
			}
			return
		}
		if m.Submit+m.Query+m.Mine <= 0 {
			t.Fatalf("ParseMix(%q) accepted zero-weight mix %+v", s, m)
		}
	})
}
