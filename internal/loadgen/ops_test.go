package loadgen

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// opsRegistry builds a registry declaring every required family, with
// enough recorded traffic that AddServerMetrics has quantiles to fold.
func opsRegistry(t *testing.T) *telemetry.Registry {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("frapp_http_requests_total", "req",
		telemetry.L("route", "/v1/submit-batch"), telemetry.L("code", "2xx"), telemetry.L("wire", "json")).Add(5)
	h := reg.Histogram("frapp_http_request_duration_seconds", "dur",
		telemetry.L("route", "/v1/submit-batch"))
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	reg.Gauge("frapp_http_requests_inflight", "inflight")
	reg.Counter("frapp_ingest_records_total", "recs", telemetry.L("shard", "0"))
	reg.Gauge("frapp_jobs_queue_depth", "depth")
	reg.Gauge("frapp_uptime_seconds", "up")
	return reg
}

func opsServer(t *testing.T, reg *telemetry.Registry) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(telemetry.OpsHandler(reg, nil))
	t.Cleanup(srv.Close)
	return srv
}

func TestScrapeOps(t *testing.T) {
	srv := opsServer(t, opsRegistry(t))
	raw, expo, err := ScrapeOps(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || expo == nil {
		t.Fatal("empty scrape")
	}
	if missing := expo.CheckFamilies(RequiredFamilies); len(missing) > 0 {
		t.Fatalf("missing families %v", missing)
	}
}

func TestScrapeOpsMissingFamilyFails(t *testing.T) {
	// A registry without the duration histogram must fail the gate.
	reg := telemetry.NewRegistry()
	reg.Counter("frapp_http_requests_total", "req")
	srv := opsServer(t, reg)
	_, _, err := ScrapeOps(srv.URL)
	if err == nil || !strings.Contains(err.Error(), "missing declared metric families") {
		t.Fatalf("err = %v, want missing-families failure", err)
	}
}

func TestScrapeOpsUnparseableFails(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not { exposition format\n"))
	}))
	defer srv.Close()
	_, _, err := ScrapeOps(srv.URL)
	if err == nil || !strings.Contains(err.Error(), "unparseable") {
		t.Fatalf("err = %v, want unparseable failure", err)
	}
}

func TestScrapeOpsUnreachableFails(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close()
	if _, _, err := ScrapeOps(srv.URL); err == nil {
		t.Fatal("scrape of closed server succeeded")
	}
}

func TestAddServerMetrics(t *testing.T) {
	reg := opsRegistry(t)
	srv := opsServer(t, reg)
	_, expo, err := ScrapeOps(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rpt := &Report{Config: ReportConfig{Scheme: "gamma"}}
	AddServerMetrics(rpt, expo)

	p99, ok := rpt.metric("load_submit", "server_p99_ns")
	if !ok {
		t.Fatal("no server_p99_ns for load_submit")
	}
	// 100 samples 1..100ms: p99 lands near 99ms (log-bucketed).
	if p99 < 50e6 || p99 > 150e6 {
		t.Fatalf("server p99 = %vns, want ~99ms", p99)
	}
	if n, ok := rpt.metric("load_submit", "server_requests"); !ok || n != 100 {
		t.Fatalf("server_requests = %v,%v want 100", n, ok)
	}
	// Routes with no traffic add nothing.
	if _, ok := rpt.metric("load_query", "server_p99_ns"); ok {
		t.Fatal("unexercised route grew server metrics")
	}
}

func TestAddServerMetricsEmptyExposition(t *testing.T) {
	expo, err := telemetry.ParseExposition(nil)
	if err != nil {
		t.Fatal(err)
	}
	rpt := &Report{}
	AddServerMetrics(rpt, expo)
	if len(rpt.Results) != 0 {
		t.Fatalf("empty exposition grew %d records", len(rpt.Results))
	}
}
