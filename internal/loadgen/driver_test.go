package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// testConfig returns a small, fast, valid config for driver tests.
func testConfig() *Config {
	cfg, err := ParseArgs(nil)
	if err != nil {
		panic(err)
	}
	cfg.Population = 2048
	cfg.Batch = 64
	cfg.QueryBatch = 4
	cfg.Workers = 16
	cfg.Rate = 400
	cfg.Duration = 600 * time.Millisecond
	return cfg
}

// startLoadServer brings up an httptest frapp-server matching cfg's
// schema/scheme/privacy contract.
func startLoadServer(t *testing.T, cfg *Config) *httptest.Server {
	t.Helper()
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := service.NewServer(pop.Schema,
		core.PrivacySpec{Rho1: cfg.Rho1, Rho2: cfg.Rho2},
		service.WithScheme(cfg.Scheme))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestBuildPopulationDeterministic(t *testing.T) {
	cfg := testConfig()
	a, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DB.N() != cfg.Population || b.DB.N() != cfg.Population {
		t.Fatalf("population sizes %d, %d; want %d", a.DB.N(), b.DB.N(), cfg.Population)
	}
	for i := range a.DB.Records {
		for j := range a.DB.Records[i] {
			if a.DB.Records[i][j] != b.DB.Records[i][j] {
				t.Fatalf("record %d attr %d differs across same-seed builds", i, j)
			}
		}
	}
	if len(a.Probes) != len(b.Probes) {
		t.Fatalf("probe counts %d vs %d", len(a.Probes), len(b.Probes))
	}
	for i := range a.Probes {
		if a.Probes[i].Exact != b.Probes[i].Exact {
			t.Fatalf("probe %d exact support differs: %d vs %d", i, a.Probes[i].Exact, b.Probes[i].Exact)
		}
	}
}

func TestPopulationProbes(t *testing.T) {
	cfg := testConfig()
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := pop.Schema.M()
	want := 2*m + (m - 1)
	if len(pop.Probes) != want {
		t.Fatalf("got %d probes, want %d (2 per attribute + adjacent pairs)", len(pop.Probes), want)
	}
	anySupport := false
	for i, p := range pop.Probes {
		if len(p.Filter) != len(p.Items) {
			t.Fatalf("probe %d filter has %d keys for %d items", i, len(p.Filter), len(p.Items))
		}
		if p.Exact < 0 || p.Exact > pop.DB.N() {
			t.Fatalf("probe %d exact support %d out of range", i, p.Exact)
		}
		if p.Exact > 0 {
			anySupport = true
		}
		// Hot singletons of a Zipf-skewed population must be genuinely
		// hot: more frequent than the uniform share.
		if len(p.Items) == 1 {
			attr := p.Items[0].Attr
			uniform := pop.DB.N() / len(pop.Schema.Attrs[attr].Categories)
			if p.Exact < uniform/2 {
				t.Errorf("probe %d: hot cell support %d below half the uniform share %d", i, p.Exact, uniform)
			}
		}
	}
	if !anySupport {
		t.Fatal("no probe has any support")
	}
}

func TestFilterBatches(t *testing.T) {
	cfg := testConfig()
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batches := pop.FilterBatches(cfg.QueryBatch)
	if len(batches) != len(pop.Probes) {
		t.Fatalf("got %d batches, want %d", len(batches), len(pop.Probes))
	}
	for i, b := range batches {
		if len(b) != cfg.QueryBatch {
			t.Fatalf("batch %d has %d filters, want %d", i, len(b), cfg.QueryBatch)
		}
	}
	if pop.FilterBatches(0) != nil {
		t.Fatal("FilterBatches(0) should be nil")
	}
}

func TestPrepareBatchesCoversPopulation(t *testing.T) {
	cfg := testConfig()
	ts := startLoadServer(t, cfg)
	cfg.Target = ts.URL
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewWorkloadClient(cfg, WithRunHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	batches, err := PrepareBatches(cfg, pop, client)
	if err != nil {
		t.Fatal(err)
	}
	wantBatches := (cfg.Population + cfg.Batch - 1) / cfg.Batch
	if len(batches) != wantBatches {
		t.Fatalf("got %d batches, want %d", len(batches), wantBatches)
	}
	total := 0
	for _, b := range batches {
		total += b.Len()
		if b.WireSize() <= 0 {
			t.Fatal("empty wire body")
		}
	}
	if total != cfg.Population {
		t.Fatalf("prepared %d records, want %d", total, cfg.Population)
	}
	// Same seed must produce byte-identical payloads regardless of the
	// parallel preparation order.
	again, err := PrepareBatches(cfg, pop, client)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batches {
		if batches[i].WireSize() != again[i].WireSize() {
			t.Fatalf("batch %d wire size differs across same-seed prepares", i)
		}
	}
}

func TestRunOpenLoop(t *testing.T) {
	cfg := testConfig()
	ts := startLoadServer(t, cfg)
	cfg.Target = ts.URL
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(context.Background(), cfg, pop, WithRunHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dispatched == 0 || stats.Dispatched > stats.Scheduled {
		t.Fatalf("dispatched %d of %d scheduled", stats.Dispatched, stats.Scheduled)
	}
	if stats.Rec.OK(ClassSubmit) == 0 {
		t.Fatal("no successful submits")
	}
	if stats.Rec.Failed(ClassSubmit) > 0 || stats.Rec.Failed(ClassQuery) > 0 {
		t.Fatalf("hard failures: submit %d, query %d", stats.Rec.Failed(ClassSubmit), stats.Rec.Failed(ClassQuery))
	}
	if stats.Rec.Records() == 0 || stats.RecordsPerSec() <= 0 {
		t.Fatalf("no ingested records (%d)", stats.Rec.Records())
	}
	if stats.ServerRecords <= 0 {
		t.Fatalf("server records %d", stats.ServerRecords)
	}
	if stats.Scheme != cfg.Scheme {
		t.Fatalf("negotiated scheme %q, want %q", stats.Scheme, cfg.Scheme)
	}
	if stats.OfferedRate() <= 0 || stats.AchievedRate() <= 0 {
		t.Fatalf("rates offered=%v achieved=%v", stats.OfferedRate(), stats.AchievedRate())
	}

	rpt := BuildReport(cfg, stats)
	for _, metric := range []string{"p50_ns", "p95_ns", "p99_ns", "max_ns"} {
		v, ok := rpt.metric("load_submit", metric)
		if !ok || v <= 0 {
			t.Fatalf("report missing load_submit %s", metric)
		}
	}
	if v, ok := rpt.metric("load_total", "records_per_sec"); !ok || v <= 0 {
		t.Fatal("report missing records_per_sec")
	}
	if rpt.Config.Mix != cfg.Mix.String() {
		t.Fatalf("report mix %q, want %q", rpt.Config.Mix, cfg.Mix.String())
	}
	if s := rpt.Summary(); s == "" {
		t.Fatal("empty summary")
	}
}

// TestRunBinaryWire: a short open-loop run over the binary wire form
// completes with zero hard failures and counts every submitted record
// on the server — the fast path is a drop-in for the JSON default.
func TestRunBinaryWire(t *testing.T) {
	cfg := testConfig()
	cfg.Wire = service.WireBinary
	ts := startLoadServer(t, cfg)
	cfg.Target = ts.URL
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(context.Background(), cfg, pop, WithRunHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rec.OK(ClassSubmit) == 0 {
		t.Fatal("no successful submits")
	}
	if stats.Rec.Failed(ClassSubmit) > 0 {
		t.Fatalf("hard submit failures: %d", stats.Rec.Failed(ClassSubmit))
	}
	if uint64(stats.ServerRecords) < stats.Rec.Records() {
		t.Fatalf("server records %d < client-counted %d", stats.ServerRecords, stats.Rec.Records())
	}
	if rpt := BuildReport(cfg, stats); rpt.Config.Wire != service.WireBinary {
		t.Fatalf("report wire %q", rpt.Config.Wire)
	}
}

func TestRunCancel(t *testing.T) {
	cfg := testConfig()
	cfg.Duration = 30 * time.Second
	cfg.Rate = 50
	ts := startLoadServer(t, cfg)
	cfg.Target = ts.URL
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	stats, err := Run(ctx, cfg, pop, WithRunHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
	if stats.Dispatched >= stats.Scheduled {
		t.Fatalf("cancellation did not cut the schedule: %d of %d", stats.Dispatched, stats.Scheduled)
	}
}

func TestRunRejectsSchemeMismatch(t *testing.T) {
	cfg := testConfig()
	ts := startLoadServer(t, cfg) // gamma server
	cfg.Target = ts.URL
	cfg.Scheme = "mask"
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), cfg, pop, WithRunHTTPClient(ts.Client())); err == nil {
		t.Fatal("scheme mismatch accepted")
	}
}

// TestQueryEquivalence is the acceptance check: the Zipf population's
// exact supports must be recovered by /v1/query within the reported 95%
// CI on at least 95% of the probed itemsets, at a fixed seed.
func TestQueryEquivalence(t *testing.T) {
	cfg := testConfig()
	cfg.Population = 30000
	cfg.Batch = 500
	ts := startLoadServer(t, cfg)
	cfg.Target = ts.URL
	pop, err := BuildPopulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewWorkloadClient(cfg, WithRunHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	batches, err := PrepareBatches(cfg, pop, client)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if err := client.SubmitPrepared(b); err != nil {
			t.Fatal(err)
		}
	}
	filters := make([]service.QueryFilter, len(pop.Probes))
	for i, p := range pop.Probes {
		filters[i] = p.Filter
	}
	resp, err := client.QueryAll(filters)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Records != cfg.Population {
		t.Fatalf("server estimated over %d records, want %d", resp.Records, cfg.Population)
	}
	covered := 0
	for i, est := range resp.Estimates {
		exact := float64(pop.Probes[i].Exact)
		if est.Lo <= exact && exact <= est.Hi {
			covered++
		} else {
			t.Logf("probe %d %v: exact %v outside CI [%.1f, %.1f] (count %.1f)",
				i, pop.Probes[i].Items, exact, est.Lo, est.Hi, est.Count)
		}
	}
	need := (len(pop.Probes)*95 + 99) / 100
	if covered < need {
		t.Fatalf("CI covered exact support on %d/%d probes, need ≥ %d", covered, len(pop.Probes), need)
	}
}
