package loadgen

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/mining"
	"repro/internal/registry"
	"repro/internal/service"
)

// ErrConfig is returned for invalid harness configuration; every parse
// or validation failure wraps it, so bad input always surfaces as a
// diagnostic, never a panic.
var ErrConfig = errors.New("loadgen: invalid config")

// Mix is the traffic mix: relative weights of the three endpoint
// classes. Weights need not sum to anything particular; only ratios
// matter.
type Mix struct {
	Submit float64
	Query  float64
	Mine   float64
}

// ParseMix parses "submit:query:mine" weight ratios, e.g. "90:9:1".
// One or two components are allowed and leave the rest at 0
// ("100" = submit-only, "80:20" = no mine traffic).
func ParseMix(s string) (Mix, error) {
	parts := strings.Split(s, ":")
	if len(parts) == 0 || len(parts) > 3 {
		return Mix{}, fmt.Errorf("%w: mix %q must be submit[:query[:mine]]", ErrConfig, s)
	}
	vals := make([]float64, 3)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return Mix{}, fmt.Errorf("%w: mix component %q: %v", ErrConfig, p, err)
		}
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Mix{}, fmt.Errorf("%w: mix component %q must be a finite non-negative weight", ErrConfig, p)
		}
		vals[i] = v
	}
	m := Mix{Submit: vals[0], Query: vals[1], Mine: vals[2]}
	if m.Submit+m.Query+m.Mine <= 0 {
		return Mix{}, fmt.Errorf("%w: mix %q has zero total weight", ErrConfig, s)
	}
	return m, nil
}

// String renders the mix in the flag's own syntax.
func (m Mix) String() string {
	return fmt.Sprintf("%g:%g:%g", m.Submit, m.Query, m.Mine)
}

// weights returns the class weights in Classes() order.
func (m Mix) weights() [numClasses]float64 {
	return [numClasses]float64{ClassSubmit: m.Submit, ClassQuery: m.Query, ClassMine: m.Mine}
}

// Config is one load run, fully specified: every knob the report's
// config block pins so a trajectory point is reproducible.
type Config struct {
	// Target is the base URL of the frapp-server under test; empty means
	// self-host an in-process server (same handler stack, no network
	// beyond the loopback HTTP transport).
	Target string
	// Schema and privacy contract of the collection (must match the
	// target server's).
	Schema     string
	Scheme     string
	Rho1, Rho2 float64
	// Duration is how long the open-loop schedule runs.
	Duration time.Duration
	// Workers is the number of simulated concurrent clients draining the
	// open-loop schedule.
	Workers int
	// Rate is the offered operation arrival rate (ops/sec across all
	// classes); each submit op carries Batch records.
	Rate float64
	// Batch is records per submit-batch operation.
	Batch int
	// QueryBatch is filters per query operation.
	QueryBatch int
	// Wire is the submit-batch wire form: "json" (default, also "") or
	// "binary" (the compact index encoding with pooled server decode).
	Wire string
	// Mix is the class weight ratio.
	Mix Mix
	// Population is the synthetic population size (records prepared and
	// cycled by submit traffic).
	Population int
	// Seed drives population synthesis, perturbation, and the arrival
	// schedule; a fixed seed gives a reproducible workload.
	Seed int64
	// Skew is the Zipf exponent of category frequencies.
	Skew float64
	// State is a durable-store directory for the self-hosted server
	// ("" = in-memory only). Ignored when Target is set: the remote
	// server owns its own durability. Lets the perf gate measure the
	// handler stack with the WAL enabled.
	State string
	// Collection is the named collection the workload targets
	// ("" = the default collection on the legacy un-prefixed routes).
	// Against a remote server the collection must already exist; a
	// self-hosted run creates it in an in-process registry and drives
	// it through the full /v1/collections/{name}/ routing path, so the
	// perf gate measures multi-tenant dispatch, not just the bare
	// handler stack.
	Collection string
	// OpsTarget is the base URL of the target server's ops listener
	// (frapp-server -ops-addr). When set, the harness scrapes /metrics
	// after the run, folds the server-observed latency quantiles into the
	// report next to the client-observed ones, and fails the run if the
	// scrape is unparseable or missing a declared metric family. When
	// self-hosting it defaults to a loopback ops listener the harness
	// binds itself, so the scrape gate always runs in CI.
	OpsTarget string
	// MetricsOut is where the raw /metrics scrape is saved
	// ("" = don't save). Only meaningful with an ops target.
	MetricsOut string
	// Out is the BENCH_load.json path ("" = don't write).
	Out string
	// Baseline is the committed baseline report to gate against
	// ("" = no gate).
	Baseline string
	// P99Tol is the allowed p99 latency growth factor vs baseline;
	// RateTol is the required fraction of baseline records/sec.
	P99Tol  float64
	RateTol float64
}

// newFlagSet binds every knob to cfg; shared by ParseArgs and Usage so
// the help text can never drift from the parser.
func newFlagSet(cfg *Config, mix *string) *flag.FlagSet {
	fs := flag.NewFlagSet("frapp-loadgen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.StringVar(&cfg.Target, "target", "", "base URL of the frapp-server under test (empty = self-hosted in-process server)")
	fs.StringVar(&cfg.Schema, "schema", "census", "collection schema: census or health")
	fs.StringVar(&cfg.Scheme, "scheme", "gamma", "perturbation scheme: gamma, mask, or cutpaste")
	fs.Float64Var(&cfg.Rho1, "rho1", 0.05, "privacy prior bound rho1")
	fs.Float64Var(&cfg.Rho2, "rho2", 0.50, "privacy posterior bound rho2")
	fs.DurationVar(&cfg.Duration, "duration", 30*time.Second, "open-loop run duration")
	fs.IntVar(&cfg.Workers, "workers", 256, "simulated concurrent clients")
	fs.Float64Var(&cfg.Rate, "rate", 2000, "offered operation rate, ops/sec across all classes")
	fs.IntVar(&cfg.Batch, "batch", 128, "records per submit-batch operation")
	fs.IntVar(&cfg.QueryBatch, "query-batch", 16, "filters per query operation")
	fs.StringVar(&cfg.Wire, "wire", service.WireJSON, "submit-batch wire form: json or binary")
	fs.StringVar(mix, "mix", "90:9:1", "traffic mix submit:query:mine weight ratio")
	fs.IntVar(&cfg.Population, "population", 100000, "synthetic population size")
	fs.Int64Var(&cfg.Seed, "seed", 2005, "seed for population, perturbation, and arrival schedule")
	fs.Float64Var(&cfg.Skew, "zipf-skew", 1.1, "Zipf exponent of category frequencies")
	fs.StringVar(&cfg.State, "state", "", "durable state directory for the self-hosted server (empty = in-memory; ignored with -target)")
	fs.StringVar(&cfg.Collection, "collection", "", "named collection to drive via /v1/collections/{name}/ routes (empty = the default collection; self-hosted runs create it)")
	fs.StringVar(&cfg.OpsTarget, "ops-target", "", "base URL of the target's ops listener to scrape /metrics from (self-hosted runs default to a built-in loopback ops listener)")
	fs.StringVar(&cfg.MetricsOut, "metrics-out", "", "save the raw post-run /metrics scrape to this path (empty = don't save)")
	fs.StringVar(&cfg.Out, "out", "BENCH_load.json", "machine-readable report path (empty = don't write)")
	fs.StringVar(&cfg.Baseline, "baseline", "", "baseline report to gate p99/throughput against (empty = no gate)")
	fs.Float64Var(&cfg.P99Tol, "p99-tol", 4.0, "allowed p99 latency growth factor vs baseline")
	fs.Float64Var(&cfg.RateTol, "rate-tol", 0.25, "required fraction of baseline records/sec")
	return fs
}

// ParseArgs parses frapp-loadgen's command line into a validated
// Config. Errors (including -h) come back as values; nothing panics
// and nothing is printed, so the caller owns the diagnostics.
func ParseArgs(args []string) (*Config, error) {
	cfg := &Config{}
	var mix string
	fs := newFlagSet(cfg, &mix)
	if err := fs.Parse(args); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("%w: unexpected arguments %q", ErrConfig, fs.Args())
	}
	m, err := ParseMix(mix)
	if err != nil {
		return nil, err
	}
	cfg.Mix = m
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Usage returns the flag help text (ParseArgs itself prints nothing).
func Usage() string {
	var sb strings.Builder
	sb.WriteString("frapp-loadgen drives a FRAPP collection server open-loop and gates perf regressions.\n\n")
	var mix string
	fs := newFlagSet(&Config{}, &mix)
	fs.SetOutput(&sb)
	fs.PrintDefaults()
	return sb.String()
}

// Validate rejects configurations the driver cannot run safely.
func (c *Config) Validate() error {
	switch c.Schema {
	case "census", "health":
	default:
		return fmt.Errorf("%w: unknown schema %q", ErrConfig, c.Schema)
	}
	if !validScheme(c.Scheme) {
		return fmt.Errorf("%w: unknown scheme %q", ErrConfig, c.Scheme)
	}
	if c.Duration <= 0 || c.Duration > 24*time.Hour {
		return fmt.Errorf("%w: duration %v out of (0, 24h]", ErrConfig, c.Duration)
	}
	if c.Workers < 1 || c.Workers > 1<<16 {
		return fmt.Errorf("%w: workers %d out of [1, 65536]", ErrConfig, c.Workers)
	}
	if !(c.Rate > 0) || math.IsInf(c.Rate, 0) || c.Rate > 1e8 {
		return fmt.Errorf("%w: rate %v out of (0, 1e8] ops/sec", ErrConfig, c.Rate)
	}
	if c.Batch < 1 || c.Batch > 1<<20 {
		return fmt.Errorf("%w: batch %d out of [1, 1048576]", ErrConfig, c.Batch)
	}
	if c.QueryBatch < 1 || c.QueryBatch > 1<<16 {
		return fmt.Errorf("%w: query-batch %d out of [1, 65536]", ErrConfig, c.QueryBatch)
	}
	switch c.Wire {
	case "":
		c.Wire = service.WireJSON
	case service.WireJSON, service.WireBinary:
	default:
		return fmt.Errorf("%w: unknown wire form %q (want %q or %q)", ErrConfig, c.Wire, service.WireJSON, service.WireBinary)
	}
	w := c.Mix.weights()
	var total float64
	for _, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: mix weight %v", ErrConfig, v)
		}
		total += v
	}
	if total <= 0 {
		return fmt.Errorf("%w: mix has zero total weight", ErrConfig)
	}
	if c.Population < c.Batch {
		return fmt.Errorf("%w: population %d smaller than one batch (%d)", ErrConfig, c.Population, c.Batch)
	}
	if c.Population > 1<<24 {
		return fmt.Errorf("%w: population %d exceeds 16M", ErrConfig, c.Population)
	}
	if c.Skew < 0 || math.IsNaN(c.Skew) || math.IsInf(c.Skew, 0) {
		return fmt.Errorf("%w: zipf-skew %v", ErrConfig, c.Skew)
	}
	if c.Collection != "" && !registry.ValidName(c.Collection) {
		return fmt.Errorf("%w: bad collection name %q", ErrConfig, c.Collection)
	}
	if !(c.Rho1 > 0) || !(c.Rho2 > c.Rho1) || c.Rho2 >= 1 {
		return fmt.Errorf("%w: privacy bounds rho1=%v rho2=%v need 0 < rho1 < rho2 < 1", ErrConfig, c.Rho1, c.Rho2)
	}
	if !(c.P99Tol >= 1) || math.IsInf(c.P99Tol, 0) {
		return fmt.Errorf("%w: p99-tol %v must be ≥ 1", ErrConfig, c.P99Tol)
	}
	if !(c.RateTol > 0) || c.RateTol > 1 {
		return fmt.Errorf("%w: rate-tol %v out of (0, 1]", ErrConfig, c.RateTol)
	}
	return nil
}

// validScheme checks the name against the mining registry.
func validScheme(name string) bool {
	for _, s := range mining.SchemeNames() {
		if s == name {
			return true
		}
	}
	return false
}
