package loadgen

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/service"
)

// Probe is one itemset the workload queries, carried with its exact
// support in the generated population — the ground truth /v1/query
// estimates are checked against.
type Probe struct {
	Items  mining.Itemset
	Filter service.QueryFilter
	// Exact is the number of population records matching the itemset.
	Exact int
}

// Population is a seeded synthetic client population: the records the
// simulated clients will perturb and submit, plus the hot-cell probe
// itemsets their query traffic asks about.
type Population struct {
	Schema *dataset.Schema
	Model  *dataset.MixtureModel
	DB     *dataset.Database
	Probes []Probe
}

// BuildPopulation synthesizes the population for cfg: Zipf-skewed
// marginals with correlated profiles (hot cells), cfg.Population
// records, and probe itemsets of arity 1 and 2 concentrated on the hot
// cells, each with its exact support counted against the generated
// records. Everything derives from cfg.Seed.
func BuildPopulation(cfg *Config) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var schema *dataset.Schema
	switch cfg.Schema {
	case "census":
		schema = dataset.CensusSchema()
	case "health":
		schema = dataset.HealthSchema()
	default:
		return nil, fmt.Errorf("%w: unknown schema %q", ErrConfig, cfg.Schema)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model, err := dataset.ZipfMixture(schema, dataset.ZipfConfig{
		Skew:          cfg.Skew,
		Profiles:      8,
		ProfileWeight: 0.3,
		Fidelity:      0.95,
	}, rng)
	if err != nil {
		return nil, err
	}
	db, err := model.Generate(cfg.Population, rng)
	if err != nil {
		return nil, err
	}
	probes, err := buildProbes(model, db)
	if err != nil {
		return nil, err
	}
	return &Population{Schema: schema, Model: model, DB: db, Probes: probes}, nil
}

// buildProbes assembles the hot-cell probe set: the two hottest
// singleton cells of every attribute, plus the hottest pair cell of
// every adjacent attribute pair — the realistic shape of interactive
// traffic, which asks about heads, not tails. Exact supports are
// counted in one scan over the population.
func buildProbes(model *dataset.MixtureModel, db *dataset.Database) ([]Probe, error) {
	schema := db.Schema
	var sets []mining.Itemset
	for j := 0; j < schema.M(); j++ {
		hot, err := model.HotCategories(j)
		if err != nil {
			return nil, err
		}
		for k := 0; k < 2 && k < len(hot); k++ {
			set, err := mining.NewItemset(mining.Item{Attr: j, Value: hot[k]})
			if err != nil {
				return nil, err
			}
			sets = append(sets, set)
		}
	}
	for j := 0; j+1 < schema.M(); j++ {
		hotA, err := model.HotCategories(j)
		if err != nil {
			return nil, err
		}
		hotB, err := model.HotCategories(j + 1)
		if err != nil {
			return nil, err
		}
		set, err := mining.NewItemset(
			mining.Item{Attr: j, Value: hotA[0]},
			mining.Item{Attr: j + 1, Value: hotB[0]},
		)
		if err != nil {
			return nil, err
		}
		sets = append(sets, set)
	}
	probes := make([]Probe, len(sets))
	for i, set := range sets {
		probes[i] = Probe{Items: set, Filter: filterFor(schema, set)}
	}
	for _, rec := range db.Records {
		for i := range probes {
			if matches(rec, probes[i].Items) {
				probes[i].Exact++
			}
		}
	}
	return probes, nil
}

// filterFor renders an itemset as the /v1/query wire filter.
func filterFor(schema *dataset.Schema, set mining.Itemset) service.QueryFilter {
	f := make(service.QueryFilter, len(set))
	for _, it := range set {
		a := schema.Attrs[it.Attr]
		f[a.Name] = a.Categories[it.Value]
	}
	return f
}

// matches reports whether rec supports the itemset.
func matches(rec dataset.Record, set mining.Itemset) bool {
	for _, it := range set {
		if rec[it.Attr] != it.Value {
			return false
		}
	}
	return true
}

// FilterBatches slices the probe filters into query-op payloads of size
// n, cycling so every batch is full.
func (p *Population) FilterBatches(n int) [][]service.QueryFilter {
	if n <= 0 || len(p.Probes) == 0 {
		return nil
	}
	// One batch per probe offset, each n filters, wrapping around the
	// probe set: every probe appears in n batches, every batch is full.
	batches := make([][]service.QueryFilter, len(p.Probes))
	for off := range batches {
		batch := make([]service.QueryFilter, n)
		for i := 0; i < n; i++ {
			batch[i] = p.Probes[(off+i)%len(p.Probes)].Filter
		}
		batches[off] = batch
	}
	return batches
}
