package loadgen

import (
	"testing"
	"time"
)

// The Histogram implementation (and its quantile/merge/concurrency
// tests) lives in internal/telemetry since its promotion; this file
// covers only the loadgen-side Recorder wrapper.

func TestRecorderCounters(t *testing.T) {
	r := NewRecorder()
	r.Success(ClassSubmit, time.Millisecond, 128)
	r.Success(ClassSubmit, 2*time.Millisecond, 128)
	r.Success(ClassQuery, 100*time.Microsecond, 0)
	r.Failure(ClassMine, true)
	r.Failure(ClassQuery, false)
	if r.OK(ClassSubmit) != 2 || r.OK(ClassQuery) != 1 || r.OK(ClassMine) != 0 {
		t.Fatalf("ok counters: %d %d %d", r.OK(ClassSubmit), r.OK(ClassQuery), r.OK(ClassMine))
	}
	if r.Records() != 256 {
		t.Fatalf("records = %d", r.Records())
	}
	if r.Rejected(ClassMine) != 1 || r.Failed(ClassQuery) != 1 {
		t.Fatalf("rejected/failed: %d %d", r.Rejected(ClassMine), r.Failed(ClassQuery))
	}
	if r.Hist(ClassSubmit).Count() != 2 {
		t.Fatalf("submit hist count %d", r.Hist(ClassSubmit).Count())
	}
	if r.Hist(ClassSubmit).Quantile(0.5) < time.Millisecond {
		t.Fatalf("submit p50 = %v", r.Hist(ClassSubmit).Quantile(0.5))
	}
}
