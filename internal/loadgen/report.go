package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// BENCH_load.json shares the frapp-bench -json record shape — a config
// block plus a flat list of {experiment, metric, value, unit, ns_per_op}
// records — so the perf-trajectory tooling reads both artifacts the
// same way. Endpoint classes are encoded in the experiment name
// (load_submit, load_query, load_mine, load_total).

// ReportRecord is one measurement, field-compatible with frapp-bench's
// benchRecord.
type ReportRecord struct {
	Experiment string  `json:"experiment"`
	Scheme     string  `json:"scheme,omitempty"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit,omitempty"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
}

// ReportConfig pins every knob the run was measured under.
type ReportConfig struct {
	Target     string  `json:"target"`
	Schema     string  `json:"schema"`
	Scheme     string  `json:"scheme"`
	Rho1       float64 `json:"rho1"`
	Rho2       float64 `json:"rho2"`
	DurationNs int64   `json:"duration_ns"`
	Workers    int     `json:"workers"`
	Rate       float64 `json:"rate_ops_per_sec"`
	Batch      int     `json:"batch"`
	QueryBatch int     `json:"query_batch"`
	Wire       string  `json:"wire,omitempty"`
	Mix        string  `json:"mix"`
	Population int     `json:"population"`
	Seed       int64   `json:"seed"`
	Skew       float64 `json:"zipf_skew"`
}

// Report is the BENCH_load.json payload.
type Report struct {
	Config  ReportConfig   `json:"config"`
	Results []ReportRecord `json:"results"`
}

// quantileMetrics is the latency summary every class reports.
var quantileMetrics = []struct {
	name string
	q    float64
}{
	{"p50_ns", 0.50},
	{"p95_ns", 0.95},
	{"p99_ns", 0.99},
	{"max_ns", 1},
}

// BuildReport renders one run's stats as the machine-readable report.
func BuildReport(cfg *Config, stats *RunStats) *Report {
	rpt := &Report{
		Config: ReportConfig{
			Target: cfg.Target, Schema: cfg.Schema, Scheme: cfg.Scheme,
			Rho1: cfg.Rho1, Rho2: cfg.Rho2,
			DurationNs: cfg.Duration.Nanoseconds(),
			Workers:    cfg.Workers, Rate: cfg.Rate,
			Batch: cfg.Batch, QueryBatch: cfg.QueryBatch,
			Wire:       cfg.Wire,
			Mix:        cfg.Mix.String(),
			Population: cfg.Population, Seed: cfg.Seed, Skew: cfg.Skew,
		},
	}
	add := func(exp, metric string, v float64, unit string, nsPerOp float64) {
		rpt.Results = append(rpt.Results, ReportRecord{
			Experiment: exp, Scheme: stats.Scheme, Metric: metric,
			Value: v, Unit: unit, NsPerOp: nsPerOp,
		})
	}
	for _, c := range Classes() {
		exp := "load_" + c.String()
		h := stats.Rec.Hist(c)
		if h.Count() > 0 {
			for _, qm := range quantileMetrics {
				ns := float64(h.Quantile(qm.q).Nanoseconds())
				add(exp, qm.name, ns, "ns", ns)
			}
			mean := float64(h.Mean().Nanoseconds())
			add(exp, "mean_ns", mean, "ns", mean)
		}
		add(exp, "ops", float64(stats.Rec.OK(c)), "ops", 0)
		add(exp, "errors", float64(stats.Rec.Failed(c)), "ops", 0)
		add(exp, "rejected", float64(stats.Rec.Rejected(c)), "ops", 0)
	}
	add("load_total", "records_per_sec", stats.RecordsPerSec(), "records/s", 0)
	add("load_total", "records", float64(stats.Rec.Records()), "records", 0)
	add("load_total", "offered_ops_per_sec", stats.OfferedRate(), "ops/s", 0)
	add("load_total", "achieved_ops_per_sec", stats.AchievedRate(), "ops/s", 0)
	add("load_total", "scheduled_ops", float64(stats.Scheduled), "ops", 0)
	add("load_total", "dispatched_ops", float64(stats.Dispatched), "ops", 0)
	add("load_total", "elapsed_ns", float64(stats.Elapsed.Nanoseconds()), "ns", 0)
	add("load_total", "prepare_ns", float64(stats.PrepareTime.Nanoseconds()), "ns", 0)
	add("load_total", "prepared_records", float64(stats.PreparedRecords), "records", 0)
	if stats.ServerRecords >= 0 {
		add("load_total", "server_records", float64(stats.ServerRecords), "records", 0)
	}
	return rpt
}

// Write renders the report to path in one final write.
func (r *Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report (e.g. the committed baseline).
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%w: bad report %s: %v", ErrConfig, path, err)
	}
	return &r, nil
}

// metric finds one (experiment, metric) value; ok is false if absent.
func (r *Report) metric(experiment, metric string) (float64, bool) {
	for _, rec := range r.Results {
		if rec.Experiment == experiment && rec.Metric == metric {
			return rec.Value, true
		}
	}
	return 0, false
}

// CompareBaseline gates cur against base: per endpoint class, cur's p99
// must not exceed base's p99 by more than ×p99Tol, and cur's sustained
// records/sec must reach at least rateTol of base's. Metrics absent
// from the baseline gate nothing (so a baseline can be introduced
// incrementally), and the mine class's p99 is exempt — its latency is
// dominated by deliberate queue backpressure. Returns human-readable
// violations; empty means the gate passes.
func CompareBaseline(cur, base *Report, p99Tol, rateTol float64) []string {
	var violations []string
	for _, class := range []Class{ClassSubmit, ClassQuery} {
		exp := "load_" + class.String()
		basep99, ok := base.metric(exp, "p99_ns")
		if !ok || basep99 <= 0 {
			continue
		}
		curp99, ok := cur.metric(exp, "p99_ns")
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: baseline has p99 %.3fms but current run recorded no %s latencies", exp, basep99/1e6, class))
			continue
		}
		if curp99 > basep99*p99Tol {
			violations = append(violations,
				fmt.Sprintf("%s: p99 %.3fms exceeds baseline %.3fms × %.2g tolerance", exp, curp99/1e6, basep99/1e6, p99Tol))
		}
	}
	baseRate, ok := base.metric("load_total", "records_per_sec")
	if ok && baseRate > 0 {
		curRate, ok := cur.metric("load_total", "records_per_sec")
		if !ok || curRate < baseRate*rateTol {
			violations = append(violations,
				fmt.Sprintf("load_total: %.0f records/sec below baseline %.0f × %.2g tolerance", curRate, baseRate, rateTol))
		}
	}
	return violations
}

// Summary renders a human-readable digest of the run for the terminal.
func (r *Report) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "scheme=%s workers=%d rate=%g ops/s mix=%s batch=%d duration=%s population=%d seed=%d\n",
		schemeOf(r), r.Config.Workers, r.Config.Rate, r.Config.Mix, r.Config.Batch,
		time.Duration(r.Config.DurationNs), r.Config.Population, r.Config.Seed)
	for _, c := range Classes() {
		exp := "load_" + c.String()
		ops, _ := r.metric(exp, "ops")
		if ops == 0 {
			continue
		}
		errs, _ := r.metric(exp, "errors")
		rej, _ := r.metric(exp, "rejected")
		fmt.Fprintf(&sb, "%-7s %9.0f ops  errors %.0f  rejected %.0f", c, ops, errs, rej)
		for _, qm := range quantileMetrics {
			if v, ok := r.metric(exp, qm.name); ok {
				fmt.Fprintf(&sb, "  %s %s", strings.TrimSuffix(qm.name, "_ns"), time.Duration(v).Round(10*time.Microsecond))
			}
		}
		sb.WriteByte('\n')
	}
	recs, _ := r.metric("load_total", "records_per_sec")
	offered, _ := r.metric("load_total", "offered_ops_per_sec")
	achieved, _ := r.metric("load_total", "achieved_ops_per_sec")
	fmt.Fprintf(&sb, "total   %9.0f records/sec   offered %.0f ops/s   achieved %.0f ops/s\n", recs, offered, achieved)
	return sb.String()
}

// schemeOf digs the scheme out of the records (the config block has it
// too; prefer the measured one if they ever disagree).
func schemeOf(r *Report) string {
	schemes := map[string]bool{}
	for _, rec := range r.Results {
		if rec.Scheme != "" {
			schemes[rec.Scheme] = true
		}
	}
	if len(schemes) == 1 {
		for s := range schemes {
			return s
		}
	}
	if len(schemes) > 1 {
		keys := make([]string, 0, len(schemes))
		for s := range schemes {
			keys = append(keys, s)
		}
		sort.Strings(keys)
		return strings.Join(keys, ",")
	}
	return r.Config.Scheme
}
