package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// The post-run metrics scrape closes the loop between the two latency
// views: the client's (scheduled-time to response, including open-loop
// queueing) and the server's (handler entry to handler exit). A p99 gap
// between them is queueing — in the kernel, the accept queue, or the
// worker pool — and pinning both numbers in the same report makes that
// gap a first-class, trackable quantity instead of a mystery.

// RequiredFamilies is the metric contract a scraped server must declare.
// A scrape missing any of these families fails the run — the perf gate
// doubles as a "did the exporter silently break" gate.
var RequiredFamilies = []string{
	"frapp_http_requests_total",
	"frapp_http_request_duration_seconds",
	"frapp_http_requests_inflight",
	"frapp_ingest_records_total",
	"frapp_jobs_queue_depth",
	"frapp_uptime_seconds",
}

// classRoute maps each workload class to the route label its operations
// carry in the server's RED metrics.
var classRoute = map[Class]string{
	ClassSubmit: "/v1/submit-batch",
	ClassQuery:  "/v1/query",
	ClassMine:   "/v1/mine-jobs",
}

// ScrapeOps fetches and validates opsTarget's /metrics. It returns the
// raw exposition bytes (for -metrics-out and CI artifacts) alongside
// the parsed form; the error is non-nil when the endpoint is
// unreachable, the output unparseable, or a required family missing.
func ScrapeOps(opsTarget string) ([]byte, *telemetry.Exposition, error) {
	url := strings.TrimRight(opsTarget, "/") + "/metrics"
	client := &http.Client{Timeout: 15 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, fmt.Errorf("scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, nil, fmt.Errorf("scrape %s: read: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return raw, nil, fmt.Errorf("scrape %s: status %s", url, resp.Status)
	}
	expo, err := telemetry.ParseExposition(raw)
	if err != nil {
		return raw, nil, fmt.Errorf("scrape %s: unparseable exposition: %w", url, err)
	}
	if missing := expo.CheckFamilies(RequiredFamilies); len(missing) > 0 {
		return raw, expo, fmt.Errorf("scrape %s: missing declared metric families %v", url, missing)
	}
	return raw, expo, nil
}

// AddServerMetrics folds the server-observed side of the run into the
// report: per class, the handler-level latency quantiles and request
// count for that class's route, next to the client-observed quantiles
// already there. Values are converted from the exposition's seconds to
// the report's nanoseconds. Routes the run never exercised (zero
// _count) add nothing.
func AddServerMetrics(rpt *Report, expo *telemetry.Exposition) {
	const durFam = "frapp_http_request_duration_seconds"
	for _, c := range Classes() {
		route := classRoute[c]
		exp := "load_" + c.String()
		n, ok := expo.Value(durFam+"_count", map[string]string{"route": route})
		if !ok || n <= 0 {
			continue
		}
		scheme := rpt.Config.Scheme
		for _, q := range []struct{ metric, quantile string }{
			{"server_p50_ns", "0.5"},
			{"server_p99_ns", "0.99"},
			{"server_max_ns", "1"},
		} {
			v, ok := expo.Value(durFam, map[string]string{"route": route, "quantile": q.quantile})
			if !ok {
				continue
			}
			ns := v * 1e9
			rpt.Results = append(rpt.Results, ReportRecord{
				Experiment: exp, Scheme: scheme, Metric: q.metric,
				Value: ns, Unit: "ns", NsPerOp: ns,
			})
		}
		rpt.Results = append(rpt.Results, ReportRecord{
			Experiment: exp, Scheme: scheme, Metric: "server_requests",
			Value: n, Unit: "ops",
		})
	}
}
