// Package loadgen is the million-user synthetic workload harness: it
// builds Zipf-skewed correlated populations (internal/dataset), drives
// a live FRAPP collection server open-loop with simulated clients
// mixing submit-batch / query / mine-job traffic (internal/service
// client), and records streaming latency histograms per endpoint class
// into a machine-readable BENCH_load.json report with a perf-regression
// gate against a committed baseline.
package loadgen

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear ("HDR-style"): values below 2^histSubBits
// ns get exact unit buckets; every higher octave [2^o, 2^(o+1)) is split
// into 2^histSubBits equal sub-buckets, so the relative quantization
// error is bounded by 2^-histSubBits ≈ 3.1% everywhere. Recording is a
// couple of bit operations plus one atomic add — cheap enough to sit on
// the hot path of every simulated client — and the whole histogram is a
// fixed-size array, so there is nothing to allocate or resize under
// load.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histMaxOctave caps the tracked range: the last regular bucket ends
	// at 2^(histMaxOctave+1) ns ≈ 146 min. Anything slower lands in the
	// overflow bucket and is reported via the exact tracked maximum.
	histMaxOctave = 42
	// histBuckets = unit buckets + sub-buckets per octave above, + 1
	// overflow.
	histBuckets = histSub + (histMaxOctave-histSubBits+1)*histSub + 1
)

// Histogram is a streaming, concurrency-safe log-bucketed latency
// histogram. The zero value is not usable; call NewHistogram.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	u := uint64(ns)
	if u < histSub {
		return int(u)
	}
	o := bits.Len64(u) - 1 // top bit position, ≥ histSubBits
	if o > histMaxOctave {
		return histBuckets - 1 // overflow
	}
	shift := o - histSubBits
	minor := (u >> uint(shift)) & (histSub - 1)
	return (shift+1)*histSub + int(minor)
}

// bucketUpper returns the inclusive upper bound (ns) of bucket idx; the
// overflow bucket has no bound and returns -1.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	if idx >= histBuckets-1 {
		return -1
	}
	k := idx/histSub - 1 // octave offset: o = histSubBits + k
	o := histSubBits + k
	minor := int64(idx - (k+1)*histSub)
	return 1<<uint(o) + (minor+1)<<uint(o-histSubBits) - 1
}

// Record adds one latency observation. Negative durations clamp to 0.
func (h *Histogram) Record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the exact largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the exact arithmetic mean of recorded values.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns an upper bound on the q-th sample quantile (rank
// ceil(q·count), 1-based): the upper edge of the bucket holding that
// sample, so the true sample value v satisfies v ≤ Quantile(q) ≤
// v·(1+2^-5) (exact for v < 32ns). q ≥ 1 and samples in the overflow
// bucket report the exact tracked maximum. Returns 0 on an empty
// histogram; q below the first sample's mass returns that sample's
// bucket bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for idx := 0; idx < histBuckets; idx++ {
		cum += h.counts[idx].Load()
		if cum >= rank {
			upper := bucketUpper(idx)
			if upper < 0 { // overflow bucket
				return h.Max()
			}
			// The tracked max is exact and caps the bound, so a
			// quantile never reports above the largest observation.
			if m := h.Max(); time.Duration(upper) > m {
				return m
			}
			return time.Duration(upper)
		}
	}
	return h.Max()
}

// Merge folds o's observations into h. Not atomic with respect to
// concurrent recording on o; merge quiesced histograms.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Class is an endpoint class of the driven traffic.
type Class int

const (
	// ClassSubmit is POST /v1/submit-batch ingestion traffic.
	ClassSubmit Class = iota
	// ClassQuery is POST /v1/query estimate traffic.
	ClassQuery
	// ClassMine is POST /v1/mine-jobs job-submission traffic.
	ClassMine
	numClasses
)

// String names the class as it appears in reports.
func (c Class) String() string {
	switch c {
	case ClassSubmit:
		return "submit"
	case ClassQuery:
		return "query"
	case ClassMine:
		return "mine"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes lists the endpoint classes in report order.
func Classes() []Class { return []Class{ClassSubmit, ClassQuery, ClassMine} }

// Recorder accumulates per-class latency histograms and outcome
// counters for one run. All methods are safe for concurrent use.
type Recorder struct {
	hist [numClasses]*Histogram
	// ok/failed count operations; rejected counts backpressure refusals
	// (HTTP 503 on a full mine-job queue) separately from hard failures.
	ok       [numClasses]atomic.Uint64
	failed   [numClasses]atomic.Uint64
	rejected [numClasses]atomic.Uint64
	// records counts individual records accepted through submit batches.
	records atomic.Uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	for i := range r.hist {
		r.hist[i] = NewHistogram()
	}
	return r
}

// Success records one completed operation's latency.
func (r *Recorder) Success(c Class, d time.Duration, records int) {
	r.hist[c].Record(d)
	r.ok[c].Add(1)
	if records > 0 {
		r.records.Add(uint64(records))
	}
}

// Failure records a failed operation; rejected marks server
// backpressure (a refusal to enqueue) rather than an error.
func (r *Recorder) Failure(c Class, rejected bool) {
	if rejected {
		r.rejected[c].Add(1)
		return
	}
	r.failed[c].Add(1)
}

// Hist returns the class's histogram.
func (r *Recorder) Hist(c Class) *Histogram { return r.hist[c] }

// OK, Failed, and Rejected return the class's outcome counters.
func (r *Recorder) OK(c Class) uint64       { return r.ok[c].Load() }
func (r *Recorder) Failed(c Class) uint64   { return r.failed[c].Load() }
func (r *Recorder) Rejected(c Class) uint64 { return r.rejected[c].Load() }

// Records returns the total records accepted through submit batches.
func (r *Recorder) Records() uint64 { return r.records.Load() }
