// Package loadgen is the million-user synthetic workload harness: it
// builds Zipf-skewed correlated populations (internal/dataset), drives
// a live FRAPP collection server open-loop with simulated clients
// mixing submit-batch / query / mine-job traffic (internal/service
// client), and records streaming latency histograms per endpoint class
// into a machine-readable BENCH_load.json report with a perf-regression
// gate against a committed baseline.
package loadgen

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Histogram is the shared log-bucketed latency histogram, promoted to
// internal/telemetry so the server's operational metrics and this
// harness record into the same implementation. The alias keeps the
// loadgen API unchanged.
type Histogram = telemetry.Histogram

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return telemetry.NewHistogram() }

// Class is an endpoint class of the driven traffic.
type Class int

const (
	// ClassSubmit is POST /v1/submit-batch ingestion traffic.
	ClassSubmit Class = iota
	// ClassQuery is POST /v1/query estimate traffic.
	ClassQuery
	// ClassMine is POST /v1/mine-jobs job-submission traffic.
	ClassMine
	numClasses
)

// String names the class as it appears in reports.
func (c Class) String() string {
	switch c {
	case ClassSubmit:
		return "submit"
	case ClassQuery:
		return "query"
	case ClassMine:
		return "mine"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classes lists the endpoint classes in report order.
func Classes() []Class { return []Class{ClassSubmit, ClassQuery, ClassMine} }

// Recorder accumulates per-class latency histograms and outcome
// counters for one run. All methods are safe for concurrent use.
type Recorder struct {
	hist [numClasses]*Histogram
	// ok/failed count operations; rejected counts backpressure refusals
	// (HTTP 503 on a full mine-job queue) separately from hard failures.
	ok       [numClasses]atomic.Uint64
	failed   [numClasses]atomic.Uint64
	rejected [numClasses]atomic.Uint64
	// records counts individual records accepted through submit batches.
	records atomic.Uint64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	for i := range r.hist {
		r.hist[i] = NewHistogram()
	}
	return r
}

// Success records one completed operation's latency.
func (r *Recorder) Success(c Class, d time.Duration, records int) {
	r.hist[c].Record(d)
	r.ok[c].Add(1)
	if records > 0 {
		r.records.Add(uint64(records))
	}
}

// Failure records a failed operation; rejected marks server
// backpressure (a refusal to enqueue) rather than an error.
func (r *Recorder) Failure(c Class, rejected bool) {
	if rejected {
		r.rejected[c].Add(1)
		return
	}
	r.failed[c].Add(1)
}

// Hist returns the class's histogram.
func (r *Recorder) Hist(c Class) *Histogram { return r.hist[c] }

// OK, Failed, and Rejected return the class's outcome counters.
func (r *Recorder) OK(c Class) uint64       { return r.ok[c].Load() }
func (r *Recorder) Failed(c Class) uint64   { return r.failed[c].Load() }
func (r *Recorder) Rejected(c Class) uint64 { return r.rejected[c].Load() }

// Records returns the total records accepted through submit batches.
func (r *Recorder) Records() uint64 { return r.records.Load() }
