package federation_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/service"
)

// TestStressFederationSync runs 2 collector sites and 1 coordinator
// with the background sync loop on a tiny interval while submitters
// hammer both sites and readers hammer the coordinator — the race
// detector's view of the whole replication path (delta extraction,
// checkpoint ring, replica application, merge, counter swap). After
// quiescence the coordinator must converge to the exact union.
func TestStressFederationSync(t *testing.T) {
	schema := fedSchema(t)
	sites := []*site{newSite(t, schema), newSite(t, schema)}
	coordSrv, coord, coordTS := newCoordinator(t, schema, sites,
		federation.WithSyncInterval(2*time.Millisecond))
	coord.Start()
	defer coord.Close()

	const (
		submitters       = 4
		perSubmitter     = 120
		totalSubmissions = submitters * perSubmitter
	)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// One scheme-negotiating client per site: submissions are
			// perturbed under whatever scheme the matrix runs.
			clients := make([]*service.Client, len(sites))
			for i, site := range sites {
				c, err := service.NewClient(site.ts.URL, service.WithHTTPClient(site.ts.Client()))
				if err != nil {
					t.Error(err)
					return
				}
				clients[i] = c
			}
			for i := 0; i < perSubmitter; i++ {
				target := rng.Intn(len(sites))
				recs := randomRecords(schema, rng, 1)
				if err := clients[target].SubmitBatch(recs, rng); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(100 + g))
	}

	// Readers: stats and queries against the coordinator while it swaps
	// counters underneath them. Before the first publish the collection
	// is empty (409); anything else non-OK is a failure.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			body, _ := json.Marshal(struct {
				Filters []service.QueryFilter `json:"filters"`
			}{[]service.QueryFilter{{}, {"a": "a0"}}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(coordTS.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
					t.Errorf("query returned %s", resp.Status)
				}
				var qr service.QueryResponse
				if resp.StatusCode == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
						t.Error(err)
					} else if qr.Estimates[0].N != qr.Records {
						t.Errorf("estimate N %d != records %d", qr.Estimates[0].N, qr.Records)
					}
				}
				resp.Body.Close()
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	// Quiesce: one deterministic final pass, then verify exact union.
	if err := coord.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if coordSrv.N() != totalSubmissions {
		t.Fatalf("coordinator has %d records, want %d", coordSrv.N(), totalSubmissions)
	}
	if got := sites[0].srv.N() + sites[1].srv.N(); got != totalSubmissions {
		t.Fatalf("sites hold %d records, want %d", got, totalSubmissions)
	}

	// The converged view answers queries over the full union, stamped
	// with both peers' replication positions.
	qr := queryAll(t, coordTS.URL, queryFilters(schema, rand.New(rand.NewSource(71))))
	if qr.Records != totalSubmissions {
		t.Fatalf("coordinator answers over %d records, want %d", qr.Records, totalSubmissions)
	}
	if len(qr.VersionVector) != len(sites) {
		t.Fatalf("version vector %v, want %d peers", qr.VersionVector, len(sites))
	}
	st := coord.Stats()
	if st.Records != totalSubmissions {
		t.Fatalf("federation stats records %d, want %d", st.Records, totalSubmissions)
	}
	for _, ps := range st.Peers {
		if !ps.Healthy {
			t.Fatalf("peer %s unhealthy after stress: %+v", ps.URL, ps)
		}
	}
}
