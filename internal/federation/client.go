package federation

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"

	"repro/internal/mining"
)

// countingReader counts bytes as they pass through — the wire-size
// probe for the per-peer delta-bytes counter.
type countingReader struct {
	r io.Reader
	n uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// httpReplicate is the production ReplicateFunc: one GET against the
// peer's /v1/replicate endpoint, gob-decoded.
func (co *Coordinator) httpReplicate(ctx context.Context, base string, since, gen uint64) (*mining.CounterDelta, error) {
	u := fmt.Sprintf("%s/v1/replicate?since=%d&gen=%d", base, since, gen)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFederation, err)
	}
	resp, err := co.cfg.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("federation: pulling %s: %w", base, err)
	}
	body := &countingReader{r: resp.Body}
	defer func() {
		// Drain whatever the decoder left unread so the transport can
		// return the connection to the keep-alive pool: a partially read
		// body forces the connection closed, and a sync loop that leaks
		// one connection per pull re-handshakes against every peer on
		// every pass. The delta payload is already bounded by
		// MaxDeltaWireBytes server-side, so the drain is bounded too.
		_, _ = io.Copy(io.Discard, body)
		_ = resp.Body.Close()
		if pm := co.pmet[base]; pm != nil {
			pm.deltaBytes.Add(body.n)
		}
	}()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(body, 512))
		return nil, fmt.Errorf("%w: replicate returned %s: %s", ErrFederation, resp.Status, msg)
	}
	var d mining.CounterDelta
	if err := gob.NewDecoder(io.LimitReader(body, mining.MaxDeltaWireBytes)).Decode(&d); err != nil {
		return nil, fmt.Errorf("%w: bad replicate payload: %v", ErrFederation, err)
	}
	return &d, nil
}
