package federation

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"

	"repro/internal/mining"
)

// httpReplicate is the production ReplicateFunc: one GET against the
// peer's /v1/replicate endpoint, gob-decoded.
func (co *Coordinator) httpReplicate(ctx context.Context, base string, since, gen uint64) (*mining.CounterDelta, error) {
	u := fmt.Sprintf("%s/v1/replicate?since=%d&gen=%d", base, since, gen)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFederation, err)
	}
	resp, err := co.cfg.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("federation: pulling %s: %w", base, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%w: replicate returned %s: %s", ErrFederation, resp.Status, body)
	}
	var d mining.CounterDelta
	if err := gob.NewDecoder(io.LimitReader(resp.Body, mining.MaxDeltaWireBytes)).Decode(&d); err != nil {
		return nil, fmt.Errorf("%w: bad replicate payload: %v", ErrFederation, err)
	}
	return &d, nil
}
