package federation

import (
	"time"

	"repro/internal/telemetry"
)

// WithMetrics registers the coordinator's replication telemetry in reg:
// per-peer sync lag, backoff state, sync/full-resync counts, delta
// traffic, and the coordinator-wide publish counters. Peer URLs are the
// only label values — deployment configuration, never data.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(c *config) { c.metrics = reg }
}

// peerMetrics are the per-peer instruments updated inline on the sync
// path (everything else is sampled at scrape time from the peer's own
// bookkeeping).
type peerMetrics struct {
	deltaBytes *telemetry.Counter
	deltaCells *telemetry.Counter
}

// registerMetrics wires every instrument against the built peer
// registry. Gauges and counter callbacks sample the same mutex-guarded
// fields /v1/stats reads, so the scrape can never disagree with the
// stats endpoint.
func (co *Coordinator) registerMetrics(reg *telemetry.Registry) {
	co.pmet = make(map[string]*peerMetrics, len(co.peers))
	for _, p := range co.peers {
		p := p
		lbl := telemetry.L("peer", p.url)
		reg.GaugeFunc("frapp_federation_sync_lag_seconds",
			"Age of the last successful pull from the peer; 0 until first contact.",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				if p.lastSync.IsZero() {
					return 0
				}
				return time.Since(p.lastSync).Seconds()
			}, lbl)
		reg.GaugeFunc("frapp_federation_backoff_seconds",
			"Current per-peer retry delay before jitter: the sync interval doubled per consecutive failure up to the cap.",
			func() float64 { return co.baseDelay(p).Seconds() }, lbl)
		reg.GaugeFunc("frapp_federation_peer_healthy",
			"1 when the peer's last sync attempt succeeded, 0 otherwise.",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				if p.healthy {
					return 1
				}
				return 0
			}, lbl)
		reg.GaugeFunc("frapp_federation_peer_records",
			"Records the peer's replica currently contributes to the global counter.",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				if p.replica == nil {
					return 0
				}
				return float64(p.replica.N())
			}, lbl)
		reg.CounterFunc("frapp_federation_syncs_total",
			"Successful pulls from the peer.",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return float64(p.syncs)
			}, lbl)
		reg.CounterFunc("frapp_federation_full_resyncs_total",
			"Pulls answered with a full resync (first contact, lost baseline, or peer generation change).",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				return float64(p.fullSyncs)
			}, lbl)
		co.pmet[p.url] = &peerMetrics{
			deltaBytes: reg.Counter("frapp_federation_delta_bytes_total",
				"Replicate response bytes read from the peer, drained tail included.", lbl),
			deltaCells: reg.Counter("frapp_federation_delta_cells_total",
				"Sparse histogram cells carried by accepted deltas from the peer.", lbl),
		}
	}
	reg.CounterFunc("frapp_federation_publishes_total",
		"Merged global counters handed to the publish hook.",
		func() float64 {
			co.pubMu.Lock()
			defer co.pubMu.Unlock()
			return float64(co.publishes)
		})
	reg.CounterFunc("frapp_federation_publish_failures_total",
		"Merge or publish-hook rejections; a growing count with healthy peers means the served view is frozen.",
		func() float64 {
			co.pubMu.Lock()
			defer co.pubMu.Unlock()
			return float64(co.publishFailures)
		})
}
