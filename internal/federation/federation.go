// Package federation implements multi-site counter replication for
// FRAPP deployments: a coordinator periodically pulls versioned counter
// deltas from a set of peer collection servers and merges them into one
// global counter, over which the existing query estimator and Apriori
// miner run unchanged.
//
// The design leans on the FRAPP trust model: perturbation happens at the
// data provider, so the per-site gamma counters are already privacy-safe
// and additive — merging site histograms reproduces the histogram of the
// union of their submissions exactly, with no extra privacy cost. What
// the coordinator must get right is therefore purely operational:
//
//   - Compatibility: a peer's deltas carry a fingerprint of its
//     perturbation scheme, schema, and scheme parameters; a mismatched
//     site — including a site running a DIFFERENT scheme over the same
//     schema — is rejected, never merged (its counts live in different
//     coordinates). The whole federation runs under one negotiated
//     scheme contract (gamma, MASK, or cut-and-paste), echoing
//     heterogeneous-detector collaboration: cooperation requires an
//     explicit shared contract, not an implicit assumption.
//   - Incrementality: each pull sends GET /v1/replicate?since=V&gen=G,
//     where V is the stream position the previous pull returned; the
//     peer answers with a compact sparse delta, falling back to a full
//     resync when it no longer retains the baseline.
//   - Generations: a peer -state restore (or process restart) regresses
//     the peer's counter and restarts its version line. The peer's
//     counter generation travels with every delta, and an unknown or
//     changed (generation, version) pair always produces a FULL delta,
//     which the coordinator applies by REPLACING that peer's replica —
//     the global view re-converges to the true union and can never
//     double-count or silently serve a stale contribution.
//
// Every successful pull that changed anything rebuilds the merged global
// counter and publishes it (together with the per-peer version vector it
// reflects) through a caller-supplied publish hook — in the collection
// service, Server.ReplaceCounter, which atomically swaps the counter the
// /v1/query, /v1/mine, and /v1/stats handlers answer from.
package federation

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/mining"
	"repro/internal/telemetry"
)

// ErrFederation is returned for invalid federation configuration or
// irrecoverable peer protocol violations.
var ErrFederation = errors.New("federation: invalid input")

const (
	defaultSyncInterval   = 5 * time.Second
	defaultRequestTimeout = 30 * time.Second
	// defaultMaxBackoff caps the exponential per-peer retry backoff.
	defaultMaxBackoff = 2 * time.Minute
	// jitterFraction spreads sync ticks ±10% so a fleet of coordinators
	// (or one coordinator's peer loops) never phase-locks its pulls.
	jitterFraction = 0.1
)

// Option configures a Coordinator.
type Option func(*config)

type config struct {
	interval   time.Duration
	timeout    time.Duration
	maxBackoff time.Duration
	client     *http.Client
	metrics    *telemetry.Registry
}

// WithSyncInterval sets the per-peer pull interval (default 5s). Each
// tick is jittered ±10%; failures back off exponentially from this base.
func WithSyncInterval(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.interval = d
		}
	}
}

// WithRequestTimeout bounds one replication request (default 30s).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// WithMaxBackoff caps the exponential failure backoff (default 2m).
func WithMaxBackoff(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.maxBackoff = d
		}
	}
}

// WithHTTPClient substitutes the transport (tests use the httptest
// server's client).
func WithHTTPClient(h *http.Client) Option {
	return func(c *config) {
		if h != nil {
			c.client = h
		}
	}
}

// ReplicateFunc fetches one delta from a peer. The production
// implementation does GET {base}/v1/replicate?since=V&gen=G and decodes
// the gob payload; it is a seam so tests can interpose failures.
type ReplicateFunc func(ctx context.Context, base string, since, gen uint64) (*mining.CounterDelta, error)

// PeerStatus is one peer's health, replication position, and lag as
// surfaced in /v1/stats.
type PeerStatus struct {
	URL string `json:"url"`
	// Healthy means the last sync attempt succeeded.
	Healthy bool `json:"healthy"`
	// Generation is the opaque epoch nonce of the peer counter object
	// last replicated (it changes on every peer restart or restore);
	// Version is the replication stream position last merged — the
	// peer's entry in the global version vector.
	Generation uint64 `json:"generation"`
	Version    uint64 `json:"version"`
	// Records is this peer's current contribution to the global counter.
	Records int `json:"records"`
	// Syncs counts successful pulls; FullSyncs counts how many of them
	// were full resyncs (first contact, lost baseline, or a generation
	// change from a peer -state restore).
	Syncs     uint64 `json:"syncs"`
	FullSyncs uint64 `json:"full_syncs"`
	// ConsecutiveFailures drives the exponential backoff.
	ConsecutiveFailures uint64 `json:"consecutive_failures"`
	// LastSync is the wall time of the last successful pull; LagSeconds
	// is the age of that pull (0 when never synced — see Healthy).
	LastSync   time.Time `json:"last_sync,omitzero"`
	LagSeconds float64   `json:"lag_seconds"`
	// LastError is the last failure, kept after recovery for forensics.
	LastError string `json:"last_error,omitempty"`
}

// Stats is the coordinator's snapshot for /v1/stats: the per-peer health
// table, the version vector of the published global counter, and the
// publish counters.
type Stats struct {
	// Scheme is the federation's negotiated perturbation scheme: the one
	// every peer must run, sealed into the contract fingerprint.
	Scheme string       `json:"scheme"`
	Peers  []PeerStatus `json:"peers"`
	// Records is the record count of the last published global counter.
	Records int `json:"records"`
	// Publishes counts how many merged counters were published;
	// PublishFailures counts merge/publish-hook rejections (a growing
	// count with healthy peers means the served view is frozen —
	// LastPublishError says why).
	Publishes        uint64 `json:"publishes"`
	PublishFailures  uint64 `json:"publish_failures,omitempty"`
	LastPublishError string `json:"last_publish_error,omitempty"`
	// VersionVector maps peer URL → last merged stream position; it
	// identifies exactly which per-peer states the published global
	// counter reflects.
	VersionVector map[string]uint64 `json:"version_vector"`
	LastPublish   time.Time         `json:"last_publish,omitzero"`
	SyncInterval  float64           `json:"sync_interval_seconds"`
}

// peer is one replication source and its coordinator-side replica.
type peer struct {
	url string

	// syncMu serializes sync attempts against this peer (the background
	// loop and explicit SyncAll calls may overlap).
	syncMu sync.Mutex

	// mu guards everything below.
	mu        sync.Mutex
	replica   mining.CounterCore // nil until first sync
	version   uint64
	gen       uint64
	healthy   bool
	syncs     uint64
	fullSyncs uint64
	failures  uint64
	lastSync  time.Time
	lastErr   string
}

// Coordinator pulls versioned deltas from a fixed peer registry, keeps a
// per-peer replica, and publishes the merged global counter.
type Coordinator struct {
	scheme      mining.CounterScheme
	fingerprint string
	publish     func(mining.LiveCounter, map[string]uint64) error
	replicate   ReplicateFunc
	peers       []*peer
	cfg         config
	// pmet maps peer URL → inline-updated replication instruments; nil
	// (and empty) without WithMetrics.
	pmet map[string]*peerMetrics

	// pubMu serializes merge+publish so counters publish in order.
	pubMu            sync.Mutex
	publishedRecords int
	publishedVector  map[string]uint64
	publishes        uint64
	publishFailures  uint64
	lastPublishErr   string
	lastPublish      time.Time

	startOnce sync.Once
	closeOnce sync.Once
	quit      chan struct{}
	// rootCtx parents every pull so Close cancels in-flight requests
	// instead of waiting out their timeouts.
	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
}

// NewCoordinator validates the peer registry and prepares a coordinator
// over one scheme contract — every peer must run the same scheme, schema,
// and parameters, sealed into the contract's fingerprint. publish is
// invoked with each freshly merged global counter and the per-peer
// version vector it reflects (Server.ReplaceCounter in the collection
// service); counter and vector are allocated per publish and never
// touched again, so the hook may retain both. Nothing is pulled until
// Start (background loops) or SyncAll (one synchronous pass).
func NewCoordinator(scheme mining.CounterScheme, peerURLs []string,
	publish func(mining.LiveCounter, map[string]uint64) error, opts ...Option) (*Coordinator, error) {
	if scheme == nil {
		return nil, fmt.Errorf("%w: nil scheme contract", ErrFederation)
	}
	if publish == nil {
		return nil, fmt.Errorf("%w: nil publish hook", ErrFederation)
	}
	if len(peerURLs) == 0 {
		return nil, fmt.Errorf("%w: no peers", ErrFederation)
	}
	cfg := config{
		interval:   defaultSyncInterval,
		timeout:    defaultRequestTimeout,
		maxBackoff: defaultMaxBackoff,
		client:     http.DefaultClient,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	co := &Coordinator{
		scheme:      scheme,
		fingerprint: scheme.Fingerprint(),
		publish:     publish,
		cfg:         cfg,
		quit:        make(chan struct{}),
	}
	co.rootCtx, co.rootCancel = context.WithCancel(context.Background())
	co.replicate = co.httpReplicate
	seen := make(map[string]bool)
	for _, raw := range peerURLs {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("%w: peer %q is not an absolute http(s) URL", ErrFederation, raw)
		}
		base := u.Scheme + "://" + u.Host + u.Path
		if seen[base] {
			return nil, fmt.Errorf("%w: duplicate peer %q", ErrFederation, base)
		}
		seen[base] = true
		co.peers = append(co.peers, &peer{url: base})
	}
	if cfg.metrics != nil {
		co.registerMetrics(cfg.metrics)
	}
	return co, nil
}

// SyncInterval returns the effective per-peer pull interval.
func (co *Coordinator) SyncInterval() time.Duration { return co.cfg.interval }

// Peers returns the registered peer URLs in registry order.
func (co *Coordinator) Peers() []string {
	out := make([]string, len(co.peers))
	for i, p := range co.peers {
		out[i] = p.url
	}
	return out
}

// Start launches one background sync loop per peer. Safe to call once;
// subsequent calls are no-ops. Close stops the loops.
func (co *Coordinator) Start() {
	co.startOnce.Do(func() {
		co.wg.Add(len(co.peers))
		for _, p := range co.peers {
			go co.peerLoop(p)
		}
	})
}

// Close stops the background loops — canceling any in-flight pull —
// and waits for them. Idempotent.
func (co *Coordinator) Close() {
	co.closeOnce.Do(func() {
		close(co.quit)
		co.rootCancel()
	})
	co.wg.Wait()
}

// peerLoop pulls one peer on a jittered interval, backing off
// exponentially while the peer is failing, and publishes the merged
// global counter after every pull that changed it.
func (co *Coordinator) peerLoop(p *peer) {
	defer co.wg.Done()
	timer := time.NewTimer(co.nextDelay(p))
	defer timer.Stop()
	for {
		select {
		case <-co.quit:
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(co.rootCtx, co.cfg.timeout)
		changed, err := co.syncPeer(ctx, p)
		cancel()
		if err == nil && changed {
			co.publishMerged()
		}
		timer.Reset(co.nextDelay(p))
	}
}

// baseDelay is the un-jittered tick for a peer: the base interval,
// doubled per consecutive failure up to the cap. Also sampled by the
// backoff-state gauge.
func (co *Coordinator) baseDelay(p *peer) time.Duration {
	p.mu.Lock()
	failures := p.failures
	p.mu.Unlock()
	d := co.cfg.interval
	for i := uint64(0); i < failures && d < co.cfg.maxBackoff; i++ {
		d *= 2
	}
	if d > co.cfg.maxBackoff {
		d = co.cfg.maxBackoff
	}
	return d
}

// nextDelay computes the next tick for a peer: baseDelay jittered ±10%.
func (co *Coordinator) nextDelay(p *peer) time.Duration {
	jitter := 1 + jitterFraction*(2*rand.Float64()-1)
	return time.Duration(float64(co.baseDelay(p)) * jitter)
}

// SyncAll performs one synchronous pull of every peer and publishes the
// merged counter if anything changed. It returns the joined per-peer
// errors (nil when every pull succeeded); a partial failure still merges
// and publishes what did succeed. Used at coordinator startup for a warm
// first view, by the demo, and by tests that need deterministic syncs.
func (co *Coordinator) SyncAll(ctx context.Context) error {
	errs := make([]error, len(co.peers))
	changes := make([]bool, len(co.peers))
	var wg sync.WaitGroup
	// Peers pull concurrently — they are independent, and syncPeer
	// already serializes per peer — with the same per-request timeout as
	// the background loop, so a cold start against k down peers costs
	// one timeout, not k of them, and one black-holed peer cannot hang a
	// warm sync forever.
	for i, p := range co.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			pullCtx, cancel := context.WithTimeout(ctx, co.cfg.timeout)
			defer cancel()
			c, err := co.syncPeer(pullCtx, p)
			if err != nil {
				errs[i] = fmt.Errorf("peer %s: %w", p.url, err)
			}
			changes[i] = c
		}(i, p)
	}
	wg.Wait()
	for _, c := range changes {
		if c {
			co.publishMerged()
			break
		}
	}
	return errors.Join(errs...)
}

// syncPeer pulls one delta from a peer and applies it to the peer's
// replica, returning whether the replica changed. Protocol rules:
//
//   - A FULL delta (FromVersion 0) replaces the replica wholesale —
//     this is how first contact, lost baselines, and generation changes
//     (peer restarts/restores) all converge without double-counting.
//   - An incremental delta must chain exactly: same generation, and
//     FromVersion equal to the position we hold. Anything else drops
//     the replica and fails the attempt; the next attempt pulls full
//     (since=0) from scratch.
func (co *Coordinator) syncPeer(ctx context.Context, p *peer) (changed bool, err error) {
	p.syncMu.Lock()
	defer p.syncMu.Unlock()

	p.mu.Lock()
	since, gen := p.version, p.gen
	hasReplica := p.replica != nil
	p.mu.Unlock()
	if !hasReplica {
		since = 0
	}

	defer func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if err != nil {
			p.healthy = false
			p.failures++
			p.lastErr = err.Error()
		} else {
			p.healthy = true
			p.failures = 0
			p.syncs++
			p.lastSync = time.Now()
		}
	}()

	d, err := co.replicate(ctx, p.url, since, gen)
	if err != nil {
		return false, err
	}
	if pm := co.pmet[p.url]; pm != nil {
		pm.deltaCells.Add(uint64(len(d.Cells)))
	}
	if d.Fingerprint != co.fingerprint {
		return false, fmt.Errorf("%w: peer fingerprint %.12s does not match coordinator %.12s (different scheme, schema, or perturbation contract)",
			ErrFederation, d.Fingerprint, co.fingerprint)
	}

	if d.Full() {
		fresh := co.scheme.NewCore()
		if err := fresh.ApplyDelta(d); err != nil {
			return false, err
		}
		p.mu.Lock()
		defer p.mu.Unlock()
		changed = p.replica == nil || p.replica.N() != 0 || fresh.N() != 0
		p.replica = fresh
		p.version = d.ToVersion
		p.gen = d.Generation
		p.fullSyncs++
		return changed, nil
	}

	// Apply and advance under ONE p.mu hold: publishMerged merges the
	// replica under p.mu, so content and version must move as a unit —
	// released between the two, a publish could merge post-delta content
	// while stamping the pre-delta version into its vector.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.replica == nil || d.FromVersion != since || d.Generation != gen {
		// Broken chain: drop the replica so the next attempt resyncs
		// from scratch. (A correct peer never produces this — it falls
		// back to a full delta itself.)
		p.replica = nil
		p.version = 0
		return false, fmt.Errorf("%w: incremental delta (gen %d, %d→%d) does not chain onto held (gen %d, %d)",
			ErrFederation, d.Generation, d.FromVersion, d.ToVersion, gen, since)
	}
	if err := p.replica.ApplyDelta(d); err != nil {
		p.replica = nil
		p.version = 0
		return false, err
	}
	p.version = d.ToVersion
	return d.Records > 0, nil
}

// publishMerged rebuilds the global counter from every peer replica and
// hands it to the publish hook together with the version vector it
// reflects. Publishes are serialized so a slower merge can never
// overwrite a newer one.
func (co *Coordinator) publishMerged() {
	co.pubMu.Lock()
	defer co.pubMu.Unlock()
	merged := co.scheme.NewCore()
	vector := make(map[string]uint64, len(co.peers))
	for _, p := range co.peers {
		// p.mu is held ACROSS the merge so the merged content and the
		// version recorded for it cannot skew: a concurrent syncPeer
		// advancing this replica (ApplyDelta, then version under p.mu)
		// either lands entirely before this read or entirely after it.
		// Lock order p.mu → replica.mu matches every other path; no
		// path holds replica.mu while acquiring p.mu.
		p.mu.Lock()
		if p.replica == nil {
			p.mu.Unlock()
			continue
		}
		err := merged.Merge(p.replica)
		version := p.version
		p.mu.Unlock()
		if err != nil {
			// Fingerprints matched at sync time, so this should be
			// unreachable — but a swallowed failure here would freeze the
			// published view while every peer looks healthy, so record it
			// where /v1/stats surfaces it.
			co.publishFailures++
			co.lastPublishErr = err.Error()
			return
		}
		vector[p.url] = version
	}
	if err := co.publish(mining.NewLiveFromCore(co.scheme, merged), vector); err != nil {
		// Same visibility argument: a publish hook that rejects the
		// counter (e.g. a coordinator built with a contract differing
		// from its server's) must not fail silently forever.
		co.publishFailures++
		co.lastPublishErr = err.Error()
		return
	}
	co.publishedRecords = merged.N()
	co.publishedVector = vector
	co.publishes++
	co.lastPublish = time.Now()
}

// Stats snapshots the coordinator for /v1/stats. VersionVector is the
// vector of the last PUBLISHED counter (matching the stamps on query
// and mining responses); the per-peer Version fields are the live
// replication positions, which can run ahead of it between publishes.
func (co *Coordinator) Stats() *Stats {
	st := &Stats{
		Scheme:        co.scheme.Name(),
		VersionVector: make(map[string]uint64, len(co.peers)),
		SyncInterval:  co.cfg.interval.Seconds(),
	}
	now := time.Now()
	for _, p := range co.peers {
		p.mu.Lock()
		ps := PeerStatus{
			URL:                 p.url,
			Healthy:             p.healthy,
			Generation:          p.gen,
			Version:             p.version,
			Syncs:               p.syncs,
			FullSyncs:           p.fullSyncs,
			ConsecutiveFailures: p.failures,
			LastSync:            p.lastSync,
			LastError:           p.lastErr,
		}
		if p.replica != nil {
			ps.Records = p.replica.N()
		}
		if !p.lastSync.IsZero() {
			ps.LagSeconds = now.Sub(p.lastSync).Seconds()
		}
		p.mu.Unlock()
		st.Peers = append(st.Peers, ps)
	}
	co.pubMu.Lock()
	st.Records = co.publishedRecords
	st.Publishes = co.publishes
	st.PublishFailures = co.publishFailures
	st.LastPublishError = co.lastPublishErr
	st.LastPublish = co.lastPublish
	for url, v := range co.publishedVector {
		st.VersionVector[url] = v
	}
	co.pubMu.Unlock()
	return st
}
