package federation_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/federation"
	"repro/internal/mining"
	"repro/internal/service"
)

var testSpec = core.PrivacySpec{Rho1: 0.05, Rho2: 0.50} // γ = 19

// stressScheme selects the perturbation scheme the federation suite
// runs under: CI drives a gamma/mask/cutpaste matrix through the
// FRAPP_STRESS_SCHEME environment variable; the default is gamma, which
// every non-matrix test assumes.
func stressScheme(t testing.TB) string {
	t.Helper()
	name := os.Getenv("FRAPP_STRESS_SCHEME")
	if name == "" {
		return mining.SchemeGamma
	}
	return name
}

func fedSchema(t testing.TB) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("fed", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
		{Name: "d", Categories: []string{"d0", "d1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fedMatrix(t testing.TB, s *dataset.Schema) core.UniformMatrix {
	t.Helper()
	gamma, err := testSpec.Gamma()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewGammaDiagonal(s.DomainSize(), gamma)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// site is one collection server plus its HTTP front.
type site struct {
	srv *service.Server
	ts  *httptest.Server
}

func newSite(t testing.TB, schema *dataset.Schema) *site {
	t.Helper()
	srv, err := service.NewServer(schema, testSpec, service.WithScheme(stressScheme(t)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &site{srv: srv, ts: ts}
}

// newCoordinator builds a coordinator server federated over the sites.
func newCoordinator(t testing.TB, schema *dataset.Schema, sites []*site, opts ...federation.Option) (*service.Server, *federation.Coordinator, *httptest.Server) {
	t.Helper()
	srv, err := service.NewServer(schema, testSpec, service.WithScheme(stressScheme(t)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	urls := make([]string, len(sites))
	for i, s := range sites {
		urls[i] = s.ts.URL
	}
	coord, err := federation.NewCoordinator(srv.CounterScheme(), urls, srv.ReplaceCounter, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if err := srv.EnableFederation(coord); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, coord, ts
}

func encodeRecord(schema *dataset.Schema, rec dataset.Record) service.RecordJSON {
	rj := make(service.RecordJSON, schema.M())
	for j, v := range rec {
		rj[schema.Attrs[j].Name] = schema.Attrs[j].Categories[v]
	}
	return rj
}

// submitBatch pushes records (treated as already perturbed) to a site.
func submitBatch(t testing.TB, schema *dataset.Schema, url string, recs []dataset.Record) {
	t.Helper()
	if len(recs) == 0 {
		return
	}
	batch := make([]service.RecordJSON, len(recs))
	for i, rec := range recs {
		batch[i] = encodeRecord(schema, rec)
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/submit-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Drain before close so the shared client's connection goes back to
	// the keep-alive pool (TestSyncReusesConnections counts arrivals).
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit-batch returned %s", resp.Status)
	}
}

func randomRecords(schema *dataset.Schema, rng *rand.Rand, n int) []dataset.Record {
	recs := make([]dataset.Record, n)
	for i := range recs {
		rec := make(dataset.Record, schema.M())
		for j, a := range schema.Attrs {
			rec[j] = rng.Intn(a.Cardinality())
		}
		recs[i] = rec
	}
	return recs
}

// queryFilters builds a deterministic filter battery at arities 0..3:
// the empty filter plus samples of 1-, 2-, and 3-attribute conjunctions.
func queryFilters(schema *dataset.Schema, rng *rand.Rand) []service.QueryFilter {
	filters := []service.QueryFilter{{}}
	arity1 := [][]int{{0}, {1}, {2}, {3}}
	arity2 := [][]int{{0, 1}, {1, 2}, {0, 3}, {2, 3}}
	arity3 := [][]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 3}}
	for _, cols := range append(append(arity1, arity2...), arity3...) {
		f := make(service.QueryFilter, len(cols))
		for _, j := range cols {
			a := schema.Attrs[j]
			f[a.Name] = a.Categories[rng.Intn(a.Cardinality())]
		}
		filters = append(filters, f)
	}
	return filters
}

func queryAll(t testing.TB, url string, filters []service.QueryFilter) *service.QueryResponse {
	t.Helper()
	body, err := json.Marshal(struct {
		Filters []service.QueryFilter `json:"filters"`
	}{filters})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %s", resp.Status)
	}
	var qr service.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return &qr
}

// assertEquivalent checks the coordinator's estimates against a
// single-node server holding the union, to 1e-9, at every filter.
func assertEquivalent(t testing.TB, schema *dataset.Schema, coordURL, singleURL string, rng *rand.Rand) {
	t.Helper()
	filters := queryFilters(schema, rng)
	got := queryAll(t, coordURL, filters)
	want := queryAll(t, singleURL, filters)
	if got.Records != want.Records {
		t.Fatalf("coordinator records %d, single node %d", got.Records, want.Records)
	}
	for i := range filters {
		g, w := got.Estimates[i], want.Estimates[i]
		if math.Abs(g.Count-w.Count) > 1e-9 || math.Abs(g.StdErr-w.StdErr) > 1e-9 ||
			math.Abs(g.Lo-w.Lo) > 1e-9 || math.Abs(g.Hi-w.Hi) > 1e-9 || g.N != w.N {
			t.Fatalf("filter %d (%v): coordinator %+v, single node %+v", i, filters[i], g, w)
		}
	}
}

// TestFederationEquivalenceProperty is the acceptance property: for any
// partition of a dataset across k peer sites, the coordinator's merged
// estimates equal the single-node estimates on the union to 1e-9, at
// filter arities 0..3.
func TestFederationEquivalenceProperty(t *testing.T) {
	schema := fedSchema(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		k := 1 + rng.Intn(3) // 1..3 peer sites
		t.Run(fmt.Sprintf("trial%d_k%d", trial, k), func(t *testing.T) {
			sites := make([]*site, k)
			for i := range sites {
				sites[i] = newSite(t, schema)
			}
			single := newSite(t, schema)
			_, coord, coordTS := newCoordinator(t, schema, sites)

			recs := randomRecords(schema, rng, 120+rng.Intn(200))
			// Random partition: every record to exactly one site.
			parts := make([][]dataset.Record, k)
			for _, rec := range recs {
				i := rng.Intn(k)
				parts[i] = append(parts[i], rec)
			}
			for i, part := range parts {
				submitBatch(t, schema, sites[i].ts.URL, part)
			}
			submitBatch(t, schema, single.ts.URL, recs)

			if err := coord.SyncAll(context.Background()); err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, schema, coordTS.URL, single.ts.URL, rng)

			// Incremental growth at one site keeps the equivalence.
			more := randomRecords(schema, rng, 60)
			submitBatch(t, schema, sites[rng.Intn(k)].ts.URL, more)
			submitBatch(t, schema, single.ts.URL, more)
			if err := coord.SyncAll(context.Background()); err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, schema, coordTS.URL, single.ts.URL, rng)
		})
	}
}

// TestFederationPeerRestoreNeverRegresses is the generation half of the
// acceptance property: a mid-sync peer -state restore bumps the peer's
// counter generation, forcing the coordinator into a clean full re-pull
// — the global view re-converges to the true union and never
// double-counts the records that survived the restore.
func TestFederationPeerRestoreNeverRegresses(t *testing.T) {
	schema := fedSchema(t)
	rng := rand.New(rand.NewSource(43))
	sites := []*site{newSite(t, schema), newSite(t, schema)}
	_, coord, coordTS := newCoordinator(t, schema, sites)

	keepA := randomRecords(schema, rng, 80) // survives the restore
	lostA := randomRecords(schema, rng, 50) // submitted after the save, lost
	afterA := randomRecords(schema, rng, 30)
	recsB := randomRecords(schema, rng, 70)

	submitBatch(t, schema, sites[0].ts.URL, keepA)
	submitBatch(t, schema, sites[1].ts.URL, recsB)
	var state bytes.Buffer
	if err := sites[0].srv.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	submitBatch(t, schema, sites[0].ts.URL, lostA)

	// Mid-sync: the coordinator merges the pre-restore view (including
	// the soon-to-be-lost records).
	if err := coord.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	if st.Records != len(keepA)+len(lostA)+len(recsB) {
		t.Fatalf("pre-restore global %d records, want %d", st.Records, len(keepA)+len(lostA)+len(recsB))
	}

	// The restore: site 0 drops back to the saved state (generation
	// bump), then collects different records.
	if err := sites[0].srv.LoadState(&state); err != nil {
		t.Fatal(err)
	}
	submitBatch(t, schema, sites[0].ts.URL, afterA)

	if err := coord.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Ground truth: a single node holding exactly the post-restore union.
	single := newSite(t, schema)
	submitBatch(t, schema, single.ts.URL, keepA)
	submitBatch(t, schema, single.ts.URL, afterA)
	submitBatch(t, schema, single.ts.URL, recsB)
	assertEquivalent(t, schema, coordTS.URL, single.ts.URL, rng)

	// The re-pull was a full resync, visible in the peer status.
	st = coord.Stats()
	for _, ps := range st.Peers {
		if ps.URL == sites[0].ts.URL {
			if ps.FullSyncs < 2 {
				t.Fatalf("restored peer full_syncs %d, want >= 2", ps.FullSyncs)
			}
			if !ps.Healthy {
				t.Fatal("restored peer marked unhealthy")
			}
		}
	}

	// Mining over the merged counter matches the single node too.
	mineURL := func(base string) *service.MineResponse {
		resp, err := http.Get(base + "/v1/mine?minsup=0.05")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mine returned %s", resp.Status)
		}
		var mr service.MineResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			t.Fatal(err)
		}
		return &mr
	}
	got, want := mineURL(coordTS.URL), mineURL(single.ts.URL)
	if got.Records != want.Records || len(got.Itemsets) != len(want.Itemsets) {
		t.Fatalf("mine: coordinator %d records/%d itemsets, single %d/%d",
			got.Records, len(got.Itemsets), want.Records, len(want.Itemsets))
	}
	if len(got.VersionVector) != 2 {
		t.Fatalf("coordinator mine response version vector %v, want 2 peers", got.VersionVector)
	}
	if want.VersionVector != nil {
		t.Fatal("single node stamped a version vector")
	}
}

func TestFederationStatsAndVersionVector(t *testing.T) {
	schema := fedSchema(t)
	rng := rand.New(rand.NewSource(47))
	sites := []*site{newSite(t, schema), newSite(t, schema)}
	_, coord, coordTS := newCoordinator(t, schema, sites)
	submitBatch(t, schema, sites[0].ts.URL, randomRecords(schema, rng, 20))
	submitBatch(t, schema, sites[1].ts.URL, randomRecords(schema, rng, 30))
	if err := coord.SyncAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	client, err := service.NewClient(coordTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := client.FederationStats()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Records != 50 || len(fs.Peers) != 2 || fs.Publishes == 0 {
		t.Fatalf("federation stats %+v", fs)
	}
	for _, ps := range fs.Peers {
		if !ps.Healthy || ps.Syncs == 0 || ps.Version == 0 {
			t.Fatalf("peer status %+v", ps)
		}
		if v, ok := fs.VersionVector[ps.URL]; !ok || v != ps.Version {
			t.Fatalf("version vector %v misses peer %+v", fs.VersionVector, ps)
		}
	}

	// Query responses on the coordinator are stamped with the vector.
	qr := queryAll(t, coordTS.URL, []service.QueryFilter{{}})
	if len(qr.VersionVector) != 2 {
		t.Fatalf("query version vector %v, want 2 peers", qr.VersionVector)
	}

	// A plain collector exposes no federation block.
	siteClient, err := service.NewClient(sites[0].ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := siteClient.FederationStats(); err == nil {
		t.Fatal("collector served federation stats")
	}
}

func TestFederationUnreachablePeerBacksOffAndRecovers(t *testing.T) {
	schema := fedSchema(t)
	rng := rand.New(rand.NewSource(53))
	up := newSite(t, schema)
	down := newSite(t, schema)
	submitBatch(t, schema, up.ts.URL, randomRecords(schema, rng, 25))
	submitBatch(t, schema, down.ts.URL, randomRecords(schema, rng, 10))
	downURL := down.ts.URL
	down.ts.Close() // unreachable from the start

	_, coord, _ := newCoordinator(t, schema, []*site{up, {srv: down.srv, ts: down.ts}})
	err := coord.SyncAll(context.Background())
	if err == nil {
		t.Fatal("sync of unreachable peer reported success")
	}

	// Partial failure still merged the healthy peer.
	st := coord.Stats()
	if st.Records != 25 {
		t.Fatalf("global records %d with one peer down, want 25", st.Records)
	}
	var downStatus *federation.PeerStatus
	for i := range st.Peers {
		if st.Peers[i].URL == downURL {
			downStatus = &st.Peers[i]
		}
	}
	if downStatus == nil || downStatus.Healthy || downStatus.ConsecutiveFailures == 0 || downStatus.LastError == "" {
		t.Fatalf("down peer status %+v", downStatus)
	}
}

func TestFederationFingerprintMismatchNeverMerges(t *testing.T) {
	schema := fedSchema(t)
	rng := rand.New(rand.NewSource(59))
	// A site running a DIFFERENT privacy contract (different gamma):
	// its counts live under another distortion and must not merge.
	otherSpec := core.PrivacySpec{Rho1: 0.05, Rho2: 0.30}
	srv, err := service.NewServer(schema, otherSpec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	mismatched := &site{srv: srv, ts: ts}
	ok := newSite(t, schema)
	submitBatch(t, schema, mismatched.ts.URL, randomRecords(schema, rng, 40))
	submitBatch(t, schema, ok.ts.URL, randomRecords(schema, rng, 15))

	_, coord, _ := newCoordinator(t, schema, []*site{ok, mismatched})
	if err := coord.SyncAll(context.Background()); err == nil {
		t.Fatal("mismatched peer accepted")
	}
	st := coord.Stats()
	if st.Records != 15 {
		t.Fatalf("global records %d, want only the compatible site's 15", st.Records)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	schema := fedSchema(t)
	m := fedMatrix(t, schema)
	publish := func(mining.LiveCounter, map[string]uint64) error { return nil }
	cases := []struct {
		name  string
		peers []string
	}{
		{"no peers", nil},
		{"relative url", []string{"not-a-url"}},
		{"bad scheme", []string{"ftp://x"}},
		{"duplicate", []string{"http://a:1", "http://a:1"}},
	}
	scheme, err := mining.NewGammaScheme(schema, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if _, err := federation.NewCoordinator(scheme, tc.peers, publish); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := federation.NewCoordinator(scheme, []string{"http://a:1"}, nil); err == nil {
		t.Error("nil publish accepted")
	}
	if _, err := federation.NewCoordinator(nil, []string{"http://a:1"}, publish); err == nil {
		t.Error("nil scheme accepted")
	}
}

// TestFederationBackgroundSyncConverges exercises Start/Close: the
// background loops (tiny jittered interval) must pick up site growth
// without any explicit SyncAll.
func TestFederationBackgroundSyncConverges(t *testing.T) {
	schema := fedSchema(t)
	rng := rand.New(rand.NewSource(61))
	sites := []*site{newSite(t, schema), newSite(t, schema)}
	coordSrv, coord, _ := newCoordinator(t, schema, sites,
		federation.WithSyncInterval(5*time.Millisecond))
	submitBatch(t, schema, sites[0].ts.URL, randomRecords(schema, rng, 35))
	submitBatch(t, schema, sites[1].ts.URL, randomRecords(schema, rng, 15))
	coord.Start()
	defer coord.Close()
	deadline := time.Now().Add(10 * time.Second)
	for coordSrv.N() != 50 {
		if time.Now().After(deadline) {
			t.Fatalf("background sync never converged: %d records", coordSrv.N())
		}
		time.Sleep(5 * time.Millisecond)
	}
	coord.Close() // idempotent with the deferred close
}

// TestSyncReusesConnections guards the replicate client's keep-alive
// hygiene: the response body must be fully drained before close, or the
// transport abandons the connection and every sync pass re-handshakes.
// The test counts server-side connection arrivals across many pulls —
// one warm connection should carry them all.
func TestSyncReusesConnections(t *testing.T) {
	schema := fedSchema(t)
	srv, err := service.NewServer(schema, testSpec, service.WithScheme(stressScheme(t)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewUnstartedServer(srv.Handler())
	var newConns atomic.Int64
	ts.Config.ConnState = func(_ net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)

	// Seed the peer so every pull carries a real delta payload to drain.
	rng := rand.New(rand.NewSource(41))
	submitBatch(t, schema, ts.URL, randomRecords(schema, rng, 200))

	coord, err := federation.NewCoordinator(srv.CounterScheme(), []string{ts.URL},
		func(mining.LiveCounter, map[string]uint64) error { return nil },
		federation.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	const passes = 20
	before := newConns.Load()
	for pass := 0; pass < passes; pass++ {
		// Grow the counter between passes so incremental deltas stay
		// non-empty (an always-empty body would mask a drain regression).
		submitBatch(t, schema, ts.URL, randomRecords(schema, rng, 10))
		if err := coord.SyncAll(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// The submit traffic rides http.DefaultClient's own keep-alive pool;
	// the replicate pulls ride ts.Client(). Two warm connections cover
	// both, plus slack for one re-dial.
	if opened := newConns.Load() - before; opened > 3 {
		t.Fatalf("%d sync passes opened %d new connections; replicate responses are not being drained for reuse", passes, opened)
	}
}
