package telemetry

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level as it appears in log lines and flags.
func (lv Level) String() string {
	switch lv {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(lv)) + ")"
	}
}

// ParseLevel parses a level name as accepted on -log-level flags.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Logger writes leveled, structured JSON lines. Lines are built field
// by field into pooled buffers — no maps, no reflection, no
// interface boxing — so a per-request access line costs no heap
// allocations, which is what lets it sit on the ingest fast path under
// the alloc guard. A nil *Logger is valid and discards everything.
//
// Usage: l.Info().Str("route", r).Int("status", 200).Msg("access").
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
}

// NewLogger returns a logger writing JSON lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w}
	l.min.Store(int32(min))
	return l
}

// SetLevel adjusts the minimum emitted level at runtime.
func (l *Logger) SetLevel(min Level) {
	if l != nil {
		l.min.Store(int32(min))
	}
}

// Enabled reports whether lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && int32(lv) >= l.min.Load()
}

// Line accumulates one JSON log line. A nil *Line (disabled level or
// nil logger) is valid: every method no-ops, so call sites never
// branch.
type Line struct {
	l   *Logger
	buf []byte
}

var linePool = sync.Pool{New: func() any { return &Line{buf: make([]byte, 0, 512)} }}

// Debug, Info, Warn, and Error start a line at that level; returns nil
// (a no-op line) when the level is disabled.
func (l *Logger) Debug() *Line { return l.line(LevelDebug) }
func (l *Logger) Info() *Line  { return l.line(LevelInfo) }
func (l *Logger) Warn() *Line  { return l.line(LevelWarn) }
func (l *Logger) Error() *Line { return l.line(LevelError) }

func (l *Logger) line(lv Level) *Line {
	if !l.Enabled(lv) {
		return nil
	}
	ln := linePool.Get().(*Line)
	ln.l = l
	ln.buf = append(ln.buf[:0], `{"ts":"`...)
	ln.buf = time.Now().UTC().AppendFormat(ln.buf, time.RFC3339Nano)
	ln.buf = append(ln.buf, `","level":"`...)
	ln.buf = append(ln.buf, lv.String()...)
	ln.buf = append(ln.buf, '"')
	return ln
}

// Str appends a string field.
func (ln *Line) Str(key, v string) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = append(ln.buf, '"')
	ln.buf = appendJSONString(ln.buf, v)
	ln.buf = append(ln.buf, '"')
	return ln
}

// Int appends an integer field.
func (ln *Line) Int(key string, v int64) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = strconv.AppendInt(ln.buf, v, 10)
	return ln
}

// Uint appends an unsigned integer field.
func (ln *Line) Uint(key string, v uint64) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = strconv.AppendUint(ln.buf, v, 10)
	return ln
}

// Float appends a float field.
func (ln *Line) Float(key string, v float64) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = strconv.AppendFloat(ln.buf, v, 'g', -1, 64)
	return ln
}

// Bool appends a boolean field.
func (ln *Line) Bool(key string, v bool) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = strconv.AppendBool(ln.buf, v)
	return ln
}

// Dur appends a duration field in fractional seconds.
func (ln *Line) Dur(key string, d time.Duration) *Line {
	if ln == nil {
		return nil
	}
	ln.key(key)
	ln.buf = strconv.AppendFloat(ln.buf, d.Seconds(), 'g', -1, 64)
	return ln
}

// Req appends the request ID field.
func (ln *Line) Req(id RequestID) *Line {
	if ln == nil {
		return nil
	}
	ln.key("req")
	ln.buf = append(ln.buf, '"')
	ln.buf = id.AppendText(ln.buf)
	ln.buf = append(ln.buf, '"')
	return ln
}

// Err appends an error field; nil errors are skipped.
func (ln *Line) Err(err error) *Line {
	if ln == nil || err == nil {
		return ln
	}
	return ln.Str("error", err.Error())
}

// Msg terminates the line with the message field and writes it.
func (ln *Line) Msg(msg string) {
	if ln == nil {
		return
	}
	ln.buf = append(ln.buf, `,"msg":"`...)
	ln.buf = appendJSONString(ln.buf, msg)
	ln.buf = append(ln.buf, '"', '}', '\n')
	l := ln.l
	l.mu.Lock()
	_, _ = l.w.Write(ln.buf)
	l.mu.Unlock()
	ln.l = nil
	linePool.Put(ln)
}

func (ln *Line) key(k string) {
	ln.buf = append(ln.buf, ',', '"')
	ln.buf = appendJSONString(ln.buf, k)
	ln.buf = append(ln.buf, '"', ':')
}

// appendJSONString escapes s per JSON string rules. Multi-byte UTF-8 is
// passed through untouched (JSON permits raw UTF-8).
func appendJSONString(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			buf = append(buf, '\\', '"')
		case c == '\\':
			buf = append(buf, '\\', '\\')
		case c == '\n':
			buf = append(buf, '\\', 'n')
		case c == '\r':
			buf = append(buf, '\\', 'r')
		case c == '\t':
			buf = append(buf, '\\', 't')
		case c < 0x20:
			buf = append(buf, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			buf = append(buf, c)
		}
	}
	return buf
}

func hexDigit(b byte) byte {
	if b < 10 {
		return '0' + b
	}
	return 'a' + b - 10
}

// RequestID identifies one HTTP request across its access-log line and
// response header: a random 32-bit process prefix (so IDs from
// different server instances do not collide in merged logs) plus a
// 32-bit sequence number, rendered as 16 hex digits.
type RequestID uint64

var (
	reqSeq    atomic.Uint64
	reqPrefix = func() uint64 {
		var b [4]byte
		if _, err := cryptorand.Read(b[:]); err != nil {
			// Fall back to the clock; uniqueness within the process
			// still holds via the sequence number.
			return uint64(time.Now().UnixNano()) << 32
		}
		return uint64(binary.BigEndian.Uint32(b[:])) << 32
	}()
)

// NextRequestID returns a fresh process-unique request ID.
func NextRequestID() RequestID {
	return RequestID(reqPrefix | (reqSeq.Add(1) & 0xffffffff))
}

// AppendText renders the ID as 16 lowercase hex digits.
func (id RequestID) AppendText(buf []byte) []byte {
	var tmp [16]byte
	for i := 15; i >= 0; i-- {
		tmp[i] = hexDigit(byte(id & 0xf))
		id >>= 4
	}
	return append(buf, tmp[:]...)
}

// String renders the ID as 16 lowercase hex digits.
func (id RequestID) String() string { return string(id.AppendText(nil)) }
