package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixed registry the exposition golden test
// renders: every instrument kind, plus label values and help text that
// need escaping.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("frapp_test_requests_total", "Requests by route and status class.",
		L("route", "/v1/submit"), L("code", "2xx")).Add(42)
	reg.Counter("frapp_test_requests_total", "Requests by route and status class.",
		L("route", "/v1/query"), L("code", "5xx")).Inc()
	reg.Counter("frapp_test_escapes_total", "Escaping: backslash \\ and\nnewline in help.",
		L("peer", "http://h\"o\\st:9\n090")).Add(7)
	reg.Gauge("frapp_test_queue_depth", "Current queue depth.").Set(17)
	reg.GaugeFunc("frapp_test_uptime_seconds", "Seconds since start.", func() float64 { return 12.5 })
	h := reg.Histogram("frapp_test_latency_seconds", "Request latency.", L("route", "/v1/submit"))
	h.Record(time.Millisecond)
	h.Record(2 * time.Millisecond)
	return reg
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestExpositionRoundTrip parses the renderer's own output and checks
// the samples (including escaped label values) survive intact — the
// same validation path CI runs against a live scrape.
func TestExpositionRoundTrip(t *testing.T) {
	reg := goldenRegistry()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition unparseable: %v", err)
	}
	if missing := exp.CheckFamilies(reg.Families()); len(missing) > 0 {
		t.Fatalf("families missing from own scrape: %v", missing)
	}
	if got := exp.Types["frapp_test_requests_total"]; got != TypeCounter {
		t.Errorf("type = %q", got)
	}
	if got := exp.Types["frapp_test_latency_seconds"]; got != TypeSummary {
		t.Errorf("summary type = %q", got)
	}
	if v, ok := exp.Value("frapp_test_requests_total", map[string]string{"route": "/v1/submit", "code": "2xx"}); !ok || v != 42 {
		t.Errorf("counter sample = %v, %v", v, ok)
	}
	// The escaped label value must round-trip to the original string.
	if v, ok := exp.Value("frapp_test_escapes_total", map[string]string{"peer": "http://h\"o\\st:9\n090"}); !ok || v != 7 {
		t.Errorf("escaped-label sample = %v, %v", v, ok)
	}
	if v, ok := exp.Value("frapp_test_uptime_seconds", nil); !ok || v != 12.5 {
		t.Errorf("gaugefunc sample = %v, %v", v, ok)
	}
	if v, ok := exp.Value("frapp_test_latency_seconds_count", map[string]string{"route": "/v1/submit"}); !ok || v != 2 {
		t.Errorf("summary count = %v, %v", v, ok)
	}
	if v, ok := exp.Value("frapp_test_latency_seconds", map[string]string{"route": "/v1/submit", "quantile": "1"}); !ok || v != 0.002 {
		t.Errorf("summary max quantile = %v, %v", v, ok)
	}
	if v, ok := exp.Value("frapp_test_latency_seconds_sum", map[string]string{"route": "/v1/submit"}); !ok || v != 0.003 {
		t.Errorf("summary sum = %v, %v", v, ok)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"undeclared family":  "some_metric 1\n",
		"bad value":          "# TYPE m counter\nm notanumber\n",
		"unterminated label": "# TYPE m counter\nm{a=\"x 1\n",
		"bad label key":      "# TYPE m counter\nm{0bad=\"x\"} 1\n",
		"unknown type":       "# TYPE m sparkline\nm 1\n",
		"duplicate type":     "# TYPE m counter\n# TYPE m gauge\nm 1\n",
		"unknown escape":     "# TYPE m counter\nm{a=\"\\q\"} 1\n",
		"duplicate label":    "# TYPE m counter\nm{a=\"x\",a=\"y\"} 1\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c_total", "help", L("k", "v"))
	b := reg.Counter("c_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := reg.Counter("c_total", "help", L("k", "w")); c == a {
		t.Fatal("distinct label values shared a counter")
	}
	// Label order must not matter for identity.
	h1 := reg.Histogram("h_seconds", "help", L("a", "1"), L("b", "2"))
	h2 := reg.Histogram("h_seconds", "help", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type conflict did not panic")
			}
		}()
		reg.Gauge("c_total", "help")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid metric name did not panic")
			}
		}()
		reg.Counter("bad name", "help")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("reserved quantile label did not panic")
			}
		}()
		reg.Histogram("h2_seconds", "help", L("quantile", "0.5"))
	}()
}

func TestGaugeAddAndSet(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(1.25)
	g.Add(-0.75)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v", got)
	}
}

func TestEachSeriesEnumeratesAllLabels(t *testing.T) {
	reg := goldenRegistry()
	seen := map[string]int{}
	reg.EachSeries(func(name, typ string, labels []Label) {
		seen[name]++
		for _, l := range labels {
			if l.Key == "" {
				t.Errorf("series %s has empty label key", name)
			}
		}
	})
	if seen["frapp_test_requests_total"] != 2 {
		t.Errorf("requests series = %d, want 2", seen["frapp_test_requests_total"])
	}
	if len(seen) != 5 {
		t.Errorf("families seen = %d, want 5", len(seen))
	}
}
