package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// exactQuantile is the sorted-sample reference the histogram is checked
// against: rank ceil(q·n), 1-based, clamped to [1, n].
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram's quantile bound property against
// the exact reference: exact ≤ histogram ≤ exact·(1+2^-5) + 1ns.
func checkQuantiles(t *testing.T, h *Histogram, samples []time.Duration) {
	t.Helper()
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		if got < want {
			t.Errorf("Quantile(%v) = %v below exact %v", q, got, want)
		}
		bound := time.Duration(float64(want)*(1+1.0/histSub)) + 1
		if got > bound {
			t.Errorf("Quantile(%v) = %v exceeds bucket bound %v (exact %v)", q, got, bound, want)
		}
	}
	if h.Max() != sorted[len(sorted)-1] {
		t.Errorf("Max = %v, want exact %v", h.Max(), sorted[len(sorted)-1])
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(samples))
	}
}

func TestHistogramQuantilesVsExactReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2005))
	cases := map[string]func() []time.Duration{
		"uniform_us_to_s": func() []time.Duration {
			out := make([]time.Duration, 20000)
			for i := range out {
				out[i] = time.Duration(rng.Int63n(int64(time.Second)-1000) + 1000)
			}
			return out
		},
		"lognormal_latencies": func() []time.Duration {
			out := make([]time.Duration, 20000)
			for i := range out {
				out[i] = time.Duration(math.Exp(rng.NormFloat64()*1.5 + 13) /* ~0.4ms median */)
			}
			return out
		},
		"tiny_exact_range": func() []time.Duration {
			out := make([]time.Duration, 500)
			for i := range out {
				out[i] = time.Duration(rng.Int63n(histSub)) // unit buckets, exact
			}
			return out
		},
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			samples := gen()
			h := NewHistogram()
			for _, d := range samples {
				h.Record(d)
			}
			checkQuantiles(t, h, samples)
		})
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Record(1234567 * time.Nanosecond)
	checkQuantiles(t, h, []time.Duration{1234567})
	if h.Mean() != 1234567 {
		t.Errorf("Mean = %v", h.Mean())
	}
	// Every quantile of a single sample is that sample's bucket.
	if h.Quantile(0.001) != h.Quantile(0.999) {
		t.Errorf("single-sample quantiles differ: %v vs %v", h.Quantile(0.001), h.Quantile(0.999))
	}
}

func TestHistogramAllEqual(t *testing.T) {
	h := NewHistogram()
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = 5 * time.Millisecond
		h.Record(samples[i])
	}
	checkQuantiles(t, h, samples)
	if h.Quantile(0.5) != h.Quantile(0.99) {
		t.Errorf("all-equal quantiles differ: %v vs %v", h.Quantile(0.5), h.Quantile(0.99))
	}
	if h.Mean() != 5*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram()
	// Far beyond the last regular bucket (~146 min).
	huge := 300 * time.Hour
	h.Record(huge)
	h.Record(2 * time.Millisecond)
	if got := h.Quantile(1); got != huge {
		t.Errorf("overflow max quantile = %v, want %v", got, huge)
	}
	// The overflow sample's quantile reports the exact tracked max, not
	// a bucket bound.
	if got := h.Quantile(0.99); got != huge {
		t.Errorf("overflow p99 = %v, want exact max %v", got, huge)
	}
	if got := h.Quantile(0.5); got < 2*time.Millisecond || got > 2*time.Millisecond+2*time.Millisecond/histSub+1 {
		t.Errorf("p50 = %v, want ≈2ms", got)
	}
	if h.Max() != huge {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(-5 * time.Second) // clamps to 0
	if h.Quantile(1) != 0 || h.Count() != 1 {
		t.Errorf("negative record: q1=%v count=%d", h.Quantile(1), h.Count())
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and
	// bucket indices must be monotone in the value.
	prev := -1
	for idx := 0; idx < histBuckets-1; idx++ {
		upper := bucketUpper(idx)
		if got := bucketIndex(upper); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", idx, upper, got)
		}
		if got := bucketIndex(upper + 1); got != idx+1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d", upper+1, got, idx+1)
		}
		if int(upper) <= prev {
			t.Fatalf("bucket %d upper %d not increasing past %d", idx, upper, prev)
		}
		prev = int(upper)
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, whole := NewHistogram(), NewHistogram(), NewHistogram()
	var samples []time.Duration
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Second)))
		samples = append(samples, d)
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(b)
	checkQuantiles(t, a, samples)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("merged Quantile(%v) = %v, direct %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
	}
	if cum != goroutines*per {
		t.Fatalf("bucket sum %d != count %d", cum, goroutines*per)
	}
}

// TestHistogramMergeUnderConcurrentRecord exercises the documented
// Merge contract: quiesced worker histograms are folded into a
// destination that is still being recorded into concurrently. Nothing
// may be lost or double-counted, and the exact aggregates (count, sum,
// max, bucket mass) must reconcile once everything settles.
func TestHistogramMergeUnderConcurrentRecord(t *testing.T) {
	const recorders, perRecorder, workers, perWorker = 4, 20000, 6, 5000

	dst := NewHistogram()

	// Quiesced sources to merge while dst is hot.
	sources := make([]*Histogram, workers)
	var wantSum int64
	var wantMax time.Duration
	for w := range sources {
		sources[w] = NewHistogram()
		rng := rand.New(rand.NewSource(int64(100 + w)))
		for i := 0; i < perWorker; i++ {
			d := time.Duration(rng.Int63n(int64(time.Second)))
			sources[w].Record(d)
			wantSum += d.Nanoseconds()
			if d > wantMax {
				wantMax = d
			}
		}
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-start
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perRecorder; i++ {
				dst.Record(time.Duration(rng.Int63n(int64(time.Millisecond))))
			}
		}(int64(g))
	}
	// Interleave the merges with the recording traffic.
	for _, src := range sources {
		wg.Add(1)
		go func(src *Histogram) {
			defer wg.Done()
			<-start
			dst.Merge(src)
		}(src)
	}
	close(start)
	wg.Wait()

	wantCount := uint64(recorders*perRecorder + workers*perWorker)
	if dst.Count() != wantCount {
		t.Fatalf("Count = %d, want %d", dst.Count(), wantCount)
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += dst.counts[i].Load()
	}
	if cum != wantCount {
		t.Fatalf("bucket mass %d != count %d", cum, wantCount)
	}
	if dst.Sum() < time.Duration(wantSum) {
		t.Fatalf("Sum = %v below merged sources' sum %v", dst.Sum(), time.Duration(wantSum))
	}
	if dst.Max() < wantMax {
		t.Fatalf("Max = %v lost merged max %v", dst.Max(), wantMax)
	}
	// Quantiles on the settled histogram must still honour the bound
	// property; p1 of the mixed distribution must sit in the recorders'
	// sub-millisecond mass.
	if p1 := dst.Quantile(0.01); p1 > time.Millisecond+time.Millisecond/histSub {
		t.Fatalf("p1 = %v, want sub-millisecond mass visible", p1)
	}
}
