package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestLoggerJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug)
	id := NextRequestID()
	l.Info().
		Str("route", "/v1/submit").
		Str("tricky", "a\"b\\c\nd\te\x01").
		Int("status", 200).
		Uint("bytes", 1234).
		Float("ratio", 0.25).
		Bool("ok", true).
		Dur("dur", 1500*time.Microsecond).
		Req(id).
		Err(errors.New("boom \"quoted\"")).
		Msg("access")

	line := buf.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatal("line not newline-terminated")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, line)
	}
	if m["level"] != "info" || m["msg"] != "access" {
		t.Errorf("level/msg = %v/%v", m["level"], m["msg"])
	}
	if m["route"] != "/v1/submit" || m["tricky"] != "a\"b\\c\nd\te\x01" {
		t.Errorf("string fields corrupted: %v", m)
	}
	if m["status"] != float64(200) || m["bytes"] != float64(1234) || m["ratio"] != 0.25 {
		t.Errorf("numeric fields: %v", m)
	}
	if m["ok"] != true || m["dur"] != 0.0015 {
		t.Errorf("bool/dur fields: %v", m)
	}
	if m["req"] != id.String() {
		t.Errorf("req = %v, want %v", m["req"], id)
	}
	if m["error"] != "boom \"quoted\"" {
		t.Errorf("error field: %v", m["error"])
	}
	if ts, ok := m["ts"].(string); !ok {
		t.Errorf("ts missing")
	} else if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
		t.Errorf("ts not RFC3339Nano: %v", err)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn)
	l.Debug().Str("k", "v").Msg("nope")
	l.Info().Msg("nope")
	l.Warn().Msg("yes")
	l.Error().Msg("also")
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("emitted %d lines, want 2:\n%s", lines, buf.String())
	}
	l.SetLevel(LevelDebug)
	l.Debug().Msg("now")
	if strings.Count(buf.String(), "\n") != 3 {
		t.Fatal("SetLevel did not take effect")
	}
}

func TestNilLoggerAndDisabledLineSafe(t *testing.T) {
	var l *Logger
	// Every chained call on a nil logger / disabled line must no-op.
	l.Info().Str("k", "v").Int("n", 1).Req(NextRequestID()).Msg("void")
	l.SetLevel(LevelError)
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

func TestRequestIDs(t *testing.T) {
	a, b := NextRequestID(), NextRequestID()
	if a == b {
		t.Fatal("sequential request IDs collide")
	}
	s := a.String()
	if len(s) != 16 {
		t.Fatalf("ID %q not 16 hex digits", s)
	}
	for _, c := range s {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("ID %q has non-hex rune %q", s, c)
		}
	}
	// Same process prefix, consecutive sequence numbers.
	if uint64(a)>>32 != uint64(b)>>32 {
		t.Fatal("process prefix changed between IDs")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) accepted")
	}
}
