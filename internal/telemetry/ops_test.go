package telemetry

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestOpsHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("frapp_ops_test_total", "help").Add(3)
	var ready atomic.Bool
	h := OpsHandler(reg, func() error {
		if !ready.Load() {
			return errors.New("warm sync pending")
		}
		return nil
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}

	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != ExpositionContentType {
		t.Errorf("content type %q", ct)
	}
	exp, err := ParseExposition([]byte(body))
	if err != nil {
		t.Fatalf("scrape unparseable: %v", err)
	}
	if v, ok := exp.Value("frapp_ops_test_total", nil); !ok || v != 3 {
		t.Errorf("scraped counter = %v, %v", v, ok)
	}

	if code, body, _ := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body, _ := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "warm sync pending") {
		t.Errorf("not-ready /readyz = %d %q", code, body)
	}
	ready.Store(true)
	if code, _, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("ready /readyz = %d", code)
	}
	if code, body, _ := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d", code)
	}
	if code, _, _ := get("/v1/submit"); code != http.StatusNotFound {
		t.Errorf("data-plane route on ops listener = %d, want 404", code)
	}
}

func TestServeOpsBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	s, err := ServeOps("127.0.0.1:0", OpsHandler(reg, nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over real listener = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Close")
	}
}
