package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: metric name (including any
// _sum/_count suffix), its label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Exposition is a parsed Prometheus text scrape. It exists so the load
// harness and CI can validate a live scrape — unparseable output or a
// missing declared family fails the gate — and so tests can assert on
// individual samples without string matching.
type Exposition struct {
	// Types maps family name to its TYPE line value.
	Types map[string]string
	// Samples lists every value line in document order.
	Samples []Sample
}

// ParseExposition parses Prometheus text exposition format (version
// 0.0.4) as produced by Registry.WriteText: HELP/TYPE comment lines and
// `name{labels} value` samples. It is strict about structure — bad
// label syntax, unparseable values, or samples under an undeclared
// family are errors — because its job is to catch a broken exporter,
// not to tolerate one.
func ParseExposition(data []byte) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(s.Name, "_sum"), "_count")
		if _, ok := exp.Types[s.Name]; !ok {
			if _, ok := exp.Types[base]; !ok {
				return nil, fmt.Errorf("line %d: sample %q under undeclared family", ln+1, s.Name)
			}
		}
		exp.Samples = append(exp.Samples, s)
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // free-form comment
	}
	if fields[1] != "TYPE" {
		// HELP and free-form comments are informational.
		return nil
	}
	if len(fields) != 4 {
		return fmt.Errorf("malformed TYPE line %q", line)
	}
	name, typ := fields[2], fields[3]
	switch typ {
	case TypeCounter, TypeGauge, TypeSummary, "histogram", "untyped":
	default:
		return fmt.Errorf("unknown metric type %q for %q", typ, name)
	}
	if _, dup := e.Types[name]; dup {
		return fmt.Errorf("duplicate TYPE for %q", name)
	}
	e.Types[name] = typ
	return nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("metric %q: %w", s.Name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp (rare, space-separated) is tolerated.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("metric %q: bad value %q", s.Name, rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a `{k="v",...}` block starting at s[0]=='{' and
// returns the index one past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return 0, nil, fmt.Errorf("label without '='")
		}
		key := s[i:j]
		if key != "quantile" && !validLabelKey(key) {
			return 0, nil, fmt.Errorf("invalid label key %q", key)
		}
		if j+1 >= len(s) || s[j+1] != '"' {
			return 0, nil, fmt.Errorf("label %q: value not quoted", key)
		}
		val, next, err := parseQuoted(s, j+1)
		if err != nil {
			return 0, nil, fmt.Errorf("label %q: %w", key, err)
		}
		if _, dup := labels[key]; dup {
			return 0, nil, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val
		i = next
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// parseQuoted unescapes the quoted string starting at s[start]=='"' and
// returns the value plus the index one past the closing quote.
func parseQuoted(s string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(s) {
		switch s[i] {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i+1])
			}
			i += 2
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}

// Value returns the sample matching name and every given label (the
// sample may carry more labels than asked for, e.g. quantile).
func (e *Exposition) Value(name string, labels map[string]string) (float64, bool) {
	for _, s := range e.Samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// CheckFamilies verifies every name in required has a TYPE declaration
// in the scrape, returning the missing names.
func (e *Exposition) CheckFamilies(required []string) []string {
	var missing []string
	for _, name := range required {
		if _, ok := e.Types[name]; !ok {
			missing = append(missing, name)
		}
	}
	return missing
}
