package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ExpositionContentType is the Content-Type of GET /metrics responses.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// OpsHandler serves the operational sidecar surface on a listener
// separate from the data plane, so scraping and profiling never contend
// with ingest traffic:
//
//	GET /metrics  — Prometheus text exposition of reg
//	GET /healthz  — liveness: 200 once the process serves at all
//	GET /readyz   — readiness: 200 only when ready() returns nil,
//	                503 with the reason otherwise
//	/debug/pprof/ — the standard pprof index, profiles, and traces
//
// ready may be nil, meaning always ready. The handler exposes only
// aggregate operational data; bind it to localhost in production (see
// docs/observability.md).
func OpsHandler(reg *Registry, ready func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ExpositionContentType)
		_ = reg.WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running ops listener.
type OpsServer struct {
	// Addr is the bound address, resolving ":0" to the chosen port.
	Addr string
	srv  *http.Server
	done chan struct{}
}

// ServeOps binds addr and serves h on it in a background goroutine.
// The returned server reports the bound address (useful with ":0") and
// must be Closed on shutdown.
func ServeOps(addr string, h http.Handler) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops listener: %w", err)
	}
	s := &OpsServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Close shuts the listener down gracefully, bounded at two seconds.
func (s *OpsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}
