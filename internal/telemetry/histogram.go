package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear ("HDR-style"): values below 2^histSubBits
// ns get exact unit buckets; every higher octave [2^o, 2^(o+1)) is split
// into 2^histSubBits equal sub-buckets, so the relative quantization
// error is bounded by 2^-histSubBits ≈ 3.1% everywhere. Recording is a
// couple of bit operations plus one atomic add — cheap enough to sit on
// the ingest fast path and on every simulated loadgen client — and the
// whole histogram is a fixed-size array, so there is nothing to
// allocate or resize under load.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// histMaxOctave caps the tracked range: the last regular bucket ends
	// at 2^(histMaxOctave+1) ns ≈ 146 min. Anything slower lands in the
	// overflow bucket and is reported via the exact tracked maximum.
	histMaxOctave = 42
	// histBuckets = unit buckets + sub-buckets per octave above, + 1
	// overflow.
	histBuckets = histSub + (histMaxOctave-histSubBits+1)*histSub + 1
)

// Histogram is a streaming, concurrency-safe log-bucketed latency
// histogram. The zero value is not usable; call NewHistogram.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	u := uint64(ns)
	if u < histSub {
		return int(u)
	}
	o := bits.Len64(u) - 1 // top bit position, ≥ histSubBits
	if o > histMaxOctave {
		return histBuckets - 1 // overflow
	}
	shift := o - histSubBits
	minor := (u >> uint(shift)) & (histSub - 1)
	return (shift+1)*histSub + int(minor)
}

// bucketUpper returns the inclusive upper bound (ns) of bucket idx; the
// overflow bucket has no bound and returns -1.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	if idx >= histBuckets-1 {
		return -1
	}
	k := idx/histSub - 1 // octave offset: o = histSubBits + k
	o := histSubBits + k
	minor := int64(idx - (k+1)*histSub)
	return 1<<uint(o) + (minor+1)<<uint(o-histSubBits) - 1
}

// Record adds one latency observation. Negative durations clamp to 0.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(d.Nanoseconds()) }

// RecordValue adds one raw observation — the same log-bucketed sketch
// over unitless values (batch sizes, byte counts). Negative values
// clamp to 0.
func (h *Histogram) RecordValue(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the exact sum of recorded values.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the exact largest recorded value.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the exact arithmetic mean of recorded values.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Quantile returns an upper bound on the q-th sample quantile (rank
// ceil(q·count), 1-based): the upper edge of the bucket holding that
// sample, so the true sample value v satisfies v ≤ Quantile(q) ≤
// v·(1+2^-5) (exact for v < 32ns). q ≥ 1 and samples in the overflow
// bucket report the exact tracked maximum. Returns 0 on an empty
// histogram; q below the first sample's mass returns that sample's
// bucket bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for idx := 0; idx < histBuckets; idx++ {
		cum += h.counts[idx].Load()
		if cum >= rank {
			upper := bucketUpper(idx)
			if upper < 0 { // overflow bucket
				return h.Max()
			}
			// The tracked max is exact and caps the bound, so a
			// quantile never reports above the largest observation.
			if m := h.Max(); time.Duration(upper) > m {
				return m
			}
			return time.Duration(upper)
		}
	}
	return h.Max()
}

// Merge folds o's observations into h. Concurrent Record calls on h
// (the destination) are safe and lose nothing: both sides only issue
// atomic adds, so the merged totals are exact once both finish. The
// source o must be quiesced — its buckets, count, and sum are read in
// separate atomic loads, so recording into o mid-merge can transfer a
// torn snapshot.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}
