// Package telemetry is the dependency-free operational metrics and
// logging core: atomic counters, gauges, and log-bucketed latency
// histograms behind a registry that renders Prometheus text exposition
// format (version 0.0.4), plus a leveled structured JSON logger with
// per-request IDs. Everything here is stdlib-only and safe for
// concurrent use; instruments are fixed-size and allocation-free to
// update, so they can sit directly on ingest fast paths.
//
// Privacy contract (conf_icde_AgrawalH05): telemetry carries aggregate
// operational data only. Metric names, label keys, and label values are
// fixed at registration time from operator-controlled vocabulary
// (routes, status classes, shard indices, peer URLs) — never from
// record or category contents. The service layer enforces and tests
// this; the registry helps by making every series an explicit,
// enumerable registration.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one metric dimension. Values must come from operator or
// deployment vocabulary (route names, shard indices, peer URLs), never
// from record contents.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Metric type strings as they appear on exposition TYPE lines.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
	// TypeSummary is how Histograms render: φ-quantile samples plus
	// _sum and _count, cheaper to scrape than ~1200 raw log-linear
	// buckets and exact where it matters (count, sum, max).
	TypeSummary = "summary"
)

// summaryQuantiles are the φ values every histogram exposes. 1.0 is the
// exact tracked maximum.
var summaryQuantiles = []float64{0.5, 0.9, 0.99, 1}

type series struct {
	labels    []Label
	counter   *Counter
	counterFn func() float64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
	// histRaw marks a values histogram (RecordValue): samples render as
	// the raw recorded numbers instead of nanoseconds-to-seconds.
	histRaw bool
}

type family struct {
	name   string
	help   string
	typ    string
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration methods are get-or-create: calling
// Counter twice with the same name and labels returns the same
// instrument, so lazily materialising a label combination on first use
// is cheap and race-free. Registration takes a lock; updates on the
// returned instruments are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter returns the counter registered under name with the given
// labels, creating the family and series as needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, TypeCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge registered under name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, TypeGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// CounterFunc registers a counter whose value is computed by fn at
// scrape time. fn must be monotonically non-decreasing; use it to
// expose counts a subsystem already tracks under its own lock instead
// of double-booking them into a Counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, TypeCounter, labels)
	s.counterFn = fn
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — the natural shape for queue depths, ages, and uptime, where
// sampling at scrape beats instrumenting every transition.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, TypeGauge, labels)
	s.gaugeFn = fn
}

// Histogram returns the latency histogram registered under name with
// the given labels; it renders as a Prometheus summary.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	s := r.lookup(name, help, TypeSummary, labels)
	if s.hist == nil {
		s.hist = NewHistogram()
	}
	return s.hist
}

// HistogramValues returns a histogram over unitless values (batch
// sizes, byte counts): observations go in via RecordValue and the
// summary renders them raw instead of converting nanoseconds to
// seconds.
func (r *Registry) HistogramValues(name, help string, labels ...Label) *Histogram {
	s := r.lookup(name, help, TypeSummary, labels)
	if s.hist == nil {
		s.hist = NewHistogram()
	}
	s.histRaw = true
	return s.hist
}

// lookup finds or creates the series for (name, labels). It panics on
// malformed or conflicting registrations: every call site passes
// compile-time-constant names, so a failure here is a programming
// error, caught by the first test that touches the instrument.
func (r *Registry) lookup(name, help, typ string, labels []Label) *series {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q on %q", l.Key, name))
		}
		if l.Key == "quantile" {
			panic(fmt.Sprintf("telemetry: label key \"quantile\" on %q is reserved for summary rendering", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]*series)}
		r.families = append(r.families, f)
		r.byName[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	if s := f.byKey[key]; s != nil {
		return s
	}
	s := &series{labels: append([]Label(nil), labels...)}
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

// Families returns the registered family names in registration order —
// the declared-metric list a scrape validator checks against.
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	return out
}

// EachSeries calls fn for every registered series with its family name,
// type, and label set. Used by the privacy guard test to enumerate
// every string that can ever appear on the metrics endpoint.
func (r *Registry) EachSeries(fn func(name, typ string, labels []Label)) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		for _, s := range f.series {
			fn(f.name, f.typ, s.labels)
		}
	}
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): families in registration order, each with HELP and
// TYPE lines, histograms as summaries with quantile samples in seconds.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	buf := make([]byte, 0, 4096)
	for _, f := range fams {
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = appendEscapedHelp(buf, f.help)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		for _, s := range f.series {
			switch {
			case s.counterFn != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", s.counterFn())
			case s.counter != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", float64(s.counter.Value()))
			case s.gaugeFn != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", s.gaugeFn())
			case s.gauge != nil:
				buf = appendSample(buf, f.name, "", s.labels, "", s.gauge.Value())
			case s.hist != nil:
				h := s.hist
				// Durations are tracked in ns and exposed in seconds; raw
				// values histograms expose the recorded numbers as-is.
				val := func(d time.Duration) float64 {
					if s.histRaw {
						return float64(d)
					}
					return d.Seconds()
				}
				for _, q := range summaryQuantiles {
					qs := strconv.FormatFloat(q, 'g', -1, 64)
					buf = appendSample(buf, f.name, "", s.labels, qs, val(h.Quantile(q)))
				}
				buf = appendSample(buf, f.name, "_sum", s.labels, "", val(h.Sum()))
				buf = appendSample(buf, f.name, "_count", s.labels, "", float64(h.Count()))
			}
		}
	}
	_, err := w.Write(buf)
	return err
}

// appendSample renders one `name{labels} value` line. quantile, when
// non-empty, is appended as the trailing quantile="..." label.
func appendSample(buf []byte, name, suffix string, labels []Label, quantile string, v float64) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if len(labels) > 0 || quantile != "" {
		buf = append(buf, '{')
		for i, l := range labels {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, l.Key...)
			buf = append(buf, '=', '"')
			buf = appendEscapedLabel(buf, l.Value)
			buf = append(buf, '"')
		}
		if quantile != "" {
			if len(labels) > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, "quantile=\""...)
			buf = append(buf, quantile...)
			buf = append(buf, '"')
		}
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendFloat(buf, v)
	buf = append(buf, '\n')
	return buf
}

// appendFloat renders v the way Prometheus expects: integral values
// without an exponent where possible, shortest round-trip otherwise.
func appendFloat(buf []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendEscapedHelp escapes \ and newline in HELP text.
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendEscapedLabel escapes \, ", and newline in label values.
func appendEscapedLabel(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, '\\', '\\')
		case '"':
			buf = append(buf, '\\', '"')
		case '\n':
			buf = append(buf, '\\', 'n')
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
