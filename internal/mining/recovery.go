package mining

import "fmt"

// Crash-recovery support for live counters. The durable store
// (internal/store) logs a ShardedCounter's changes as a chain of
// CounterDelta records — the same sparse joint-histogram diffs the
// federation layer replicates — and rebuilds the counter after a crash
// by loading a compacted checkpoint and replaying the chain's tail.
// This file provides the two primitives that makes possible on the
// counter itself: applying a delta to a LIVE counter (recovery replay
// and checkpoint compaction both fold deltas into fresh counters), and
// persisting/restoring the replication identity (delta epoch, retained
// baselines, token high-water mark) so federation pullers can resume
// incremental replication against a restarted process instead of
// falling back to a full re-pull.

// tokenRecoveryGap is added to the persisted token high-water mark on
// restore. Stream tokens minted after the last checkpoint are lost in a
// crash, so a recovered counter that continued from the persisted mark
// alone could re-mint a pre-crash token for DIFFERENT state — and a
// puller still holding the old token would silently chain onto the
// wrong baseline. The gap keeps every post-recovery token above any
// token the previous boot could plausibly have minted (one token per
// pull: 2^32 pulls between two checkpoints is out of reach).
const tokenRecoveryGap = 1 << 32

// ApplyDelta folds a replication or WAL delta into the live counter: the
// cells land in one shard (validated by the shard's own ApplyDelta —
// fingerprint, ranges, positivity, record-count sum) and the counter's
// record count and content version advance by the delta's record count,
// exactly as if the delta's records had been ingested one by one. A FULL
// delta is accepted only by an empty counter — the caller chains deltas,
// the counter refuses the one misuse that would double-count.
func (c *ShardedCounter) ApplyDelta(d *CounterDelta) error {
	if d == nil {
		return fmt.Errorf("%w: nil delta", ErrMining)
	}
	if d.Full() && c.N() != 0 {
		return fmt.Errorf("%w: full delta applied to a counter already holding %d records", ErrMining, c.N())
	}
	shard := c.next.Add(1) % uint64(len(c.shards))
	if err := c.shards[shard].ApplyDelta(d); err != nil {
		return err
	}
	c.total.Add(int64(d.Records))
	c.version.Add(uint64(d.Records))
	return nil
}

// ReplicationBaseline is one retained DeltaSince baseline in portable
// form: the stream token it was issued under and the exact sparse joint
// histogram handed to the puller at that token.
type ReplicationBaseline struct {
	Token   uint64
	Records int
	Cells   []DeltaCell
}

// ReplicationState is the counter's replication identity, captured for
// persistence: the delta epoch every extracted delta carries, the token
// high-water mark, and the retained baselines (oldest first). Restoring
// it into a recovered counter lets pullers that chained onto the
// pre-crash counter continue incrementally — same epoch, same retained
// baselines — instead of being forced into a full resync.
type ReplicationState struct {
	Epoch     uint64
	LastToken uint64
	Baselines []ReplicationBaseline
}

// ReplicationState captures the counter's replication identity under the
// checkpoint lock.
func (c *ShardedCounter) ReplicationState() ReplicationState {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	rs := ReplicationState{Epoch: c.deltaEpoch, LastToken: c.lastDeltaToken}
	for _, tok := range c.ckptOrder {
		ck := c.ckpts[tok]
		b := ReplicationBaseline{Token: tok, Records: ck.n, Cells: make([]DeltaCell, 0, len(ck.joint))}
		for idx, v := range ck.joint {
			if v != 0 {
				b.Cells = append(b.Cells, DeltaCell{Idx: idx, Count: v})
			}
		}
		rs.Baselines = append(rs.Baselines, b)
	}
	return rs
}

// RestoreReplicationState adopts a persisted replication identity into a
// freshly recovered counter: the delta epoch is restored (so pullers'
// generation checks pass), the token high-water mark jumps past anything
// the previous boot could have minted (see tokenRecoveryGap), and every
// baseline that is still a subset of the recovered state is re-retained.
// A baseline the recovered counter does not dominate — possible when a
// crash lost WAL records that a puller had already been served — is
// silently dropped: its puller then gets a full resync, which is always
// safe, instead of an incremental diff against state it doesn't hold.
//
// Call before the counter is shared: like construction, this runs
// single-threaded during recovery, not under concurrent ingest.
func (c *ShardedCounter) RestoreReplicationState(rs ReplicationState) error {
	if rs.Epoch == 0 {
		return fmt.Errorf("%w: replication state carries no epoch", ErrMining)
	}
	joint := make(map[uint64]float64)
	n := 0
	for _, s := range c.shards {
		n += s.addJointInto(joint)
	}
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	c.deltaEpoch = rs.Epoch
	base := rs.LastToken
	if v := c.version.Load(); v > base {
		base = v
	}
	c.lastDeltaToken = base + tokenRecoveryGap
	for _, b := range rs.Baselines {
		if b.Token == 0 || b.Records < 0 || b.Records > n || len(b.Cells) > len(joint) {
			continue
		}
		if _, dup := c.ckpts[b.Token]; dup {
			continue
		}
		if len(c.ckptOrder) >= maxDeltaCheckpoints {
			break
		}
		ck := &deltaCheckpoint{n: b.Records, joint: make(map[uint64]float64, len(b.Cells))}
		valid := true
		for _, cell := range b.Cells {
			if cell.Count <= 0 || cell.Count > joint[cell.Idx]+1e-9 {
				valid = false
				break
			}
			ck.joint[cell.Idx] = cell.Count
		}
		if !valid {
			continue
		}
		c.ckpts[b.Token] = ck
		c.ckptOrder = append(c.ckptOrder, b.Token)
	}
	return nil
}
