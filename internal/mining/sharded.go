package mining

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ShardedGammaCounter is a lock-striped MaterializedGammaCounter for the
// collection service's hot path. A single materialized counter serializes
// every submission on one mutex held across an O(M·2^M) histogram update,
// so a busy server cannot use more than one core for ingestion. Sharding
// splits the counter into S independent MaterializedGammaCounter shards,
// each with its own lock and its own copy of the subset histograms;
// submissions are routed round-robin, so concurrent submitters contend
// only when they land on the same shard at the same instant (probability
// ~1/S). Because every record lands entirely in exactly one shard,
// summing per-shard histograms and record counts reproduces the
// single-counter state exactly — the reconstruction arithmetic over
// integer-valued counts is bit-identical.
//
// Reads merge on demand: Supports sums only the histograms its
// candidates touch and evaluates the batch across a worker pool (the
// span pattern of core.PerturbDatabaseParallel); Snapshot folds all
// shards into one frozen MaterializedGammaCounter for consistent
// multi-pass mining.
type ShardedGammaCounter struct {
	schema *dataset.Schema
	matrix core.UniformMatrix
	shards []*MaterializedGammaCounter
	next   atomic.Uint64
	// total mirrors the sum of shard record counts so N() — called on
	// every submit response — stays lock-free instead of sweeping all
	// shard mutexes.
	total atomic.Int64
	// version is a monotonic counter-content version: it advances after
	// every record is fully ingested into its shard, and state restore
	// initializes it to the restored record count. Two reads returning
	// the same version therefore bracket an interval in which no new
	// record became visible — the invariant the service's mining-result
	// cache is keyed on.
	version atomic.Uint64

	// Replication baselines for DeltaSince (see delta.go): joint
	// histograms retained per issued stream token so the next pull diffs
	// against exactly the state the puller holds. The ring lives and dies
	// with the counter object — a restored counter starts empty, which is
	// what forces pullers into a clean full resync. deltaEpoch is a
	// random per-object nonce carried as the delta Generation: two
	// counter objects (across restarts, restores, or publishes) can
	// never share one, so a stream token can never alias a different
	// object's state even if version lines and token values collide.
	deltaEpoch     uint64
	ckptMu         sync.Mutex
	ckpts          map[uint64]*deltaCheckpoint
	ckptOrder      []uint64
	lastDeltaToken uint64
}

// NewShardedGammaCounter builds a counter with the given shard count;
// shards <= 0 defaults to runtime.GOMAXPROCS(0).
func NewShardedGammaCounter(schema *dataset.Schema, m core.UniformMatrix, shards int) (*ShardedGammaCounter, error) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	c := &ShardedGammaCounter{
		schema:     schema,
		matrix:     m,
		shards:     make([]*MaterializedGammaCounter, shards),
		deltaEpoch: rand.Uint64(),
		ckpts:      make(map[uint64]*deltaCheckpoint),
	}
	for i := range c.shards {
		s, err := NewMaterializedGammaCounter(schema, m)
		if err != nil {
			return nil, err
		}
		c.shards[i] = s
	}
	return c, nil
}

// Shards returns the number of stripes.
func (c *ShardedGammaCounter) Shards() int { return len(c.shards) }

// Schema returns the counter's schema.
func (c *ShardedGammaCounter) Schema() *dataset.Schema { return c.schema }

// Add ingests one (already perturbed) record into the next shard in
// round-robin order. The atomic routing counter is the only state shared
// between concurrent submitters.
func (c *ShardedGammaCounter) Add(rec dataset.Record) error {
	shard := c.next.Add(1) % uint64(len(c.shards))
	if err := c.shards[shard].Add(rec); err != nil {
		return err
	}
	c.total.Add(1)
	c.version.Add(1)
	return nil
}

// AddDatabase ingests every record of a perturbed database.
func (c *ShardedGammaCounter) AddDatabase(db *dataset.Database) error {
	return addDatabase(c.schema, c.Add, db)
}

// N returns the total number of ingested records across all shards.
func (c *ShardedGammaCounter) N() int {
	return int(c.total.Load())
}

// Version returns the current snapshot version. The version only moves
// forward, and it moves exactly when counter content changes, so equal
// versions imply identical counter state (mining results computed at
// version v remain exact answers for any later read that still observes
// v).
func (c *ShardedGammaCounter) Version() uint64 {
	return c.version.Load()
}

// Snapshot folds every shard into one frozen MaterializedGammaCounter.
// Shards are read one at a time under their own locks; a record is
// counted in every histogram of its shard or in none, so the merged copy
// is always a consistent view of some set of fully ingested records even
// while submissions keep arriving.
func (c *ShardedGammaCounter) Snapshot() *MaterializedGammaCounter {
	snap, _ := c.SnapshotVersioned()
	return snap
}

// SnapshotVersioned returns a merged frozen counter together with a
// version it is valid for. The version is read BEFORE the shard fold:
// every record ingested at or before that version is fully inside some
// shard and therefore inside the snapshot, so snap.N() >= version is
// guaranteed (records landing during the fold may or may not be
// included — the snapshot is then a strictly newer, still-consistent
// view, which only makes a cache entry keyed at the returned version
// fresher than advertised, never staler).
func (c *ShardedGammaCounter) SnapshotVersioned() (*MaterializedGammaCounter, uint64) {
	version := c.version.Load()
	first := c.shards[0]
	merged := &MaterializedGammaCounter{
		schema:   c.schema,
		matrix:   c.matrix,
		cols:     first.cols,     // immutable after construction
		subSizes: first.subSizes, // immutable after construction
		hists:    make([][]float64, len(first.hists)),
	}
	for mask := 1; mask < len(first.hists); mask++ {
		merged.hists[mask] = make([]float64, len(first.hists[mask]))
	}
	for _, s := range c.shards {
		s.mu.RLock()
		merged.n += s.n
		for mask := 1; mask < len(s.hists); mask++ {
			addInto(merged.hists[mask], s.hists[mask])
		}
		s.mu.RUnlock()
	}
	return merged, version
}

// addInto accumulates src into dst element-wise — the histogram fold
// shared by the snapshot, query-merge, and state-restore paths.
func addInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// shardedCandidate is the per-candidate routing computed during the
// parallel validation pass.
type shardedCandidate struct {
	mask int
	idx  int
}

// routeCandidates validates the batch and computes each candidate's
// (subset mask, histogram index) across a worker pool — candidate
// batches come from Apriori passes, which can be thousands of itemsets
// wide.
func (c *ShardedGammaCounter) routeCandidates(candidates []Itemset) ([]shardedCandidate, error) {
	routed := make([]shardedCandidate, len(candidates))
	if err := c.forEachSpan(len(candidates), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			cand := candidates[i]
			// Validate enforces canonical strictly-increasing attribute
			// order, so the mask below cannot alias two items.
			if err := cand.Validate(c.schema); err != nil {
				return err
			}
			mask := 0
			idx := 0
			for _, it := range cand {
				mask |= 1 << uint(it.Attr)
				idx = idx*c.schema.Attrs[it.Attr].Cardinality() + it.Value
			}
			routed[i] = shardedCandidate{mask: mask, idx: idx}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return routed, nil
}

// mergeCounts merges only the subset histograms the routed batch
// touches, one shard lock at a time, and returns each candidate's raw
// perturbed match count Y_L plus the merged record count N of the same
// sweep. Shard-local (n, hists) pairs are internally consistent, so
// their sum reconstructs counts for a valid record set. Mask 0 (the
// empty itemset) is supported by every record, so its Y_L is N itself.
func (c *ShardedGammaCounter) mergeCounts(routed []shardedCandidate) ([]float64, int) {
	merged := make(map[int][]float64)
	for _, rc := range routed {
		if rc.mask != 0 && merged[rc.mask] == nil {
			merged[rc.mask] = make([]float64, c.shards[0].subSizes[rc.mask])
		}
	}
	n := 0
	for _, s := range c.shards {
		s.mu.RLock()
		n += s.n
		for mask, dst := range merged {
			addInto(dst, s.hists[mask])
		}
		s.mu.RUnlock()
	}
	ys := make([]float64, len(routed))
	for i, rc := range routed {
		if rc.mask == 0 {
			ys[i] = float64(n)
			continue
		}
		ys[i] = merged[rc.mask][rc.idx]
	}
	return ys, n
}

// Supports merges only the subset histograms the candidate batch touches
// and evaluates the Eq. 28 closed form across a worker pool. The empty
// itemset is answered exactly (every record supports it).
func (c *ShardedGammaCounter) Supports(candidates []Itemset) ([]float64, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	routed, err := c.routeCandidates(candidates)
	if err != nil {
		return nil, err
	}
	ys, n := c.mergeCounts(routed)

	marginals := make(map[int]core.UniformMatrix)
	for _, rc := range routed {
		if rc.mask == 0 {
			continue
		}
		if _, ok := marginals[rc.mask]; ok {
			continue
		}
		marg, err := c.matrix.Marginal(c.shards[0].subSizes[rc.mask])
		if err != nil {
			return nil, err
		}
		marginals[rc.mask] = marg
	}

	out := make([]float64, len(candidates))
	fn := float64(n)
	if err := c.forEachSpan(len(candidates), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rc := routed[i]
			if rc.mask == 0 {
				out[i] = ys[i] // exact, no reconstruction noise
				continue
			}
			marg := marginals[rc.mask]
			out[i] = (ys[i] - marg.Off*fn) / (marg.Diag - marg.Off)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PerturbedSupports returns each candidate's RAW perturbed match count
// Y_L — the histogram cell before any reconstruction — together with
// the record count N observed in the same shard sweep, so (Y_L, N)
// pairs are mutually consistent. This is the substrate of the
// counter-backed interactive query path (internal/query.CounterEngine),
// which needs Y_L rather than the reconstructed support because the
// estimator's standard error is a function of Y_L/N.
func (c *ShardedGammaCounter) PerturbedSupports(candidates []Itemset) ([]float64, int, error) {
	if len(candidates) == 0 {
		return nil, c.N(), nil
	}
	routed, err := c.routeCandidates(candidates)
	if err != nil {
		return nil, 0, err
	}
	ys, n := c.mergeCounts(routed)
	return ys, n, nil
}

// forEachSpan runs fn over contiguous spans of [0, n) on a worker pool
// (core.ForEachSpan), capping the worker count so small batches run
// inline — goroutine scheduling would dominate the arithmetic.
func (c *ShardedGammaCounter) forEachSpan(n int, fn func(lo, hi int) error) error {
	workers := runtime.GOMAXPROCS(0)
	const minSpan = 64
	if workers > n/minSpan {
		workers = n / minSpan
	}
	if workers <= 1 {
		return fn(0, n)
	}
	return core.ForEachSpan(n, workers, func(_, lo, hi int) error { return fn(lo, hi) })
}
