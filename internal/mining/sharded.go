package mining

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ShardedCounter is the scheme-generic lock-striped live counter behind
// the collection service's hot path — the one implementation of
// LiveCounter, striping any scheme's CounterCore. A single core
// serializes every submission on one mutex held across its histogram
// update, so a busy server cannot use more than one core for ingestion.
// Sharding splits the counter into S independent cores, each with its
// own lock and its own copy of the scheme's materialized state;
// submissions are routed round-robin, so concurrent submitters contend
// only when they land on the same shard at the same instant (probability
// ~1/S). Because every record lands entirely in exactly one shard,
// summing per-shard state reproduces the single-core state exactly — the
// per-scheme reconstruction arithmetic over integer-valued counts is
// bit-identical.
//
// Reads merge on demand: Supports, PerturbedSupports, and Estimates
// prepare a candidate batch once, gather each shard's contribution under
// that shard's own lock, and resolve from the merged observables;
// SnapshotVersioned folds all shards into one frozen core for consistent
// multi-pass mining.
type ShardedCounter struct {
	scheme CounterScheme
	shards []CounterCore
	next   atomic.Uint64
	// total mirrors the sum of shard record counts so N() — called on
	// every submit response — stays lock-free instead of sweeping all
	// shard mutexes.
	total atomic.Int64
	// version is a monotonic counter-content version: it advances after
	// every record is fully ingested into its shard, and state restore
	// initializes it to the restored record count. Two reads returning
	// the same version therefore bracket an interval in which no new
	// record became visible — the invariant the service's mining-result
	// cache is keyed on.
	version atomic.Uint64

	// Replication baselines for DeltaSince (see delta.go): sparse joint
	// histograms retained per issued stream token so the next pull diffs
	// against exactly the state the puller holds. The ring lives and dies
	// with the counter object — a restored counter starts empty, which is
	// what forces pullers into a clean full resync. deltaEpoch is a
	// random per-object nonce carried as the delta Generation: two
	// counter objects (across restarts, restores, or publishes) can
	// never share one, so a stream token can never alias a different
	// object's state even if version lines and token values collide.
	deltaEpoch     uint64
	ckptMu         sync.Mutex
	ckpts          map[uint64]*deltaCheckpoint
	ckptOrder      []uint64
	lastDeltaToken uint64

	// obs receives per-shard ingest telemetry. It is set once via
	// SetIngestObserver before the counter starts taking traffic and read
	// without synchronization on the hot path; a nil observer costs one
	// predictable branch per shard span.
	obs IngestObserver
}

// IngestObserver receives ingest telemetry from the counter hot path:
// which shard a span of records landed on, how many records it carried,
// and how long the span waited for the shard lock (zero for the
// single-record path, which cannot separate wait from apply without
// taxing every submit). Implementations must be allocation-free and
// cheap — they run inside IngestBatch.
type IngestObserver interface {
	ObserveIngest(shard, records int, lockWait time.Duration)
}

// SetIngestObserver installs the ingest telemetry hook. Call it before
// the counter is exposed to traffic; the field is read unsynchronized
// on the hot path.
func (c *ShardedCounter) SetIngestObserver(o IngestObserver) { c.obs = o }

// Compile-time check: ShardedCounter is the LiveCounter implementation.
var _ LiveCounter = (*ShardedCounter)(nil)

// NewShardedCounter builds a live counter for the given scheme with the
// given shard count; shards <= 0 defaults to runtime.GOMAXPROCS(0).
func NewShardedCounter(scheme CounterScheme, shards int) (*ShardedCounter, error) {
	if scheme == nil {
		return nil, fmt.Errorf("%w: nil scheme contract", ErrMining)
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	c := &ShardedCounter{
		scheme:     scheme,
		shards:     make([]CounterCore, shards),
		deltaEpoch: rand.Uint64(),
		ckpts:      make(map[uint64]*deltaCheckpoint),
	}
	for i := range c.shards {
		c.shards[i] = scheme.NewCore()
	}
	return c, nil
}

// NewShardedGammaCounter builds a gamma-diagonal sharded counter — the
// historical constructor, kept as a convenience over NewShardedCounter
// with a GammaScheme.
func NewShardedGammaCounter(schema *dataset.Schema, m core.UniformMatrix, shards int) (*ShardedCounter, error) {
	scheme, err := NewGammaScheme(schema, m)
	if err != nil {
		return nil, err
	}
	return NewShardedCounter(scheme, shards)
}

// NewLiveFromCore wraps a frozen merged core as a single-shard live
// counter, so a federation coordinator's global view plugs into
// everything built for the ingestion counter (service handlers, query
// engine, Apriori) unchanged. The caller must hand over ownership: the
// core becomes the counter's only shard. Its version line starts at the
// record count, mirroring a state restore.
func NewLiveFromCore(scheme CounterScheme, core CounterCore) *ShardedCounter {
	if scheme == nil || core == nil {
		panic("mining: NewLiveFromCore requires a scheme contract and a core")
	}
	c := &ShardedCounter{
		scheme:     scheme,
		shards:     []CounterCore{core},
		deltaEpoch: rand.Uint64(),
		ckpts:      make(map[uint64]*deltaCheckpoint),
	}
	n := core.N()
	c.next.Store(uint64(n))
	c.total.Store(int64(n))
	c.version.Store(uint64(n))
	return c
}

// NewShardedFromSnapshot wraps a frozen merged gamma counter as a
// single-shard live counter — the gamma convenience over
// NewLiveFromCore.
func NewShardedFromSnapshot(snap *MaterializedGammaCounter) *ShardedCounter {
	scheme, err := NewGammaScheme(snap.schema, snap.matrix)
	if err != nil {
		// Unreachable: the snapshot was built under these exact
		// parameters.
		panic("mining: snapshot carries invalid gamma contract: " + err.Error())
	}
	return NewLiveFromCore(scheme, snap)
}

// Scheme names the counter's perturbation scheme.
func (c *ShardedCounter) Scheme() string { return c.scheme.Name() }

// CounterScheme returns the counter's full scheme contract.
func (c *ShardedCounter) CounterScheme() CounterScheme { return c.scheme }

// Shards returns the number of stripes.
func (c *ShardedCounter) Shards() int { return len(c.shards) }

// Schema returns the counter's schema.
func (c *ShardedCounter) Schema() *dataset.Schema { return c.scheme.Schema() }

// Fingerprint returns the counter's compatibility fingerprint.
func (c *ShardedCounter) Fingerprint() string { return c.scheme.Fingerprint() }

// Ingest adds one (already perturbed) record, given as its item list,
// into the next shard in round-robin order. The atomic routing counter
// is the only state shared between concurrent submitters.
func (c *ShardedCounter) Ingest(items []Item) error {
	shard := c.next.Add(1) % uint64(len(c.shards))
	if err := c.shards[shard].Ingest(items); err != nil {
		return err
	}
	c.total.Add(1)
	c.version.Add(1)
	if c.obs != nil {
		c.obs.ObserveIngest(int(shard), 1, 0)
	}
	return nil
}

// IngestBatch adds a batch of (already perturbed) records atomically.
// Every record is validated and converted to the scheme's apply form
// FIRST — before any shard is touched — so a malformed record rejects
// the whole batch with the counter provably unchanged (the service
// layer's batch-atomicity guarantee is this method, not handler
// bookkeeping). The validated batch is then partitioned across shards,
// continuing the round-robin assignment of single-record Ingest, and
// each partition is applied under a single lock acquisition of its
// shard: a B-record batch over S shards costs min(B, S) lock
// round-trips instead of B.
//
// total and version advance by the batch size only after every
// partition has landed. A snapshot taken mid-application may already
// include some of the batch's records — each record is still atomic
// within its shard, so the snapshot remains a consistent view that is
// strictly newer than its version, exactly the SnapshotVersioned
// contract.
func (c *ShardedCounter) IngestBatch(records [][]Item) error {
	n := len(records)
	if n == 0 {
		return nil
	}
	prep, err := c.shards[0].prepareIngest(records)
	if err != nil {
		return err
	}
	// Continue the round-robin cursor by n so batch and single-record
	// traffic interleave without skewing the shard balance: the batch
	// owns positions [start, start+n), and shard i receives exactly the
	// records round-robin would have routed to it, as one contiguous
	// span of the prepared batch.
	shards := uint64(len(c.shards))
	start := c.next.Add(uint64(n)) - uint64(n)
	base, extra := n/int(shards), n%int(shards)
	lo := 0
	for k := 0; k < int(shards) && lo < n; k++ {
		cnt := base
		if k < extra {
			cnt++
		}
		if cnt == 0 {
			continue
		}
		shard := (start + uint64(k)) % shards
		wait := c.shards[shard].ingestPrepared(prep, lo, lo+cnt)
		if c.obs != nil {
			c.obs.ObserveIngest(int(shard), cnt, wait)
		}
		lo += cnt
	}
	c.total.Add(int64(n))
	c.version.Add(uint64(n))
	return nil
}

// Add ingests one perturbed categorical record — the item-per-attribute
// convenience over Ingest, valid for every scheme (a full categorical
// record is a legal perturbed record under each).
func (c *ShardedCounter) Add(rec dataset.Record) error {
	if err := c.Schema().Validate(rec); err != nil {
		return err
	}
	return c.Ingest(recordItems(rec))
}

// AddDatabase ingests every record of a perturbed database.
func (c *ShardedCounter) AddDatabase(db *dataset.Database) error {
	return addDatabase(c.Schema(), c.Add, db)
}

// N returns the total number of ingested records across all shards.
func (c *ShardedCounter) N() int {
	return int(c.total.Load())
}

// Version returns the current snapshot version. The version only moves
// forward, and it moves exactly when counter content changes, so equal
// versions imply identical counter state (mining results computed at
// version v remain exact answers for any later read that still observes
// v).
func (c *ShardedCounter) Version() uint64 {
	return c.version.Load()
}

// Snapshot folds every shard into one frozen SupportCounter. Shards are
// read one at a time under their own locks; a record is counted in every
// observable of its shard or in none, so the merged copy is always a
// consistent view of some set of fully ingested records even while
// submissions keep arriving.
func (c *ShardedCounter) Snapshot() SupportCounter {
	snap, _ := c.SnapshotVersioned()
	return snap
}

// SnapshotVersioned returns a merged frozen counter together with a
// version it is valid for. The version is read BEFORE the shard fold:
// every record ingested at or before that version is fully inside some
// shard and therefore inside the snapshot, so snap.N() >= version is
// guaranteed (records landing during the fold may or may not be
// included — the snapshot is then a strictly newer, still-consistent
// view, which only makes a cache entry keyed at the returned version
// fresher than advertised, never staler).
func (c *ShardedCounter) SnapshotVersioned() (SupportCounter, uint64) {
	core, version := c.snapshotCore()
	return core, version
}

// snapshotCore is SnapshotVersioned returning the concrete core, for
// package-internal callers (persist, delta) that need core plumbing.
func (c *ShardedCounter) snapshotCore() (CounterCore, uint64) {
	version := c.version.Load()
	merged := c.scheme.NewCore()
	for _, s := range c.shards {
		s.foldInto(merged)
	}
	return merged, version
}

// batch prepares a candidate batch and gathers every shard's
// contribution — the read path shared by Supports, PerturbedSupports,
// and Estimates. Per-shard state is internally consistent, so the
// merged observables describe a valid set of fully ingested records.
func (c *ShardedCounter) batch(candidates []Itemset) (counterBatch, error) {
	b, err := c.shards[0].prepare(candidates)
	if err != nil {
		return nil, err
	}
	for _, s := range c.shards {
		s.gather(b)
	}
	return b, nil
}

// Supports merges only the observables the candidate batch touches and
// evaluates the scheme's reconstruction. The empty itemset is answered
// exactly (every record supports it).
func (c *ShardedCounter) Supports(candidates []Itemset) ([]float64, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	b, err := c.batch(candidates)
	if err != nil {
		return nil, err
	}
	return b.supports()
}

// PerturbedSupports returns each candidate's RAW full-match count in the
// perturbed data — before any reconstruction — together with the record
// count N observed in the same shard sweep, so (Y_L, N) pairs are
// mutually consistent. This is the substrate of the counter-backed
// interactive query path for the gamma scheme, whose estimator is a
// function of Y_L/N alone.
func (c *ShardedCounter) PerturbedSupports(candidates []Itemset) ([]float64, int, error) {
	if len(candidates) == 0 {
		return nil, c.N(), nil
	}
	b, err := c.batch(candidates)
	if err != nil {
		return nil, 0, err
	}
	ys, n := b.raw()
	return ys, n, nil
}

// Estimates answers a batch of filter-count queries with the scheme's
// estimator: every estimate is based on the same consistent sweep (one
// record count N for the whole batch), even while submissions keep
// arriving on the live counter.
func (c *ShardedCounter) Estimates(filters []Itemset) ([]PointEstimate, int, error) {
	if len(filters) == 0 {
		return nil, c.N(), nil
	}
	b, err := c.batch(filters)
	if err != nil {
		return nil, 0, err
	}
	ests, err := b.estimates()
	if err != nil {
		return nil, 0, err
	}
	return ests, b.records(), nil
}

// Save serializes the counter; see persist.go.
func (c *ShardedCounter) Save(w io.Writer) error { return c.save(w) }
