package mining

import (
	"bytes"
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// The cross-scheme property suite: every LiveCounter scheme — gamma,
// MASK, and cut-and-paste — must satisfy the same contracts the gamma
// counter has always been tested against: sharded-vs-single-core
// equivalence at filter arities 0..3, live-vs-offline estimator
// equivalence, persist/restore round-trips across shard counts, and
// race-free concurrent ingest+query. The suite runs every scheme
// through one harness, which is the point of the redesign.

const liveTestGamma = 19.0

// liveScheme bundles one scheme contract with a perturbed-record
// generator (what a client would submit) and the scheme's offline
// counter over the same perturbed data.
type liveScheme struct {
	name    string
	scheme  CounterScheme
	perturb func(t *testing.T, db *dataset.Database, rng *rand.Rand) [][]Item
	offline func(t *testing.T, db *dataset.Database, rng *rand.Rand) SupportCounter
}

// rowItems converts a perturbed boolean row into the item list Ingest
// accepts.
func rowItems(m *core.BoolMapping, row uint64) []Item {
	var items []Item
	for b := row; b != 0; b &= b - 1 {
		bit := bits.TrailingZeros64(b)
		for j := m.Schema.M() - 1; j >= 0; j-- {
			if bit >= m.Offsets[j] {
				items = append(items, Item{Attr: j, Value: bit - m.Offsets[j]})
				break
			}
		}
	}
	return items
}

// boolRows perturbs db with the given perturb function and returns the
// item lists to ingest.
func boolRowItems(m *core.BoolMapping, rows []uint64) [][]Item {
	out := make([][]Item, len(rows))
	for i, row := range rows {
		out[i] = rowItems(m, row)
	}
	return out
}

// liveSchemes builds all three scheme contracts over one schema. The
// perturbation streams are seeded per scheme, and perturb/offline use
// the SAME stream seed so the live counter and the offline counter see
// identical perturbed rows.
func liveSchemes(t *testing.T, schema *dataset.Schema) []liveScheme {
	t.Helper()
	gammaScheme, err := SchemeForContract(SchemeGamma, schema, liveTestGamma)
	if err != nil {
		t.Fatal(err)
	}
	maskScheme, err := SchemeForContract(SchemeMask, schema, liveTestGamma)
	if err != nil {
		t.Fatal(err)
	}
	cutScheme, err := SchemeForContract(SchemeCutPaste, schema, liveTestGamma)
	if err != nil {
		t.Fatal(err)
	}
	gs := gammaScheme.(*GammaScheme)
	ms := maskScheme.(*MaskCounterScheme).Mask()
	cs := cutScheme.(*CutPasteCounterScheme).CutPaste()
	return []liveScheme{
		{
			name:   SchemeGamma,
			scheme: gammaScheme,
			perturb: func(t *testing.T, db *dataset.Database, rng *rand.Rand) [][]Item {
				p, err := core.NewGammaPerturber(schema, gs.Matrix())
				if err != nil {
					t.Fatal(err)
				}
				pdb, err := core.PerturbDatabase(db, p, rng)
				if err != nil {
					t.Fatal(err)
				}
				out := make([][]Item, pdb.N())
				for i, rec := range pdb.Records {
					out[i] = recordItems(rec)
				}
				return out
			},
			offline: func(t *testing.T, db *dataset.Database, rng *rand.Rand) SupportCounter {
				p, err := core.NewGammaPerturber(schema, gs.Matrix())
				if err != nil {
					t.Fatal(err)
				}
				pdb, err := core.PerturbDatabase(db, p, rng)
				if err != nil {
					t.Fatal(err)
				}
				c, err := NewGammaCounter(pdb, gs.Matrix())
				if err != nil {
					t.Fatal(err)
				}
				return c
			},
		},
		{
			name:   SchemeMask,
			scheme: maskScheme,
			perturb: func(t *testing.T, db *dataset.Database, rng *rand.Rand) [][]Item {
				bdb, err := ms.PerturbDatabase(db, rng)
				if err != nil {
					t.Fatal(err)
				}
				return boolRowItems(ms.Mapping, bdb.Rows)
			},
			offline: func(t *testing.T, db *dataset.Database, rng *rand.Rand) SupportCounter {
				bdb, err := ms.PerturbDatabase(db, rng)
				if err != nil {
					t.Fatal(err)
				}
				return &MaskCounter{Perturbed: bdb, Scheme: ms}
			},
		},
		{
			name:   SchemeCutPaste,
			scheme: cutScheme,
			perturb: func(t *testing.T, db *dataset.Database, rng *rand.Rand) [][]Item {
				bdb, err := cs.PerturbDatabase(db, rng)
				if err != nil {
					t.Fatal(err)
				}
				return boolRowItems(cs.Mapping, bdb.Rows)
			},
			offline: func(t *testing.T, db *dataset.Database, rng *rand.Rand) SupportCounter {
				bdb, err := cs.PerturbDatabase(db, rng)
				if err != nil {
					t.Fatal(err)
				}
				return &CutPasteCounter{Perturbed: bdb, Scheme: cs}
			},
		},
	}
}

// probeItemsets enumerates filters of arity 0..3 over the schema (a
// deterministic spread of attribute subsets and values).
func probeItemsets(t *testing.T, schema *dataset.Schema) []Itemset {
	t.Helper()
	sets := []Itemset{{}}
	m := schema.M()
	for a := 0; a < m; a++ {
		for v := 0; v < schema.Attrs[a].Cardinality(); v++ {
			sets = append(sets, Itemset{{Attr: a, Value: v}})
		}
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			sets = append(sets, Itemset{{Attr: a, Value: a % schema.Attrs[a].Cardinality()}, {Attr: b, Value: b % schema.Attrs[b].Cardinality()}})
		}
	}
	for a := 0; a+2 < m; a++ {
		sets = append(sets, Itemset{
			{Attr: a, Value: 0},
			{Attr: a + 1, Value: schema.Attrs[a+1].Cardinality() - 1},
			{Attr: a + 2, Value: 1 % schema.Attrs[a+2].Cardinality()},
		})
	}
	return sets
}

// TestLiveSchemesShardedMatchesSingle: for every scheme, a 5-way sharded
// counter and a single core fed the same perturbed stream must agree on
// Supports, PerturbedSupports, and Estimates to 1e-9 at arities 0..3 —
// integer-valued counts make the shard fold exact, whatever the scheme.
func TestLiveSchemesShardedMatchesSingle(t *testing.T) {
	db := buildSkewedDB(t, 4000, 170)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(171)))
			sharded, err := NewShardedCounter(ls.scheme, 5)
			if err != nil {
				t.Fatal(err)
			}
			single, err := NewShardedCounter(ls.scheme, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, items := range records {
				if err := sharded.Ingest(items); err != nil {
					t.Fatal(err)
				}
				if err := single.Ingest(items); err != nil {
					t.Fatal(err)
				}
			}
			if sharded.N() != len(records) || single.N() != len(records) {
				t.Fatalf("record counts %d/%d, want %d", sharded.N(), single.N(), len(records))
			}
			if sharded.Scheme() != ls.name {
				t.Fatalf("scheme %q, want %q", sharded.Scheme(), ls.name)
			}

			sSup, err := sharded.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			oSup, err := single.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			sRaw, sn, err := sharded.PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			oRaw, on, err := single.PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			if sn != on {
				t.Fatalf("sweep records %d vs %d", sn, on)
			}
			sEst, _, err := sharded.Estimates(probes)
			if err != nil {
				t.Fatal(err)
			}
			oEst, _, err := single.Estimates(probes)
			if err != nil {
				t.Fatal(err)
			}
			for i, probe := range probes {
				if math.Abs(sSup[i]-oSup[i]) > 1e-9 {
					t.Errorf("%s support %v vs %v", probe.Key(), sSup[i], oSup[i])
				}
				if math.Abs(sRaw[i]-oRaw[i]) > 1e-9 {
					t.Errorf("%s raw %v vs %v", probe.Key(), sRaw[i], oRaw[i])
				}
				if math.Abs(sEst[i].Count-oEst[i].Count) > 1e-9 || math.Abs(sEst[i].StdErr-oEst[i].StdErr) > 1e-9 {
					t.Errorf("%s estimate (%v±%v) vs (%v±%v)", probe.Key(), sEst[i].Count, sEst[i].StdErr, oEst[i].Count, oEst[i].StdErr)
				}
				if math.Abs(sEst[i].Count-sSup[i]) > 1e-9 {
					t.Errorf("%s estimate %v disagrees with support %v", probe.Key(), sEst[i].Count, sSup[i])
				}
			}
		})
	}
}

// TestLiveSchemesMatchOfflineCounters: the live counter must reproduce
// its scheme's OFFLINE counter (the paper-faithful record-scan
// reconstruction) to 1e-9 over the same perturbed rows — the guarantee
// that turning a scheme live changed its plumbing, not its estimator.
func TestLiveSchemesMatchOfflineCounters(t *testing.T) {
	db := buildSkewedDB(t, 3000, 180)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			const seed = 181 // same stream for live and offline
			records := ls.perturb(t, db, rand.New(rand.NewSource(seed)))
			offline := ls.offline(t, db, rand.New(rand.NewSource(seed)))
			live, err := NewShardedCounter(ls.scheme, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, items := range records {
				if err := live.Ingest(items); err != nil {
					t.Fatal(err)
				}
			}
			want, err := offline.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := live.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			for i, probe := range probes {
				if math.Abs(want[i]-got[i]) > 1e-9 {
					t.Errorf("%s: live %v, offline %v", probe.Key(), got[i], want[i])
				}
			}
		})
	}
}

// TestLiveSchemesPersistRoundTrip: for every scheme, state saved from a
// k-shard counter restores into counters of several shard counts with
// identical supports, and cross-scheme restores are rejected.
func TestLiveSchemesPersistRoundTrip(t *testing.T) {
	db := buildSkewedDB(t, 2000, 190)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	schemes := liveSchemes(t, schema)
	for _, ls := range schemes {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(191)))
			orig, err := NewShardedCounter(ls.scheme, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, items := range records {
				if err := orig.Ingest(items); err != nil {
					t.Fatal(err)
				}
			}
			want, err := orig.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := orig.Save(&buf); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()
			for _, shards := range []int{1, 2, 4, 7} {
				back, err := LoadLiveCounter(bytes.NewReader(raw), ls.scheme, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if back.N() != orig.N() {
					t.Fatalf("shards=%d: restored %d records, want %d", shards, back.N(), orig.N())
				}
				if back.Version() != uint64(orig.N()) {
					t.Fatalf("shards=%d: restored version %d, want %d", shards, back.Version(), orig.N())
				}
				got, err := back.Supports(probes)
				if err != nil {
					t.Fatal(err)
				}
				for i, probe := range probes {
					if math.Abs(want[i]-got[i]) > 1e-9 {
						t.Errorf("shards=%d %s: %v, want %v", shards, probe.Key(), got[i], want[i])
					}
				}
			}
			// Cross-scheme restore: every OTHER scheme must reject this
			// state file.
			for _, other := range schemes {
				if other.name == ls.name {
					continue
				}
				if _, err := LoadLiveCounter(bytes.NewReader(raw), other.scheme, 2); !errors.Is(err, ErrMining) {
					t.Errorf("state saved under %s restored into %s: %v", ls.name, other.name, err)
				}
			}
		})
	}
}

// TestLiveSchemesConcurrentIngestAndQuery: under -race, concurrent
// submitters, query sweeps, snapshots, and delta pulls on every scheme.
// Asserts monotonic versions and internally consistent sweeps.
func TestLiveSchemesConcurrentIngestAndQuery(t *testing.T) {
	db := buildSkewedDB(t, 1200, 200)
	schema := db.Schema
	probes := probeItemsets(t, schema)[:8]
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(201)))
			c, err := NewShardedCounter(ls.scheme, 4)
			if err != nil {
				t.Fatal(err)
			}
			const submitters = 4
			var wg sync.WaitGroup
			for g := 0; g < submitters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < len(records); i += submitters {
						if err := c.Ingest(records[i]); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			var lastVersion uint64
			for {
				select {
				case <-done:
					goto drained
				default:
				}
				v := c.Version()
				if v < lastVersion {
					t.Fatalf("version regressed %d -> %d", lastVersion, v)
				}
				lastVersion = v
				if c.N() > 0 {
					ests, n, err := c.Estimates(probes)
					if err != nil {
						t.Fatal(err)
					}
					if n <= 0 || len(ests) != len(probes) {
						t.Fatalf("sweep n=%d, %d estimates", n, len(ests))
					}
					// Arity-0 probe is exact: must equal the sweep count.
					if math.Abs(ests[0].Count-float64(n)) > 1e-9 {
						t.Fatalf("empty filter estimate %v, sweep n=%d", ests[0].Count, n)
					}
				}
				if _, err := c.DeltaSince(0); err != nil {
					t.Fatal(err)
				}
				snap, v := c.SnapshotVersioned()
				if uint64(snap.N()) < v {
					t.Fatalf("snapshot n=%d below version %d", snap.N(), v)
				}
			}
		drained:
			if c.N() != len(records) {
				t.Fatalf("ingested %d, want %d", c.N(), len(records))
			}
		})
	}
}

// TestLiveSchemesDeltaReplication: for every scheme, a replica fed a
// full delta then incremental deltas converges to the source counter;
// cross-scheme deltas are rejected, never merged.
func TestLiveSchemesDeltaReplication(t *testing.T) {
	db := buildSkewedDB(t, 1500, 210)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	schemes := liveSchemes(t, schema)
	for _, ls := range schemes {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(211)))
			src, err := NewShardedCounter(ls.scheme, 3)
			if err != nil {
				t.Fatal(err)
			}
			replica := ls.scheme.NewCore()
			var since uint64
			next := 0
			for _, chunk := range []int{0, 400, 1, 700, 0, len(records) - 1101} {
				for i := 0; i < chunk; i++ {
					if err := src.Ingest(records[next]); err != nil {
						t.Fatal(err)
					}
					next++
				}
				d, err := src.DeltaSince(since)
				if err != nil {
					t.Fatal(err)
				}
				if since == 0 && !d.Full() {
					t.Fatal("first pull was not a full delta")
				}
				if err := replica.ApplyDelta(d); err != nil {
					t.Fatal(err)
				}
				since = d.ToVersion
			}
			if replica.N() != src.N() {
				t.Fatalf("replica %d records, source %d", replica.N(), src.N())
			}
			want, err := src.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := replica.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			for i, probe := range probes {
				if math.Abs(want[i]-got[i]) > 1e-9 {
					t.Errorf("%s: replica %v, source %v", probe.Key(), got[i], want[i])
				}
			}
			// A delta extracted under any OTHER scheme must be rejected by
			// this scheme's replica — the scheme tag is inside the
			// fingerprint, so even identical schemas cannot merge.
			for _, other := range schemes {
				if other.name == ls.name {
					continue
				}
				otherSrc, err := NewShardedCounter(other.scheme, 1)
				if err != nil {
					t.Fatal(err)
				}
				otherRecords := other.perturb(t, db, rand.New(rand.NewSource(212)))
				for i := 0; i < 50; i++ {
					if err := otherSrc.Ingest(otherRecords[i]); err != nil {
						t.Fatal(err)
					}
				}
				d, err := otherSrc.DeltaSince(0)
				if err != nil {
					t.Fatal(err)
				}
				if err := ls.scheme.NewCore().ApplyDelta(d); !errors.Is(err, ErrMining) {
					t.Errorf("%s delta applied to %s replica: %v", other.name, ls.name, err)
				}
				if err := ls.scheme.NewCore().Merge(otherSrc.scheme.NewCore()); !errors.Is(err, ErrMining) {
					t.Errorf("%s core merged into %s replica: %v", other.name, ls.name, err)
				}
			}
		})
	}
}

// TestSchemeFingerprintsDistinct: the fingerprint seals the scheme tag —
// all three schemes over ONE schema and ONE gamma must produce three
// distinct fingerprints, and SchemeForContract must reject unknown
// names.
func TestSchemeFingerprintsDistinct(t *testing.T) {
	schema := buildSkewedDB(t, 10, 220).Schema
	seen := make(map[string]string)
	for _, name := range SchemeNames() {
		scheme, err := SchemeForContract(name, schema, liveTestGamma)
		if err != nil {
			t.Fatal(err)
		}
		if scheme.Name() != name {
			t.Fatalf("scheme %q reports name %q", name, scheme.Name())
		}
		fp := scheme.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("schemes %s and %s share fingerprint %.12s", prev, name, fp)
		}
		seen[fp] = name
	}
	if _, err := SchemeForContract("bogus", schema, liveTestGamma); !errors.Is(err, ErrMining) {
		t.Fatal("unknown scheme accepted")
	}
	// The empty name is the gamma default.
	def, err := SchemeForContract("", schema, liveTestGamma)
	if err != nil {
		t.Fatal(err)
	}
	if def.Name() != SchemeGamma {
		t.Fatalf("default scheme %q, want %q", def.Name(), SchemeGamma)
	}
}

// TestNewShardedCounterRejectsNilScheme: the exported constructor must
// follow the package's validate-and-wrap convention, not panic.
func TestNewShardedCounterRejectsNilScheme(t *testing.T) {
	if _, err := NewShardedCounter(nil, 4); !errors.Is(err, ErrMining) {
		t.Fatalf("nil scheme accepted: %v", err)
	}
}
