package mining

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func TestMaterializedMatchesGammaCounter(t *testing.T) {
	db := buildSkewedDB(t, 20000, 40)
	sc := db.Schema
	m, err := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewGammaPerturber(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}

	scan, err := NewGammaCounter(pdb, m)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := NewMaterializedGammaCounter(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := mat.AddDatabase(pdb); err != nil {
		t.Fatal(err)
	}
	if mat.N() != pdb.N() || mat.Schema() != sc {
		t.Fatal("counter metadata wrong")
	}
	cands := []Itemset{
		{{0, 0}},
		{{1, 1}},
		{{0, 0}, {1, 0}},
		{{0, 1}, {2, 3}},
		{{0, 0}, {1, 0}, {2, 0}},
	}
	a, err := scan.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mat.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("candidate %s: scan %v vs materialized %v", cands[i].Key(), a[i], b[i])
		}
	}
	// Full Apriori must agree too.
	r1, err := Apriori(scan, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Apriori(mat, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := r1.All(), r2.All()
	if len(k1) != len(k2) {
		t.Fatalf("scan found %d, materialized %d", len(k1), len(k2))
	}
	for k, f := range k1 {
		g, ok := k2[k]
		if !ok || math.Abs(f.Support-g.Support) > 1e-9 {
			t.Fatalf("itemset %s differs", k)
		}
	}
}

func TestMaterializedValidation(t *testing.T) {
	db := buildSkewedDB(t, 10, 42)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	wrong, _ := core.NewGammaDiagonal(sc.DomainSize()+1, 19)
	if _, err := NewMaterializedGammaCounter(sc, wrong); !errors.Is(err, ErrMining) {
		t.Fatal("order mismatch accepted")
	}
	c, err := NewMaterializedGammaCounter(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(dataset.Record{9, 9, 9}); err == nil {
		t.Fatal("invalid record accepted")
	}
	other := dataset.NewDatabase(dataset.CensusSchema(), 0)
	if err := c.AddDatabase(other); !errors.Is(err, ErrMining) {
		t.Fatal("schema mismatch accepted")
	}
	bad := Itemset{{Attr: 9, Value: 0}}
	if _, err := c.Supports([]Itemset{bad}); err == nil {
		t.Fatal("invalid candidate accepted")
	}
}

func TestMaterializedAttrCap(t *testing.T) {
	attrs := make([]dataset.Attribute, 17)
	for i := range attrs {
		attrs[i] = dataset.Attribute{
			Name:       string(rune('a' + i)),
			Categories: []string{"x", "y"},
		}
	}
	sc, err := dataset.NewSchema("wide", attrs)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if _, err := NewMaterializedGammaCounter(sc, m); !errors.Is(err, ErrMining) {
		t.Fatal("17-attribute schema accepted")
	}
}

func TestMaterializedConcurrentAddAndQuery(t *testing.T) {
	db := buildSkewedDB(t, 4000, 43)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	c, err := NewMaterializedGammaCounter(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers = 4
	per := db.N() / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for _, rec := range db.Records[lo : lo+per] {
				if err := c.Add(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w * per)
	}
	// Interleaved readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		cand := []Itemset{{{0, 0}}}
		for i := 0; i < 100; i++ {
			if c.N() == 0 {
				continue
			}
			if _, err := c.Supports(cand); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.N() != writers*per {
		t.Fatalf("ingested %d, want %d", c.N(), writers*per)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := buildSkewedDB(t, 2000, 44)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	c, err := NewMaterializedGammaCounter(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDatabase(db); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	nBefore := snap.N()
	// Mutating the live counter must not affect the snapshot.
	if err := c.Add(dataset.Record{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if snap.N() != nBefore {
		t.Fatal("snapshot count changed after live Add")
	}
	cand := []Itemset{{{0, 0}}}
	a, err := snap.Supports(cand)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.Add(dataset.Record{0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	b, err := snap.Supports(cand)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatal("snapshot supports changed after live Adds")
	}
}
