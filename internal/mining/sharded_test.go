package mining

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// TestShardedMatchesSingleShard is the sharding correctness contract:
// because every record lands entirely in one shard and the histograms
// hold integer-valued counts, the merged supports must equal the
// single-counter supports bit for bit — not approximately.
func TestShardedMatchesSingleShard(t *testing.T) {
	db := buildSkewedDB(t, 20000, 70)
	sc := db.Schema
	m, err := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewGammaPerturber(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(71)))
	if err != nil {
		t.Fatal(err)
	}

	single, err := NewMaterializedGammaCounter(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.AddDatabase(pdb); err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedGammaCounter(sc, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Shards() != 5 {
		t.Fatalf("shards = %d, want 5", sharded.Shards())
	}
	if err := sharded.AddDatabase(pdb); err != nil {
		t.Fatal(err)
	}
	if sharded.N() != single.N() || sharded.Schema() != sc {
		t.Fatal("counter metadata wrong")
	}

	cands := []Itemset{
		{{0, 0}},
		{{1, 1}},
		{{0, 0}, {1, 0}},
		{{0, 1}, {2, 3}},
		{{0, 0}, {1, 0}, {2, 0}},
	}
	a, err := single.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharded.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		if a[i] != b[i] {
			t.Fatalf("candidate %s: single %v vs sharded %v", cands[i].Key(), a[i], b[i])
		}
	}

	// The merged snapshot must agree too, and full Apriori through both
	// counters must produce identical models.
	snap := sharded.Snapshot()
	c, err := snap.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		if a[i] != c[i] {
			t.Fatalf("candidate %s: single %v vs merged snapshot %v", cands[i].Key(), a[i], c[i])
		}
	}
	r1, err := Apriori(single, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Apriori(sharded, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := r1.All(), r2.All()
	if len(k1) != len(k2) {
		t.Fatalf("single found %d itemsets, sharded %d", len(k1), len(k2))
	}
	for k, f := range k1 {
		g, ok := k2[k]
		if !ok || f.Support != g.Support {
			t.Fatalf("itemset %s differs", k)
		}
	}
}

// TestShardedLargeCandidateBatch exercises the parallel worker-span path
// in Supports (small batches run inline), checking every candidate
// against the single counter.
func TestShardedLargeCandidateBatch(t *testing.T) {
	db := buildSkewedDB(t, 5000, 72)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	single, err := NewMaterializedGammaCounter(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewShardedGammaCounter(sc, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := single.AddDatabase(db); err != nil {
		t.Fatal(err)
	}
	if err := sharded.AddDatabase(db); err != nil {
		t.Fatal(err)
	}
	// Repeat the full cross-product of pairs until the batch is wide
	// enough to fan out across workers.
	var cands []Itemset
	for rep := 0; rep < 40; rep++ {
		for va := 0; va < 3; va++ {
			for vc := 0; vc < 4; vc++ {
				cands = append(cands, Itemset{{0, va}, {2, vc}})
			}
		}
	}
	a, err := single.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharded.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		if a[i] != b[i] {
			t.Fatalf("candidate %d: single %v vs sharded %v", i, a[i], b[i])
		}
	}
	// Errors must surface from inside worker spans as well.
	bad := make([]Itemset, len(cands))
	copy(bad, cands)
	bad[len(bad)/2] = Itemset{{Attr: 9, Value: 0}}
	if _, err := sharded.Supports(bad); err == nil {
		t.Fatal("invalid candidate accepted in parallel span")
	}
	dup := make([]Itemset, len(cands))
	copy(dup, cands)
	dup[3] = Itemset{{0, 0}, {0, 1}}
	if _, err := sharded.Supports(dup); !errors.Is(err, ErrMining) {
		t.Fatal("duplicate-attribute candidate accepted")
	}
}

func TestShardedValidation(t *testing.T) {
	db := buildSkewedDB(t, 10, 73)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	wrong, _ := core.NewGammaDiagonal(sc.DomainSize()+1, 19)
	if _, err := NewShardedGammaCounter(sc, wrong, 2); !errors.Is(err, ErrMining) {
		t.Fatal("order mismatch accepted")
	}
	c, err := NewShardedGammaCounter(sc, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() < 1 {
		t.Fatalf("defaulted shards = %d", c.Shards())
	}
	if err := c.Add(dataset.Record{9, 9, 9}); err == nil {
		t.Fatal("invalid record accepted")
	}
	other := dataset.NewDatabase(dataset.CensusSchema(), 0)
	if err := c.AddDatabase(other); !errors.Is(err, ErrMining) {
		t.Fatal("schema mismatch accepted")
	}
	if out, err := c.Supports(nil); err != nil || out != nil {
		t.Fatal("empty candidate batch mishandled")
	}
}

// TestShardedConcurrentIngestSnapshotMine hammers the counter from
// concurrent submitters while snapshots, supports, and full Apriori runs
// interleave — the service's live workload. Run with -race.
func TestShardedConcurrentIngestSnapshotMine(t *testing.T) {
	db := buildSkewedDB(t, 8000, 74)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	c, err := NewShardedGammaCounter(sc, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers = 8
	per := db.N() / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for _, rec := range db.Records[lo : lo+per] {
				if err := c.Add(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w * per)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		cand := []Itemset{{{0, 0}}, {{1, 0}, {2, 0}}}
		for i := 0; i < 50; i++ {
			if c.N() == 0 {
				continue
			}
			if _, err := c.Supports(cand); err != nil {
				t.Error(err)
				return
			}
			snap := c.Snapshot()
			if snap.N() > 0 {
				if _, err := Apriori(snap, 0.2); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if c.N() != writers*per {
		t.Fatalf("ingested %d, want %d", c.N(), writers*per)
	}
	// Sharding must spread a concurrent load: no shard may end up empty.
	for i, s := range c.shards {
		if s.N() == 0 {
			t.Fatalf("shard %d empty after %d round-robin adds", i, c.N())
		}
	}
}

// TestShardedPersistRoundTrip saves a sharded counter and restores it at
// the same, a smaller, and a larger shard count, plus across the
// single↔sharded boundary in both directions — supports must be
// identical every time.
func TestShardedPersistRoundTrip(t *testing.T) {
	db := buildSkewedDB(t, 3000, 75)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	orig, err := NewShardedGammaCounter(sc, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.AddDatabase(db); err != nil {
		t.Fatal(err)
	}
	cands := []Itemset{{{0, 0}}, {{0, 0}, {1, 0}}, {{1, 1}, {2, 3}}}
	want, err := orig.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for _, shards := range []int{4, 2, 7} {
		back, err := LoadShardedGammaCounter(bytes.NewReader(raw), sc, m, shards)
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != orig.N() || back.Shards() != shards {
			t.Fatalf("restored N=%d shards=%d", back.N(), back.Shards())
		}
		got, err := back.Supports(cands)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("shards=%d candidate %d: %v vs %v", shards, i, want[i], got[i])
			}
		}
		// The restored counter keeps working as a live counter.
		if err := back.Add(dataset.Record{0, 0, 0}); err != nil {
			t.Fatal(err)
		}
		if back.N() != orig.N()+1 {
			t.Fatal("restored counter not live")
		}
	}

	// Sharded state → single counter.
	merged, err := LoadMaterializedGammaCounter(bytes.NewReader(raw), sc, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("merged candidate %d: %v vs %v", i, want[i], got[i])
		}
	}

	// Legacy single-counter state → sharded counter.
	var legacy bytes.Buffer
	if err := merged.Save(&legacy); err != nil {
		t.Fatal(err)
	}
	back, err := LoadShardedGammaCounter(&legacy, sc, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err = back.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("legacy-restore candidate %d: %v vs %v", i, want[i], got[i])
		}
	}
}

func TestShardedLoadRejectsBadState(t *testing.T) {
	db := buildSkewedDB(t, 200, 76)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	c, _ := NewShardedGammaCounter(sc, m, 2)
	if err := c.AddDatabase(db); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	other := dataset.CensusSchema()
	om, _ := core.NewGammaDiagonal(other.DomainSize(), 19)
	if _, err := LoadShardedGammaCounter(bytes.NewReader(raw), other, om, 2); !errors.Is(err, ErrMining) {
		t.Fatal("mismatched schema accepted")
	}
	m2, _ := core.NewGammaDiagonal(sc.DomainSize(), 9)
	if _, err := LoadShardedGammaCounter(bytes.NewReader(raw), sc, m2, 2); !errors.Is(err, ErrMining) {
		t.Fatal("mismatched matrix accepted")
	}
	// Tampered per-shard totals must be rejected.
	c.shards[1].(*MaterializedGammaCounter).hists[1][0] += 5
	var tampered bytes.Buffer
	if err := c.Save(&tampered); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedGammaCounter(&tampered, sc, m, 2); !errors.Is(err, ErrMining) {
		t.Fatal("inconsistent shard totals accepted")
	}
}

// TestShardedSnapshotVersion pins the snapshot-version contract the
// collection service's result cache depends on: the version advances
// exactly once per fully ingested record, a versioned snapshot contains
// at least every record visible at its reported version, and a state
// restore resumes the version line at the restored count.
func TestShardedSnapshotVersion(t *testing.T) {
	db := buildSkewedDB(t, 500, 77)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	c, err := NewShardedGammaCounter(sc, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version() != 0 {
		t.Fatalf("fresh counter version %d", c.Version())
	}
	for i, rec := range db.Records {
		if err := c.Add(rec); err != nil {
			t.Fatal(err)
		}
		if c.Version() != uint64(i+1) {
			t.Fatalf("after %d adds version %d", i+1, c.Version())
		}
	}
	snap, v := c.SnapshotVersioned()
	if v != uint64(db.N()) || snap.N() != db.N() {
		t.Fatalf("quiescent snapshot (N=%d, v=%d), want both %d", snap.N(), v, db.N())
	}

	// Under concurrent ingestion the guarantee weakens to snap.N() >= v:
	// the version is read before the fold, so everything visible at v is
	// inside the snapshot, and later arrivals can only add to it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, rec := range db.Records {
			if err := c.Add(rec); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		snap, v := c.SnapshotVersioned()
		if uint64(snap.N()) < v {
			t.Fatalf("snapshot N=%d below its version %d", snap.N(), v)
		}
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadShardedGammaCounter(&buf, sc, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Version() != uint64(restored.N()) || restored.N() != 2*db.N() {
		t.Fatalf("restored version %d, N %d", restored.Version(), restored.N())
	}
}
