package mining

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Federated counter replication. FRAPP perturbs at the data provider, so
// the server-side counter is already privacy-safe — which makes counters
// from independent collection sites additive: summing per-site subset
// histograms reproduces the histogram of the union exactly, with no
// extra privacy cost. This file provides the replication substrate: a
// compatibility fingerprint (so only sites running the same schema and
// perturbation contract merge), compact versioned deltas extracted from
// a live ShardedGammaCounter, and additive application/merge on
// MaterializedGammaCounter, which a coordinator uses to maintain one
// global counter over which the existing estimator and miner run
// unchanged.

// CounterDelta is one replication pull's payload: the sparse change of
// the FULL-domain (joint) histogram between two replication positions,
// plus everything a receiver needs to apply it safely. Only the joint
// histogram travels — every subset histogram is a marginalization of it,
// so the receiver re-derives the rest, keeping the wire format compact
// (at most one cell per new record).
type CounterDelta struct {
	// Fingerprint identifies the (schema, perturbation matrix) contract
	// the cells were counted under; receivers must reject a mismatch.
	Fingerprint string
	// Generation is the sending counter object's random epoch nonce
	// (DeltaEpoch): every restart, state restore, or coordinator publish
	// creates a new counter object with a fresh nonce, so incremental
	// deltas chain only onto the exact object they were extracted from —
	// stream tokens can never alias another boot's state even when
	// version lines restart at colliding values.
	Generation uint64
	// FromVersion and ToVersion bracket the delta on the sender's
	// replication stream. FromVersion 0 means the payload is the FULL
	// counter state (a resync), to be applied to an empty counter;
	// otherwise the receiver must already hold the sender's state at
	// exactly FromVersion. ToVersion is an opaque stream position (>= the
	// counter's content version) to echo as `since` on the next pull.
	FromVersion uint64
	ToVersion   uint64
	// Records is the record-count change carried by Cells (the total
	// record count when FromVersion is 0).
	Records int
	// Cells are the changed joint-histogram cells, each strictly
	// positive — per-site counts only grow within a generation.
	Cells []DeltaCell
}

// DeltaCell is one changed cell of the joint histogram: the record index
// in the schema's record↔index bijection, and the count increment.
type DeltaCell struct {
	Idx   int
	Count float64
}

// Full reports whether the delta carries complete counter state rather
// than an increment.
func (d *CounterDelta) Full() bool { return d.FromVersion == 0 }

// CompatibilityFingerprint hashes everything two sites must agree on
// before their counters may be merged: schema name, every attribute with
// its ordered category list, and the perturbation matrix parameters. Two
// counters with equal fingerprints count in identical coordinates under
// identical distortion, so their histograms are additively combinable.
func CompatibilityFingerprint(schema *dataset.Schema, m core.UniformMatrix) string {
	h := sha256.New()
	fmt.Fprintf(h, "schema=%s;M=%d;", schema.Name, schema.M())
	for _, a := range schema.Attrs {
		fmt.Fprintf(h, "attr=%s:%s;", a.Name, strings.Join(a.Categories, "\x1f"))
	}
	fmt.Fprintf(h, "matrix=%d:%g:%g", m.N, m.Diag, m.Off)
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns the counter's compatibility fingerprint.
func (c *MaterializedGammaCounter) Fingerprint() string {
	return CompatibilityFingerprint(c.schema, c.matrix)
}

// Fingerprint returns the counter's compatibility fingerprint.
func (c *ShardedGammaCounter) Fingerprint() string {
	return CompatibilityFingerprint(c.schema, c.matrix)
}

// MaxDeltaWireBytes bounds one serialized CounterDelta read on the
// receiving side. A delta carries at most one gob cell (~2 words) per
// distinct joint-domain point, so even a full resync of a large site is
// a few MB; the cap is a safety valve against a misbehaving endpoint,
// not a tuning knob.
const MaxDeltaWireBytes = 1 << 30

// maxDeltaCheckpoints bounds the retained replication baselines. Each
// checkpoint is one joint histogram (DomainSize floats), so the cap
// costs O(8·|S_U|) memory and lets up to 8 interleaved pullers (or 8
// outstanding retry windows of one puller) replicate incrementally;
// anything older falls back to a full resync.
const maxDeltaCheckpoints = 8

// deltaCheckpoint is the baseline retained per issued ToVersion: the
// exact joint histogram and record count that were handed to the puller,
// so the next incremental diff is computed against precisely the state
// the puller holds.
type deltaCheckpoint struct {
	n     int
	joint []float64
}

// DeltaSince extracts the counter's change since a previously issued
// replication position. since 0 — or any position the counter no longer
// retains (evicted checkpoint, restarted process, restored state: the
// checkpoint ring lives and dies with the counter object) — yields a
// FULL delta (FromVersion 0); otherwise an incremental delta against
// exactly the state returned at `since`. The returned ToVersion is the
// position to echo next time.
//
// ToVersion is a stream token, not the content version: every distinct
// counter state gets a distinct token >= the content version at
// extraction time (a snapshot can fold in records that landed
// mid-sweep, so two calls at one content version may see different
// states — distinct tokens keep every retained baseline unambiguous,
// while pulls that observe an unchanged counter reuse the newest
// token).
func (c *ShardedGammaCounter) DeltaSince(since uint64) (*CounterDelta, error) {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()

	// Fast path: if the newest issued baseline still matches the live
	// record count, the counter is unchanged since it was issued —
	// records are never removed, so an equal count means an identical
	// record multiset and therefore identical histograms — and the pull
	// is served entirely from retained checkpoints: no snapshot fold, no
	// new token, no ring churn. Idle polling (including repeated since=0
	// scrapers) therefore costs O(cells) and can never evict a
	// replicator's baseline. (A record mid-ingestion may make the count
	// match a hair before its visibility — then this serves the
	// checkpoint's slightly older but fully consistent state, and the
	// record rides the next delta.)
	if k := len(c.ckptOrder); k > 0 {
		tok := c.ckptOrder[k-1]
		if ck := c.ckpts[tok]; int64(ck.n) == c.total.Load() {
			return c.deltaToLocked(since, tok, ck)
		}
	}

	// Slow path: fold a fresh snapshot, mint a strictly increasing
	// token, and retain the (token → state) baseline for future pulls.
	snap, version := c.SnapshotVersioned()
	token := version
	if token <= c.lastDeltaToken {
		token = c.lastDeltaToken + 1
	}
	c.lastDeltaToken = token
	ck := &deltaCheckpoint{n: snap.n, joint: snap.hists[len(snap.hists)-1]}
	c.ckpts[token] = ck
	c.ckptOrder = append(c.ckptOrder, token)
	if len(c.ckptOrder) > maxDeltaCheckpoints {
		delete(c.ckpts, c.ckptOrder[0])
		c.ckptOrder = c.ckptOrder[1:]
	}
	return c.deltaToLocked(since, token, ck)
}

// DeltaEpoch returns the counter object's random replication epoch —
// the Generation every extracted delta carries.
func (c *ShardedGammaCounter) DeltaEpoch() uint64 { return c.deltaEpoch }

// deltaToLocked builds the delta ending at checkpoint (token, ck),
// incremental against the retained baseline at since when one exists,
// full otherwise. Called with ckptMu held.
func (c *ShardedGammaCounter) deltaToLocked(since, token uint64, ck *deltaCheckpoint) (*CounterDelta, error) {
	d := &CounterDelta{
		Fingerprint: c.Fingerprint(),
		Generation:  c.deltaEpoch,
		ToVersion:   token,
	}
	var base *deltaCheckpoint
	if since != 0 {
		if b, ok := c.ckpts[since]; ok {
			base = b
			d.FromVersion = since
		}
	}
	if base == nil {
		d.Records = ck.n
		for idx, v := range ck.joint {
			if v != 0 {
				d.Cells = append(d.Cells, DeltaCell{Idx: idx, Count: v})
			}
		}
		return d, nil
	}
	d.Records = ck.n - base.n
	for idx, v := range ck.joint {
		if diff := v - base.joint[idx]; diff != 0 {
			if diff < 0 {
				return nil, fmt.Errorf("%w: joint cell %d regressed by %v within one counter", ErrMining, idx, -diff)
			}
			d.Cells = append(d.Cells, DeltaCell{Idx: idx, Count: diff})
		}
	}
	return d, nil
}

// ApplyDelta folds a replication delta into the counter: every cell is a
// batch of d.Count records at joint index d.Idx, decomposed through the
// schema's record↔index bijection and added to every subset histogram —
// exactly what Add would have done record by record, in O(cells·2^M)
// instead of O(records·2^M). The caller is responsible for chaining
// (applying a full delta to an EMPTY counter and an incremental delta to
// the state at exactly FromVersion); the counter validates everything
// else: fingerprint, cell ranges, positivity, and the record-count sum.
func (c *MaterializedGammaCounter) ApplyDelta(d *CounterDelta) error {
	if d == nil {
		return fmt.Errorf("%w: nil delta", ErrMining)
	}
	if fp := c.Fingerprint(); d.Fingerprint != fp {
		return fmt.Errorf("%w: delta fingerprint %.12s does not match counter %.12s (different schema or perturbation contract)",
			ErrMining, d.Fingerprint, fp)
	}
	if d.Records < 0 {
		return fmt.Errorf("%w: delta carries negative record count %d", ErrMining, d.Records)
	}
	var sum float64
	for _, cell := range d.Cells {
		if cell.Idx < 0 || cell.Idx >= c.schema.DomainSize() {
			return fmt.Errorf("%w: delta cell index %d outside domain %d", ErrMining, cell.Idx, c.schema.DomainSize())
		}
		if cell.Count <= 0 {
			return fmt.Errorf("%w: non-positive delta cell count %v at index %d", ErrMining, cell.Count, cell.Idx)
		}
		sum += cell.Count
	}
	if diff := sum - float64(d.Records); diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("%w: delta cells total %v, want %d records", ErrMining, sum, d.Records)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range d.Cells {
		rec, err := c.schema.Decode(cell.Idx)
		if err != nil {
			return err
		}
		for mask := 1; mask < len(c.hists); mask++ {
			idx := 0
			for _, j := range c.cols[mask] {
				idx = idx*c.schema.Attrs[j].Cardinality() + rec[j]
			}
			c.hists[mask][idx] += cell.Count
		}
	}
	c.n += d.Records
	return nil
}

// Merge additively combines another counter into this one. Because every
// subset histogram is a per-record sum, merging per-site counters
// reproduces the counters of the union of their submissions exactly —
// the coordinator's global view is bit-identical to a single site that
// had collected everything. The two counters must share a compatibility
// fingerprint.
func (c *MaterializedGammaCounter) Merge(other *MaterializedGammaCounter) error {
	if other == nil {
		return fmt.Errorf("%w: nil counter", ErrMining)
	}
	if c == other {
		return fmt.Errorf("%w: cannot merge a counter into itself", ErrMining)
	}
	// The fingerprint covers schema AND matrix, so it is checked even
	// when the two counters share a *Schema — equal schema pointers say
	// nothing about the distortion the counts were collected under.
	if c.Fingerprint() != other.Fingerprint() {
		return fmt.Errorf("%w: cannot merge counters with different schema or perturbation contract", ErrMining)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	other.mu.RLock()
	defer other.mu.RUnlock()
	for mask := 1; mask < len(c.hists); mask++ {
		addInto(c.hists[mask], other.hists[mask])
	}
	c.n += other.n
	return nil
}

// NewShardedFromSnapshot wraps a frozen merged counter as a single-shard
// ShardedGammaCounter, so a coordinator's global view plugs into
// everything built for the live ingestion counter (service handlers,
// query engine, Apriori) unchanged. The caller must hand over ownership:
// the snapshot becomes the counter's only shard. Its version line starts
// at the record count, mirroring a state restore.
func NewShardedFromSnapshot(snap *MaterializedGammaCounter) *ShardedGammaCounter {
	c := &ShardedGammaCounter{
		schema:     snap.schema,
		matrix:     snap.matrix,
		shards:     []*MaterializedGammaCounter{snap},
		deltaEpoch: rand.Uint64(),
		ckpts:      make(map[uint64]*deltaCheckpoint),
	}
	n := snap.N()
	c.next.Store(uint64(n))
	c.total.Store(int64(n))
	c.version.Store(uint64(n))
	return c
}
