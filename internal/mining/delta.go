package mining

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Federated counter replication. FRAPP perturbs at the data provider, so
// the server-side counter is already privacy-safe — which makes counters
// from independent collection sites additive: summing per-site counts
// reproduces the counts of the union exactly, with no extra privacy
// cost. This file provides the scheme-generic replication substrate: a
// compatibility fingerprint (so only sites running the same scheme,
// schema, and perturbation contract merge), compact versioned deltas
// extracted from a live ShardedCounter of any scheme, and additive
// application on the scheme's CounterCore, which a coordinator uses to
// maintain one global counter over which the existing estimator and
// miner run unchanged.

// CounterDelta is one replication pull's payload: the sparse change of
// the FULL-domain (joint) histogram between two replication positions,
// plus everything a receiver needs to apply it safely. Only the joint
// histogram travels — every observable a scheme needs is a projection of
// it (gamma re-derives its subset histograms, the boolean schemes their
// pattern counts), keeping the wire format compact (at most one cell per
// new record).
type CounterDelta struct {
	// Fingerprint identifies the (scheme, schema, perturbation contract)
	// the cells were counted under; receivers must reject a mismatch. The
	// scheme identifier is part of the hash, so a gamma delta can never
	// be merged into a MASK counter even when both run the same schema.
	Fingerprint string
	// Generation is the sending counter object's random epoch nonce
	// (DeltaEpoch): every restart, state restore, or coordinator publish
	// creates a new counter object with a fresh nonce, so incremental
	// deltas chain only onto the exact object they were extracted from —
	// stream tokens can never alias another boot's state even when
	// version lines restart at colliding values.
	Generation uint64
	// FromVersion and ToVersion bracket the delta on the sender's
	// replication stream. FromVersion 0 means the payload is the FULL
	// counter state (a resync), to be applied to an empty counter;
	// otherwise the receiver must already hold the sender's state at
	// exactly FromVersion. ToVersion is an opaque stream position (>= the
	// counter's content version) to echo as `since` on the next pull.
	FromVersion uint64
	ToVersion   uint64
	// Records is the record-count change carried by Cells (the total
	// record count when FromVersion is 0).
	Records int
	// Cells are the changed joint-histogram cells, each strictly
	// positive — per-site counts only grow within a generation.
	Cells []DeltaCell
}

// DeltaCell is one changed cell of the joint histogram: the cell index
// in the scheme's joint domain (the schema's record↔index bijection for
// gamma, the row bitset for the boolean schemes), and the count
// increment.
type DeltaCell struct {
	Idx   uint64
	Count float64
}

// Full reports whether the delta carries complete counter state rather
// than an increment.
func (d *CounterDelta) Full() bool { return d.FromVersion == 0 }

// CompatibilityFingerprint hashes everything two gamma sites must agree
// on before their counters may be merged: the scheme identifier, schema
// name, every attribute with its ordered category list, and the
// perturbation matrix parameters. Two counters with equal fingerprints
// count in identical coordinates under identical distortion, so their
// histograms are additively combinable. The boolean schemes hash their
// own parameters under their own scheme tags (see boolcounter.go), so
// fingerprints can never collide across schemes.
func CompatibilityFingerprint(schema *dataset.Schema, m core.UniformMatrix) string {
	h := sha256.New()
	fmt.Fprintf(h, "scheme=%s;", SchemeGamma)
	fingerprintSchema(h, schema)
	fmt.Fprintf(h, "matrix=%d:%g:%g", m.N, m.Diag, m.Off)
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns the counter's compatibility fingerprint.
func (c *MaterializedGammaCounter) Fingerprint() string {
	return CompatibilityFingerprint(c.schema, c.matrix)
}

// MaxDeltaWireBytes bounds one serialized CounterDelta read on the
// receiving side. A delta carries at most one gob cell (~2 words) per
// distinct joint-domain point, so even a full resync of a large site is
// a few MB; the cap is a safety valve against a misbehaving endpoint,
// not a tuning knob.
const MaxDeltaWireBytes = 1 << 30

// maxDeltaCheckpoints bounds the retained replication baselines. Each
// checkpoint is one sparse joint histogram (at most one cell per
// distinct joint-domain point), so the cap costs O(8·cells) memory and
// lets up to 8 interleaved pullers (or 8 outstanding retry windows of
// one puller) replicate incrementally; anything older falls back to a
// full resync.
const maxDeltaCheckpoints = 8

// deltaCheckpoint is the baseline retained per issued ToVersion: the
// exact sparse joint histogram and record count that were handed to the
// puller, so the next incremental diff is computed against precisely the
// state the puller holds.
type deltaCheckpoint struct {
	n     int
	joint map[uint64]float64
}

// DeltaSince extracts the counter's change since a previously issued
// replication position. since 0 — or any position the counter no longer
// retains (evicted checkpoint, restarted process, restored state: the
// checkpoint ring lives and dies with the counter object) — yields a
// FULL delta (FromVersion 0); otherwise an incremental delta against
// exactly the state returned at `since`. The returned ToVersion is the
// position to echo next time.
//
// ToVersion is a stream token, not the content version: every distinct
// counter state gets a distinct token >= the content version at
// extraction time (a snapshot can fold in records that landed
// mid-sweep, so two calls at one content version may see different
// states — distinct tokens keep every retained baseline unambiguous,
// while pulls that observe an unchanged counter reuse the newest
// token).
func (c *ShardedCounter) DeltaSince(since uint64) (*CounterDelta, error) {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()

	// Fast path: if the newest issued baseline still matches the live
	// record count, the counter is unchanged since it was issued —
	// records are never removed, so an equal count means an identical
	// record multiset and therefore identical histograms — and the pull
	// is served entirely from retained checkpoints: no snapshot fold, no
	// new token, no ring churn. Idle polling (including repeated since=0
	// scrapers) therefore costs O(cells) and can never evict a
	// replicator's baseline. (A record mid-ingestion may make the count
	// match a hair before its visibility — then this serves the
	// checkpoint's slightly older but fully consistent state, and the
	// record rides the next delta.)
	if k := len(c.ckptOrder); k > 0 {
		tok := c.ckptOrder[k-1]
		if ck := c.ckpts[tok]; int64(ck.n) == c.total.Load() {
			return c.deltaToLocked(since, tok, ck)
		}
	}

	// Slow path: fold a fresh sparse joint, mint a strictly increasing
	// token, and retain the (token → state) baseline for future pulls.
	version := c.version.Load()
	joint := make(map[uint64]float64)
	n := 0
	for _, s := range c.shards {
		n += s.addJointInto(joint)
	}
	token := version
	if token <= c.lastDeltaToken {
		token = c.lastDeltaToken + 1
	}
	c.lastDeltaToken = token
	ck := &deltaCheckpoint{n: n, joint: joint}
	c.ckpts[token] = ck
	c.ckptOrder = append(c.ckptOrder, token)
	if len(c.ckptOrder) > maxDeltaCheckpoints {
		delete(c.ckpts, c.ckptOrder[0])
		c.ckptOrder = c.ckptOrder[1:]
	}
	return c.deltaToLocked(since, token, ck)
}

// DeltaEpoch returns the counter object's random replication epoch —
// the Generation every extracted delta carries.
func (c *ShardedCounter) DeltaEpoch() uint64 { return c.deltaEpoch }

// deltaToLocked builds the delta ending at checkpoint (token, ck),
// incremental against the retained baseline at since when one exists,
// full otherwise. Called with ckptMu held.
func (c *ShardedCounter) deltaToLocked(since, token uint64, ck *deltaCheckpoint) (*CounterDelta, error) {
	d := &CounterDelta{
		Fingerprint: c.Fingerprint(),
		Generation:  c.deltaEpoch,
		ToVersion:   token,
	}
	var base *deltaCheckpoint
	if since != 0 {
		if b, ok := c.ckpts[since]; ok {
			base = b
			d.FromVersion = since
		}
	}
	if base == nil {
		d.Records = ck.n
		for idx, v := range ck.joint {
			if v != 0 {
				d.Cells = append(d.Cells, DeltaCell{Idx: idx, Count: v})
			}
		}
		return d, nil
	}
	d.Records = ck.n - base.n
	for idx, v := range ck.joint {
		if diff := v - base.joint[idx]; diff != 0 {
			if diff < 0 {
				return nil, fmt.Errorf("%w: joint cell %d regressed by %v within one counter", ErrMining, idx, -diff)
			}
			d.Cells = append(d.Cells, DeltaCell{Idx: idx, Count: diff})
		}
	}
	// Cell counts never shrink within a generation, so a baseline cell
	// missing from the current joint is a regression too.
	for idx, v := range base.joint {
		if _, ok := ck.joint[idx]; !ok && v != 0 {
			return nil, fmt.Errorf("%w: joint cell %d regressed by %v within one counter", ErrMining, idx, v)
		}
	}
	return d, nil
}

// validateDelta runs the scheme-independent receiver checks: presence,
// fingerprint match (which seals scheme, schema, and parameters),
// non-negative record count, strictly positive cells, and the
// cells-to-records sum. Cell-index range checks are per scheme.
func validateDelta(d *CounterDelta, fingerprint string) error {
	if d == nil {
		return fmt.Errorf("%w: nil delta", ErrMining)
	}
	if d.Fingerprint != fingerprint {
		return fmt.Errorf("%w: delta fingerprint %.12s does not match counter %.12s (different scheme, schema, or perturbation contract)",
			ErrMining, d.Fingerprint, fingerprint)
	}
	if d.Records < 0 {
		return fmt.Errorf("%w: delta carries negative record count %d", ErrMining, d.Records)
	}
	var sum float64
	for _, cell := range d.Cells {
		if cell.Count <= 0 {
			return fmt.Errorf("%w: non-positive delta cell count %v at index %d", ErrMining, cell.Count, cell.Idx)
		}
		sum += cell.Count
	}
	if diff := sum - float64(d.Records); diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("%w: delta cells total %v, want %d records", ErrMining, sum, d.Records)
	}
	return nil
}

// ApplyDelta folds a replication delta into the counter: every cell is a
// batch of d.Count records at joint index d.Idx, decomposed through the
// schema's record↔index bijection and added to every subset histogram —
// exactly what Add would have done record by record, in O(cells·2^M)
// instead of O(records·2^M). The caller is responsible for chaining
// (applying a full delta to an EMPTY counter and an incremental delta to
// the state at exactly FromVersion); the counter validates everything
// else: fingerprint, cell ranges, positivity, and the record-count sum.
func (c *MaterializedGammaCounter) ApplyDelta(d *CounterDelta) error {
	if err := validateDelta(d, c.Fingerprint()); err != nil {
		return err
	}
	for _, cell := range d.Cells {
		if cell.Idx >= uint64(c.schema.DomainSize()) {
			return fmt.Errorf("%w: delta cell index %d outside domain %d", ErrMining, cell.Idx, c.schema.DomainSize())
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range d.Cells {
		rec, err := c.schema.Decode(int(cell.Idx))
		if err != nil {
			return err
		}
		for mask := 1; mask < len(c.hists); mask++ {
			idx := 0
			for _, j := range c.cols[mask] {
				idx = idx*c.schema.Attrs[j].Cardinality() + rec[j]
			}
			c.hists[mask][idx] += cell.Count
		}
	}
	c.n += d.Records
	return nil
}
