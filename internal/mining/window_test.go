package mining

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The windowed-counter property suite. The load-bearing claim is
// additivity: the ring union after K rotations must equal a fresh
// counter fed ONLY the surviving records, to 1e-9, under every scheme —
// expiry by bucket subtraction is exact, not approximate.

// fakeClock is a mutex-guarded manual clock for driving ring rotation
// deterministically.
type fakeClock struct {
	mu  sync.Mutex
	cur time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{cur: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cur = c.cur.Add(d)
}

// ingestAll feeds records one at a time (exercising the head-bucket
// RLock path rather than the batch path).
func ingestAll(t *testing.T, w *WindowedCounter, records [][]Item) {
	t.Helper()
	for _, items := range records {
		if err := w.Ingest(items); err != nil {
			t.Fatal(err)
		}
	}
}

// freshCounter builds a plain sharded counter over the given records —
// the ground truth the ring union must match.
func freshCounter(t *testing.T, scheme CounterScheme, records [][]Item) *ShardedCounter {
	t.Helper()
	c, err := NewShardedCounter(scheme, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.IngestBatch(records); err != nil {
		t.Fatal(err)
	}
	return c
}

// assertWindowMatches checks the windowed counter restricted to
// `window` against a fresh counter fed only `want` records: record
// counts exactly, supports and estimates to 1e-9.
func assertWindowMatches(t *testing.T, w *WindowedCounter, window time.Duration, scheme CounterScheme, want [][]Item, probes []Itemset) {
	t.Helper()
	truth := freshCounter(t, scheme, want)
	wEst, wn, _, err := w.EstimatesWindow(probes, window)
	if err != nil {
		t.Fatal(err)
	}
	if wn != len(want) {
		t.Fatalf("window sweep saw %d records, want %d survivors", wn, len(want))
	}
	if len(want) == 0 {
		return // nothing further to compare against an empty counter
	}
	tEst, tn, err := truth.Estimates(probes)
	if err != nil {
		t.Fatal(err)
	}
	if tn != len(want) {
		t.Fatalf("truth counter saw %d records, want %d", tn, len(want))
	}
	for i, probe := range probes {
		if math.Abs(wEst[i].Count-tEst[i].Count) > 1e-9 || math.Abs(wEst[i].StdErr-tEst[i].StdErr) > 1e-9 {
			t.Errorf("%s window estimate (%v±%v) vs survivors (%v±%v)",
				probe.Key(), wEst[i].Count, wEst[i].StdErr, tEst[i].Count, tEst[i].StdErr)
		}
	}
	// The frozen window snapshot must agree with the survivors too —
	// this is the surface mining jobs consume.
	snap, _ := w.SnapshotWindowVersioned(window)
	sSup, err := snap.Supports(probes)
	if err != nil {
		t.Fatal(err)
	}
	tSup, err := truth.Supports(probes)
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != len(want) {
		t.Fatalf("window snapshot N = %d, want %d", snap.N(), len(want))
	}
	for i, probe := range probes {
		if math.Abs(sSup[i]-tSup[i]) > 1e-9 {
			t.Errorf("%s window snapshot support %v vs survivors %v", probe.Key(), sSup[i], tSup[i])
		}
	}
}

// TestWindowedFullRingMatchesUnwindowed: with no rotation, a windowed
// counter is just a sharded counter with extra bookkeeping — the full
// ring must match a plain counter fed the same stream to 1e-9, on
// Supports, PerturbedSupports, Estimates, and the full-ring snapshot.
// This is equivalence proof (b) at the mining layer.
func TestWindowedFullRingMatchesUnwindowed(t *testing.T) {
	db := buildSkewedDB(t, 3000, 401)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(402)))
			w, err := NewWindowedCounter(ls.scheme, 3, 4, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			clock := newFakeClock()
			w.SetNowFunc(clock.Now)
			if err := w.IngestBatch(records); err != nil {
				t.Fatal(err)
			}
			plain := freshCounter(t, ls.scheme, records)

			if w.N() != plain.N() {
				t.Fatalf("N %d vs %d", w.N(), plain.N())
			}
			wSup, err := w.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			pSup, err := plain.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			wRaw, wrn, err := w.PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			pRaw, prn, err := plain.PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			if wrn != prn {
				t.Fatalf("raw sweep records %d vs %d", wrn, prn)
			}
			for i, probe := range probes {
				if math.Abs(wSup[i]-pSup[i]) > 1e-9 {
					t.Errorf("%s support %v vs %v", probe.Key(), wSup[i], pSup[i])
				}
				if math.Abs(wRaw[i]-pRaw[i]) > 1e-9 {
					t.Errorf("%s raw %v vs %v", probe.Key(), wRaw[i], pRaw[i])
				}
			}
			// Windowed read spanning the whole retention == unwindowed.
			assertWindowMatches(t, w, w.Retention(), ls.scheme, records, probes)
			assertWindowMatches(t, w, 0, ls.scheme, records, probes)
		})
	}
}

// TestWindowedRotationMatchesSurvivors is the expiry property test:
// ingest four epochs of records into a 4-bucket ring, rotate K buckets
// past retention, and at every step the ring union — full and
// sub-window — must equal a fresh counter fed only the records that
// survive that window, to 1e-9, per scheme.
func TestWindowedRotationMatchesSurvivors(t *testing.T) {
	db := buildSkewedDB(t, 2400, 411)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(412)))
			quarter := len(records) / 4
			chunks := [][][]Item{
				records[:quarter],
				records[quarter : 2*quarter],
				records[2*quarter : 3*quarter],
				records[3*quarter:],
			}
			const bucket = time.Minute
			w, err := NewWindowedCounter(ls.scheme, 3, 4, bucket)
			if err != nil {
				t.Fatal(err)
			}
			clock := newFakeClock()
			w.SetNowFunc(clock.Now)

			// One chunk per bucket epoch: chunk i lands in its own ring
			// slot.
			for i, chunk := range chunks {
				if i > 0 {
					clock.Advance(bucket)
				}
				ingestAll(t, w, chunk)
			}

			// Ring full, nothing expired yet: every sub-window selects a
			// suffix of the chunk sequence.
			join := func(cs ...[][]Item) [][]Item {
				var out [][]Item
				for _, c := range cs {
					out = append(out, c...)
				}
				return out
			}
			assertWindowMatches(t, w, 1*bucket, ls.scheme, chunks[3], probes)
			assertWindowMatches(t, w, 2*bucket, ls.scheme, join(chunks[2], chunks[3]), probes)
			// A ragged window rounds UP to whole buckets: 90s of 60s
			// buckets reads 2.
			assertWindowMatches(t, w, 90*time.Second, ls.scheme, join(chunks[2], chunks[3]), probes)
			assertWindowMatches(t, w, 0, ls.scheme, records, probes)

			// Rotate two buckets past retention: chunks 0 and 1 expire.
			clock.Advance(2 * bucket)
			survivors := join(chunks[2], chunks[3])
			if w.N() != len(survivors) {
				t.Fatalf("after expiry N = %d, want %d", w.N(), len(survivors))
			}
			assertWindowMatches(t, w, 0, ls.scheme, survivors, probes)
			// The two newest buckets are the empty post-rotation slots;
			// three buckets back reaches chunk 3.
			assertWindowMatches(t, w, 2*bucket, ls.scheme, nil, probes)
			assertWindowMatches(t, w, 3*bucket, ls.scheme, chunks[3], probes)

			// An idle gap longer than the whole retention empties the
			// ring in one tick.
			clock.Advance(10 * bucket)
			if w.N() != 0 {
				t.Fatalf("after full expiry N = %d, want 0", w.N())
			}
			assertWindowMatches(t, w, 0, ls.scheme, nil, probes)

			// And the ring keeps working after total expiry.
			ingestAll(t, w, chunks[0])
			assertWindowMatches(t, w, 0, ls.scheme, chunks[0], probes)
		})
	}
}

// TestWindowedVersionSemantics: the version must advance on every
// ingested record AND on every effective rotation — rotation changes
// which records a window selects even when the expired buckets were
// empty, so "equal version ⇒ identical answer" only holds if rotation
// bumps it.
func TestWindowedVersionSemantics(t *testing.T) {
	schema := buildSkewedDB(t, 10, 421).Schema
	scheme, err := SchemeForContract(SchemeGamma, schema, liveTestGamma)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindowedCounter(scheme, 2, 3, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	w.SetNowFunc(clock.Now)

	v0 := w.Version()
	if err := w.Ingest([]Item{{Attr: 0, Value: 0}, {Attr: 1, Value: 0}, {Attr: 2, Value: 0}}); err != nil {
		t.Fatal(err)
	}
	v1 := w.Version()
	if v1 <= v0 {
		t.Fatalf("version did not advance on ingest: %d -> %d", v0, v1)
	}
	// Rotation with EMPTY expiring buckets must still bump the version.
	clock.Advance(time.Minute)
	v2 := w.Version()
	if v2 <= v1 {
		t.Fatalf("version did not advance on rotation: %d -> %d", v1, v2)
	}
	// No elapsed time, no content change: version is stable.
	if v3 := w.Version(); v3 != v2 {
		t.Fatalf("version moved without rotation or ingest: %d -> %d", v2, v3)
	}
	if b, d := w.WindowSpec(); b != 3 || d != time.Minute {
		t.Fatalf("WindowSpec = (%d, %v), want (3, 1m)", b, d)
	}
}

// TestWindowedDurabilityRefused: windowed counters are in-memory only —
// Save and DeltaSince must refuse rather than persist state that a
// replay could not expire correctly.
func TestWindowedDurabilityRefused(t *testing.T) {
	schema := buildSkewedDB(t, 10, 431).Schema
	scheme, err := SchemeForContract(SchemeGamma, schema, liveTestGamma)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindowedCounter(scheme, 1, 2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Save(nil); err == nil {
		t.Fatal("Save on a windowed counter must refuse")
	}
	if _, err := w.DeltaSince(0); err == nil {
		t.Fatal("DeltaSince on a windowed counter must refuse")
	}
	if _, err := NewWindowedCounter(scheme, 1, 0, time.Minute); err == nil {
		t.Fatal("zero buckets must be rejected")
	}
	if _, err := NewWindowedCounter(scheme, 1, 2, 0); err == nil {
		t.Fatal("zero bucket duration must be rejected")
	}
	if _, err := NewWindowedCounter(nil, 1, 2, time.Minute); err == nil {
		t.Fatal("nil scheme must be rejected")
	}
}

// TestWindowedConcurrentIngestQueryRotate drives concurrent ingesters,
// readers, and clock advances through the ring under the race detector:
// no read may observe a torn state, and the final N must equal the
// survivor count.
func TestWindowedConcurrentIngestQueryRotate(t *testing.T) {
	db := buildSkewedDB(t, 600, 441)
	schema := db.Schema
	scheme, err := SchemeForContract(SchemeGamma, schema, liveTestGamma)
	if err != nil {
		t.Fatal(err)
	}
	records := liveSchemes(t, schema)[0].perturb(t, db, rand.New(rand.NewSource(442)))
	w, err := NewWindowedCounter(scheme, 4, 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	w.SetNowFunc(clock.Now)
	probes := probeItemsets(t, schema)[:8]

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(records); i += 4 {
				if err := w.Ingest(records[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, _, _, err := w.EstimatesWindow(probes, 2*time.Minute); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := w.Estimates(probes); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			clock.Advance(time.Minute)
			w.N() // force a tick
		}
	}()
	wg.Wait()

	// Everything ingested is gone once the clock moves past retention.
	clock.Advance(10 * time.Minute)
	if n := w.N(); n != 0 {
		t.Fatalf("after retention N = %d, want 0", n)
	}
}
