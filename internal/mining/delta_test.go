package mining

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// deltaTestSchema is a small 3-attribute schema (domain 24).
func deltaTestSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("delta-test", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func deltaTestMatrix(t *testing.T, s *dataset.Schema) core.UniformMatrix {
	t.Helper()
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomRecord(s *dataset.Schema, rng *rand.Rand) dataset.Record {
	rec := make(dataset.Record, s.M())
	for j, a := range s.Attrs {
		rec[j] = rng.Intn(a.Cardinality())
	}
	return rec
}

// countersEqual compares every subset histogram and the record count.
func countersEqual(t *testing.T, want, got *MaterializedGammaCounter) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("record count %d, want %d", got.N(), want.N())
	}
	want.mu.RLock()
	got.mu.RLock()
	defer want.mu.RUnlock()
	defer got.mu.RUnlock()
	for mask := 1; mask < len(want.hists); mask++ {
		for i := range want.hists[mask] {
			if math.Abs(want.hists[mask][i]-got.hists[mask][i]) > 1e-9 {
				t.Fatalf("mask %d cell %d: %v, want %v", mask, i, got.hists[mask][i], want.hists[mask][i])
			}
		}
	}
}

func TestDeltaSinceFullThenIncrementalReconstructsCounter(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(11))

	src, err := NewShardedGammaCounter(s, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewMaterializedGammaCounter(s, m)
	if err != nil {
		t.Fatal(err)
	}

	since := uint64(0)
	total := 0
	for round := 0; round < 5; round++ {
		add := rng.Intn(40)
		for i := 0; i < add; i++ {
			if err := src.Add(randomRecord(s, rng)); err != nil {
				t.Fatal(err)
			}
		}
		total += add
		d, err := src.DeltaSince(since)
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			if !d.Full() {
				t.Fatalf("first pull (since=0) not full: FromVersion=%d", d.FromVersion)
			}
		} else {
			if d.Full() {
				t.Fatalf("round %d: retained baseline %d not used", round, since)
			}
			if d.FromVersion != since {
				t.Fatalf("round %d: FromVersion %d, want %d", round, d.FromVersion, since)
			}
		}
		if d.ToVersion < since {
			t.Fatalf("round %d: ToVersion %d went backwards from %d", round, d.ToVersion, since)
		}
		if add > 0 && d.ToVersion <= since {
			t.Fatalf("round %d: ToVersion %d did not advance past %d after %d new records", round, d.ToVersion, since, add)
		}
		if err := replica.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		since = d.ToVersion
	}
	if total == 0 {
		t.Fatal("degenerate test: no records added")
	}
	countersEqual(t, src.Snapshot().(*MaterializedGammaCounter), replica)
}

func TestDeltaSinceUnknownBaselineFallsBackToFull(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(3))
	src, err := NewShardedGammaCounter(s, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := src.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := src.DeltaSince(999999) // never issued
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full() {
		t.Fatalf("unknown baseline served incrementally (FromVersion %d)", d.FromVersion)
	}
	if d.Records != 10 {
		t.Fatalf("full delta carries %d records, want 10", d.Records)
	}
}

func TestDeltaSinceEvictsOldCheckpoints(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(5))
	src, err := NewShardedGammaCounter(s, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.DeltaSince(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxDeltaCheckpoints+2; i++ {
		if err := src.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
		if _, err := src.DeltaSince(0); err != nil {
			t.Fatal(err)
		}
	}
	d, err := src.DeltaSince(first.ToVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full() {
		t.Fatal("evicted baseline still served incrementally")
	}
	src.ckptMu.Lock()
	retained := len(src.ckpts)
	src.ckptMu.Unlock()
	if retained > maxDeltaCheckpoints {
		t.Fatalf("%d checkpoints retained, cap %d", retained, maxDeltaCheckpoints)
	}
}

// TestDeltaSinceUnchangedCounterReusesToken: pulls that observe no new
// records reuse the newest baseline instead of churning the bounded
// ring — so a flood of since=0 pollers against an idle counter can
// never evict a replicator's retained baseline.
func TestDeltaSinceUnchangedCounterReusesToken(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(7))
	src, err := NewShardedGammaCounter(s, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := src.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := src.DeltaSince(0)
	if err != nil {
		t.Fatal(err)
	}
	// A flood of fresh pollers on the unchanged counter.
	for i := 0; i < 3*maxDeltaCheckpoints; i++ {
		d, err := src.DeltaSince(0)
		if err != nil {
			t.Fatal(err)
		}
		if d.ToVersion != first.ToVersion {
			t.Fatalf("unchanged counter minted new token %d (want %d)", d.ToVersion, first.ToVersion)
		}
	}
	src.ckptMu.Lock()
	retained := len(src.ckpts)
	src.ckptMu.Unlock()
	if retained != 1 {
		t.Fatalf("%d checkpoints retained after idle flood, want 1", retained)
	}
	// The replicator's baseline survived: its next pull is incremental.
	if err := src.Add(randomRecord(s, rng)); err != nil {
		t.Fatal(err)
	}
	d, err := src.DeltaSince(first.ToVersion)
	if err != nil {
		t.Fatal(err)
	}
	if d.Full() || d.Records != 1 {
		t.Fatalf("post-flood pull: full=%v records=%d, want incremental 1", d.Full(), d.Records)
	}
}

func TestApplyDeltaRejectsBadPayloads(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	c, err := NewMaterializedGammaCounter(s, m)
	if err != nil {
		t.Fatal(err)
	}
	fp := c.Fingerprint()
	cases := []struct {
		name string
		d    *CounterDelta
	}{
		{"nil", nil},
		{"fingerprint mismatch", &CounterDelta{Fingerprint: "bogus", Records: 1, Cells: []DeltaCell{{Idx: 0, Count: 1}}}},
		{"index out of range", &CounterDelta{Fingerprint: fp, Records: 1, Cells: []DeltaCell{{Idx: uint64(s.DomainSize()), Count: 1}}}},
		{"negative cell", &CounterDelta{Fingerprint: fp, Records: 0, Cells: []DeltaCell{{Idx: 0, Count: -1}}}},
		{"sum mismatch", &CounterDelta{Fingerprint: fp, Records: 5, Cells: []DeltaCell{{Idx: 0, Count: 1}}}},
		{"negative records", &CounterDelta{Fingerprint: fp, Records: -1}},
	}
	for _, tc := range cases {
		if err := c.ApplyDelta(tc.d); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if c.N() != 0 {
		t.Fatalf("rejected deltas mutated the counter: n=%d", c.N())
	}
}

func TestMergeMatchesUnion(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(17))

	union, err := NewMaterializedGammaCounter(s, m)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := NewMaterializedGammaCounter(s, m)
	if err != nil {
		t.Fatal(err)
	}
	for site := 0; site < 3; site++ {
		part, err := NewMaterializedGammaCounter(s, m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20+site*7; i++ {
			rec := randomRecord(s, rng)
			if err := part.Add(rec); err != nil {
				t.Fatal(err)
			}
			if err := union.Add(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	countersEqual(t, union, merged)

	// Reconstructed supports over the merged counter equal the union's.
	cands := []Itemset{}
	for v := 0; v < 3; v++ {
		set, err := NewItemset(Item{Attr: 0, Value: v})
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, set)
	}
	want, err := union.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	got, err := merged.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-9 {
			t.Fatalf("support %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMergeRejectsIncompatibleCounters(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	c1, err := NewMaterializedGammaCounter(s, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Merge(nil); err == nil {
		t.Error("nil counter merged")
	}
	if err := c1.Merge(c1); err == nil {
		t.Error("self-merge accepted")
	}
	other, err := dataset.NewSchema("delta-test", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "x"}}, // one renamed category
	})
	if err != nil {
		t.Fatal(err)
	}
	om, err := core.NewGammaDiagonal(other.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewMaterializedGammaCounter(other, om)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Merge(c2); err == nil {
		t.Error("mismatched category vocabulary merged")
	}
	// Same *Schema, different perturbation matrix: the counts live under
	// different distortions and must not merge either.
	m2, err := core.NewGammaDiagonal(s.DomainSize(), 7)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := NewMaterializedGammaCounter(s, m2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Merge(c3); err == nil {
		t.Error("shared-schema counter with different matrix merged")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	base := CompatibilityFingerprint(s, m)
	if base != CompatibilityFingerprint(s, m) {
		t.Fatal("fingerprint not deterministic")
	}
	m2 := m
	m2.Diag += 1e-9
	if CompatibilityFingerprint(s, m2) == base {
		t.Error("matrix change not reflected")
	}
	s2, err := dataset.NewSchema("delta-test-2", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if CompatibilityFingerprint(s2, m) == base {
		t.Error("schema name change not reflected")
	}
}

func TestNewShardedFromSnapshotServesMergedState(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(23))
	src, err := NewMaterializedGammaCounter(s, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := src.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	wrapped := NewShardedFromSnapshot(src.Snapshot())
	if wrapped.N() != 30 || wrapped.Version() != 30 || wrapped.Shards() != 1 {
		t.Fatalf("wrapped counter N=%d version=%d shards=%d", wrapped.N(), wrapped.Version(), wrapped.Shards())
	}
	set, err := NewItemset(Item{Attr: 1, Value: 0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := src.Supports([]Itemset{set})
	if err != nil {
		t.Fatal(err)
	}
	got, err := wrapped.Supports([]Itemset{set})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want[0]-got[0]) > 1e-9 {
		t.Fatalf("support %v, want %v", got[0], want[0])
	}
	// The wrapped counter participates in replication: a full pull
	// reproduces it.
	d, err := wrapped.DeltaSince(0)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewMaterializedGammaCounter(s, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	countersEqual(t, src, replica)
	// Still save/load compatible (the persist path of a coordinator).
	var buf bytes.Buffer
	if err := wrapped.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMaterializedGammaCounter(&buf, s, m)
	if err != nil {
		t.Fatal(err)
	}
	countersEqual(t, src, loaded)
}
