package mining

import (
	"errors"
	"testing"

	"repro/internal/dataset"
)

func miningSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("mining-test", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewItemsetCanonicalizes(t *testing.T) {
	s, err := NewItemset(Item{2, 1}, Item{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s[0].Attr != 0 || s[1].Attr != 2 {
		t.Fatalf("not sorted: %v", s)
	}
	if s.Key() != "0=2,2=1" {
		t.Fatalf("Key = %q", s.Key())
	}
	if _, err := NewItemset(Item{1, 0}, Item{1, 1}); !errors.Is(err, ErrMining) {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestItemsetSupports(t *testing.T) {
	s, _ := NewItemset(Item{0, 1}, Item{2, 3})
	if !s.Supports(dataset.Record{1, 0, 3}) {
		t.Fatal("supporting record rejected")
	}
	if s.Supports(dataset.Record{1, 0, 2}) {
		t.Fatal("non-supporting record accepted")
	}
	if s.Supports(dataset.Record{1}) {
		t.Fatal("short record accepted")
	}
	empty := Itemset{}
	if !empty.Supports(dataset.Record{0, 0, 0}) {
		t.Fatal("empty itemset must support everything")
	}
}

func TestItemsetSubsets(t *testing.T) {
	s, _ := NewItemset(Item{0, 0}, Item{1, 1}, Item{2, 2})
	subs := s.Subsets()
	if len(subs) != 3 {
		t.Fatalf("got %d subsets", len(subs))
	}
	keys := map[string]bool{}
	for _, sub := range subs {
		if sub.Len() != 2 {
			t.Fatalf("subset length %d", sub.Len())
		}
		keys[sub.Key()] = true
	}
	for _, want := range []string{"0=0,1=1", "0=0,2=2", "1=1,2=2"} {
		if !keys[want] {
			t.Fatalf("missing subset %q", want)
		}
	}
}

func TestItemsetValidate(t *testing.T) {
	sc := miningSchema(t)
	good, _ := NewItemset(Item{0, 2}, Item{2, 3})
	if err := good.Validate(sc); err != nil {
		t.Fatal(err)
	}
	bad := []Itemset{
		{{Attr: 5, Value: 0}},
		{{Attr: 0, Value: 9}},
		{{Attr: 1, Value: 0}, {Attr: 0, Value: 0}}, // out of order
	}
	for i, b := range bad {
		if err := b.Validate(sc); !errors.Is(err, ErrMining) {
			t.Errorf("bad itemset %d accepted", i)
		}
	}
}

func TestItemsetAttrsValuesContains(t *testing.T) {
	s, _ := NewItemset(Item{0, 2}, Item{2, 1})
	a := s.Attrs()
	v := s.Values()
	if a[0] != 0 || a[1] != 2 || v[0] != 2 || v[1] != 1 {
		t.Fatalf("Attrs/Values wrong: %v %v", a, v)
	}
	if !s.Contains(Item{0, 2}) || s.Contains(Item{0, 1}) {
		t.Fatal("Contains wrong")
	}
}

func TestItemsetFormatWith(t *testing.T) {
	sc := miningSchema(t)
	s, _ := NewItemset(Item{0, 1}, Item{1, 0})
	if got := s.FormatWith(sc); got != "a=a1 & b=b0" {
		t.Fatalf("FormatWith = %q", got)
	}
	bad := Itemset{{Attr: 9, Value: 9}}
	if got := bad.FormatWith(sc); got != bad.Key() {
		t.Fatalf("invalid itemset should fall back to key, got %q", got)
	}
}
