package mining

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// SupportCounter supplies (possibly reconstructed) absolute support
// counts for candidate itemsets. Implementations: ExactCounter (ground
// truth), GammaCounter (DET-GD / RAN-GD reconstruction), MaskCounter and
// CutPasteCounter (baseline reconstructions).
type SupportCounter interface {
	// Supports returns the estimated support count of each candidate.
	Supports(candidates []Itemset) ([]float64, error)
	// N returns the number of database records.
	N() int
	// Schema returns the categorical schema being mined.
	Schema() *dataset.Schema
}

// FrequentItemset pairs an itemset with its (estimated) support fraction.
type FrequentItemset struct {
	Items   Itemset
	Support float64 // fraction of records, in [0,1] up to estimation error
}

// Result is the output of one Apriori run.
type Result struct {
	MinSupport float64
	// ByLength[k] holds the frequent itemsets of length k+1, sorted by key.
	ByLength [][]FrequentItemset
}

// Counts returns the number of frequent itemsets at each length,
// the paper's Table 3 row format.
func (r *Result) Counts() []int {
	out := make([]int, len(r.ByLength))
	for i, level := range r.ByLength {
		out[i] = len(level)
	}
	return out
}

// All returns every frequent itemset keyed by canonical key.
func (r *Result) All() map[string]FrequentItemset {
	out := make(map[string]FrequentItemset)
	for _, level := range r.ByLength {
		for _, f := range level {
			out[f.Items.Key()] = f
		}
	}
	return out
}

// Lookup returns the frequent itemset with the given key, if present.
func (r *Result) Lookup(key string) (FrequentItemset, bool) {
	for _, level := range r.ByLength {
		for _, f := range level {
			if f.Items.Key() == key {
				return f, true
			}
		}
	}
	return FrequentItemset{}, false
}

// Options tunes the Apriori run.
type Options struct {
	// CandidateRelaxation, in (0, 1], lowers the support threshold used
	// for KEEPING CANDIDATES ALIVE between passes to
	// relaxation·minSupport, while the reported result is still filtered
	// at the full minSupport. Under noisy support reconstruction, a
	// single under-estimated subset kills every superset in plain
	// Apriori; relaxing the intermediate threshold trades extra counting
	// work for fewer propagated false negatives. 1 (the default)
	// reproduces the paper's plain algorithm.
	CandidateRelaxation float64
	// MaxLen, when > 0, stops the level-wise search after itemsets of
	// that length: a miner interested only in short patterns skips the
	// (combinatorially widest) later passes entirely. 0 means unbounded.
	MaxLen int
}

// Apriori mines all itemsets with support ≥ minSupport (a fraction in
// (0,1]) using the level-wise algorithm of Agrawal & Srikant (VLDB 1994),
// with the counter abstracting the per-pass support computation — for
// perturbed databases this is where the paper's "support reconstruction
// phase at the end of each pass" happens.
func Apriori(c SupportCounter, minSupport float64) (*Result, error) {
	return AprioriWithOptions(c, minSupport, Options{CandidateRelaxation: 1})
}

// AprioriWithOptions is Apriori with explicit tuning.
func AprioriWithOptions(c SupportCounter, minSupport float64, opts Options) (*Result, error) {
	if !(minSupport > 0 && minSupport <= 1) {
		return nil, fmt.Errorf("%w: minSupport %v not in (0,1]", ErrMining, minSupport)
	}
	if !(opts.CandidateRelaxation > 0 && opts.CandidateRelaxation <= 1) {
		return nil, fmt.Errorf("%w: candidate relaxation %v not in (0,1]", ErrMining, opts.CandidateRelaxation)
	}
	if opts.MaxLen < 0 {
		return nil, fmt.Errorf("%w: max length %d negative", ErrMining, opts.MaxLen)
	}
	sc := c.Schema()
	n := c.N()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty database", ErrMining)
	}
	threshold := minSupport * float64(n)
	aliveThreshold := threshold * opts.CandidateRelaxation

	// Level 1: all single items.
	var candidates []Itemset
	for a := 0; a < sc.M(); a++ {
		for v := 0; v < sc.Attrs[a].Cardinality(); v++ {
			candidates = append(candidates, Itemset{{Attr: a, Value: v}})
		}
	}

	res := &Result{MinSupport: minSupport}
	length := 1
	for len(candidates) > 0 {
		counts, err := c.Supports(candidates)
		if err != nil {
			return nil, err
		}
		if len(counts) != len(candidates) {
			return nil, fmt.Errorf("%w: counter returned %d counts for %d candidates", ErrMining, len(counts), len(candidates))
		}
		var level, alive []FrequentItemset
		for i, cnt := range counts {
			fi := FrequentItemset{Items: candidates[i], Support: cnt / float64(n)}
			if cnt >= threshold {
				level = append(level, fi)
			}
			if cnt >= aliveThreshold {
				alive = append(alive, fi)
			}
		}
		sort.Slice(level, func(i, j int) bool { return level[i].Items.Key() < level[j].Items.Key() })
		sort.Slice(alive, func(i, j int) bool { return alive[i].Items.Key() < alive[j].Items.Key() })
		if len(level) > 0 {
			res.ByLength = append(res.ByLength, level)
		} else if opts.CandidateRelaxation == 1 {
			break
		}
		if len(alive) == 0 {
			break
		}
		if opts.MaxLen > 0 && length >= opts.MaxLen {
			break
		}
		candidates = generateCandidates(alive)
		length++
	}
	// Trim trailing empty levels cannot occur (levels are only appended
	// when non-empty), but with relaxation the result can have gaps in
	// length; ByLength indexes by appearance order, so re-bucket by
	// actual length for stable semantics.
	res.normalize()
	return res, nil
}

// normalize re-buckets ByLength so index k holds exactly the itemsets of
// length k+1, dropping trailing empty levels.
func (r *Result) normalize() {
	maxLen := 0
	for _, level := range r.ByLength {
		for _, f := range level {
			if f.Items.Len() > maxLen {
				maxLen = f.Items.Len()
			}
		}
	}
	buckets := make([][]FrequentItemset, maxLen)
	for _, level := range r.ByLength {
		for _, f := range level {
			buckets[f.Items.Len()-1] = append(buckets[f.Items.Len()-1], f)
		}
	}
	for _, b := range buckets {
		sort.Slice(b, func(i, j int) bool { return b[i].Items.Key() < b[j].Items.Key() })
	}
	// Drop trailing empty buckets (can appear when only longer-level
	// survivors existed below the full threshold).
	for len(buckets) > 0 && len(buckets[len(buckets)-1]) == 0 {
		buckets = buckets[:len(buckets)-1]
	}
	r.ByLength = buckets
}

// generateCandidates implements the Apriori join + prune: two frequent
// k-itemsets sharing their first k−1 items (and with distinct final
// attributes) join into a (k+1)-candidate, which is kept only if all its
// k-subsets are frequent.
func generateCandidates(level []FrequentItemset) []Itemset {
	frequent := make(map[string]bool, len(level))
	for _, f := range level {
		frequent[f.Items.Key()] = true
	}
	var out []Itemset
	for i := 0; i < len(level); i++ {
		a := level[i].Items
		for j := i + 1; j < len(level); j++ {
			b := level[j].Items
			if !joinable(a, b) {
				continue
			}
			cand := make(Itemset, len(a)+1)
			copy(cand, a)
			cand[len(a)] = b[len(b)-1]
			// Canonical order: the new last item must sort after a's last.
			if len(a) > 0 && cand[len(a)].Attr < cand[len(a)-1].Attr {
				cand[len(a)-1], cand[len(a)] = cand[len(a)], cand[len(a)-1]
			}
			sort.Slice(cand, func(x, y int) bool { return cand[x].Attr < cand[y].Attr })
			if cand[len(cand)-1].Attr == cand[len(cand)-2].Attr {
				continue // same attribute twice: unsupportable
			}
			if !allSubsetsFrequent(cand, frequent) {
				continue
			}
			out = append(out, cand)
		}
	}
	// Deduplicate (a pair can be generated from multiple joins after
	// re-sorting).
	seen := make(map[string]bool, len(out))
	dedup := out[:0]
	for _, c := range out {
		k := c.Key()
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, c)
		}
	}
	return dedup
}

func joinable(a, b Itemset) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	for k := 0; k < len(a)-1; k++ {
		if a[k] != b[k] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

func allSubsetsFrequent(cand Itemset, frequent map[string]bool) bool {
	for _, sub := range cand.Subsets() {
		if !frequent[sub.Key()] {
			return false
		}
	}
	return true
}
