package mining

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
)

// Sliding-window live counters. FRAPP's estimators are linear in the
// joint counts of the perturbed data, so a time-decayed collection comes
// for free: keep a ring of time-bucketed sub-counters, add the live
// bucket, drop expired ones, and the union of the surviving buckets IS
// the counter of exactly the surviving records — the windowed estimator
// is the ordinary estimator over that union, at the same O(#filters)
// read cost. No record is ever re-scanned (none is stored), and expiry
// is O(1) per bucket: the expired sub-counter is simply discarded.
//
// WindowedCounter implements LiveCounter over such a ring, plus the
// WindowView surface that answers reads restricted to the newest K
// buckets ("last 24h"). Windowed counters are in-memory only: their
// content is defined by wall-clock expiry, which a WAL replayed at an
// arbitrary later time cannot reproduce, so Save and DeltaSince refuse
// (the service layer gates stores and federation off windowed
// collections for the same reason).

// WindowView is the optional time-ranged read surface of a live
// counter. The service layer type-asserts its counter against this to
// serve `window` parameters on /v1/query and mining jobs.
type WindowView interface {
	LiveCounter
	// WindowSpec returns the ring geometry: bucket count and bucket
	// duration (retention = buckets × bucket).
	WindowSpec() (buckets int, bucket time.Duration)
	// EstimatesWindow answers filter-count queries over the newest
	// ceil(window/bucket) buckets (window <= 0 means the full ring). It
	// returns the estimates, the record count of the same consistent
	// sweep, and the counter version the answer is EXACT for — read
	// under the same lock as the sweep, because bucket expiry makes
	// windowed content non-monotonic (a later read can see fewer
	// records, so the unwindowed "strictly newer is still valid"
	// convention does not apply).
	EstimatesWindow(filters []Itemset, window time.Duration) ([]PointEstimate, int, uint64, error)
	// SnapshotWindowVersioned folds the newest ceil(window/bucket)
	// buckets into one frozen SupportCounter (minable by Apriori) with
	// the version it is exact for.
	SnapshotWindowVersioned(window time.Duration) (SupportCounter, uint64)
}

// WindowedCounter is a LiveCounter whose content is the last
// (buckets × bucket) of ingested records: a ring of per-bucket
// ShardedCounters rotated lazily on the counter's clock. Ingestion
// lands in the head bucket; any operation first advances the ring if
// the head bucket's span has elapsed, discarding sub-counters that fell
// out of retention. Reads gather across the surviving buckets' shards
// exactly the way a single sharded counter gathers across its shards —
// additivity of the joint counts is what makes the union exact.
//
// Concurrency: rotation takes the write lock; ingests and reads run
// under the read lock (per-bucket counters are internally lock-striped,
// so concurrent ingesters still scale across shards). version advances
// on every content change AND on every rotation — rotation changes
// which records a window selects even when no bucket expired non-empty
// — preserving the "equal versions imply identical answers" contract
// the mining-result cache is keyed on, now for every window.
type WindowedCounter struct {
	scheme  CounterScheme
	nshards int
	bucket  time.Duration

	mu        sync.RWMutex
	ring      []*ShardedCounter
	head      int
	headStart time.Time

	total   atomic.Int64
	version atomic.Uint64

	// now is the rotation clock, injectable for tests (SetNowFunc).
	now func() time.Time
	// deltaEpoch exists only to satisfy LiveCounter; windowed counters
	// never serve deltas.
	deltaEpoch uint64
	obs        IngestObserver
}

// Compile-time check: WindowedCounter is a windowed LiveCounter.
var _ WindowView = (*WindowedCounter)(nil)

// maxWindowBuckets bounds the ring so a typo'd flag cannot allocate
// thousands of materialized cores.
const maxWindowBuckets = 4096

// NewWindowedCounter builds a sliding-window live counter: a ring of
// `buckets` sub-counters each covering `bucket` of wall-clock time,
// every sub-counter striped over `shards` cores (<= 0 means one per
// core, as in NewShardedCounter). Retention is buckets × bucket; window
// reads have bucket-duration granularity, rounded up.
func NewWindowedCounter(scheme CounterScheme, shards, buckets int, bucket time.Duration) (*WindowedCounter, error) {
	if scheme == nil {
		return nil, fmt.Errorf("%w: nil scheme contract", ErrMining)
	}
	if buckets < 1 || buckets > maxWindowBuckets {
		return nil, fmt.Errorf("%w: window ring of %d buckets outside [1, %d]", ErrMining, buckets, maxWindowBuckets)
	}
	if bucket <= 0 {
		return nil, fmt.Errorf("%w: window bucket duration %v must be positive", ErrMining, bucket)
	}
	w := &WindowedCounter{
		scheme:     scheme,
		bucket:     bucket,
		ring:       make([]*ShardedCounter, buckets),
		now:        time.Now,
		deltaEpoch: rand.Uint64(),
	}
	first, err := NewShardedCounter(scheme, shards)
	if err != nil {
		return nil, err
	}
	w.nshards = first.Shards()
	w.ring[0] = first
	for i := 1; i < buckets; i++ {
		b, err := NewShardedCounter(scheme, w.nshards)
		if err != nil {
			return nil, err
		}
		w.ring[i] = b
	}
	w.headStart = w.now()
	return w, nil
}

// SetNowFunc replaces the rotation clock — test plumbing for driving
// expiry deterministically. Call before the counter takes traffic; the
// replacement also resets the head bucket's start to the new clock's
// current reading so the ring does not instantly rotate through an
// epoch-sized gap.
func (w *WindowedCounter) SetNowFunc(now func() time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.now = now
	w.headStart = now()
}

// SetIngestObserver installs the ingest telemetry hook on every bucket,
// including buckets minted by future rotations. Call before traffic.
func (w *WindowedCounter) SetIngestObserver(o IngestObserver) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.obs = o
	for _, b := range w.ring {
		b.SetIngestObserver(o)
	}
}

// WindowSpec returns the ring geometry.
func (w *WindowedCounter) WindowSpec() (int, time.Duration) { return len(w.ring), w.bucket }

// Retention returns the total time span the ring covers.
func (w *WindowedCounter) Retention() time.Duration {
	return time.Duration(len(w.ring)) * w.bucket
}

// tick advances the ring to the counter's clock: for every elapsed
// bucket span the head moves forward and the slot it lands on — the
// oldest bucket, now out of retention — is replaced by a fresh
// sub-counter. A tick that advances at all bumps the version exactly
// once: window selection changed, so every cached windowed answer is
// stale, whether or not the expired buckets held records.
func (w *WindowedCounter) tick() {
	now := w.now()
	w.mu.RLock()
	stale := now.Sub(w.headStart) >= w.bucket
	w.mu.RUnlock()
	if !stale {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	steps := int(now.Sub(w.headStart) / w.bucket)
	if steps <= 0 {
		return // another ticker advanced the ring while we waited
	}
	w.headStart = w.headStart.Add(time.Duration(steps) * w.bucket)
	if steps > len(w.ring) {
		// An idle gap longer than retention: every bucket expires; no
		// need to walk the ring more than once around.
		steps = len(w.ring)
	}
	for i := 0; i < steps; i++ {
		w.head = (w.head + 1) % len(w.ring)
		expired := w.ring[w.head]
		w.total.Add(-int64(expired.N()))
		fresh, err := NewShardedCounter(w.scheme, w.nshards)
		if err != nil {
			// Unreachable: the constructor validated these exact inputs.
			panic("mining: window bucket construction failed after validation: " + err.Error())
		}
		if w.obs != nil {
			fresh.SetIngestObserver(w.obs)
		}
		w.ring[w.head] = fresh
	}
	w.version.Add(1)
}

// Scheme names the counter's perturbation scheme.
func (w *WindowedCounter) Scheme() string { return w.scheme.Name() }

// Schema returns the counter's schema.
func (w *WindowedCounter) Schema() *dataset.Schema { return w.scheme.Schema() }

// Shards returns the per-bucket ingestion stripe count.
func (w *WindowedCounter) Shards() int { return w.nshards }

// Fingerprint returns the scheme compatibility fingerprint.
func (w *WindowedCounter) Fingerprint() string { return w.scheme.Fingerprint() }

// N returns the number of records currently inside the retention
// window.
func (w *WindowedCounter) N() int {
	w.tick()
	return int(w.total.Load())
}

// Version returns the counter's content version: it advances on every
// ingested record and on every ring rotation, so equal versions imply
// identical answers for every window, not just the full ring.
func (w *WindowedCounter) Version() uint64 {
	w.tick()
	return w.version.Load()
}

// Ingest adds one already-perturbed record to the live bucket.
func (w *WindowedCounter) Ingest(items []Item) error {
	w.tick()
	// The read lock is held across the bucket ingest so a rotation
	// cannot retire the head bucket mid-flight (a record landing in a
	// detached bucket would be acknowledged but never counted).
	w.mu.RLock()
	defer w.mu.RUnlock()
	if err := w.ring[w.head].Ingest(items); err != nil {
		return err
	}
	w.total.Add(1)
	w.version.Add(1)
	return nil
}

// IngestBatch adds a batch atomically into the live bucket — the
// all-or-nothing guarantee is the bucket ShardedCounter's.
func (w *WindowedCounter) IngestBatch(records [][]Item) error {
	n := len(records)
	if n == 0 {
		return nil
	}
	w.tick()
	w.mu.RLock()
	defer w.mu.RUnlock()
	if err := w.ring[w.head].IngestBatch(records); err != nil {
		return err
	}
	w.total.Add(int64(n))
	w.version.Add(uint64(n))
	return nil
}

// Add ingests one perturbed categorical record (one item per
// attribute), valid under every scheme.
func (w *WindowedCounter) Add(rec dataset.Record) error {
	if err := w.Schema().Validate(rec); err != nil {
		return err
	}
	return w.Ingest(recordItems(rec))
}

// bucketsFor converts a window duration into a bucket count: windows
// round UP to whole buckets (asking for 90m of 1h buckets reads 2), and
// window <= 0 means the full ring.
func (w *WindowedCounter) bucketsFor(window time.Duration) int {
	if window <= 0 {
		return len(w.ring)
	}
	k := int((window + w.bucket - 1) / w.bucket)
	if k < 1 {
		k = 1
	}
	if k > len(w.ring) {
		k = len(w.ring)
	}
	return k
}

// gatherLocked prepares a candidate batch and folds in the newest k
// buckets' shards — the cross-bucket analogue of ShardedCounter.batch.
// Caller holds the read lock.
func (w *WindowedCounter) gatherLocked(candidates []Itemset, k int) (counterBatch, error) {
	b, err := w.ring[0].shards[0].prepare(candidates)
	if err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		bkt := w.ring[(w.head-i+len(w.ring))%len(w.ring)]
		for _, s := range bkt.shards {
			s.gather(b)
		}
	}
	return b, nil
}

// windowNLocked sums the newest k buckets' record counts. Caller holds
// the read lock.
func (w *WindowedCounter) windowNLocked(k int) int {
	n := 0
	for i := 0; i < k; i++ {
		n += w.ring[(w.head-i+len(w.ring))%len(w.ring)].N()
	}
	return n
}

// Supports returns scheme-reconstructed support estimates over the full
// ring.
func (w *WindowedCounter) Supports(candidates []Itemset) ([]float64, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	w.tick()
	w.mu.RLock()
	defer w.mu.RUnlock()
	b, err := w.gatherLocked(candidates, len(w.ring))
	if err != nil {
		return nil, err
	}
	return b.supports()
}

// PerturbedSupports returns raw full-match counts over the full ring,
// with the record count of the same sweep.
func (w *WindowedCounter) PerturbedSupports(candidates []Itemset) ([]float64, int, error) {
	w.tick()
	w.mu.RLock()
	defer w.mu.RUnlock()
	if len(candidates) == 0 {
		return nil, int(w.total.Load()), nil
	}
	b, err := w.gatherLocked(candidates, len(w.ring))
	if err != nil {
		return nil, 0, err
	}
	ys, n := b.raw()
	return ys, n, nil
}

// Estimates answers filter-count queries over the full ring.
func (w *WindowedCounter) Estimates(filters []Itemset) ([]PointEstimate, int, error) {
	ests, n, _, err := w.EstimatesWindow(filters, 0)
	return ests, n, err
}

// EstimatesWindow answers filter-count queries over the newest
// ceil(window/bucket) buckets. See WindowView for the version contract.
func (w *WindowedCounter) EstimatesWindow(filters []Itemset, window time.Duration) ([]PointEstimate, int, uint64, error) {
	w.tick()
	w.mu.RLock()
	defer w.mu.RUnlock()
	version := w.version.Load()
	k := w.bucketsFor(window)
	n := w.windowNLocked(k)
	// An empty window is a well-defined answer (n = 0, no estimates),
	// not an estimator error — the service layer turns it into its
	// usual "no submissions" response.
	if len(filters) == 0 || n == 0 {
		return nil, n, version, nil
	}
	b, err := w.gatherLocked(filters, k)
	if err != nil {
		return nil, 0, 0, err
	}
	ests, err := b.estimates()
	if err != nil {
		return nil, 0, 0, err
	}
	return ests, b.records(), version, nil
}

// SnapshotVersioned folds the full ring into one frozen SupportCounter.
func (w *WindowedCounter) SnapshotVersioned() (SupportCounter, uint64) {
	return w.SnapshotWindowVersioned(0)
}

// SnapshotWindowVersioned folds the newest ceil(window/bucket) buckets
// into one frozen, minable SupportCounter together with the version it
// is exact for. The version is read under the same read lock as the
// fold: ingests landing mid-fold may or may not be included (the
// snapshot is then strictly newer, as with ShardedCounter), but a
// rotation — which would REMOVE records and silently change the window
// — cannot interleave, because it needs the write lock.
func (w *WindowedCounter) SnapshotWindowVersioned(window time.Duration) (SupportCounter, uint64) {
	w.tick()
	w.mu.RLock()
	defer w.mu.RUnlock()
	version := w.version.Load()
	merged := w.scheme.NewCore()
	k := w.bucketsFor(window)
	for i := 0; i < k; i++ {
		bkt := w.ring[(w.head-i+len(w.ring))%len(w.ring)]
		for _, s := range bkt.shards {
			s.foldInto(merged)
		}
	}
	return merged, version
}

// errWindowedDurability marks the operations a wall-clock-defined
// counter cannot support: persisted or replicated state replayed later
// cannot reproduce "what had expired at the time".
var errWindowedDurability = fmt.Errorf("%w: windowed counters are in-memory only (bucket expiry is wall-clock-defined and cannot be replayed)", ErrMining)

// Save refuses: windowed counters are in-memory only.
func (w *WindowedCounter) Save(io.Writer) error { return errWindowedDurability }

// DeltaSince refuses: windowed counters do not serve replication
// deltas (a delta stream cannot express expiry subtractions).
func (w *WindowedCounter) DeltaSince(uint64) (*CounterDelta, error) {
	return nil, errWindowedDurability
}

// DeltaEpoch returns the counter object's random epoch — present only
// to satisfy LiveCounter; no delta is ever issued under it.
func (w *WindowedCounter) DeltaEpoch() uint64 { return w.deltaEpoch }
