package mining

import (
	"fmt"
	"sort"
)

// Rule is an association rule A ⇒ C with its support (fraction of records
// supporting A∪C), confidence (support(A∪C)/support(A)) and lift
// (confidence/support(C), when the consequent's support is known — zero
// otherwise).
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	Support    float64
	Confidence float64
	Lift       float64
}

// String renders the rule compactly.
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (sup=%.4f conf=%.4f)", r.Antecedent.Key(), r.Consequent.Key(), r.Support, r.Confidence)
}

// GenerateRules derives all association rules with confidence ≥ minConf
// from a mining result, the final step of association-rule mining once
// frequent itemsets (possibly reconstructed from perturbed data) are in
// hand. Rules are sorted by descending confidence, then key.
//
// Under support reconstruction the estimates are noisy and can violate
// monotonicity (a superset appearing more frequent than its subset, which
// would give confidence > 1); such inconsistent antecedents are skipped
// rather than reported, since the implied confidence is meaningless.
// Exact counting never triggers this path.
func GenerateRules(res *Result, minConf float64) ([]Rule, error) {
	if !(minConf > 0 && minConf <= 1) {
		return nil, fmt.Errorf("%w: minConf %v not in (0,1]", ErrMining, minConf)
	}
	supports := make(map[string]float64)
	for _, level := range res.ByLength {
		for _, f := range level {
			supports[f.Items.Key()] = f.Support
		}
	}
	var rules []Rule
	for k := 1; k < len(res.ByLength); k++ { // itemsets of length ≥ 2
		for _, f := range res.ByLength[k] {
			full := f.Items
			// Every nonempty proper subset can be an antecedent.
			for mask := 1; mask < 1<<uint(len(full))-1; mask++ {
				var ante, cons Itemset
				for i, it := range full {
					if mask&(1<<uint(i)) != 0 {
						ante = append(ante, it)
					} else {
						cons = append(cons, it)
					}
				}
				anteSup, ok := supports[ante.Key()]
				if !ok || anteSup <= 0 {
					continue // antecedent not frequent (or reconstruction noise)
				}
				conf := f.Support / anteSup
				if conf > 1 {
					continue // reconstruction-noise artifact; see doc comment
				}
				if conf >= minConf {
					r := Rule{
						Antecedent: ante,
						Consequent: cons,
						Support:    f.Support,
						Confidence: conf,
					}
					if consSup, ok := supports[cons.Key()]; ok && consSup > 0 {
						r.Lift = conf / consSup
					}
					rules = append(rules, r)
				}
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Antecedent.Key() != rules[j].Antecedent.Key() {
			return rules[i].Antecedent.Key() < rules[j].Antecedent.Key()
		}
		return rules[i].Consequent.Key() < rules[j].Consequent.Key()
	})
	return rules, nil
}
