package mining

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// boolCore is the live counting core shared by the MASK and
// cut-and-paste schemes: a sparse joint histogram over perturbed boolean
// rows (bitset → multiplicity). The joint histogram is the minimal
// sufficient state for both schemes — every observable either estimator
// needs (bit-combination pattern counts for MASK, partial supports for
// C&P) is a projection of it — and it is exactly the shape the
// replication-delta protocol speaks (cell index = row bitset), so MASK
// and C&P counters get sharding, persistence, and federation through the
// same plumbing as gamma. Safe for concurrent use.
type boolCore struct {
	est boolEstimator

	mu   sync.RWMutex
	n    int
	rows map[uint64]float64
}

// boolEstimator is the per-scheme reconstruction behind a boolCore:
// MASK's tensor inverse or C&P's partial-support solve, plus the scheme
// identity for fingerprints and persistence.
type boolEstimator interface {
	name() string
	mapping() *core.BoolMapping
	fingerprint() string
	// reconstruct inverts the 2^l bit-combination pattern counts of one
	// length-l itemset into the estimated original support.
	reconstruct(counts []float64) (float64, error)
	// patternWeights returns w with estimate = Σ_idx w[idx]·counts[idx],
	// feeding the plug-in multinomial variance of Estimates.
	patternWeights(l int) ([]float64, error)
	// fillMeta / checkMeta are the scheme-parameter halves of the v3
	// persistence format.
	fillMeta(st *counterState)
	checkMeta(st *counterState) error
}

func newBoolCore(est boolEstimator) *boolCore {
	return &boolCore{est: est, rows: make(map[uint64]float64)}
}

// Schema returns the categorical schema behind the boolean encoding.
func (c *boolCore) Schema() *dataset.Schema { return c.est.mapping().Schema }

// Scheme names the core's perturbation scheme.
func (c *boolCore) Scheme() string { return c.est.name() }

// Fingerprint returns the compatibility fingerprint.
func (c *boolCore) Fingerprint() string { return c.est.fingerprint() }

// N returns the number of ingested records.
func (c *boolCore) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Ingest adds one perturbed boolean record given as its item list. Any
// set of distinct items is a valid perturbed record — MASK flips bits
// independently and C&P pastes arbitrary item sets — including the
// empty set.
func (c *boolCore) Ingest(items []Item) error {
	m := c.est.mapping()
	var row uint64
	for _, it := range items {
		b, err := m.Bit(it.Attr, it.Value)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMining, err)
		}
		if row&(1<<uint(b)) != 0 {
			return fmt.Errorf("%w: duplicate item (attr %d, value %d) in perturbed record", ErrMining, it.Attr, it.Value)
		}
		row |= 1 << uint(b)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rows[row]++
	c.n++
	return nil
}

// boolPrepared is a validated batch of perturbed rows, one bitset per
// record — a single slice allocation per batch.
type boolPrepared struct {
	rows []uint64
}

func (p boolPrepared) recordCount() int { return len(p.rows) }

// prepareIngest validates each item-list record (items in range, no
// duplicates) and packs it into its row bitset without touching counter
// state.
func (c *boolCore) prepareIngest(records [][]Item) (preparedIngest, error) {
	m := c.est.mapping()
	rows := make([]uint64, len(records))
	for i, items := range records {
		var row uint64
		for _, it := range items {
			b, err := m.Bit(it.Attr, it.Value)
			if err != nil {
				return nil, fmt.Errorf("%w: record %d: %v", ErrMining, i, err)
			}
			if row&(1<<uint(b)) != 0 {
				return nil, fmt.Errorf("%w: record %d: duplicate item (attr %d, value %d) in perturbed record", ErrMining, i, it.Attr, it.Value)
			}
			row |= 1 << uint(b)
		}
		rows[i] = row
	}
	return boolPrepared{rows: rows}, nil
}

// ingestPrepared folds rows [lo, hi) of a prepared batch into the joint
// histogram under one lock acquisition.
func (c *boolCore) ingestPrepared(p preparedIngest, lo, hi int) time.Duration {
	rows := p.(boolPrepared).rows[lo:hi]
	t0 := time.Now()
	c.mu.Lock()
	wait := time.Since(t0)
	defer c.mu.Unlock()
	for _, row := range rows {
		c.rows[row]++
	}
	c.n += len(rows)
	return wait
}

// Supports returns scheme-reconstructed support estimates.
func (c *boolCore) Supports(candidates []Itemset) ([]float64, error) {
	b, err := c.prepare(candidates)
	if err != nil {
		return nil, err
	}
	c.gather(b)
	return b.supports()
}

// PerturbedSupports returns raw full-match counts (the number of
// perturbed rows containing every item of the candidate) plus the
// record count of the same locked read.
func (c *boolCore) PerturbedSupports(candidates []Itemset) ([]float64, int, error) {
	b, err := c.prepare(candidates)
	if err != nil {
		return nil, 0, err
	}
	c.gather(b)
	ys, n := b.raw()
	return ys, n, nil
}

// Merge additively combines another core of the same fingerprint.
func (c *boolCore) Merge(other CounterCore) error {
	if other == nil {
		return fmt.Errorf("%w: nil counter", ErrMining)
	}
	o, ok := other.(*boolCore)
	if !ok {
		return fmt.Errorf("%w: cannot merge a %s counter into a %s counter", ErrMining, other.Scheme(), c.Scheme())
	}
	if c == o {
		return fmt.Errorf("%w: cannot merge a counter into itself", ErrMining)
	}
	if c.Fingerprint() != o.Fingerprint() {
		return fmt.Errorf("%w: cannot merge counters with different schema or perturbation contract", ErrMining)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	for row, cnt := range o.rows {
		c.rows[row] += cnt
	}
	c.n += o.n
	return nil
}

// ApplyDelta folds a replication delta into the core: every cell is a
// batch of Count perturbed rows with bitset Idx.
func (c *boolCore) ApplyDelta(d *CounterDelta) error {
	if err := validateDelta(d, c.Fingerprint()); err != nil {
		return err
	}
	limit := uint64(1) << uint(c.est.mapping().Mb)
	for _, cell := range d.Cells {
		if cell.Idx >= limit {
			return fmt.Errorf("%w: delta cell index %d outside boolean domain 2^%d", ErrMining, cell.Idx, c.est.mapping().Mb)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range d.Cells {
		c.rows[cell.Idx] += cell.Count
	}
	c.n += d.Records
	return nil
}

// foldInto adds this core's state into dst (a fresh unshared core).
func (c *boolCore) foldInto(dst CounterCore) {
	d := dst.(*boolCore)
	c.mu.RLock()
	defer c.mu.RUnlock()
	for row, cnt := range c.rows {
		d.rows[row] += cnt
	}
	d.n += c.n
}

// addJointInto folds the sparse joint histogram into the accumulator.
func (c *boolCore) addJointInto(joint map[uint64]float64) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for row, cnt := range c.rows {
		joint[row] += cnt
	}
	return c.n
}

// saveShard deep-copies the core's state as sparse cells, sorted by
// index so saved states are deterministic.
func (c *boolCore) saveShard() shardState {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cells := make([]DeltaCell, 0, len(c.rows))
	for row, cnt := range c.rows {
		if cnt != 0 {
			cells = append(cells, DeltaCell{Idx: row, Count: cnt})
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Idx < cells[j].Idx })
	return shardState{N: c.n, Cells: cells}
}

// restoreShard validates one saved shard payload — cell ranges,
// positivity, and the record-count sum — and folds it in. Callers
// restore into freshly built counters only.
func (c *boolCore) restoreShard(sh shardState) error {
	if sh.N < 0 {
		return fmt.Errorf("%w: negative record count %d", ErrMining, sh.N)
	}
	if len(sh.Hists) != 0 {
		return fmt.Errorf("%w: state carries dense histograms, not a boolean counter payload", ErrMining)
	}
	limit := uint64(1) << uint(c.est.mapping().Mb)
	var sum float64
	for _, cell := range sh.Cells {
		if cell.Idx >= limit {
			return fmt.Errorf("%w: state cell index %d outside boolean domain 2^%d", ErrMining, cell.Idx, c.est.mapping().Mb)
		}
		if cell.Count <= 0 {
			return fmt.Errorf("%w: non-positive state cell count %v at index %d", ErrMining, cell.Count, cell.Idx)
		}
		sum += cell.Count
	}
	if diff := sum - float64(sh.N); diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("%w: state cells total %v, want %d records", ErrMining, sum, sh.N)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range sh.Cells {
		c.rows[cell.Idx] += cell.Count
	}
	c.n += sh.N
	return nil
}

// checkState validates decoded state metadata against this core's
// contract.
func (c *boolCore) checkState(st *counterState) error {
	schema := c.Schema()
	if st.SchemaName != schema.Name || st.M != schema.M() || st.DomainSize != schema.DomainSize() {
		return fmt.Errorf("%w: state was saved for schema %q (M=%d, |S_U|=%d), not %q (M=%d, |S_U|=%d)",
			ErrMining, st.SchemaName, st.M, st.DomainSize, schema.Name, schema.M(), schema.DomainSize())
	}
	if st.Mb != c.est.mapping().Mb {
		return fmt.Errorf("%w: state was saved under a %d-bit boolean encoding, counter uses %d", ErrMining, st.Mb, c.est.mapping().Mb)
	}
	return c.est.checkMeta(st)
}

// stateMeta fills the v3 scheme-tagged state header.
func (c *boolCore) stateMeta(version int) counterState {
	schema := c.Schema()
	st := counterState{
		Version:    version,
		Scheme:     c.Scheme(),
		SchemaName: schema.Name,
		M:          schema.M(),
		DomainSize: schema.DomainSize(),
		Mb:         c.est.mapping().Mb,
	}
	c.est.fillMeta(&st)
	return st
}

// boolBatch is a prepared candidate batch over boolean cores: per
// candidate, the bit positions of its items and the accumulated counts
// of every observed bit-combination pattern.
type boolBatch struct {
	est    boolEstimator
	cands  []Itemset
	bitPos [][]int     // item bit positions, nil for the empty itemset
	counts [][]float64 // 2^l pattern counts, nil for the empty itemset
	total  int
}

// prepare validates the batch against the schema and precomputes each
// candidate's bit positions.
func (c *boolCore) prepare(candidates []Itemset) (counterBatch, error) {
	m := c.est.mapping()
	b := &boolBatch{
		est:    c.est,
		cands:  candidates,
		bitPos: make([][]int, len(candidates)),
		counts: make([][]float64, len(candidates)),
	}
	for i, cand := range candidates {
		// Validate enforces canonical strictly-increasing attribute
		// order, exactly as the gamma routing does.
		if err := cand.Validate(m.Schema); err != nil {
			return nil, err
		}
		l := cand.Len()
		if l == 0 {
			continue
		}
		if l > 20 {
			return nil, fmt.Errorf("%w: itemset length %d too large", ErrMining, l)
		}
		pos := make([]int, l)
		for k, it := range cand {
			bit, err := m.Bit(it.Attr, it.Value)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMining, err)
			}
			pos[k] = bit
		}
		b.bitPos[i] = pos
		b.counts[i] = make([]float64, 1<<uint(l))
	}
	return b, nil
}

// gather folds this core's pattern counts into the batch under the
// core's read lock: one sweep over the distinct perturbed rows serves
// every candidate.
func (c *boolCore) gather(cb counterBatch) {
	b := cb.(*boolBatch)
	c.mu.RLock()
	defer c.mu.RUnlock()
	b.total += c.n
	for row, cnt := range c.rows {
		for i, pos := range b.bitPos {
			if pos == nil {
				continue
			}
			idx := 0
			for k, bit := range pos {
				if row&(1<<uint(bit)) != 0 {
					idx |= 1 << uint(k)
				}
			}
			b.counts[i][idx] += cnt
		}
	}
}

func (b *boolBatch) records() int { return b.total }

// supports resolves each candidate with the scheme's reconstruction;
// the empty itemset is answered exactly.
func (b *boolBatch) supports() ([]float64, error) {
	out := make([]float64, len(b.cands))
	for i := range b.cands {
		if b.bitPos[i] == nil {
			out[i] = float64(b.total)
			continue
		}
		est, err := b.est.reconstruct(b.counts[i])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMining, err)
		}
		out[i] = est
	}
	return out, nil
}

// raw resolves each candidate's full-match count — the all-bits-present
// pattern cell, the boolean analogue of gamma's Y_L.
func (b *boolBatch) raw() ([]float64, int) {
	out := make([]float64, len(b.cands))
	for i := range b.cands {
		if b.bitPos[i] == nil {
			out[i] = float64(b.total)
			continue
		}
		out[i] = b.counts[i][len(b.counts[i])-1]
	}
	return out, b.total
}

// estimates resolves each candidate into (point estimate, stderr). The
// point estimate is the scheme's exact reconstruction — bit-identical to
// the offline counters given the same rows — and the standard error is
// the plug-in multinomial variance of the linear estimator
// Σ w·Y: Var ≈ Σ w²·Y − X̂²/n.
func (b *boolBatch) estimates() ([]PointEstimate, error) {
	if b.total <= 0 {
		return nil, fmt.Errorf("%w: empty counter", ErrMining)
	}
	out := make([]PointEstimate, len(b.cands))
	weights := make(map[int][]float64)
	for i := range b.cands {
		pos := b.bitPos[i]
		if pos == nil {
			// Every record matches; exact, no reconstruction noise.
			out[i] = PointEstimate{Count: float64(b.total)}
			continue
		}
		est, err := b.est.reconstruct(b.counts[i])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMining, err)
		}
		l := len(pos)
		w, ok := weights[l]
		if !ok {
			w, err = b.est.patternWeights(l)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMining, err)
			}
			weights[l] = w
		}
		var sumW2Y float64
		for idx, y := range b.counts[i] {
			sumW2Y += w[idx] * w[idx] * y
		}
		variance := sumW2Y - est*est/float64(b.total)
		if variance < 0 {
			variance = 0
		}
		out[i] = PointEstimate{Count: est, StdErr: math.Sqrt(variance)}
	}
	return out, nil
}

// maskEstimator adapts core.MaskScheme to the boolCore contract.
type maskEstimator struct {
	s *core.MaskScheme
}

func (e maskEstimator) name() string               { return SchemeMask }
func (e maskEstimator) mapping() *core.BoolMapping { return e.s.Mapping }

func (e maskEstimator) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "scheme=%s;", SchemeMask)
	fingerprintSchema(h, e.s.Mapping.Schema)
	fmt.Fprintf(h, "p=%g;Mb=%d", e.s.P, e.s.Mapping.Mb)
	return hex.EncodeToString(h.Sum(nil))
}

func (e maskEstimator) reconstruct(counts []float64) (float64, error) {
	return e.s.ReconstructPatternCounts(counts)
}

func (e maskEstimator) patternWeights(l int) ([]float64, error) {
	return e.s.PatternWeights(l)
}

func (e maskEstimator) fillMeta(st *counterState) { st.MaskP = e.s.P }

func (e maskEstimator) checkMeta(st *counterState) error {
	if st.MaskP != e.s.P {
		return fmt.Errorf("%w: state was saved under MASK p=%g, counter uses p=%g", ErrMining, st.MaskP, e.s.P)
	}
	return nil
}

// cutPasteEstimator adapts core.CutPasteScheme to the boolCore
// contract. Pattern counts are folded to partial supports (counts per
// number of present itemset items) before the solve, so the estimate is
// computed by exactly the arithmetic of the offline CutPasteCounter.
type cutPasteEstimator struct {
	s *core.CutPasteScheme
}

func (e cutPasteEstimator) name() string               { return SchemeCutPaste }
func (e cutPasteEstimator) mapping() *core.BoolMapping { return e.s.Mapping }

func (e cutPasteEstimator) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "scheme=%s;", SchemeCutPaste)
	fingerprintSchema(h, e.s.Mapping.Schema)
	fmt.Fprintf(h, "K=%d;rho=%g;Mb=%d", e.s.K, e.s.Rho, e.s.Mapping.Mb)
	return hex.EncodeToString(h.Sum(nil))
}

func (e cutPasteEstimator) reconstruct(counts []float64) (float64, error) {
	l := bits.TrailingZeros(uint(len(counts)))
	y := make([]float64, l+1)
	for idx, cnt := range counts {
		y[bits.OnesCount(uint(idx))] += cnt
	}
	return e.s.ReconstructPartialCounts(y)
}

func (e cutPasteEstimator) patternWeights(l int) ([]float64, error) {
	// The C&P estimate is linear in the partial supports; lifted to
	// pattern space, every pattern with q set bits carries the q-th
	// partial weight.
	v, err := e.s.PartialWeights(l)
	if err != nil {
		return nil, err
	}
	w := make([]float64, 1<<uint(l))
	for idx := range w {
		w[idx] = v[bits.OnesCount(uint(idx))]
	}
	return w, nil
}

func (e cutPasteEstimator) fillMeta(st *counterState) {
	st.CutK = e.s.K
	st.CutRho = e.s.Rho
}

func (e cutPasteEstimator) checkMeta(st *counterState) error {
	if st.CutK != e.s.K || st.CutRho != e.s.Rho {
		return fmt.Errorf("%w: state was saved under C&P K=%d rho=%g, counter uses K=%d rho=%g",
			ErrMining, st.CutK, st.CutRho, e.s.K, e.s.Rho)
	}
	return nil
}

// fingerprintSchema writes the schema identity — name plus every
// attribute with its ordered category list — into a fingerprint hash,
// shared by every scheme's fingerprint.
func fingerprintSchema(h io.Writer, schema *dataset.Schema) {
	fmt.Fprintf(h, "schema=%s;M=%d;", schema.Name, schema.M())
	for _, a := range schema.Attrs {
		fmt.Fprintf(h, "attr=%s:%s;", a.Name, strings.Join(a.Categories, "\x1f"))
	}
}
