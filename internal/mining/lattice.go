package mining

import "sort"

// Lattice utilities over a mining result: maximal and closed frequent
// itemsets, the standard condensed representations of the frequent-set
// lattice. Both operate purely on the Result, so they apply equally to
// exact and reconstructed mining output.

// Maximal returns the frequent itemsets that have no frequent proper
// superset, sorted by key. The maximal sets compactly describe the
// frequent lattice's boundary — for reconstructed results they are the
// longest patterns the perturbation mechanism could recover.
func Maximal(res *Result) []FrequentItemset {
	all := res.All()
	var out []FrequentItemset
	for _, level := range res.ByLength {
		for _, f := range level {
			if !hasFrequentSuperset(f.Items, res, all) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Items.Key() < out[j].Items.Key() })
	return out
}

// hasFrequentSuperset reports whether any frequent itemset one longer
// extends s. Supersets are found by scanning the next level (cheap: the
// levels are small relative to subset enumeration).
func hasFrequentSuperset(s Itemset, res *Result, all map[string]FrequentItemset) bool {
	nextLen := s.Len() + 1
	if nextLen > len(res.ByLength) {
		return false
	}
	for _, cand := range res.ByLength[nextLen-1] {
		if isSubset(s, cand.Items) {
			return true
		}
	}
	// Guard against gaps (possible under relaxation/noise): also check
	// any longer itemset.
	for l := nextLen; l < len(res.ByLength); l++ {
		for _, cand := range res.ByLength[l] {
			if isSubset(s, cand.Items) {
				return true
			}
		}
	}
	_ = all
	return false
}

// isSubset reports whether every item of a appears in b. Both are in
// canonical attribute order, allowing a linear merge scan.
func isSubset(a, b Itemset) bool {
	i := 0
	for _, item := range b {
		if i == len(a) {
			return true
		}
		if a[i] == item {
			i++
		} else if a[i].Attr < item.Attr {
			return false
		}
	}
	return i == len(a)
}

// Closed returns the frequent itemsets with no frequent superset of the
// SAME support, sorted by key — the classic closed-itemset condensation
// (supports compared with a small tolerance, since reconstructed
// supports are floats).
func Closed(res *Result, tol float64) []FrequentItemset {
	var out []FrequentItemset
	for li, level := range res.ByLength {
		for _, f := range level {
			closed := true
			for l := li + 1; l < len(res.ByLength) && closed; l++ {
				for _, cand := range res.ByLength[l] {
					if isSubset(f.Items, cand.Items) && abs(cand.Support-f.Support) <= tol {
						closed = false
						break
					}
				}
			}
			if closed {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Items.Key() < out[j].Items.Key() })
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
