package mining

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// FRAPP's central claim is that gamma-diagonal, MASK, and cut-and-paste
// are all instances of one perturbation-matrix framework. This file is
// that claim turned into an API: LiveCounter is the scheme-polymorphic
// contract every layer of the stack (ingestion service, query engine,
// mining jobs, persistence, federation) programs against, CounterScheme
// names and constructs one scheme's counting machinery, and CounterCore
// is the per-shard engine a ShardedCounter stripes over. Gamma, MASK,
// and cut-and-paste each provide a core; everything above the core —
// lock-striped ingestion, merge-on-demand reads, snapshot versioning,
// v3 persistence, replication deltas — is written once against these
// interfaces and works for all three.

// Scheme names. Gamma is the default and the paper's recommended scheme:
// the gamma-diagonal matrix minimizes the reconstruction condition
// number among all matrices satisfying the amplification bound, so MASK
// and cut-and-paste exist here as live baselines, not alternatives of
// equal standing.
const (
	SchemeGamma    = "gamma"
	SchemeMask     = "mask"
	SchemeCutPaste = "cutpaste"
)

// SchemeNames lists the supported schemes in presentation order.
func SchemeNames() []string { return []string{SchemeGamma, SchemeMask, SchemeCutPaste} }

// PointEstimate is one scheme-reconstructed count estimate: the point
// estimate of the number of ORIGINAL records matching a filter, plus the
// estimator's standard error (0 for exact zero-arity answers). Schemes
// differ in their estimator — gamma uses the Eq. 28 closed form with the
// Poisson-binomial standard error, the boolean schemes a linear
// estimator with a plug-in multinomial variance — but every scheme
// answers in this shape, which is what lets /v1/query serve all three.
type PointEstimate struct {
	Count  float64
	StdErr float64
}

// LiveCounter is the scheme-polymorphic live ingestion counter: the
// single interface the collection service, interactive query engine,
// async mining jobs, persistence, and federation all program against.
// Implemented by ShardedCounter for every scheme; which scheme a counter
// runs is observable (Scheme) and sealed into its compatibility
// fingerprint, so two counters under different schemes can never be
// merged.
type LiveCounter interface {
	// Scheme names the perturbation scheme the counter counts under.
	Scheme() string
	// Schema returns the categorical schema.
	Schema() *dataset.Schema
	// Shards returns the ingestion stripe count.
	Shards() int
	// N returns the number of ingested records.
	N() int
	// Version is the monotonic content version (see ShardedCounter).
	Version() uint64
	// Ingest adds one already-perturbed record, given as its item list:
	// a categorical scheme requires exactly one item per attribute; a
	// boolean scheme accepts any set of distinct items (perturbed boolean
	// records assert arbitrary item subsets).
	Ingest(items []Item) error
	// IngestBatch adds many already-perturbed records atomically: every
	// record is validated before any shard is touched, so a batch either
	// lands whole or leaves the counter untouched — and each shard's
	// partition is applied under a single lock acquisition, which is what
	// makes batched ingest the fast path (see ShardedCounter).
	IngestBatch(records [][]Item) error
	// Add is the categorical convenience over Ingest: one item per
	// attribute, valid under every scheme.
	Add(rec dataset.Record) error
	// Supports returns scheme-reconstructed support estimates.
	Supports(candidates []Itemset) ([]float64, error)
	// PerturbedSupports returns each candidate's RAW full-match count in
	// the perturbed data (before any reconstruction) plus the record
	// count of the same consistent sweep.
	PerturbedSupports(candidates []Itemset) ([]float64, int, error)
	// Estimates answers filter-count queries with the scheme's estimator:
	// one consistent sweep, per-filter point estimate and standard error,
	// and the record count every estimate is based on.
	Estimates(filters []Itemset) ([]PointEstimate, int, error)
	// SnapshotVersioned folds the counter into one frozen SupportCounter
	// (minable by Apriori) together with the version it is valid for.
	SnapshotVersioned() (SupportCounter, uint64)
	// Save persists the counter (restored by LoadLiveCounter).
	Save(w io.Writer) error
	// Fingerprint is the compatibility fingerprint: a hash of the scheme
	// identifier, schema, and scheme parameters. Counters merge — via
	// federation deltas or state restores — only on exact match.
	Fingerprint() string
	// DeltaSince extracts a replication delta (see delta.go).
	DeltaSince(since uint64) (*CounterDelta, error)
	// DeltaEpoch is the counter object's random replication epoch.
	DeltaEpoch() uint64
}

// CounterScheme identifies one perturbation scheme's counting contract
// and constructs its cores. A scheme value is fully validated at
// construction, so NewCore never fails afterwards.
type CounterScheme interface {
	// Name returns the scheme identifier (SchemeGamma, SchemeMask,
	// SchemeCutPaste).
	Name() string
	// Schema returns the categorical schema the scheme counts over.
	Schema() *dataset.Schema
	// Fingerprint returns the scheme's compatibility fingerprint —
	// scheme identifier, schema, and scheme parameters.
	Fingerprint() string
	// NewCore builds one empty per-shard counting core.
	NewCore() CounterCore
}

// CounterCore is one shard (or one federation replica) of a live
// counter: an internally locked, incrementally materialized store of
// perturbed counts for one scheme. A frozen merged core is directly
// minable (it is a SupportCounter). The unexported methods seal the
// interface — cores live in this package, where the sharding, delta,
// and persistence plumbing can rely on their internals.
type CounterCore interface {
	SupportCounter
	// Scheme names the core's perturbation scheme.
	Scheme() string
	// Fingerprint returns the core's compatibility fingerprint.
	Fingerprint() string
	// Ingest adds one perturbed record given as its item list.
	Ingest(items []Item) error
	// PerturbedSupports returns raw full-match counts plus the record
	// count of the same locked read.
	PerturbedSupports(candidates []Itemset) ([]float64, int, error)
	// Merge additively combines another core of the same scheme and
	// fingerprint into this one.
	Merge(other CounterCore) error
	// ApplyDelta folds a replication delta into the core.
	ApplyDelta(d *CounterDelta) error

	// prepareIngest validates a batch of item-list records against the
	// scheme's contract and converts them into the scheme's compact
	// apply form WITHOUT touching counter state. Validation depends only
	// on the scheme (identical across shards of one counter), so one
	// prepared batch can be partitioned across shards. Errors name the
	// offending record index; a non-nil result is fully valid.
	prepareIngest(records [][]Item) (preparedIngest, error)
	// ingestPrepared applies records [lo, hi) of a prepared batch under
	// ONE lock acquisition. The records were pre-validated by
	// prepareIngest, so application cannot fail — the primitive that
	// makes batched ingest all-or-nothing by construction. It returns
	// how long the call waited to acquire the core's lock, measured at
	// the mutex itself, so contention telemetry sees pure wait time
	// rather than wait plus apply.
	ingestPrepared(p preparedIngest, lo, hi int) (lockWait time.Duration)

	// prepare validates and routes a candidate batch; gather folds this
	// core's contribution into it under the core's lock. Shard reads are
	// built on this pair: prepare once, gather per shard, resolve from
	// the batch.
	prepare(candidates []Itemset) (counterBatch, error)
	gather(b counterBatch)
	// foldInto adds this core's full state into dst (a fresh, unshared
	// core of the same scheme) under this core's read lock — the
	// snapshot primitive.
	foldInto(dst CounterCore)
	// addJointInto folds the core's full-domain joint histogram into the
	// sparse accumulator and returns the core's record count — the
	// replication-delta primitive.
	addJointInto(joint map[uint64]float64) int
	// saveShard / restoreShard / checkState / stateMeta are the v3
	// scheme-tagged persistence hooks (see persist.go).
	saveShard() shardState
	restoreShard(sh shardState) error
	checkState(st *counterState) error
	stateMeta(version int) counterState
}

// preparedIngest is a validated, scheme-specific batch of records ready
// for lock-held application: gamma cores prepare dense categorical
// records, boolean cores prepare row bitsets. Preparation allocates a
// constant number of slices per batch (never per record), which is what
// keeps the service's pooled decode path at O(1) allocations per batch.
type preparedIngest interface {
	recordCount() int
}

// counterBatch is a prepared candidate batch: validated and routed by a
// core's prepare, filled shard by shard via gather, then resolved into
// supports, raw counts, or query estimates. The record count accumulates
// across gathers, so every resolution is based on one consistent sweep.
type counterBatch interface {
	records() int
	supports() ([]float64, error)
	raw() ([]float64, int)
	estimates() ([]PointEstimate, error)
}

// recordItems converts a categorical record into its item list — one
// item per attribute — the shape Ingest accepts for every scheme.
func recordItems(rec dataset.Record) []Item {
	items := make([]Item, len(rec))
	for j, v := range rec {
		items[j] = Item{Attr: j, Value: v}
	}
	return items
}

// Cut-and-paste contract defaults: the paper's Section 7 operating
// point (K = 3, ρ = 0.494), with ρ re-derived against the γ constraint
// so the deployed parameters always satisfy the published privacy
// contract.
const (
	defaultCutPasteK         = 3
	defaultCutPasteRhoTarget = 0.494
)

// SchemeForContract derives a scheme's full counting contract from the
// published (schema, γ) privacy contract — the same derivation the
// collection server and its clients perform independently, so both
// sides arrive at identical parameters (and identical fingerprints)
// without trusting each other:
//
//   - gamma: the γ-diagonal matrix over the schema domain;
//   - mask: retention probability p from the strict privacy constraint
//     (MaskPForGamma);
//   - cutpaste: K = 3 with the feasible ρ closest to the paper's 0.494
//     under the γ bound.
//
// An empty name means gamma, the default and recommended scheme.
func SchemeForContract(name string, schema *dataset.Schema, gamma float64) (CounterScheme, error) {
	switch name {
	case SchemeGamma, "":
		m, err := core.NewGammaDiagonal(schema.DomainSize(), gamma)
		if err != nil {
			return nil, err
		}
		return NewGammaScheme(schema, m)
	case SchemeMask:
		bm, err := core.NewBoolMapping(schema)
		if err != nil {
			return nil, err
		}
		ms, err := core.NewMaskSchemeForPrivacy(bm, gamma)
		if err != nil {
			return nil, err
		}
		return NewMaskCounterScheme(ms)
	case SchemeCutPaste:
		bm, err := core.NewBoolMapping(schema)
		if err != nil {
			return nil, err
		}
		rho, err := core.FindRhoForGamma(bm, defaultCutPasteK, gamma, defaultCutPasteRhoTarget)
		if err != nil {
			return nil, err
		}
		cs, err := core.NewCutPasteScheme(bm, defaultCutPasteK, rho)
		if err != nil {
			return nil, err
		}
		return NewCutPasteCounterScheme(cs)
	default:
		return nil, fmt.Errorf("%w: unknown scheme %q (want %s, %s, or %s)",
			ErrMining, name, SchemeGamma, SchemeMask, SchemeCutPaste)
	}
}

// GammaScheme is the gamma-diagonal counting contract: categorical
// records perturbed through a UniformMatrix, counted in materialized
// subset histograms, reconstructed with the Eq. 28 closed form.
type GammaScheme struct {
	schema *dataset.Schema
	matrix core.UniformMatrix
}

// NewGammaScheme validates the matrix against the schema domain and the
// materialization cap, so NewCore can never fail.
func NewGammaScheme(schema *dataset.Schema, m core.UniformMatrix) (*GammaScheme, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrMining)
	}
	if schema.M() > maxMaterializedAttrs {
		return nil, fmt.Errorf("%w: %d attributes exceeds materialization cap %d", ErrMining, schema.M(), maxMaterializedAttrs)
	}
	if m.N != schema.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain %d", ErrMining, m.N, schema.DomainSize())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &GammaScheme{schema: schema, matrix: m}, nil
}

// Name returns SchemeGamma.
func (g *GammaScheme) Name() string { return SchemeGamma }

// Schema returns the scheme's schema.
func (g *GammaScheme) Schema() *dataset.Schema { return g.schema }

// Matrix returns the perturbation matrix of the contract.
func (g *GammaScheme) Matrix() core.UniformMatrix { return g.matrix }

// Fingerprint returns the gamma compatibility fingerprint.
func (g *GammaScheme) Fingerprint() string { return CompatibilityFingerprint(g.schema, g.matrix) }

// NewCore builds one empty materialized gamma core.
func (g *GammaScheme) NewCore() CounterCore {
	c, err := NewMaterializedGammaCounter(g.schema, g.matrix)
	if err != nil {
		// Unreachable: NewGammaScheme validated every constructor input.
		panic(fmt.Sprintf("mining: gamma core construction failed after validation: %v", err))
	}
	return c
}

// MaskCounterScheme is the MASK counting contract: boolean-encoded
// records with independently flipped bits, counted in a sparse joint
// row histogram, reconstructed through the tensor-structured inverse.
type MaskCounterScheme struct {
	est maskEstimator
}

// NewMaskCounterScheme wraps a validated MASK scheme as a counting
// contract.
func NewMaskCounterScheme(s *core.MaskScheme) (*MaskCounterScheme, error) {
	if s == nil || s.Mapping == nil {
		return nil, fmt.Errorf("%w: nil MASK scheme", ErrMining)
	}
	if err := checkBoolMapping(s.Mapping); err != nil {
		return nil, err
	}
	return &MaskCounterScheme{est: maskEstimator{s: s}}, nil
}

// Name returns SchemeMask.
func (m *MaskCounterScheme) Name() string { return SchemeMask }

// Schema returns the scheme's schema.
func (m *MaskCounterScheme) Schema() *dataset.Schema { return m.est.mapping().Schema }

// Mask returns the underlying MASK scheme (the client-side perturber
// contract).
func (m *MaskCounterScheme) Mask() *core.MaskScheme { return m.est.s }

// Fingerprint returns the MASK compatibility fingerprint.
func (m *MaskCounterScheme) Fingerprint() string { return m.est.fingerprint() }

// NewCore builds one empty MASK core.
func (m *MaskCounterScheme) NewCore() CounterCore { return newBoolCore(m.est) }

// CutPasteCounterScheme is the cut-and-paste counting contract:
// boolean-encoded records through the C&P operator, counted in a sparse
// joint row histogram, reconstructed via the partial-support matrices.
type CutPasteCounterScheme struct {
	est cutPasteEstimator
}

// NewCutPasteCounterScheme wraps a validated C&P scheme as a counting
// contract.
func NewCutPasteCounterScheme(s *core.CutPasteScheme) (*CutPasteCounterScheme, error) {
	if s == nil || s.Mapping == nil {
		return nil, fmt.Errorf("%w: nil cut-and-paste scheme", ErrMining)
	}
	if err := checkBoolMapping(s.Mapping); err != nil {
		return nil, err
	}
	return &CutPasteCounterScheme{est: cutPasteEstimator{s: s}}, nil
}

// Name returns SchemeCutPaste.
func (c *CutPasteCounterScheme) Name() string { return SchemeCutPaste }

// Schema returns the scheme's schema.
func (c *CutPasteCounterScheme) Schema() *dataset.Schema { return c.est.mapping().Schema }

// CutPaste returns the underlying C&P scheme (the client-side perturber
// contract).
func (c *CutPasteCounterScheme) CutPaste() *core.CutPasteScheme { return c.est.s }

// Fingerprint returns the C&P compatibility fingerprint.
func (c *CutPasteCounterScheme) Fingerprint() string { return c.est.fingerprint() }

// NewCore builds one empty C&P core.
func (c *CutPasteCounterScheme) NewCore() CounterCore { return newBoolCore(c.est) }

// checkBoolMapping bounds the boolean item universe so joint row indexes
// fit the replication cell index (uint64) and the shift arithmetic: the
// BoolMapping itself caps Mb at 64, but live counters additionally need
// 1<<Mb representable for range validation.
func checkBoolMapping(m *core.BoolMapping) error {
	if m.Mb < 1 || m.Mb > 62 {
		return fmt.Errorf("%w: boolean item universe Mb=%d outside [1,62] supported by live counters", ErrMining, m.Mb)
	}
	return nil
}
