package mining

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
)

// groupByAttrs buckets candidates by their attribute set so each group
// can be counted with a single database pass (one marginal histogram).
func groupByAttrs(candidates []Itemset) map[string][]int {
	groups := make(map[string][]int)
	for i, c := range candidates {
		key := fmt.Sprint(c.Attrs())
		groups[key] = append(groups[key], i)
	}
	return groups
}

// ExactCounter counts true supports on an unperturbed categorical
// database — the ground truth against which reconstruction accuracy is
// measured.
type ExactCounter struct {
	DB *dataset.Database
}

// N returns the database size.
func (c *ExactCounter) N() int { return c.DB.N() }

// Schema returns the database schema.
func (c *ExactCounter) Schema() *dataset.Schema { return c.DB.Schema }

// Supports counts exactly via one marginal histogram per attribute group.
func (c *ExactCounter) Supports(candidates []Itemset) ([]float64, error) {
	out := make([]float64, len(candidates))
	for _, idxs := range groupByAttrs(candidates) {
		cols := candidates[idxs[0]].Attrs()
		hist, err := c.DB.SubHistogram(cols)
		if err != nil {
			return nil, err
		}
		for _, i := range idxs {
			sub, err := subIndexOf(c.DB.Schema, candidates[i])
			if err != nil {
				return nil, err
			}
			out[i] = hist[sub]
		}
	}
	return out, nil
}

func subIndexOf(sc *dataset.Schema, s Itemset) (int, error) {
	if err := s.Validate(sc); err != nil {
		return 0, err
	}
	idx := 0
	for _, it := range s {
		idx = idx*sc.Attrs[it.Attr].Cardinality() + it.Value
	}
	return idx, nil
}

// GammaCounter reconstructs supports from a database perturbed with a
// (deterministic or randomized) gamma-diagonal matrix, using the Eq. 28
// marginal matrices in closed form: for an itemset L over attribute
// subset Cs, the estimate is (Y_L − ō·N) / (d̄ − ō), where Y_L is L's
// count in the perturbed database and d̄, ō are the marginal matrix's
// diagonal and off-diagonal entries. For RAN-GD, pass the EXPECTED
// matrix — exactly what the paper's miner knows.
type GammaCounter struct {
	Perturbed *dataset.Database
	Matrix    core.UniformMatrix
}

// NewGammaCounter validates that the matrix matches the schema domain.
func NewGammaCounter(perturbed *dataset.Database, m core.UniformMatrix) (*GammaCounter, error) {
	if m.N != perturbed.Schema.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain %d", ErrMining, m.N, perturbed.Schema.DomainSize())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &GammaCounter{Perturbed: perturbed, Matrix: m}, nil
}

// N returns the database size.
func (c *GammaCounter) N() int { return c.Perturbed.N() }

// Schema returns the database schema.
func (c *GammaCounter) Schema() *dataset.Schema { return c.Perturbed.Schema }

// Supports reconstructs one attribute group at a time.
func (c *GammaCounter) Supports(candidates []Itemset) ([]float64, error) {
	out := make([]float64, len(candidates))
	n := float64(c.Perturbed.N())
	for _, idxs := range groupByAttrs(candidates) {
		cols := candidates[idxs[0]].Attrs()
		nSub, err := c.Perturbed.Schema.SubdomainSize(cols)
		if err != nil {
			return nil, err
		}
		marg, err := c.Matrix.Marginal(nSub)
		if err != nil {
			return nil, err
		}
		a := marg.Diag - marg.Off
		hist, err := c.Perturbed.SubHistogram(cols)
		if err != nil {
			return nil, err
		}
		for _, i := range idxs {
			sub, err := subIndexOf(c.Perturbed.Schema, candidates[i])
			if err != nil {
				return nil, err
			}
			out[i] = (hist[sub] - marg.Off*n) / a
		}
	}
	return out, nil
}

// MaskCounter reconstructs supports from a MASK-perturbed boolean
// database via the tensor-structured inverse.
type MaskCounter struct {
	Perturbed *core.BoolDatabase
	Scheme    *core.MaskScheme
}

// N returns the database size.
func (c *MaskCounter) N() int { return c.Perturbed.N() }

// Schema returns the database schema.
func (c *MaskCounter) Schema() *dataset.Schema { return c.Scheme.Mapping.Schema }

// Supports estimates each candidate independently.
func (c *MaskCounter) Supports(candidates []Itemset) ([]float64, error) {
	out := make([]float64, len(candidates))
	for i, cand := range candidates {
		bits, err := itemBits(c.Scheme.Mapping, cand)
		if err != nil {
			return nil, err
		}
		est, err := c.Scheme.EstimateSupport(c.Perturbed, bits)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// CutPasteCounter reconstructs supports from a C&P-perturbed boolean
// database via the (l+1)×(l+1) partial-support matrices.
type CutPasteCounter struct {
	Perturbed *core.BoolDatabase
	Scheme    *core.CutPasteScheme
}

// N returns the database size.
func (c *CutPasteCounter) N() int { return c.Perturbed.N() }

// Schema returns the database schema.
func (c *CutPasteCounter) Schema() *dataset.Schema { return c.Scheme.Mapping.Schema }

// Supports estimates each candidate independently.
func (c *CutPasteCounter) Supports(candidates []Itemset) ([]float64, error) {
	out := make([]float64, len(candidates))
	for i, cand := range candidates {
		bits, err := itemBits(c.Scheme.Mapping, cand)
		if err != nil {
			return nil, err
		}
		est, err := c.Scheme.EstimateSupport(c.Perturbed, bits)
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

func itemBits(m *core.BoolMapping, s Itemset) ([]int, error) {
	bits := make([]int, len(s))
	for k, it := range s {
		b, err := m.Bit(it.Attr, it.Value)
		if err != nil {
			return nil, err
		}
		bits[k] = b
	}
	return bits, nil
}
