package mining

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func TestCounterSaveLoadRoundTrip(t *testing.T) {
	db := buildSkewedDB(t, 5000, 50)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	p, _ := core.NewGammaPerturber(sc, m)
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewMaterializedGammaCounter(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddDatabase(pdb); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadMaterializedGammaCounter(&buf, sc, m)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != c.N() {
		t.Fatalf("restored N = %d, want %d", back.N(), c.N())
	}
	cands := []Itemset{
		{{0, 0}},
		{{0, 0}, {1, 0}, {2, 0}},
		{{1, 1}, {2, 3}},
	}
	a, err := c.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("candidate %d: %v vs restored %v", i, a[i], b[i])
		}
	}
	// The restored counter keeps working as a live counter.
	if err := back.Add(dataset.Record{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if back.N() != c.N()+1 {
		t.Fatal("restored counter not live")
	}
}

func TestLoadRejectsMismatchedSchema(t *testing.T) {
	db := buildSkewedDB(t, 100, 52)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	c, _ := NewMaterializedGammaCounter(sc, m)
	if err := c.AddDatabase(db); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := dataset.CensusSchema()
	om, _ := core.NewGammaDiagonal(other.DomainSize(), 19)
	if _, err := LoadMaterializedGammaCounter(bytes.NewReader(buf.Bytes()), other, om); !errors.Is(err, ErrMining) {
		t.Fatal("mismatched schema accepted")
	}
	// Same schema, different matrix.
	m2, _ := core.NewGammaDiagonal(sc.DomainSize(), 9)
	if _, err := LoadMaterializedGammaCounter(bytes.NewReader(buf.Bytes()), sc, m2); !errors.Is(err, ErrMining) {
		t.Fatal("mismatched matrix accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	sc := miningSchema(t)
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if _, err := LoadMaterializedGammaCounter(strings.NewReader("not gob"), sc, m); !errors.Is(err, ErrMining) {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsTamperedState(t *testing.T) {
	db := buildSkewedDB(t, 200, 53)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	c, _ := NewMaterializedGammaCounter(sc, m)
	if err := c.AddDatabase(db); err != nil {
		t.Fatal(err)
	}
	// Tamper: inconsistent per-subset totals must be rejected. Corrupt
	// by mutating a histogram before save.
	c.hists[1][0] += 5
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMaterializedGammaCounter(&buf, sc, m); !errors.Is(err, ErrMining) {
		t.Fatal("inconsistent totals accepted")
	}
}
