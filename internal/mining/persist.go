package mining

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ErrCorruptState marks a state payload that could not be decoded at
// all — truncated, zero-byte, or garbage bytes — as opposed to a valid
// payload saved under an incompatible scheme, schema, or version.
// Callers holding the file name should wrap this with the path and the
// operator's recovery options (restore a backup, or remove the file to
// start empty) instead of surfacing raw gob internals.
var ErrCorruptState = fmt.Errorf("%w: corrupt counter state", ErrMining)

// counterState is the serialized form of a counter. The schema itself is
// NOT serialized — the loader supplies it (through the scheme contract)
// and the state is validated against it, so a state file can never
// silently reinterpret a different schema's counts.
//
// Version 1 carries a single gamma counter in (N, Hists); version 2
// carries one (N, Hists) payload per shard in Shards; version 3 is the
// scheme-tagged format: Scheme names the perturbation scheme, the
// scheme's parameters ride in the meta fields, and each shard carries
// either dense subset histograms (gamma) or sparse joint cells (the
// boolean schemes). Gob matches fields by name, so every version decodes
// into this struct and the loaders accept all three: a scheme-generic
// server restores legacy gamma state files, and saved shards fold modulo
// the live shard count.
type counterState struct {
	Version    int
	Scheme     string // empty in v1/v2 files, which are always gamma
	SchemaName string
	M          int
	DomainSize int

	// Gamma parameters.
	MatrixN    int
	MatrixDiag float64
	MatrixOff  float64

	// Boolean-scheme parameters.
	Mb     int
	MaskP  float64
	CutK   int
	CutRho float64

	// Version 1 payload: one counter.
	N     int
	Hists [][]float64

	// Version 2+ payload: one entry per shard.
	Shards []shardState
}

// shardState is one shard's counts: dense subset histograms for gamma,
// sparse joint cells for the boolean schemes.
type shardState struct {
	N     int
	Hists [][]float64
	Cells []DeltaCell
}

const (
	counterStateVersion = 1
	shardedStateVersion = 2
	schemeStateVersion  = 3
)

// stateMeta fills the state header for a gamma core.
func (c *MaterializedGammaCounter) stateMeta(version int) counterState {
	return counterState{
		Version:    version,
		Scheme:     SchemeGamma,
		SchemaName: c.schema.Name,
		M:          c.schema.M(),
		DomainSize: c.schema.DomainSize(),
		MatrixN:    c.matrix.N,
		MatrixDiag: c.matrix.Diag,
		MatrixOff:  c.matrix.Off,
	}
}

// checkState validates decoded state metadata against this core's
// contract.
func (c *MaterializedGammaCounter) checkState(st *counterState) error {
	if st.SchemaName != c.schema.Name || st.M != c.schema.M() || st.DomainSize != c.schema.DomainSize() {
		return fmt.Errorf("%w: state was saved for schema %q (M=%d, |S_U|=%d), not %q (M=%d, |S_U|=%d)",
			ErrMining, st.SchemaName, st.M, st.DomainSize, c.schema.Name, c.schema.M(), c.schema.DomainSize())
	}
	if st.MatrixN != c.matrix.N || st.MatrixDiag != c.matrix.Diag || st.MatrixOff != c.matrix.Off {
		return fmt.Errorf("%w: state was saved under a different perturbation matrix", ErrMining)
	}
	return nil
}

// saveShard deep-copies the core's state under its own lock, so
// submissions may keep arriving while the state streams out.
func (c *MaterializedGammaCounter) saveShard() shardState {
	snap := c.Snapshot()
	return shardState{N: snap.n, Hists: snap.hists}
}

// restoreShard validates one shard payload against the counter's
// structure — histogram shapes, non-negative cells, per-subset totals
// matching the record count — and folds its counts in. Callers restore
// into freshly built counters only, so a partially applied failed load
// is simply discarded.
func (c *MaterializedGammaCounter) restoreShard(sh shardState) error {
	if sh.N < 0 {
		return fmt.Errorf("%w: negative record count %d", ErrMining, sh.N)
	}
	if len(sh.Hists) != len(c.hists) {
		return fmt.Errorf("%w: state has %d subset histograms, want %d", ErrMining, len(sh.Hists), len(c.hists))
	}
	for mask := 1; mask < len(c.hists); mask++ {
		if len(sh.Hists[mask]) != len(c.hists[mask]) {
			return fmt.Errorf("%w: subset %d histogram has %d cells, want %d",
				ErrMining, mask, len(sh.Hists[mask]), len(c.hists[mask]))
		}
		var sum float64
		for _, v := range sh.Hists[mask] {
			if v < 0 {
				return fmt.Errorf("%w: negative count in subset %d", ErrMining, mask)
			}
			sum += v
		}
		if diff := sum - float64(sh.N); diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("%w: subset %d totals %v, want %d", ErrMining, mask, sum, sh.N)
		}
		addInto(c.hists[mask], sh.Hists[mask])
	}
	c.n += sh.N
	return nil
}

// Save serializes the counter (gob encoding) so a collection server can
// restart without losing submissions.
func (c *MaterializedGammaCounter) Save(w io.Writer) error {
	st := c.stateMeta(schemeStateVersion)
	st.Shards = []shardState{c.saveShard()}
	return gob.NewEncoder(w).Encode(&st)
}

// save serializes every shard of a live counter in the scheme-tagged v3
// format. Each shard is deep-copied under its own lock first, so
// submissions may keep arriving while the state streams out.
func (c *ShardedCounter) save(w io.Writer) error {
	st := c.shards[0].stateMeta(schemeStateVersion)
	st.Shards = make([]shardState, len(c.shards))
	for i, s := range c.shards {
		st.Shards[i] = s.saveShard()
	}
	return gob.NewEncoder(w).Encode(&st)
}

// decodeState decodes any state version and normalizes the payload into
// st.Shards (a version-1 file becomes one shard) and st.Scheme (legacy
// versions are always gamma).
func decodeState(r io.Reader) (*counterState, error) {
	var st counterState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: state ends prematurely (zero-byte file or truncated write): %v", ErrCorruptState, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	switch st.Version {
	case counterStateVersion:
		st.Scheme = SchemeGamma
		st.Shards = []shardState{{N: st.N, Hists: st.Hists}}
	case shardedStateVersion:
		st.Scheme = SchemeGamma
		fallthrough
	case schemeStateVersion:
		if len(st.Shards) == 0 {
			return nil, fmt.Errorf("%w: sharded state has no shards", ErrMining)
		}
		if st.Scheme == "" {
			return nil, fmt.Errorf("%w: scheme-tagged state carries no scheme", ErrMining)
		}
	default:
		return nil, fmt.Errorf("%w: counter state version %d, want %d, %d, or %d",
			ErrMining, st.Version, counterStateVersion, shardedStateVersion, schemeStateVersion)
	}
	return &st, nil
}

// LoadLiveCounter restores a live counter saved with LiveCounter.Save
// (or a legacy gamma Save), validating the scheme identity, scheme
// parameters, and every structural invariant against the supplied
// contract before accepting the state. The live shard count is the
// caller's choice, not the file's: saved shard i folds into live shard
// i mod shards, so state round-trips across -shards changes and across
// the single↔sharded counter boundary.
func LoadLiveCounter(r io.Reader, scheme CounterScheme, shards int) (*ShardedCounter, error) {
	st, err := decodeState(r)
	if err != nil {
		return nil, err
	}
	if st.Scheme != scheme.Name() {
		return nil, fmt.Errorf("%w: state was saved under scheme %q, counter runs %q — cross-scheme restores are rejected, never merged",
			ErrMining, st.Scheme, scheme.Name())
	}
	c, err := NewShardedCounter(scheme, shards)
	if err != nil {
		return nil, err
	}
	if err := c.shards[0].checkState(st); err != nil {
		return nil, err
	}
	total := 0
	for i, sh := range st.Shards {
		if err := c.shards[i%len(c.shards)].restoreShard(sh); err != nil {
			return nil, err
		}
		total += sh.N
	}
	// Resume round-robin routing where the restored population left off
	// so post-restore submissions keep the shards balanced. The snapshot
	// version restarts at the restored record count; a state restore
	// swaps the whole counter object, so callers caching mining results
	// must also drop entries from the previous counter's version line.
	c.next.Store(uint64(total))
	c.total.Store(int64(total))
	c.version.Store(uint64(total))
	return c, nil
}

// LoadMaterializedGammaCounter restores a gamma counter saved with any
// counter's Save, validating every structural invariant against the
// supplied schema and matrix before accepting the state. Sharded state
// is merged into the single counter.
func LoadMaterializedGammaCounter(r io.Reader, schema *dataset.Schema, m core.UniformMatrix) (*MaterializedGammaCounter, error) {
	st, err := decodeState(r)
	if err != nil {
		return nil, err
	}
	if st.Scheme != SchemeGamma {
		return nil, fmt.Errorf("%w: state was saved under scheme %q, not %q", ErrMining, st.Scheme, SchemeGamma)
	}
	c, err := NewMaterializedGammaCounter(schema, m)
	if err != nil {
		return nil, err
	}
	if err := c.checkState(st); err != nil {
		return nil, err
	}
	for _, sh := range st.Shards {
		if err := c.restoreShard(sh); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// LoadShardedGammaCounter restores a gamma sharded counter saved with
// any counter's Save — the historical loader, kept as a convenience
// over LoadLiveCounter with a GammaScheme.
func LoadShardedGammaCounter(r io.Reader, schema *dataset.Schema, m core.UniformMatrix, shards int) (*ShardedCounter, error) {
	scheme, err := NewGammaScheme(schema, m)
	if err != nil {
		return nil, err
	}
	return LoadLiveCounter(r, scheme, shards)
}
