package mining

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
)

// counterState is the serialized form of a counter. The schema itself is
// NOT serialized — the loader supplies it and the state is validated
// against it, so a state file can never silently reinterpret a different
// schema's counts.
//
// Version 1 carries a single counter in (N, Hists); version 2 carries
// one (N, Hists) payload per shard in Shards. Gob matches fields by
// name, so either version decodes into this struct and the loaders
// accept both: a sharded server restores single-counter state files and
// vice versa, with saved shards folded modulo the live shard count.
type counterState struct {
	Version    int
	SchemaName string
	M          int
	DomainSize int
	MatrixN    int
	MatrixDiag float64
	MatrixOff  float64

	// Version 1 payload: one counter.
	N     int
	Hists [][]float64

	// Version 2 payload: one entry per shard.
	Shards []shardState
}

// shardState is one shard's counts.
type shardState struct {
	N     int
	Hists [][]float64
}

const (
	counterStateVersion = 1
	shardedStateVersion = 2
)

func (c *MaterializedGammaCounter) metaState(version int) counterState {
	return counterState{
		Version:    version,
		SchemaName: c.schema.Name,
		M:          c.schema.M(),
		DomainSize: c.schema.DomainSize(),
		MatrixN:    c.matrix.N,
		MatrixDiag: c.matrix.Diag,
		MatrixOff:  c.matrix.Off,
	}
}

// Save serializes the counter (gob encoding) so a collection server can
// restart without losing submissions.
func (c *MaterializedGammaCounter) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := c.metaState(counterStateVersion)
	st.N = c.n
	st.Hists = c.hists
	return gob.NewEncoder(w).Encode(&st)
}

// Save serializes every shard. Each shard is deep-copied under its own
// lock first, so submissions may keep arriving while the state streams
// out.
func (c *ShardedGammaCounter) Save(w io.Writer) error {
	st := c.shards[0].metaState(shardedStateVersion)
	st.Shards = make([]shardState, len(c.shards))
	for i, s := range c.shards {
		snap := s.Snapshot()
		st.Shards[i] = shardState{N: snap.n, Hists: snap.hists}
	}
	return gob.NewEncoder(w).Encode(&st)
}

// decodeCounterState decodes either state version and validates its
// metadata against the supplied schema and matrix. On success the
// payload is normalized into st.Shards (a version-1 file becomes one
// shard).
func decodeCounterState(r io.Reader, schema *dataset.Schema, m core.UniformMatrix) (*counterState, error) {
	var st counterState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decoding counter state: %v", ErrMining, err)
	}
	switch st.Version {
	case counterStateVersion:
		st.Shards = []shardState{{N: st.N, Hists: st.Hists}}
	case shardedStateVersion:
		if len(st.Shards) == 0 {
			return nil, fmt.Errorf("%w: sharded state has no shards", ErrMining)
		}
	default:
		return nil, fmt.Errorf("%w: counter state version %d, want %d or %d",
			ErrMining, st.Version, counterStateVersion, shardedStateVersion)
	}
	if st.SchemaName != schema.Name || st.M != schema.M() || st.DomainSize != schema.DomainSize() {
		return nil, fmt.Errorf("%w: state was saved for schema %q (M=%d, |S_U|=%d), not %q (M=%d, |S_U|=%d)",
			ErrMining, st.SchemaName, st.M, st.DomainSize, schema.Name, schema.M(), schema.DomainSize())
	}
	if st.MatrixN != m.N || st.MatrixDiag != m.Diag || st.MatrixOff != m.Off {
		return nil, fmt.Errorf("%w: state was saved under a different perturbation matrix", ErrMining)
	}
	return &st, nil
}

// applyShardState validates one shard payload against the counter's
// structure — histogram shapes, non-negative cells, per-subset totals
// matching the record count — and folds its counts in. Callers apply to
// freshly built counters only, so a partially applied failed load is
// simply discarded.
func applyShardState(c *MaterializedGammaCounter, sh shardState) error {
	if sh.N < 0 {
		return fmt.Errorf("%w: negative record count %d", ErrMining, sh.N)
	}
	if len(sh.Hists) != len(c.hists) {
		return fmt.Errorf("%w: state has %d subset histograms, want %d", ErrMining, len(sh.Hists), len(c.hists))
	}
	for mask := 1; mask < len(c.hists); mask++ {
		if len(sh.Hists[mask]) != len(c.hists[mask]) {
			return fmt.Errorf("%w: subset %d histogram has %d cells, want %d",
				ErrMining, mask, len(sh.Hists[mask]), len(c.hists[mask]))
		}
		var sum float64
		for _, v := range sh.Hists[mask] {
			if v < 0 {
				return fmt.Errorf("%w: negative count in subset %d", ErrMining, mask)
			}
			sum += v
		}
		if diff := sum - float64(sh.N); diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("%w: subset %d totals %v, want %d", ErrMining, mask, sum, sh.N)
		}
		addInto(c.hists[mask], sh.Hists[mask])
	}
	c.n += sh.N
	return nil
}

// LoadMaterializedGammaCounter restores a counter saved with either
// counter's Save, validating every structural invariant against the
// supplied schema and matrix before accepting the state. Sharded state
// is merged into the single counter.
func LoadMaterializedGammaCounter(r io.Reader, schema *dataset.Schema, m core.UniformMatrix) (*MaterializedGammaCounter, error) {
	st, err := decodeCounterState(r, schema, m)
	if err != nil {
		return nil, err
	}
	c, err := NewMaterializedGammaCounter(schema, m)
	if err != nil {
		return nil, err
	}
	for _, sh := range st.Shards {
		if err := applyShardState(c, sh); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// LoadShardedGammaCounter restores a sharded counter saved with either
// counter's Save. The live shard count is the caller's choice, not the
// file's: saved shard i folds into live shard i mod shards, so state
// round-trips across -shards changes and across the single↔sharded
// counter boundary.
func LoadShardedGammaCounter(r io.Reader, schema *dataset.Schema, m core.UniformMatrix, shards int) (*ShardedGammaCounter, error) {
	st, err := decodeCounterState(r, schema, m)
	if err != nil {
		return nil, err
	}
	c, err := NewShardedGammaCounter(schema, m, shards)
	if err != nil {
		return nil, err
	}
	total := 0
	for i, sh := range st.Shards {
		if err := applyShardState(c.shards[i%len(c.shards)], sh); err != nil {
			return nil, err
		}
		total += sh.N
	}
	// Resume round-robin routing where the restored population left off
	// so post-restore submissions keep the shards balanced. The snapshot
	// version restarts at the restored record count; a state restore
	// swaps the whole counter object, so callers caching mining results
	// must also drop entries from the previous counter's version line.
	c.next.Store(uint64(total))
	c.total.Store(int64(total))
	c.version.Store(uint64(total))
	return c, nil
}
