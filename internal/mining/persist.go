package mining

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
)

// counterState is the serialized form of a MaterializedGammaCounter.
// The schema itself is NOT serialized — the loader supplies it and the
// state is validated against it, so a state file can never silently
// reinterpret a different schema's counts.
type counterState struct {
	Version    int
	SchemaName string
	M          int
	DomainSize int
	MatrixN    int
	MatrixDiag float64
	MatrixOff  float64
	N          int
	Hists      [][]float64
}

const counterStateVersion = 1

// Save serializes the counter (gob encoding) so a collection server can
// restart without losing submissions.
func (c *MaterializedGammaCounter) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := counterState{
		Version:    counterStateVersion,
		SchemaName: c.schema.Name,
		M:          c.schema.M(),
		DomainSize: c.schema.DomainSize(),
		MatrixN:    c.matrix.N,
		MatrixDiag: c.matrix.Diag,
		MatrixOff:  c.matrix.Off,
		N:          c.n,
		Hists:      c.hists,
	}
	return gob.NewEncoder(w).Encode(&st)
}

// LoadMaterializedGammaCounter restores a counter saved with Save,
// validating every structural invariant against the supplied schema and
// matrix before accepting the state.
func LoadMaterializedGammaCounter(r io.Reader, schema *dataset.Schema, m core.UniformMatrix) (*MaterializedGammaCounter, error) {
	var st counterState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("%w: decoding counter state: %v", ErrMining, err)
	}
	if st.Version != counterStateVersion {
		return nil, fmt.Errorf("%w: counter state version %d, want %d", ErrMining, st.Version, counterStateVersion)
	}
	if st.SchemaName != schema.Name || st.M != schema.M() || st.DomainSize != schema.DomainSize() {
		return nil, fmt.Errorf("%w: state was saved for schema %q (M=%d, |S_U|=%d), not %q (M=%d, |S_U|=%d)",
			ErrMining, st.SchemaName, st.M, st.DomainSize, schema.Name, schema.M(), schema.DomainSize())
	}
	if st.MatrixN != m.N || st.MatrixDiag != m.Diag || st.MatrixOff != m.Off {
		return nil, fmt.Errorf("%w: state was saved under a different perturbation matrix", ErrMining)
	}
	if st.N < 0 {
		return nil, fmt.Errorf("%w: negative record count %d", ErrMining, st.N)
	}
	c, err := NewMaterializedGammaCounter(schema, m)
	if err != nil {
		return nil, err
	}
	if len(st.Hists) != len(c.hists) {
		return nil, fmt.Errorf("%w: state has %d subset histograms, want %d", ErrMining, len(st.Hists), len(c.hists))
	}
	var total float64
	for mask := 1; mask < len(c.hists); mask++ {
		if len(st.Hists[mask]) != len(c.hists[mask]) {
			return nil, fmt.Errorf("%w: subset %d histogram has %d cells, want %d",
				ErrMining, mask, len(st.Hists[mask]), len(c.hists[mask]))
		}
		var sum float64
		for _, v := range st.Hists[mask] {
			if v < 0 {
				return nil, fmt.Errorf("%w: negative count in subset %d", ErrMining, mask)
			}
			sum += v
		}
		if diff := sum - float64(st.N); diff > 1e-6 || diff < -1e-6 {
			return nil, fmt.Errorf("%w: subset %d totals %v, want %d", ErrMining, mask, sum, st.N)
		}
		copy(c.hists[mask], st.Hists[mask])
		total += sum
	}
	c.n = st.N
	_ = total
	return c, nil
}
