package mining

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestShardedApplyDeltaChainEquivalence: folding a full delta plus a
// chain of incrementals into a fresh sharded counter reproduces the
// source exactly — the WAL-replay primitive.
func TestShardedApplyDeltaChainEquivalence(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(41))
	src, err := NewShardedGammaCounter(s, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := NewShardedGammaCounter(s, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	since := uint64(0)
	for round := 0; round < 5; round++ {
		for i := 0; i < 10+rng.Intn(20); i++ {
			if err := src.Add(randomRecord(s, rng)); err != nil {
				t.Fatal(err)
			}
		}
		d, err := src.DeltaSince(since)
		if err != nil {
			t.Fatal(err)
		}
		if err := replica.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		since = d.ToVersion
	}
	if src.N() != replica.N() {
		t.Fatalf("replica has %d records, want %d", replica.N(), src.N())
	}
	want := src.Snapshot().(*MaterializedGammaCounter)
	got := replica.Snapshot().(*MaterializedGammaCounter)
	countersEqual(t, want, got)
	// Version advanced with the applied records, so the replica mints
	// coherent snapshot versions of its own.
	if replica.Version() != uint64(replica.N()) {
		t.Fatalf("replica version %d, want %d", replica.Version(), replica.N())
	}
}

func TestShardedApplyDeltaRejectsFullOntoNonEmpty(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(43))
	src, err := NewShardedGammaCounter(s, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := src.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	full, err := src.DeltaSince(0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewShardedGammaCounter(s, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ApplyDelta(full); err != nil {
		t.Fatal(err)
	}
	if err := dst.ApplyDelta(full); err == nil {
		t.Fatal("full delta applied twice — double count accepted")
	}
	if err := dst.ApplyDelta(nil); err == nil {
		t.Fatal("nil delta accepted")
	}
}

// TestReplicationStateRoundTrip: a counter rebuilt from saved state plus
// a restored replication identity serves the SAME incremental chain a
// pre-crash puller was on — same epoch, retained baseline honored, and
// every post-restore token above the pre-crash line.
func TestReplicationStateRoundTrip(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(47))
	src, err := NewShardedGammaCounter(s, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := src.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	// A puller chains onto the counter.
	pulled, err := src.DeltaSince(0)
	if err != nil {
		t.Fatal(err)
	}
	rs := src.ReplicationState()
	if rs.Epoch != src.DeltaEpoch() {
		t.Fatalf("captured epoch %d, want %d", rs.Epoch, src.DeltaEpoch())
	}
	if len(rs.Baselines) == 0 {
		t.Fatal("no baselines captured")
	}

	// "Crash": rebuild from persisted state, restore the identity.
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	scheme, err := NewGammaScheme(s, m)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadLiveCounter(&buf, scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreReplicationState(rs); err != nil {
		t.Fatal(err)
	}
	if restored.DeltaEpoch() != src.DeltaEpoch() {
		t.Fatalf("restored epoch %d, want %d", restored.DeltaEpoch(), src.DeltaEpoch())
	}

	// The puller's next pull against the RESTORED counter is incremental.
	for i := 0; i < 3; i++ {
		if err := restored.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := restored.DeltaSince(pulled.ToVersion)
	if err != nil {
		t.Fatal(err)
	}
	if d.Full() {
		t.Fatal("restored counter forced a full resync despite a retained baseline")
	}
	if d.Records != 3 {
		t.Fatalf("incremental delta carries %d records, want 3", d.Records)
	}
	// Tokens minted after recovery clear the pre-crash line by the
	// recovery gap, so no pre-crash token can alias different state.
	if d.ToVersion <= pulled.ToVersion+tokenRecoveryGap/2 {
		t.Fatalf("post-recovery token %d not clear of pre-crash line %d", d.ToVersion, pulled.ToVersion)
	}
}

// TestRestoreReplicationStateDropsInvalidBaselines: a baseline the
// recovered state does not dominate (its WAL tail died with the crash)
// is dropped — its puller full-resyncs — and never corrupts the ring.
func TestRestoreReplicationStateDropsInvalidBaselines(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	rng := rand.New(rand.NewSource(53))
	src, err := NewShardedGammaCounter(s, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := src.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.DeltaSince(0); err != nil {
		t.Fatal(err)
	}
	rs := src.ReplicationState()
	// Poison the baseline: counts the recovered counter does not hold.
	for i := range rs.Baselines {
		rs.Baselines[i].Records = 9
		for j := range rs.Baselines[i].Cells {
			rs.Baselines[i].Cells[j].Count += 1000
		}
	}
	restored, err := NewShardedGammaCounter(s, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := restored.Add(randomRecord(s, rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := restored.RestoreReplicationState(rs); err != nil {
		t.Fatal(err)
	}
	// The poisoned baseline was not retained: a pull against its token
	// falls back to full, which is always safe.
	d, err := restored.DeltaSince(rs.Baselines[0].Token)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Full() {
		t.Fatal("undominated baseline served incrementally")
	}
	// An epoch-less identity (no counter ever persisted one) is rejected.
	if err := restored.RestoreReplicationState(ReplicationState{}); err == nil {
		t.Fatal("zero epoch accepted")
	}
}

func TestDecodeStateWrapsCorruptPayloads(t *testing.T) {
	s := deltaTestSchema(t)
	m := deltaTestMatrix(t, s)
	scheme, err := NewGammaScheme(s, m)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"zero-byte", nil},
		{"truncated", []byte{0x2c, 0xff}},
		{"garbage", []byte("this is not a gob stream at all")},
	}
	for _, tc := range cases {
		_, err := LoadLiveCounter(bytes.NewReader(tc.payload), scheme, 1)
		if err == nil {
			t.Fatalf("%s payload accepted", tc.name)
		}
		if !errors.Is(err, ErrCorruptState) {
			t.Fatalf("%s payload error %v does not wrap ErrCorruptState", tc.name, err)
		}
	}
	// A VALID payload under the wrong scheme is a contract mismatch, not
	// corruption — the distinction the CLI error message relies on.
	var buf bytes.Buffer
	src, err := NewShardedGammaCounter(s, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	mask, err := SchemeForContract(SchemeMask, s, 19)
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadLiveCounter(&buf, mask, 1)
	if err == nil {
		t.Fatal("cross-scheme restore accepted")
	}
	if errors.Is(err, ErrCorruptState) {
		t.Fatalf("scheme mismatch %v misreported as corruption", err)
	}
	if !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("mismatch error %q does not explain the scheme conflict", err)
	}
}
