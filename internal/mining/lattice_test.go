package mining

import (
	"testing"
)

func latticeResult() *Result {
	// Frequent lattice:
	//   {a}=0.6  {b}=0.5  {c}=0.4
	//   {a,b}=0.5  {a,c}=0.3
	//   {a,b,c}=0.25
	mk := func(sup float64, items ...Item) FrequentItemset {
		s, err := NewItemset(items...)
		if err != nil {
			panic(err)
		}
		return FrequentItemset{Items: s, Support: sup}
	}
	return &Result{
		MinSupport: 0.2,
		ByLength: [][]FrequentItemset{
			{mk(0.6, Item{0, 0}), mk(0.5, Item{1, 0}), mk(0.4, Item{2, 0})},
			{mk(0.5, Item{0, 0}, Item{1, 0}), mk(0.3, Item{0, 0}, Item{2, 0})},
			{mk(0.25, Item{0, 0}, Item{1, 0}, Item{2, 0})},
		},
	}
}

func TestMaximal(t *testing.T) {
	res := latticeResult()
	max := Maximal(res)
	// Only {a,b,c} is maximal: every other set extends to it or to a pair.
	// {b} extends to {a,b}; {c} to {a,c}; pairs to the triple.
	if len(max) != 1 {
		t.Fatalf("maximal sets: %v", max)
	}
	if max[0].Items.Key() != "0=0,1=0,2=0" {
		t.Fatalf("maximal = %v", max[0].Items.Key())
	}
}

func TestMaximalWithTwoBorders(t *testing.T) {
	mk := func(sup float64, items ...Item) FrequentItemset {
		s, _ := NewItemset(items...)
		return FrequentItemset{Items: s, Support: sup}
	}
	res := &Result{
		MinSupport: 0.2,
		ByLength: [][]FrequentItemset{
			{mk(0.6, Item{0, 0}), mk(0.5, Item{1, 0}), mk(0.4, Item{2, 1})},
			{mk(0.5, Item{0, 0}, Item{1, 0})},
		},
	}
	max := Maximal(res)
	if len(max) != 2 {
		t.Fatalf("want {a,b} and {c=1} maximal, got %v", max)
	}
	keys := map[string]bool{}
	for _, m := range max {
		keys[m.Items.Key()] = true
	}
	if !keys["0=0,1=0"] || !keys["2=1"] {
		t.Fatalf("maximal keys wrong: %v", keys)
	}
}

func TestClosed(t *testing.T) {
	res := latticeResult()
	closed := Closed(res, 1e-9)
	// {b} (0.5) has superset {a,b} with the SAME support → not closed.
	// Everything else has strictly larger support than its supersets.
	keys := map[string]bool{}
	for _, c := range closed {
		keys[c.Items.Key()] = true
	}
	if keys["1=0"] {
		t.Fatal("{b} should not be closed (absorbed by {a,b})")
	}
	for _, want := range []string{"0=0", "2=0", "0=0,1=0", "0=0,2=0", "0=0,1=0,2=0"} {
		if !keys[want] {
			t.Fatalf("closed set %s missing; got %v", want, keys)
		}
	}
}

func TestClosedToleranceAbsorbsNoise(t *testing.T) {
	mk := func(sup float64, items ...Item) FrequentItemset {
		s, _ := NewItemset(items...)
		return FrequentItemset{Items: s, Support: sup}
	}
	res := &Result{
		MinSupport: 0.2,
		ByLength: [][]FrequentItemset{
			{mk(0.500, Item{0, 0})},
			{mk(0.498, Item{0, 0}, Item{1, 0})}, // nearly equal support
		},
	}
	strict := Closed(res, 1e-9)
	loose := Closed(res, 0.01)
	if len(strict) != 2 {
		t.Fatalf("strict closed = %v", strict)
	}
	if len(loose) != 1 || loose[0].Items.Key() != "0=0,1=0" {
		t.Fatalf("loose closed = %v", loose)
	}
}

func TestIsSubset(t *testing.T) {
	a, _ := NewItemset(Item{0, 0}, Item{2, 1})
	b, _ := NewItemset(Item{0, 0}, Item{1, 0}, Item{2, 1})
	if !isSubset(a, b) {
		t.Fatal("subset not detected")
	}
	if isSubset(b, a) {
		t.Fatal("superset misdetected as subset")
	}
	c, _ := NewItemset(Item{0, 1}, Item{2, 1})
	if isSubset(c, b) {
		t.Fatal("different value misdetected")
	}
	empty := Itemset{}
	if !isSubset(empty, b) {
		t.Fatal("empty set is a subset of everything")
	}
}

func TestMaximalClosedOnRealMiningRun(t *testing.T) {
	db := buildSkewedDB(t, 10000, 30)
	res, err := Apriori(&ExactCounter{DB: db}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	max := Maximal(res)
	all := res.All()
	// Every maximal set must be frequent and have no frequent superset.
	for _, m := range max {
		if _, ok := all[m.Items.Key()]; !ok {
			t.Fatalf("maximal %s not frequent", m.Items.Key())
		}
		for _, other := range all {
			if other.Items.Len() > m.Items.Len() && isSubset(m.Items, other.Items) {
				t.Fatalf("maximal %s has frequent superset %s", m.Items.Key(), other.Items.Key())
			}
		}
	}
	// Closed ⊇ maximal (every maximal set is closed).
	closedKeys := map[string]bool{}
	for _, c := range Closed(res, 1e-9) {
		closedKeys[c.Items.Key()] = true
	}
	for _, m := range max {
		if !closedKeys[m.Items.Key()] {
			t.Fatalf("maximal %s not closed", m.Items.Key())
		}
	}
}
