// Package mining implements the frequent-itemset substrate of Section 6
// of the FRAPP paper: Apriori-style level-wise mining over categorical
// data, generic over a support counter so the same algorithm runs against
// the original database (ground truth) or against a perturbed database
// with per-scheme support reconstruction (DET-GD/RAN-GD marginal
// inversion, MASK tensor inversion, C&P partial-support inversion), plus
// association-rule generation from the mined itemsets.
package mining

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// ErrMining is returned for malformed itemsets or mining parameters.
var ErrMining = errors.New("mining: invalid input")

// Item is one attribute-value pair. In the categorical model an itemset
// contains at most one item per attribute (a record holds exactly one
// value per attribute, so two items on the same attribute can never be
// co-supported).
type Item struct {
	Attr  int
	Value int
}

// Itemset is a set of items sorted by attribute. The zero-length itemset
// is valid and is supported by every record.
type Itemset []Item

// NewItemset validates and canonicalizes (sorts) the items.
func NewItemset(items ...Item) (Itemset, error) {
	out := make(Itemset, len(items))
	copy(out, items)
	sort.Slice(out, func(i, j int) bool { return out[i].Attr < out[j].Attr })
	for i := 1; i < len(out); i++ {
		if out[i].Attr == out[i-1].Attr {
			return nil, fmt.Errorf("%w: duplicate attribute %d in itemset", ErrMining, out[i].Attr)
		}
	}
	return out, nil
}

// Len returns the itemset length.
func (s Itemset) Len() int { return len(s) }

// Key returns a canonical string key for maps.
func (s Itemset) Key() string {
	var sb strings.Builder
	for i, it := range s {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d=%d", it.Attr, it.Value)
	}
	return sb.String()
}

// Attrs returns the attribute positions, in order.
func (s Itemset) Attrs() []int {
	out := make([]int, len(s))
	for i, it := range s {
		out[i] = it.Attr
	}
	return out
}

// Values returns the values, in attribute order.
func (s Itemset) Values() []int {
	out := make([]int, len(s))
	for i, it := range s {
		out[i] = it.Value
	}
	return out
}

// Contains reports whether the itemset includes the item.
func (s Itemset) Contains(it Item) bool {
	for _, x := range s {
		if x == it {
			return true
		}
	}
	return false
}

// Supports reports whether record rec supports the itemset (matches every
// item's value on its attribute).
func (s Itemset) Supports(rec dataset.Record) bool {
	for _, it := range s {
		if it.Attr >= len(rec) || rec[it.Attr] != it.Value {
			return false
		}
	}
	return true
}

// Subsets returns the length-(k−1) subsets of a length-k itemset, used by
// Apriori's prune step.
func (s Itemset) Subsets() []Itemset {
	out := make([]Itemset, 0, len(s))
	for drop := range s {
		sub := make(Itemset, 0, len(s)-1)
		for i, it := range s {
			if i != drop {
				sub = append(sub, it)
			}
		}
		out = append(out, sub)
	}
	return out
}

// Validate checks the itemset against a schema.
func (s Itemset) Validate(sc *dataset.Schema) error {
	for i, it := range s {
		if it.Attr < 0 || it.Attr >= sc.M() {
			return fmt.Errorf("%w: attribute %d out of range", ErrMining, it.Attr)
		}
		if it.Value < 0 || it.Value >= sc.Attrs[it.Attr].Cardinality() {
			return fmt.Errorf("%w: value %d out of range for attribute %d", ErrMining, it.Value, it.Attr)
		}
		if i > 0 && s[i-1].Attr >= it.Attr {
			return fmt.Errorf("%w: itemset not in canonical attribute order", ErrMining)
		}
	}
	return nil
}

// String renders the itemset with schema names when available.
func (s Itemset) String() string {
	return s.Key()
}

// FormatWith renders the itemset using a schema's attribute and category
// names, e.g. "age=(15-35] & sex=Female".
func (s Itemset) FormatWith(sc *dataset.Schema) string {
	if err := s.Validate(sc); err != nil {
		return s.Key()
	}
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = sc.Attrs[it.Attr].Name + "=" + sc.Attrs[it.Attr].Categories[it.Value]
	}
	return strings.Join(parts, " & ")
}
