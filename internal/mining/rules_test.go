package mining

import (
	"errors"
	"math"
	"testing"
)

func TestGenerateRulesKnown(t *testing.T) {
	// Hand-built result: sup(a)=0.5, sup(b)=0.4, sup(ab)=0.35.
	a, _ := NewItemset(Item{0, 0})
	b, _ := NewItemset(Item{1, 1})
	ab, _ := NewItemset(Item{0, 0}, Item{1, 1})
	res := &Result{
		MinSupport: 0.1,
		ByLength: [][]FrequentItemset{
			{{Items: a, Support: 0.5}, {Items: b, Support: 0.4}},
			{{Items: ab, Support: 0.35}},
		},
	}
	rules, err := GenerateRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules, want 2 (a⇒b and b⇒a)", len(rules))
	}
	// b⇒a has confidence 0.875, a⇒b has 0.7; sorted descending.
	if rules[0].Antecedent.Key() != "1=1" || math.Abs(rules[0].Confidence-0.875) > 1e-12 {
		t.Fatalf("rule[0] = %v", rules[0])
	}
	if rules[1].Antecedent.Key() != "0=0" || math.Abs(rules[1].Confidence-0.7) > 1e-12 {
		t.Fatalf("rule[1] = %v", rules[1])
	}
	if rules[0].Support != 0.35 {
		t.Fatalf("rule support %v", rules[0].Support)
	}
	if rules[0].String() == "" {
		t.Fatal("String empty")
	}

	// Raising the threshold drops the weaker rule.
	strict, err := GenerateRules(res, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 1 || strict[0].Antecedent.Key() != "1=1" {
		t.Fatalf("strict rules = %v", strict)
	}
}

func TestGenerateRulesThreeWay(t *testing.T) {
	abc, _ := NewItemset(Item{0, 0}, Item{1, 1}, Item{2, 2})
	res := &Result{
		MinSupport: 0.1,
		ByLength: [][]FrequentItemset{
			{
				{Items: Itemset{{0, 0}}, Support: 0.5},
				{Items: Itemset{{1, 1}}, Support: 0.5},
				{Items: Itemset{{2, 2}}, Support: 0.5},
			},
			{
				{Items: Itemset{{0, 0}, {1, 1}}, Support: 0.4},
				{Items: Itemset{{0, 0}, {2, 2}}, Support: 0.4},
				{Items: Itemset{{1, 1}, {2, 2}}, Support: 0.4},
			},
			{{Items: abc, Support: 0.3}},
		},
	}
	rules, err := GenerateRules(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// From abc alone: 2^3−2 = 6 rules; from each pair: 2 → 6 more.
	if len(rules) != 12 {
		t.Fatalf("got %d rules, want 12", len(rules))
	}
	for _, r := range rules {
		if r.Confidence <= 0 || r.Confidence > 1+1e-12 {
			t.Fatalf("confidence out of range: %v", r)
		}
		if len(r.Antecedent) == 0 || len(r.Consequent) == 0 {
			t.Fatalf("empty side: %v", r)
		}
	}
}

func TestGenerateRulesValidation(t *testing.T) {
	res := &Result{}
	for _, mc := range []float64{0, -1, 1.5} {
		if _, err := GenerateRules(res, mc); !errors.Is(err, ErrMining) {
			t.Errorf("minConf %v accepted", mc)
		}
	}
	rules, err := GenerateRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Fatal("rules from empty result")
	}
}

func TestGenerateRulesSkipsMissingAntecedent(t *testing.T) {
	// Pair frequent but one single missing (possible under reconstruction
	// noise): the rule with that antecedent must be skipped, not crash.
	res := &Result{
		MinSupport: 0.1,
		ByLength: [][]FrequentItemset{
			{{Items: Itemset{{0, 0}}, Support: 0.5}},
			{{Items: Itemset{{0, 0}, {1, 1}}, Support: 0.4}},
		},
	}
	rules, err := GenerateRules(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules, want 1 (only a⇒b computable)", len(rules))
	}
	if rules[0].Antecedent.Key() != "0=0" {
		t.Fatalf("unexpected rule %v", rules[0])
	}
}

func TestGenerateRulesSkipsInconsistentConfidence(t *testing.T) {
	// Reconstruction noise can make a superset look more frequent than
	// its subset; the implied confidence > 1 must be suppressed.
	res := &Result{
		MinSupport: 0.1,
		ByLength: [][]FrequentItemset{
			{
				{Items: Itemset{{0, 0}}, Support: 0.2}, // noisy: below the pair
				{Items: Itemset{{1, 1}}, Support: 0.6},
			},
			{{Items: Itemset{{0, 0}, {1, 1}}, Support: 0.4}},
		},
	}
	rules, err := GenerateRules(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence > 1 {
			t.Fatalf("rule with confidence > 1 escaped: %v", r)
		}
	}
	if len(rules) != 1 || rules[0].Antecedent.Key() != "1=1" {
		t.Fatalf("rules = %v, want only the consistent direction", rules)
	}
}

func TestRuleLift(t *testing.T) {
	// sup(a)=0.5, sup(b)=0.4, sup(ab)=0.35:
	// a⇒b: conf 0.7, lift 0.7/0.4 = 1.75; b⇒a: conf 0.875, lift 1.75.
	a, _ := NewItemset(Item{0, 0})
	b, _ := NewItemset(Item{1, 1})
	ab, _ := NewItemset(Item{0, 0}, Item{1, 1})
	res := &Result{
		MinSupport: 0.1,
		ByLength: [][]FrequentItemset{
			{{Items: a, Support: 0.5}, {Items: b, Support: 0.4}},
			{{Items: ab, Support: 0.35}},
		},
	}
	rules, err := GenerateRules(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if math.Abs(r.Lift-1.75) > 1e-12 {
			t.Fatalf("rule %v lift %v, want 1.75", r, r.Lift)
		}
	}
}

func TestRuleLiftZeroWhenConsequentUnknown(t *testing.T) {
	// The consequent {b} is not in the frequent set (reconstruction
	// noise); lift cannot be computed and must be zero.
	res := &Result{
		MinSupport: 0.1,
		ByLength: [][]FrequentItemset{
			{{Items: Itemset{{0, 0}}, Support: 0.5}},
			{{Items: Itemset{{0, 0}, {1, 1}}, Support: 0.4}},
		},
	}
	rules, err := GenerateRules(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Lift != 0 {
		t.Fatalf("rules = %v", rules)
	}
}
