package mining

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// Batched-ingest contract suite: IngestBatch must be indistinguishable
// from a sequence of single-record Ingest calls (same counts, same
// version, same supports), must reject a batch with any invalid record
// while leaving the counter provably untouched, and must hold those
// properties for every scheme and under concurrency.

// batchChunks splits records into chunks of varying sizes (including
// size 1 and a chunk larger than the shard count) so the partition
// arithmetic is exercised at its edges.
func batchChunks(records [][]Item) [][][]Item {
	sizes := []int{1, 3, 7, 64, 256, 1000}
	var out [][][]Item
	for lo, i := 0, 0; lo < len(records); i++ {
		hi := lo + sizes[i%len(sizes)]
		if hi > len(records) {
			hi = len(records)
		}
		out = append(out, records[lo:hi])
		lo = hi
	}
	return out
}

// TestLiveSchemesIngestBatchMatchesSequential: for every scheme, a
// counter fed via IngestBatch in ragged chunks must agree exactly with
// a counter fed the same records one Ingest at a time — N, Version,
// Supports, and PerturbedSupports at arities 0..3.
func TestLiveSchemesIngestBatchMatchesSequential(t *testing.T) {
	db := buildSkewedDB(t, 3000, 181)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(181)))
			seq, err := NewShardedCounter(ls.scheme, 5)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := NewShardedCounter(ls.scheme, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range records {
				if err := seq.Ingest(rec); err != nil {
					t.Fatal(err)
				}
			}
			for _, chunk := range batchChunks(records) {
				if err := bat.IngestBatch(chunk); err != nil {
					t.Fatal(err)
				}
			}
			if seq.N() != bat.N() {
				t.Fatalf("N: sequential %d, batched %d", seq.N(), bat.N())
			}
			if seq.Version() != bat.Version() {
				t.Fatalf("Version: sequential %d, batched %d", seq.Version(), bat.Version())
			}
			seqSup, err := seq.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			batSup, err := bat.Supports(probes)
			if err != nil {
				t.Fatal(err)
			}
			seqPert, _, err := seq.PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			batPert, _, err := bat.PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			for i := range probes {
				if math.Abs(seqSup[i]-batSup[i]) > 1e-9 {
					t.Errorf("probe %d: support sequential %g, batched %g", i, seqSup[i], batSup[i])
				}
				if math.Abs(seqPert[i]-batPert[i]) > 1e-9 {
					t.Errorf("probe %d: perturbed support sequential %g, batched %g", i, seqPert[i], batPert[i])
				}
			}
		})
	}
}

// corruptBatch deep-copies records and corrupts the middle record with
// the given mutation, so the original perturbed stream stays valid.
func corruptBatch(records [][]Item, mutate func([]Item) []Item) [][]Item {
	out := make([][]Item, len(records))
	for i, rec := range records {
		out[i] = append([]Item(nil), rec...)
	}
	mid := len(out) / 2
	out[mid] = mutate(out[mid])
	return out
}

// TestIngestBatchRejectsInvalidAtomically: a batch containing one
// invalid record — mid-batch, after many valid ones — must fail with
// ErrMining and leave N, the snapshot version, and every support
// exactly unchanged. This is the regression test for the service
// layer's partial-ingest bug: atomicity lives in the counter, not in
// handler bookkeeping.
func TestIngestBatchRejectsInvalidAtomically(t *testing.T) {
	db := buildSkewedDB(t, 1200, 191)
	schema := db.Schema
	probes := probeItemsets(t, schema)
	corruptions := []struct {
		name   string
		mutate func([]Item) []Item
	}{
		{"value-out-of-range", func(rec []Item) []Item {
			rec[0].Value = 1 << 20
			return rec
		}},
		{"attr-out-of-range", func(rec []Item) []Item {
			rec[0].Attr = schema.M() + 3
			return rec
		}},
		{"duplicate-item", func(rec []Item) []Item {
			return append(rec, rec[0])
		}},
	}
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(191)))
			ctr, err := NewShardedCounter(ls.scheme, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := ctr.IngestBatch(records[:800]); err != nil {
				t.Fatal(err)
			}
			wantN, wantVer := ctr.N(), ctr.Version()
			wantSup, _, err := ctr.PerturbedSupports(probes)
			if err != nil {
				t.Fatal(err)
			}
			for _, cr := range corruptions {
				t.Run(cr.name, func(t *testing.T) {
					bad := corruptBatch(records[800:], cr.mutate)
					err := ctr.IngestBatch(bad)
					if !errors.Is(err, ErrMining) {
						t.Fatalf("IngestBatch with corrupt record: got %v, want ErrMining", err)
					}
					if got := ctr.N(); got != wantN {
						t.Errorf("N after rejected batch: got %d, want %d", got, wantN)
					}
					if got := ctr.Version(); got != wantVer {
						t.Errorf("Version after rejected batch: got %d, want %d", got, wantVer)
					}
					gotSup, _, err := ctr.PerturbedSupports(probes)
					if err != nil {
						t.Fatal(err)
					}
					for i := range probes {
						if gotSup[i] != wantSup[i] {
							t.Errorf("probe %d: perturbed support changed after rejected batch: got %g, want %g", i, gotSup[i], wantSup[i])
						}
					}
				})
			}
			// An empty batch is a no-op, not an error, and must not
			// advance the version.
			if err := ctr.IngestBatch(nil); err != nil {
				t.Fatalf("IngestBatch(nil): %v", err)
			}
			if got := ctr.Version(); got != wantVer {
				t.Errorf("Version after empty batch: got %d, want %d", got, wantVer)
			}
		})
	}
}

// TestIngestBatchConcurrent: concurrent IngestBatch and single-record
// Ingest callers must account for every record exactly once, and
// SnapshotVersioned must keep its contract (the snapshot is at least
// as new as its version) while batches land mid-read.
func TestIngestBatchConcurrent(t *testing.T) {
	db := buildSkewedDB(t, 2000, 201)
	schema := db.Schema
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(201)))
			ctr, err := NewShardedCounter(ls.scheme, 4)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			const workers = 4
			per := len(records) / workers
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(part [][]Item, batched bool) {
					defer wg.Done()
					if batched {
						for lo := 0; lo < len(part); lo += 97 {
							hi := lo + 97
							if hi > len(part) {
								hi = len(part)
							}
							if err := ctr.IngestBatch(part[lo:hi]); err != nil {
								t.Error(err)
								return
							}
						}
					} else {
						for _, rec := range part {
							if err := ctr.Ingest(rec); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(records[w*per:(w+1)*per], w%2 == 0)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 50; i++ {
					snap, ver := ctr.SnapshotVersioned()
					if uint64(snap.N()) < ver {
						t.Errorf("snapshot older than its version: N=%d version=%d", snap.N(), ver)
						return
					}
				}
			}()
			wg.Wait()
			<-done
			want := workers * per
			if got := ctr.N(); got != want {
				t.Errorf("N after concurrent ingest: got %d, want %d", got, want)
			}
			if got := ctr.Version(); got != uint64(want) {
				t.Errorf("Version after concurrent ingest: got %d, want %d", got, want)
			}
		})
	}
}

// TestIngestBatchAllocs: applying a prepared batch must cost O(1)
// allocations in the batch size — the prepare step owns the only
// per-batch buffers. 256 records must stay under a small constant
// budget for every scheme.
func TestIngestBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is not meaningful under -short")
	}
	db := buildSkewedDB(t, 256, 211)
	schema := db.Schema
	for _, ls := range liveSchemes(t, schema) {
		t.Run(ls.name, func(t *testing.T) {
			records := ls.perturb(t, db, rand.New(rand.NewSource(211)))
			ctr, err := NewShardedCounter(ls.scheme, 4)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up so map growth in the boolean cores reaches steady
			// state before counting.
			for i := 0; i < 4; i++ {
				if err := ctr.IngestBatch(records); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(10, func() {
				if err := ctr.IngestBatch(records); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 16 {
				t.Errorf("IngestBatch of %d records: %.1f allocs/batch, want <= 16", len(records), allocs)
			}
		})
	}
}
