package mining

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// buildSkewedDB creates a database with planted frequent itemsets: 40% of
// records are {0,0,0}, 25% are {1,1,1}, the rest uniform noise.
func buildSkewedDB(t *testing.T, n int, seed int64) *dataset.Database {
	t.Helper()
	s := miningSchema(t)
	db := dataset.NewDatabase(s, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		var rec dataset.Record
		switch r := rng.Float64(); {
		case r < 0.40:
			rec = dataset.Record{0, 0, 0}
		case r < 0.65:
			rec = dataset.Record{1, 1, 1}
		default:
			rec = dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
		}
		if err := db.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAprioriExactFindsPlantedItemsets(t *testing.T) {
	db := buildSkewedDB(t, 20000, 1)
	res, err := Apriori(&ExactCounter{DB: db}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ByLength) != 3 {
		t.Fatalf("max frequent length %d, want 3", len(res.ByLength))
	}
	all := res.All()
	f, ok := all["0=0,1=0,2=0"]
	if !ok {
		t.Fatal("planted itemset {0,0,0} not found")
	}
	if math.Abs(f.Support-0.415) > 0.02 { // 0.40 + noise hitting it
		t.Fatalf("support of planted itemset = %v", f.Support)
	}
	if _, ok := all["0=2,1=1"]; ok {
		t.Fatal("itemset {a=2,b=1} should not be frequent at 20%")
	}
	// Downward closure: every subset of a frequent itemset is frequent.
	for _, level := range res.ByLength[1:] {
		for _, fi := range level {
			for _, sub := range fi.Items.Subsets() {
				if _, ok := all[sub.Key()]; !ok {
					t.Fatalf("closure violated: %s frequent but subset %s missing", fi.Items.Key(), sub.Key())
				}
			}
		}
	}
}

func TestAprioriSupportsAreExact(t *testing.T) {
	db := buildSkewedDB(t, 5000, 2)
	res, err := Apriori(&ExactCounter{DB: db}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Verify every reported support by brute force.
	for _, level := range res.ByLength {
		for _, f := range level {
			var count int
			for _, rec := range db.Records {
				if f.Items.Supports(rec) {
					count++
				}
			}
			want := float64(count) / float64(db.N())
			if math.Abs(f.Support-want) > 1e-12 {
				t.Fatalf("support of %s = %v, brute force %v", f.Items.Key(), f.Support, want)
			}
		}
	}
}

func TestAprioriCompletenessVsBruteForce(t *testing.T) {
	// Enumerate ALL possible itemsets on the small schema and confirm
	// Apriori finds exactly the frequent ones.
	db := buildSkewedDB(t, 3000, 3)
	sc := db.Schema
	const minSup = 0.1
	res, err := Apriori(&ExactCounter{DB: db}, minSup)
	if err != nil {
		t.Fatal(err)
	}
	found := res.All()

	threshold := minSup * float64(db.N())
	var enumerate func(attr int, cur Itemset)
	checked := 0
	enumerate = func(attr int, cur Itemset) {
		if len(cur) > 0 {
			var count float64
			for _, rec := range db.Records {
				if cur.Supports(rec) {
					count++
				}
			}
			_, ok := found[cur.Key()]
			if count >= threshold && !ok {
				t.Fatalf("frequent itemset %s (count %v) missed", cur.Key(), count)
			}
			if count < threshold && ok {
				t.Fatalf("infrequent itemset %s (count %v) reported", cur.Key(), count)
			}
			checked++
		}
		for a := attr; a < sc.M(); a++ {
			for v := 0; v < sc.Attrs[a].Cardinality(); v++ {
				enumerate(a+1, append(append(Itemset{}, cur...), Item{a, v}))
			}
		}
	}
	enumerate(0, nil)
	if checked == 0 {
		t.Fatal("enumeration did not run")
	}
}

func TestAprioriParamValidation(t *testing.T) {
	db := buildSkewedDB(t, 100, 4)
	for _, ms := range []float64{0, -0.1, 1.5} {
		if _, err := Apriori(&ExactCounter{DB: db}, ms); !errors.Is(err, ErrMining) {
			t.Errorf("minSupport %v accepted", ms)
		}
	}
	empty := dataset.NewDatabase(db.Schema, 0)
	if _, err := Apriori(&ExactCounter{DB: empty}, 0.1); !errors.Is(err, ErrMining) {
		t.Fatal("empty database accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	db := buildSkewedDB(t, 2000, 5)
	res, err := Apriori(&ExactCounter{DB: db}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Counts()
	if len(counts) == 0 || counts[0] == 0 {
		t.Fatalf("Counts = %v", counts)
	}
	f, ok := res.Lookup("0=0")
	if !ok || f.Support <= 0 {
		t.Fatal("Lookup of frequent 1-itemset failed")
	}
	if _, ok := res.Lookup("0=0,1=1,2=3"); ok {
		t.Fatal("Lookup invented an itemset")
	}
}

func TestGammaCounterReconstruction(t *testing.T) {
	db := buildSkewedDB(t, 60000, 6)
	sc := db.Schema
	m, err := core.NewGammaDiagonal(sc.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewGammaPerturber(sc, m)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(66)))
	if err != nil {
		t.Fatal(err)
	}
	gc, err := NewGammaCounter(pdb, m)
	if err != nil {
		t.Fatal(err)
	}
	exact := &ExactCounter{DB: db}
	cands := []Itemset{
		{{0, 0}},
		{{0, 0}, {1, 0}},
		{{0, 0}, {1, 0}, {2, 0}},
		{{0, 1}, {2, 1}},
	}
	got, err := gc.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Supports(cands)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		relTol := 0.10 * float64(db.N()) // within 10% of N absolute
		if math.Abs(got[i]-want[i]) > relTol {
			t.Fatalf("candidate %s: reconstructed %v vs true %v", cands[i].Key(), got[i], want[i])
		}
	}
}

func TestGammaCounterValidation(t *testing.T) {
	db := buildSkewedDB(t, 100, 7)
	wrong, _ := core.NewGammaDiagonal(db.Schema.DomainSize()+1, 19)
	if _, err := NewGammaCounter(db, wrong); !errors.Is(err, ErrMining) {
		t.Fatal("order mismatch accepted")
	}
}

func TestAprioriWithGammaCounterEndToEnd(t *testing.T) {
	db := buildSkewedDB(t, 60000, 8)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	p, _ := core.NewGammaPerturber(sc, m)
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	gc, err := NewGammaCounter(pdb, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Apriori(gc, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	all := res.All()
	if _, ok := all["0=0,1=0,2=0"]; !ok {
		t.Fatal("reconstruction missed the dominant planted 3-itemset")
	}
	f := all["0=0,1=0,2=0"]
	if math.Abs(f.Support-0.415) > 0.05 {
		t.Fatalf("reconstructed support %v, want ≈0.415", f.Support)
	}
}

func TestMaskCounterEndToEnd(t *testing.T) {
	db := buildSkewedDB(t, 60000, 10)
	bm, err := core.NewBoolMapping(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// Mild privacy (high gamma) so the small-domain test stays accurate.
	sch, err := core.NewMaskScheme(bm, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	bdb, err := sch.PerturbDatabase(db, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	mc := &MaskCounter{Perturbed: bdb, Scheme: sch}
	if mc.N() != db.N() || mc.Schema() != db.Schema {
		t.Fatal("counter metadata wrong")
	}
	res, err := Apriori(mc, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := res.All()["0=0,1=0,2=0"]
	if !ok {
		t.Fatal("MASK mining missed the planted 3-itemset")
	}
	if math.Abs(f.Support-0.415) > 0.05 {
		t.Fatalf("MASK support %v, want ≈0.415", f.Support)
	}
}

func TestCutPasteCounterEndToEnd(t *testing.T) {
	db := buildSkewedDB(t, 60000, 12)
	bm, err := core.NewBoolMapping(db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// Gentle parameters (large K keeps most items).
	sch, err := core.NewCutPasteScheme(bm, 10, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	bdb, err := sch.PerturbDatabase(db, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	cc := &CutPasteCounter{Perturbed: bdb, Scheme: sch}
	if cc.N() != db.N() || cc.Schema() != db.Schema {
		t.Fatal("counter metadata wrong")
	}
	res, err := Apriori(cc, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := res.All()["0=0,1=0,2=0"]
	if !ok {
		t.Fatal("C&P mining missed the planted 3-itemset")
	}
	if math.Abs(f.Support-0.415) > 0.08 {
		t.Fatalf("C&P support %v, want ≈0.415", f.Support)
	}
}

func TestRandomizedGammaMiningEndToEnd(t *testing.T) {
	db := buildSkewedDB(t, 60000, 14)
	sc := db.Schema
	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	alpha := m.Diag / 2
	p, err := core.NewRandomizedGammaPerturber(sc, m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatal(err)
	}
	gc, err := NewGammaCounter(pdb, p.ExpectedMatrix())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Apriori(gc, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := res.All()["0=0,1=0,2=0"]
	if !ok {
		t.Fatal("RAN-GD mining missed the planted 3-itemset")
	}
	if math.Abs(f.Support-0.415) > 0.05 {
		t.Fatalf("RAN-GD support %v, want ≈0.415", f.Support)
	}
}

func TestAprioriOptionsValidation(t *testing.T) {
	db := buildSkewedDB(t, 100, 20)
	for _, relax := range []float64{0, -0.5, 1.5} {
		if _, err := AprioriWithOptions(&ExactCounter{DB: db}, 0.1, Options{CandidateRelaxation: relax}); !errors.Is(err, ErrMining) {
			t.Errorf("relaxation %v accepted", relax)
		}
	}
}

func TestAprioriRelaxationMatchesPlainOnExactData(t *testing.T) {
	// With exact counting, relaxation changes which CANDIDATES are
	// explored but never the reported frequent sets (downward closure
	// holds exactly).
	db := buildSkewedDB(t, 8000, 21)
	plain, err := Apriori(&ExactCounter{DB: db}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := AprioriWithOptions(&ExactCounter{DB: db}, 0.1, Options{CandidateRelaxation: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pa, ra := plain.All(), relaxed.All()
	if len(pa) != len(ra) {
		t.Fatalf("plain found %d, relaxed %d", len(pa), len(ra))
	}
	for k, f := range pa {
		g, ok := ra[k]
		if !ok || math.Abs(f.Support-g.Support) > 1e-12 {
			t.Fatalf("itemset %s differs between plain and relaxed", k)
		}
	}
}

func TestAprioriRelaxationReducesFalseNegatives(t *testing.T) {
	// Under noisy reconstruction, relaxed candidate retention must find
	// at least as many TRUE frequent itemsets as plain Apriori.
	db := buildSkewedDB(t, 60000, 22)
	sc := db.Schema
	truth, err := Apriori(&ExactCounter{DB: db}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	trueKeys := truth.All()

	m, _ := core.NewGammaDiagonal(sc.DomainSize(), 19)
	p, _ := core.NewGammaPerturber(sc, m)
	pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	gc, err := NewGammaCounter(pdb, m)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Apriori(gc, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := AprioriWithOptions(gc, 0.2, Options{CandidateRelaxation: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	hits := func(r *Result) int {
		n := 0
		for k := range r.All() {
			if _, ok := trueKeys[k]; ok {
				n++
			}
		}
		return n
	}
	if hits(relaxed) < hits(plain) {
		t.Fatalf("relaxation lost true itemsets: %d < %d", hits(relaxed), hits(plain))
	}
}

// TestAprioriMaxLen pins the level cap: a capped run reproduces exactly
// the first MaxLen levels of the unbounded run and never counts longer
// candidates, and an invalid cap is rejected.
func TestAprioriMaxLen(t *testing.T) {
	db := buildSkewedDB(t, 20000, 5)
	full, err := Apriori(&ExactCounter{DB: db}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.ByLength) < 2 {
		t.Fatalf("need multi-level data, got %d levels", len(full.ByLength))
	}
	for maxLen := 1; maxLen <= len(full.ByLength); maxLen++ {
		capped, err := AprioriWithOptions(&ExactCounter{DB: db}, 0.2, Options{CandidateRelaxation: 1, MaxLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		if len(capped.ByLength) != maxLen {
			t.Fatalf("maxlen=%d produced %d levels", maxLen, len(capped.ByLength))
		}
		for l := 0; l < maxLen; l++ {
			if len(capped.ByLength[l]) != len(full.ByLength[l]) {
				t.Fatalf("maxlen=%d level %d has %d itemsets, want %d", maxLen, l+1, len(capped.ByLength[l]), len(full.ByLength[l]))
			}
			for i, fi := range capped.ByLength[l] {
				want := full.ByLength[l][i]
				if fi.Items.Key() != want.Items.Key() || fi.Support != want.Support {
					t.Fatalf("maxlen=%d level %d itemset %d differs", maxLen, l+1, i)
				}
			}
		}
	}
	if _, err := AprioriWithOptions(&ExactCounter{DB: db}, 0.2, Options{CandidateRelaxation: 1, MaxLen: -1}); !errors.Is(err, ErrMining) {
		t.Fatal("negative maxlen accepted")
	}
}
