package mining

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
)

// CounterCore implementation for the gamma-diagonal scheme. The core is
// MaterializedGammaCounter (see materialized.go); this file adds the
// scheme-generic plumbing: item-list ingestion, the prepared-batch read
// path (validate/route once, fold only the subset histograms the batch
// touches one shard lock at a time, evaluate the Eq. 28 closed form
// across a worker pool), snapshot folding, joint-histogram extraction
// for replication deltas, and the v3 persistence hooks.

// Compile-time check: MaterializedGammaCounter is the gamma core.
var _ CounterCore = (*MaterializedGammaCounter)(nil)

// Scheme names the core's perturbation scheme.
func (c *MaterializedGammaCounter) Scheme() string { return SchemeGamma }

// Ingest adds one perturbed record given as its item list. The gamma
// scheme perturbs within the categorical domain, so a valid perturbed
// record carries exactly one item per attribute.
func (c *MaterializedGammaCounter) Ingest(items []Item) error {
	if len(items) != c.schema.M() {
		return fmt.Errorf("%w: gamma record carries %d items, schema has %d attributes", ErrMining, len(items), c.schema.M())
	}
	rec := make(dataset.Record, c.schema.M())
	seen := make([]bool, c.schema.M())
	for _, it := range items {
		if it.Attr < 0 || it.Attr >= c.schema.M() {
			return fmt.Errorf("%w: attribute %d out of range", ErrMining, it.Attr)
		}
		if seen[it.Attr] {
			return fmt.Errorf("%w: duplicate attribute %d in gamma record", ErrMining, it.Attr)
		}
		seen[it.Attr] = true
		rec[it.Attr] = it.Value
	}
	return c.Add(rec)
}

// gammaPrepared is a validated batch of dense categorical records. One
// backing array holds every record, so preparation costs two slice
// allocations per batch regardless of batch size.
type gammaPrepared struct {
	recs []dataset.Record
}

func (p gammaPrepared) recordCount() int { return len(p.recs) }

// prepareIngest validates each item-list record against the gamma
// contract (exactly one in-range item per attribute, no duplicates) and
// converts it to its dense record form. No counter state is read or
// written — errors leave every shard untouched.
func (c *MaterializedGammaCounter) prepareIngest(records [][]Item) (preparedIngest, error) {
	m := c.schema.M()
	recs := make([]dataset.Record, len(records))
	backing := make([]int, len(records)*m)
	for i, items := range records {
		if len(items) != m {
			return nil, fmt.Errorf("%w: record %d: gamma record carries %d items, schema has %d attributes", ErrMining, i, len(items), m)
		}
		rec := backing[i*m : (i+1)*m : (i+1)*m]
		for j := range rec {
			rec[j] = -1
		}
		for _, it := range items {
			if it.Attr < 0 || it.Attr >= m {
				return nil, fmt.Errorf("%w: record %d: attribute %d out of range", ErrMining, i, it.Attr)
			}
			if rec[it.Attr] != -1 {
				return nil, fmt.Errorf("%w: record %d: duplicate attribute %d in gamma record", ErrMining, i, it.Attr)
			}
			if it.Value < 0 || it.Value >= c.schema.Attrs[it.Attr].Cardinality() {
				return nil, fmt.Errorf("%w: record %d: value %d out of range for attribute %q", ErrMining, i, it.Value, c.schema.Attrs[it.Attr].Name)
			}
			rec[it.Attr] = it.Value
		}
		recs[i] = rec
	}
	return gammaPrepared{recs: recs}, nil
}

// ingestPrepared folds records [lo, hi) of a prepared batch into every
// subset histogram under one lock acquisition. The loop runs mask-major
// so each histogram (and its column list) stays hot across the whole
// span — the cache behavior per-record Add cannot have.
func (c *MaterializedGammaCounter) ingestPrepared(p preparedIngest, lo, hi int) time.Duration {
	recs := p.(gammaPrepared).recs[lo:hi]
	cards := make([]int, c.schema.M())
	for j := range cards {
		cards[j] = c.schema.Attrs[j].Cardinality()
	}
	t0 := time.Now()
	c.mu.Lock()
	wait := time.Since(t0)
	defer c.mu.Unlock()
	for mask := 1; mask < len(c.hists); mask++ {
		cols, hist := c.cols[mask], c.hists[mask]
		for _, rec := range recs {
			idx := 0
			for _, j := range cols {
				idx = idx*cards[j] + rec[j]
			}
			hist[idx]++
		}
	}
	c.n += len(recs)
	return wait
}

// Merge additively combines another gamma core into this one. Because
// every subset histogram is a per-record sum, merging per-site counters
// reproduces the counters of the union of their submissions exactly.
// The two counters must share a compatibility fingerprint.
func (c *MaterializedGammaCounter) Merge(other CounterCore) error {
	if other == nil {
		return fmt.Errorf("%w: nil counter", ErrMining)
	}
	o, ok := other.(*MaterializedGammaCounter)
	if !ok {
		return fmt.Errorf("%w: cannot merge a %s counter into a %s counter", ErrMining, other.Scheme(), c.Scheme())
	}
	if c == o {
		return fmt.Errorf("%w: cannot merge a counter into itself", ErrMining)
	}
	// The fingerprint covers schema AND matrix, so it is checked even
	// when the two counters share a *Schema — equal schema pointers say
	// nothing about the distortion the counts were collected under.
	if c.Fingerprint() != o.Fingerprint() {
		return fmt.Errorf("%w: cannot merge counters with different schema or perturbation contract", ErrMining)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	o.mu.RLock()
	defer o.mu.RUnlock()
	for mask := 1; mask < len(c.hists); mask++ {
		addInto(c.hists[mask], o.hists[mask])
	}
	c.n += o.n
	return nil
}

// foldInto adds this core's state into dst (a fresh unshared core).
func (c *MaterializedGammaCounter) foldInto(dst CounterCore) {
	d := dst.(*MaterializedGammaCounter)
	c.mu.RLock()
	defer c.mu.RUnlock()
	d.n += c.n
	for mask := 1; mask < len(c.hists); mask++ {
		addInto(d.hists[mask], c.hists[mask])
	}
}

// addJointInto folds the full-domain joint histogram (the top subset
// histogram) into the sparse accumulator and returns the record count.
func (c *MaterializedGammaCounter) addJointInto(joint map[uint64]float64) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	full := c.hists[len(c.hists)-1]
	for idx, v := range full {
		if v != 0 {
			joint[uint64(idx)] += v
		}
	}
	return c.n
}

// addInto accumulates src into dst element-wise — the histogram fold
// shared by the snapshot, query-merge, and state-restore paths.
func addInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

// shardedCandidate is the per-candidate routing computed during the
// parallel validation pass.
type shardedCandidate struct {
	mask int
	idx  int
}

// gammaBatch is a prepared candidate batch over gamma cores: validated
// routings plus the merged subset histograms the batch touches.
type gammaBatch struct {
	schema   *dataset.Schema
	matrix   core.UniformMatrix
	subSizes []int
	routed   []shardedCandidate
	merged   map[int][]float64
	total    int
}

// prepare validates the batch and computes each candidate's (subset
// mask, histogram index) across a worker pool — candidate batches come
// from Apriori passes, which can be thousands of itemsets wide.
func (c *MaterializedGammaCounter) prepare(candidates []Itemset) (counterBatch, error) {
	b := &gammaBatch{
		schema:   c.schema,
		matrix:   c.matrix,
		subSizes: c.subSizes,
		routed:   make([]shardedCandidate, len(candidates)),
	}
	if err := forEachSpanPooled(len(candidates), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			cand := candidates[i]
			// Validate enforces canonical strictly-increasing attribute
			// order, so the mask below cannot alias two items.
			if err := cand.Validate(c.schema); err != nil {
				return err
			}
			mask := 0
			idx := 0
			for _, it := range cand {
				mask |= 1 << uint(it.Attr)
				idx = idx*c.schema.Attrs[it.Attr].Cardinality() + it.Value
			}
			b.routed[i] = shardedCandidate{mask: mask, idx: idx}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	b.merged = make(map[int][]float64)
	for _, rc := range b.routed {
		if rc.mask != 0 && b.merged[rc.mask] == nil {
			b.merged[rc.mask] = make([]float64, b.subSizes[rc.mask])
		}
	}
	return b, nil
}

// gather merges, under this core's lock, only the subset histograms the
// routed batch touches. Shard-local (n, hists) pairs are internally
// consistent, so their sum reconstructs counts for a valid record set.
func (c *MaterializedGammaCounter) gather(cb counterBatch) {
	b := cb.(*gammaBatch)
	c.mu.RLock()
	defer c.mu.RUnlock()
	b.total += c.n
	for mask, dst := range b.merged {
		addInto(dst, c.hists[mask])
	}
}

func (b *gammaBatch) records() int { return b.total }

// rawCount returns candidate i's perturbed match count Y_L. Mask 0 (the
// empty itemset) is supported by every record, so its Y_L is N itself.
func (b *gammaBatch) rawCount(i int) float64 {
	rc := b.routed[i]
	if rc.mask == 0 {
		return float64(b.total)
	}
	return b.merged[rc.mask][rc.idx]
}

// raw resolves every candidate's raw perturbed match count.
func (b *gammaBatch) raw() ([]float64, int) {
	ys := make([]float64, len(b.routed))
	for i := range b.routed {
		ys[i] = b.rawCount(i)
	}
	return ys, b.total
}

// marginals computes one Eq. 28 marginal matrix per distinct touched
// subset mask.
func (b *gammaBatch) marginals() (map[int]core.UniformMatrix, error) {
	out := make(map[int]core.UniformMatrix)
	for _, rc := range b.routed {
		if rc.mask == 0 {
			continue
		}
		if _, ok := out[rc.mask]; ok {
			continue
		}
		marg, err := b.matrix.Marginal(b.subSizes[rc.mask])
		if err != nil {
			return nil, err
		}
		out[rc.mask] = marg
	}
	return out, nil
}

// supports evaluates the Eq. 28 closed form across a worker pool. The
// empty itemset is answered exactly.
func (b *gammaBatch) supports() ([]float64, error) {
	marginals, err := b.marginals()
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(b.routed))
	fn := float64(b.total)
	if err := forEachSpanPooled(len(b.routed), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rc := b.routed[i]
			if rc.mask == 0 {
				out[i] = b.rawCount(i) // exact, no reconstruction noise
				continue
			}
			marg := marginals[rc.mask]
			out[i] = (b.rawCount(i) - marg.Off*fn) / (marg.Diag - marg.Off)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// estimates resolves each filter into (point estimate, stderr): the
// Eq. 28 inversion X̂ = (Y_L − ō·N)/(d̄ − ō) with the Poisson-binomial
// standard error √(N·p̂(1−p̂))/(d̄ − ō), p̂ = Y_L/N — the same estimator
// the record-scan query engine uses, so the two paths agree exactly.
func (b *gammaBatch) estimates() ([]PointEstimate, error) {
	if b.total <= 0 {
		return nil, fmt.Errorf("%w: empty counter", ErrMining)
	}
	marginals, err := b.marginals()
	if err != nil {
		return nil, err
	}
	out := make([]PointEstimate, len(b.routed))
	n := float64(b.total)
	for i, rc := range b.routed {
		if rc.mask == 0 {
			// Everything matches; no reconstruction noise.
			out[i] = PointEstimate{Count: n}
			continue
		}
		marg := marginals[rc.mask]
		a := marg.Diag - marg.Off
		if a == 0 {
			return nil, fmt.Errorf("%w: singular reconstruction matrix", ErrMining)
		}
		y := b.rawCount(i)
		est := (y - marg.Off*n) / a
		phat := y / n
		stderr := math.Sqrt(n*phat*(1-phat)) / a
		out[i] = PointEstimate{Count: est, StdErr: stderr}
	}
	return out, nil
}

// forEachSpanPooled runs fn over contiguous spans of [0, n) on a worker
// pool (core.ForEachSpan), capping the worker count so small batches run
// inline — goroutine scheduling would dominate the arithmetic.
func forEachSpanPooled(n int, fn func(lo, hi int) error) error {
	workers := runtime.GOMAXPROCS(0)
	const minSpan = 64
	if workers > n/minSpan {
		workers = n / minSpan
	}
	if workers <= 1 {
		return fn(0, n)
	}
	return core.ForEachSpan(n, workers, func(_, lo, hi int) error { return fn(lo, hi) })
}
