package mining

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
)

// MaterializedGammaCounter is an incremental variant of GammaCounter: it
// maintains the marginal histogram of EVERY attribute subset as records
// arrive, so mining queries never rescan the database. Insertion costs
// O(M·2^M) per record (fine for the paper's M ≤ 7; capped at M ≤ 16);
// Supports then answers each candidate with a histogram lookup plus the
// Eq. 28 closed form. It is safe for concurrent use — built for the
// long-lived collection service, where submissions and mining queries
// interleave.
type MaterializedGammaCounter struct {
	schema *dataset.Schema
	matrix core.UniformMatrix

	// cols[mask] lists the attribute positions of subset mask; hists and
	// subSizes are parallel.
	cols     [][]int
	subSizes []int

	mu    sync.RWMutex
	n     int
	hists [][]float64
}

// maxMaterializedAttrs bounds the 2^M memory/insert blowup.
const maxMaterializedAttrs = 16

// NewMaterializedGammaCounter allocates every subset histogram.
func NewMaterializedGammaCounter(schema *dataset.Schema, m core.UniformMatrix) (*MaterializedGammaCounter, error) {
	if schema.M() > maxMaterializedAttrs {
		return nil, fmt.Errorf("%w: %d attributes exceeds materialization cap %d", ErrMining, schema.M(), maxMaterializedAttrs)
	}
	if m.N != schema.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain %d", ErrMining, m.N, schema.DomainSize())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	nMasks := 1 << uint(schema.M())
	c := &MaterializedGammaCounter{
		schema:   schema,
		matrix:   m,
		cols:     make([][]int, nMasks),
		subSizes: make([]int, nMasks),
		hists:    make([][]float64, nMasks),
	}
	for mask := 1; mask < nMasks; mask++ {
		var cols []int
		for j := 0; j < schema.M(); j++ {
			if mask&(1<<uint(j)) != 0 {
				cols = append(cols, j)
			}
		}
		size, err := schema.SubdomainSize(cols)
		if err != nil {
			return nil, err
		}
		c.cols[mask] = cols
		c.subSizes[mask] = size
		c.hists[mask] = make([]float64, size)
	}
	return c, nil
}

// Add ingests one (already perturbed) record, updating every subset
// histogram.
func (c *MaterializedGammaCounter) Add(rec dataset.Record) error {
	if err := c.schema.Validate(rec); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for mask := 1; mask < len(c.hists); mask++ {
		idx := 0
		for _, j := range c.cols[mask] {
			idx = idx*c.schema.Attrs[j].Cardinality() + rec[j]
		}
		c.hists[mask][idx]++
	}
	c.n++
	return nil
}

// AddDatabase ingests every record of a perturbed database.
func (c *MaterializedGammaCounter) AddDatabase(db *dataset.Database) error {
	return addDatabase(c.schema, c.Add, db)
}

// addDatabase feeds every record of db through add, shared by the
// single-striped and sharded counters.
func addDatabase(schema *dataset.Schema, add func(dataset.Record) error, db *dataset.Database) error {
	if db.Schema != schema {
		return fmt.Errorf("%w: database schema does not match counter schema", ErrMining)
	}
	for i, rec := range db.Records {
		if err := add(rec); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	return nil
}

// N returns the number of ingested records.
func (c *MaterializedGammaCounter) N() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// Schema returns the counter's schema.
func (c *MaterializedGammaCounter) Schema() *dataset.Schema { return c.schema }

// Snapshot returns a frozen deep copy of the counter. Mining a snapshot
// guarantees every Apriori pass sees the same record count even while
// submissions keep arriving on the live counter.
func (c *MaterializedGammaCounter) Snapshot() *MaterializedGammaCounter {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cp := &MaterializedGammaCounter{
		schema:   c.schema,
		matrix:   c.matrix,
		cols:     c.cols,     // immutable after construction
		subSizes: c.subSizes, // immutable after construction
		n:        c.n,
		hists:    make([][]float64, len(c.hists)),
	}
	for mask := 1; mask < len(c.hists); mask++ {
		h := make([]float64, len(c.hists[mask]))
		copy(h, c.hists[mask])
		cp.hists[mask] = h
	}
	return cp
}

// route validates a candidate and computes its (subset mask, histogram
// index) — the single routing used by the reconstructed and raw support
// paths, so the two can never diverge.
func (c *MaterializedGammaCounter) route(cand Itemset) (mask, idx int, err error) {
	// Validate enforces canonical strictly-increasing attribute order,
	// so the mask cannot alias two items; the OnesCount check is a
	// belt-and-suspenders guard.
	if err := cand.Validate(c.schema); err != nil {
		return 0, 0, err
	}
	for _, it := range cand {
		mask |= 1 << uint(it.Attr)
		idx = idx*c.schema.Attrs[it.Attr].Cardinality() + it.Value
	}
	if bits.OnesCount(uint(mask)) != cand.Len() {
		return 0, 0, fmt.Errorf("%w: duplicate attribute in candidate %s", ErrMining, cand.Key())
	}
	return mask, idx, nil
}

// PerturbedSupports returns each candidate's RAW perturbed match count
// Y_L (the histogram cell before reconstruction) plus the record count
// N read under the same lock — the consistent (Y_L, N) pairs the
// counter-backed query estimator needs. The empty itemset is supported
// by every record, so its Y_L is N itself.
func (c *MaterializedGammaCounter) PerturbedSupports(candidates []Itemset) ([]float64, int, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]float64, len(candidates))
	for i, cand := range candidates {
		mask, idx, err := c.route(cand)
		if err != nil {
			return nil, 0, err
		}
		if mask == 0 {
			out[i] = float64(c.n)
			continue
		}
		out[i] = c.hists[mask][idx]
	}
	return out, c.n, nil
}

// Supports answers candidates from the materialized histograms with the
// Eq. 28 closed-form reconstruction.
func (c *MaterializedGammaCounter) Supports(candidates []Itemset) ([]float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]float64, len(candidates))
	n := float64(c.n)
	for i, cand := range candidates {
		mask, idx, err := c.route(cand)
		if err != nil {
			return nil, err
		}
		if mask == 0 {
			// Every record supports the empty itemset — exact, no
			// reconstruction noise (matching the sharded read path).
			out[i] = n
			continue
		}
		marg, err := c.matrix.Marginal(c.subSizes[mask])
		if err != nil {
			return nil, err
		}
		out[i] = (c.hists[mask][idx] - marg.Off*n) / (marg.Diag - marg.Off)
	}
	return out, nil
}
