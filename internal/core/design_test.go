package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestVerifyMatrixAcceptsGammaDiagonal(t *testing.T) {
	spec := PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	m, err := NewGammaDiagonal(10, 19)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMatrix(m.Dense(), spec); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyMatrixRejections(t *testing.T) {
	spec := PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	if err := VerifyMatrix(linalg.NewDense(2, 3), spec); !errors.Is(err, ErrMatrix) {
		t.Fatal("non-square accepted")
	}
	bad, _ := linalg.NewDenseFrom(2, 2, []float64{0.9, 0.3, 0.3, 0.7})
	if err := VerifyMatrix(bad, spec); !errors.Is(err, ErrMatrix) {
		t.Fatal("non-stochastic accepted")
	}
	// Identity has infinite amplification: violates any finite gamma.
	if err := VerifyMatrix(linalg.Identity(3), spec); !errors.Is(err, ErrMatrix) {
		t.Fatal("identity accepted under finite gamma")
	}
	// A matrix satisfying gamma=39 but not gamma=19.
	over, _ := NewGammaDiagonal(10, 39)
	if err := VerifyMatrix(over.Dense(), spec); !errors.Is(err, ErrMatrix) {
		t.Fatal("over-gamma matrix accepted")
	}
	if err := VerifyMatrix(over.Dense(), PrivacySpec{Rho1: 0.05, Rho2: 2}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestOptimalCond(t *testing.T) {
	c, err := OptimalCond(2000, 19)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(c, (19.0+1999)/18, 1e-12) {
		t.Fatalf("OptimalCond = %v", c)
	}
	m, _ := NewGammaDiagonal(2000, 19)
	if !approx(c, m.Cond(), 1e-12) {
		t.Fatal("gamma-diagonal does not attain the bound")
	}
	if _, err := OptimalCond(1, 19); !errors.Is(err, ErrMatrix) {
		t.Fatal("order 1 accepted")
	}
	if _, err := OptimalCond(5, 1); !errors.Is(err, ErrMatrix) {
		t.Fatal("gamma 1 accepted")
	}
}

func TestRandomConstrainedMatrixFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := PrivacySpec{Rho1: 0.05, Rho2: 0.50}
	for trial := 0; trial < 20; trial++ {
		a, err := RandomConstrainedMatrix(8, 19, 30, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMatrix(a, spec); err != nil {
			t.Fatalf("trial %d: generated matrix infeasible: %v", trial, err)
		}
		if !a.IsSymmetric(1e-9) {
			t.Fatalf("trial %d: generated matrix not symmetric", trial)
		}
	}
}

// TestOptimalityTheoremEmpirically probes Section 3's theorem with the
// library generator: no random feasible symmetric matrix beats the
// gamma-diagonal's condition number.
func TestOptimalityTheoremEmpirically(t *testing.T) {
	const n, gamma = 7, 9.0
	bound, err := OptimalCond(n, gamma)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		a, err := RandomConstrainedMatrix(n, gamma, 50, rng)
		if err != nil {
			t.Fatal(err)
		}
		c, err := linalg.Cond2Symmetric(a)
		if err != nil {
			continue
		}
		if c < bound-1e-9 {
			t.Fatalf("trial %d: found cond %v below theoretical optimum %v", trial, c, bound)
		}
	}
}

func TestRandomConstrainedMatrixErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, err := RandomConstrainedMatrix(1, 19, 10, rng); err == nil {
		t.Fatal("order 1 accepted")
	}
	if _, err := RandomConstrainedMatrix(5, 0.5, 10, rng); err == nil {
		t.Fatal("gamma < 1 accepted")
	}
}
