package core

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
)

// This file makes FRAPP's central methodological move — "first design
// matrices of the required type, then devise perturbation methods
// compatible with the chosen matrices" (Section 3) — available as an
// API: verify an arbitrary candidate matrix against a privacy spec,
// compute the theoretical optimum it competes against, and generate
// random constrained competitors for empirical comparison.

// VerifyMatrix checks that a is a valid FRAPP perturbation matrix for
// the spec: square, column-stochastic (Equation 1), and with row-entry
// ratios within the spec's γ (Equation 2).
func VerifyMatrix(a *linalg.Dense, spec PrivacySpec) error {
	gamma, err := spec.Gamma()
	if err != nil {
		return err
	}
	if !a.IsSquare() {
		r, c := a.Dims()
		return fmt.Errorf("%w: %dx%d not square", ErrMatrix, r, c)
	}
	if !a.IsStochasticColumns(1e-9) {
		return fmt.Errorf("%w: not column-stochastic (Equation 1)", ErrMatrix)
	}
	if amp := Amplification(a); amp > gamma*(1+1e-9) {
		return fmt.Errorf("%w: amplification %v exceeds gamma %v (Equation 2)", ErrMatrix, amp, gamma)
	}
	return nil
}

// OptimalCond returns the Section 3 lower bound on the condition number
// of any symmetric perturbation matrix of order n under the γ
// constraint: (γ+n−1)/(γ−1). The gamma-diagonal matrix attains it.
func OptimalCond(n int, gamma float64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("%w: order %d", ErrMatrix, n)
	}
	if gamma <= 1 {
		return 0, fmt.Errorf("%w: gamma %v", ErrMatrix, gamma)
	}
	return (gamma + float64(n) - 1) / (gamma - 1), nil
}

// RandomConstrainedMatrix draws a random symmetric column-stochastic
// matrix satisfying the γ constraint, by applying random sum-preserving
// symmetric perturbations to the gamma-diagonal matrix and keeping only
// feasible steps. Useful for empirically probing the Section 3
// optimality theorem and for ablation baselines.
func RandomConstrainedMatrix(n int, gamma float64, steps int, rng *rand.Rand) (*linalg.Dense, error) {
	gd, err := NewGammaDiagonal(n, gamma)
	if err != nil {
		return nil, err
	}
	a := gd.Dense()
	for s := 0; s < steps; s++ {
		i, j, l := rng.Intn(n), rng.Intn(n), rng.Intn(n)
		if i == j || j == l || i == l {
			continue
		}
		eps := (rng.Float64() - 0.5) * gd.Off * 0.5
		// Symmetric update preserving all row and column sums:
		// add eps to (i,j)&(j,i), subtract from (i,l),(l,i),(j,l),(l,j),
		// add back on (j,j) and (l,l).
		trial := a.Clone()
		trial.Add(i, j, eps)
		trial.Add(j, i, eps)
		trial.Add(i, l, -eps)
		trial.Add(l, i, -eps)
		trial.Add(j, l, -eps)
		trial.Add(l, j, -eps)
		trial.Add(j, j, eps)
		trial.Add(l, l, eps)
		if !trial.IsStochasticColumns(1e-9) {
			continue
		}
		if Amplification(trial) > gamma {
			continue
		}
		a = trial
	}
	return a, nil
}
