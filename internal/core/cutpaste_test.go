package core

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func cpScheme(t *testing.T, k int, rho float64) (*CutPasteScheme, *BoolMapping, *dataset.Schema) {
	t.Helper()
	s := testSchema(t)
	m, err := NewBoolMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewCutPasteScheme(m, k, rho)
	if err != nil {
		t.Fatal(err)
	}
	return sch, m, s
}

func TestCutPasteValidation(t *testing.T) {
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	if _, err := NewCutPasteScheme(m, -1, 0.5); !errors.Is(err, ErrPerturb) {
		t.Fatal("negative K accepted")
	}
	for _, rho := range []float64{0, 1, -0.1, 1.5} {
		if _, err := NewCutPasteScheme(m, 2, rho); !errors.Is(err, ErrPerturb) {
			t.Errorf("rho = %v accepted", rho)
		}
	}
}

func TestSelectSizePMFSumsToOne(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5, 10} {
		for _, rho := range []float64{0.1, 0.494, 0.9} {
			sch, _, _ := cpScheme(t, k, rho)
			pmf := sch.SelectSizePMF()
			var sum float64
			for _, p := range pmf {
				if p < -1e-12 {
					t.Fatalf("K=%d rho=%v: negative mass %v", k, rho, p)
				}
				sum += p
			}
			if !approx(sum, 1, 1e-10) {
				t.Fatalf("K=%d rho=%v: pmf sums to %v", k, rho, sum)
			}
		}
	}
}

func TestSelectSizePMFMatchesSimulation(t *testing.T) {
	// Simulate the operator steps 1–3 and compare the survivor-count
	// distribution with the analytic p_M[z].
	sch, _, s := cpScheme(t, 3, 0.494)
	mAttr := s.M()
	pmf := sch.SelectSizePMF()
	rng := rand.New(rand.NewSource(42))
	const trials = 300000
	counts := make([]float64, mAttr+1)
	for i := 0; i < trials; i++ {
		w := rng.Intn(sch.K + 1)
		if w > mAttr {
			w = mAttr
		}
		z := w + stats.SampleBinomial(rng, mAttr-w, sch.Rho)
		counts[z]++
	}
	for z := 0; z <= mAttr; z++ {
		got := counts[z] / trials
		sigma := math.Sqrt(pmf[z]*(1-pmf[z])/trials) + 1e-9
		if math.Abs(got-pmf[z]) > 5*sigma {
			t.Fatalf("p_M[%d]: simulated %v vs analytic %v", z, got, pmf[z])
		}
	}
}

func TestTransitionProbNormalizes(t *testing.T) {
	// Σ over all possible outputs v of P(t→v) must be 1:
	// Σ_s C(M,s)·p_M[s]/C(M,s) · Σ_o C(Mb−M,o) ρ^o(1−ρ)^(Mb−M−o) = 1·1.
	sch, m, s := cpScheme(t, 2, 0.3)
	mAttr, mb := s.M(), m.Mb
	var total float64
	for overlap := 0; overlap <= mAttr; overlap++ {
		for outside := 0; outside <= mb-mAttr; outside++ {
			p, err := sch.TransitionProb(overlap, outside)
			if err != nil {
				t.Fatal(err)
			}
			total += p * stats.Choose(mAttr, overlap) * stats.Choose(mb-mAttr, outside)
		}
	}
	if !approx(total, 1, 1e-9) {
		t.Fatalf("transition probabilities sum to %v", total)
	}
	if _, err := sch.TransitionProb(-1, 0); !errors.Is(err, ErrPerturb) {
		t.Fatal("negative overlap accepted")
	}
	if _, err := sch.TransitionProb(0, 99); !errors.Is(err, ErrPerturb) {
		t.Fatal("excess outside accepted")
	}
}

func TestCutPastePaperParametersFeasible(t *testing.T) {
	// Section 7: for γ=19, K=3 and ρ=0.494 are reported as the chosen
	// C&P operating point (CENSUS, M=6). Verify the amplification
	// constraint holds there.
	s := dataset.CensusSchema()
	m, err := NewBoolMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewCutPasteScheme(m, 3, 0.494)
	if err != nil {
		t.Fatal(err)
	}
	amp := sch.Amplification()
	if amp > 19*1.02 {
		t.Fatalf("C&P amplification at paper parameters = %v, exceeds γ=19", amp)
	}
}

func TestFindRhoForGamma(t *testing.T) {
	s := dataset.CensusSchema()
	m, _ := NewBoolMapping(s)
	rho, err := FindRhoForGamma(m, 3, 19, 0.494)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-0.494) > 0.05 {
		t.Fatalf("feasible rho near paper value: got %v", rho)
	}
	// Smallest-feasible mode returns something feasible too.
	lo, err := FindRhoForGamma(m, 3, 19, 0)
	if err != nil {
		t.Fatal(err)
	}
	sch, _ := NewCutPasteScheme(m, 3, lo)
	if sch.Amplification() > 19+1e-6 {
		t.Fatalf("smallest feasible rho %v violates constraint", lo)
	}
}

func TestPartialSupportMatrixStochastic(t *testing.T) {
	sch, _, s := cpScheme(t, 3, 0.494)
	for l := 0; l <= s.M(); l++ {
		a, err := sch.PartialSupportMatrix(l)
		if err != nil {
			t.Fatal(err)
		}
		if !a.IsStochasticColumns(1e-9) {
			t.Fatalf("l=%d partial support matrix not column-stochastic", l)
		}
	}
	if _, err := sch.PartialSupportMatrix(-1); !errors.Is(err, ErrPerturb) {
		t.Fatal("negative l accepted")
	}
	if _, err := sch.PartialSupportMatrix(s.M() + 1); !errors.Is(err, ErrPerturb) {
		t.Fatal("oversize l accepted")
	}
}

func TestPartialSupportMatrixMatchesOperator(t *testing.T) {
	// Monte-Carlo the actual operator and compare the empirical
	// q'→q transition frequencies with the analytic matrix.
	sch, m, s := cpScheme(t, 2, 0.4)
	// Itemset of length 2: {a=1, b=0}.
	bitA, _ := m.Bit(0, 1)
	bitB, _ := m.Bit(1, 0)
	mask := uint64(1<<uint(bitA) | 1<<uint(bitB))
	l := 2

	// Original record {1, 0, 2} contains both items: q' = 2.
	db := dataset.NewDatabase(s, 0)
	const n = 200000
	for i := 0; i < n; i++ {
		if err := db.Append(dataset.Record{1, 0, 2}); err != nil {
			t.Fatal(err)
		}
	}
	bdb, err := sch.PerturbDatabase(db, rand.New(rand.NewSource(55)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, l+1)
	for _, row := range bdb.Rows {
		counts[bits.OnesCount64(row&mask)]++
	}
	a, err := sch.PartialSupportMatrix(l)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q <= l; q++ {
		got := counts[q] / n
		want := a.At(q, l) // column q' = 2
		sigma := math.Sqrt(want*(1-want)/n) + 1e-9
		if math.Abs(got-want) > 5*sigma {
			t.Fatalf("q'=2→q=%d: empirical %v vs analytic %v", q, got, want)
		}
	}
}

func TestPartialSupportMatrixMatchesOperatorPartialOverlap(t *testing.T) {
	// q' = 1 case: record contains one of the two itemset items.
	sch, m, s := cpScheme(t, 2, 0.4)
	bitA, _ := m.Bit(0, 1)
	bitB, _ := m.Bit(1, 0)
	mask := uint64(1<<uint(bitA) | 1<<uint(bitB))

	db := dataset.NewDatabase(s, 0)
	const n = 200000
	for i := 0; i < n; i++ {
		// {1, 1, 2}: contains a=1 but not b=0.
		if err := db.Append(dataset.Record{1, 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	bdb, err := sch.PerturbDatabase(db, rand.New(rand.NewSource(56)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 3)
	for _, row := range bdb.Rows {
		counts[bits.OnesCount64(row&mask)]++
	}
	a, _ := sch.PartialSupportMatrix(2)
	for q := 0; q <= 2; q++ {
		got := counts[q] / n
		want := a.At(q, 1)
		sigma := math.Sqrt(want*(1-want)/n) + 1e-9
		if math.Abs(got-want) > 5*sigma {
			t.Fatalf("q'=1→q=%d: empirical %v vs analytic %v", q, got, want)
		}
	}
}

func TestCutPasteEstimateSupportRecovers(t *testing.T) {
	sch, m, s := cpScheme(t, 2, 0.4)
	db := dataset.NewDatabase(s, 0)
	const n = 60000
	const trueSupport = 24000
	for i := 0; i < n; i++ {
		if i < trueSupport {
			if err := db.Append(dataset.Record{1, 0, 2}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := db.Append(dataset.Record{0, 1, 3}); err != nil {
				t.Fatal(err)
			}
		}
	}
	bdb, err := sch.PerturbDatabase(db, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	bitA, _ := m.Bit(0, 1)
	bitB, _ := m.Bit(1, 0)
	est, err := sch.EstimateSupport(bdb, []int{bitA, bitB})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-trueSupport) > 0.10*trueSupport {
		t.Fatalf("estimated support %v, want ≈%d", est, trueSupport)
	}
	all, err := sch.EstimateSupport(bdb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if all != n {
		t.Fatalf("empty itemset support %v", all)
	}
	if _, err := sch.EstimateSupport(bdb, []int{99}); !errors.Is(err, ErrPerturb) {
		t.Fatal("bad bit accepted")
	}
}

func TestCutPasteCondGrows(t *testing.T) {
	s := dataset.CensusSchema()
	m, _ := NewBoolMapping(s)
	sch, err := NewCutPasteScheme(m, 3, 0.494)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for l := 1; l <= 6; l++ {
		c, err := sch.Cond(l)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev {
			t.Fatalf("C&P condition number not increasing at l=%d: %v < %v", l, c, prev)
		}
		prev = c
	}
	if prev < 1e3 {
		t.Fatalf("C&P condition number at l=6 is %v; paper reports ~1e7 scale growth", prev)
	}
}

func TestCutPastePerturbPreservesUniverse(t *testing.T) {
	sch, m, s := cpScheme(t, 3, 0.494)
	db := dataset.NewDatabase(s, 0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		if err := db.Append(dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}); err != nil {
			t.Fatal(err)
		}
	}
	bdb, err := sch.PerturbDatabase(db, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range bdb.Rows {
		if row>>uint(m.Mb) != 0 {
			t.Fatalf("row %d has bits beyond the universe", i)
		}
	}
}
