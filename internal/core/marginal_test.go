package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// TestMarginalMatchesExplicitMarginalization is the key correctness check
// behind Section 6: the Eq. 28 closed-form marginal matrix must equal the
// true marginalization of the full perturbation matrix under the schema's
// sub-index mapping — i.e. for itemsets H, L over an attribute subset Cs,
// Ā[L][H] = Σ_{v ⊨ L} A[v][u] for any u ⊨ H.
func TestMarginalMatchesExplicitMarginalization(t *testing.T) {
	s := testSchema(t) // cards 3, 2, 4 → full domain 24
	m, err := NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	full := m.Dense()

	subsets := [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}}
	for _, cols := range subsets {
		nSub, err := s.SubdomainSize(cols)
		if err != nil {
			t.Fatal(err)
		}
		marg, err := m.Marginal(nSub)
		if err != nil {
			t.Fatal(err)
		}
		// Explicit marginalization: Ā[L][H] = Σ over v with
		// subIndex(v)=L of A[v][u], for every u with subIndex(u)=H.
		explicit := linalg.NewDense(nSub, nSub)
		counted := make([]bool, nSub)
		for u := 0; u < s.DomainSize(); u++ {
			uRec, err := s.Decode(u)
			if err != nil {
				t.Fatal(err)
			}
			h, err := s.SubIndex(uRec, cols)
			if err != nil {
				t.Fatal(err)
			}
			if counted[h] {
				continue // Eq 28 requires the sum be equal for ALL u ⊨ H; checked below
			}
			counted[h] = true
			for v := 0; v < s.DomainSize(); v++ {
				vRec, err := s.Decode(v)
				if err != nil {
					t.Fatal(err)
				}
				l, err := s.SubIndex(vRec, cols)
				if err != nil {
					t.Fatal(err)
				}
				explicit.Add(l, h, full.At(v, u))
			}
		}
		for l := 0; l < nSub; l++ {
			for h := 0; h < nSub; h++ {
				want := marg.Off
				if l == h {
					want = marg.Diag
				}
				if !approx(explicit.At(l, h), want, 1e-10) {
					t.Fatalf("cols %v: marginal[%d][%d] explicit %v vs Eq28 %v",
						cols, l, h, explicit.At(l, h), want)
				}
			}
		}
	}
}

// TestMarginalSumIndependentOfRepresentative verifies the premise of
// Eq. 28's derivation: Σ_{v ⊨ L} A[v][u] takes the same value for every
// u supporting the same H.
func TestMarginalSumIndependentOfRepresentative(t *testing.T) {
	s := testSchema(t)
	m, err := NewGammaDiagonal(s.DomainSize(), 7)
	if err != nil {
		t.Fatal(err)
	}
	full := m.Dense()
	cols := []int{1} // marginal over attribute b (2 values)
	for h := 0; h < 2; h++ {
		for l := 0; l < 2; l++ {
			seen := -1.0
			for u := 0; u < s.DomainSize(); u++ {
				uRec, _ := s.Decode(u)
				if hu, _ := s.SubIndex(uRec, cols); hu != h {
					continue
				}
				var sum float64
				for v := 0; v < s.DomainSize(); v++ {
					vRec, _ := s.Decode(v)
					if lv, _ := s.SubIndex(vRec, cols); lv == l {
						sum += full.At(v, u)
					}
				}
				if seen < 0 {
					seen = sum
				} else if !approx(sum, seen, 1e-12) {
					t.Fatalf("h=%d l=%d: sum %v differs from representative %v at u=%d", h, l, sum, seen, u)
				}
			}
		}
	}
}

// TestChainedPerturberMarginalDistribution checks the Section 5 sampler
// end to end at the marginal level on a larger schema: the empirical
// per-attribute transition frequencies must match the Eq. 28 marginal
// matrix entries.
func TestChainedPerturberMarginalDistribution(t *testing.T) {
	s := dataset.CensusSchema()
	m, err := NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	rec := dataset.Record{1, 2, 1, 0, 1, 0}
	rng := rand.New(rand.NewSource(404))
	const trials = 200000

	// Count per-attribute value frequencies of the perturbed output.
	counts := make([][]float64, s.M())
	for j := range counts {
		counts[j] = make([]float64, s.Attrs[j].Cardinality())
	}
	for i := 0; i < trials; i++ {
		v, err := p.Perturb(rec, rng)
		if err != nil {
			t.Fatal(err)
		}
		for j, val := range v {
			counts[j][val]++
		}
	}
	for j := 0; j < s.M(); j++ {
		nSub := s.Attrs[j].Cardinality()
		marg, err := m.Marginal(nSub)
		if err != nil {
			t.Fatal(err)
		}
		for val := 0; val < nSub; val++ {
			want := marg.Off
			if val == rec[j] {
				want = marg.Diag
			}
			got := counts[j][val] / trials
			if diff := got - want; diff > 0.01 || diff < -0.01 {
				t.Fatalf("attribute %d value %d: empirical %v vs marginal %v", j, val, got, want)
			}
		}
	}
}
