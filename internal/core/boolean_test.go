package core

import (
	"math/bits"
	"testing"

	"repro/internal/dataset"
)

func TestBoolMappingOffsets(t *testing.T) {
	s := testSchema(t) // cards 3, 2, 4 → Mb = 9
	m, err := NewBoolMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mb != 9 {
		t.Fatalf("Mb = %d, want 9", m.Mb)
	}
	if m.Offsets[0] != 0 || m.Offsets[1] != 3 || m.Offsets[2] != 5 {
		t.Fatalf("offsets = %v", m.Offsets)
	}
	b, err := m.Bit(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b != 8 {
		t.Fatalf("Bit(2,3) = %d, want 8", b)
	}
	if _, err := m.Bit(3, 0); err == nil {
		t.Fatal("bad attribute accepted")
	}
	if _, err := m.Bit(0, 3); err == nil {
		t.Fatal("bad value accepted")
	}
}

func TestBoolEncodeDecode(t *testing.T) {
	s := testSchema(t)
	m, err := NewBoolMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	rec := dataset.Record{2, 1, 0}
	b, err := m.Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	if bits.OnesCount64(b) != s.M() {
		t.Fatalf("encoded record has %d ones, want %d", bits.OnesCount64(b), s.M())
	}
	back, err := m.Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rec {
		if back[j] != rec[j] {
			t.Fatalf("Decode(Encode(%v)) = %v", rec, back)
		}
	}
	// A bitset with two values set for one attribute must be rejected.
	if _, err := m.Decode(b | 1 | 2); err == nil {
		t.Fatal("multi-bit attribute accepted")
	}
	if _, err := m.Decode(0); err == nil {
		t.Fatal("empty bitset accepted")
	}
	if _, err := m.Encode(dataset.Record{9, 9, 9}); err == nil {
		t.Fatal("invalid record accepted")
	}
}

func TestBoolMappingPaperSizes(t *testing.T) {
	cm, err := NewBoolMapping(dataset.CensusSchema())
	if err != nil {
		t.Fatal(err)
	}
	if cm.Mb != 23 {
		t.Fatalf("CENSUS Mb = %d, want 23", cm.Mb)
	}
	hm, err := NewBoolMapping(dataset.HealthSchema())
	if err != nil {
		t.Fatal(err)
	}
	if hm.Mb != 27 {
		t.Fatalf("HEALTH Mb = %d, want 27", hm.Mb)
	}
}

func TestBoolMappingOverflow(t *testing.T) {
	attrs := make([]dataset.Attribute, 7)
	for i := range attrs {
		cats := make([]string, 10)
		for c := range cats {
			cats[c] = string(rune('a'+i)) + string(rune('0'+c))
		}
		attrs[i] = dataset.Attribute{Name: string(rune('a' + i)), Categories: cats}
	}
	s, err := dataset.NewSchema("wide", attrs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBoolMapping(s); err == nil {
		t.Fatal("Mb = 70 > 64 accepted")
	}
}

func TestEncodeDatabase(t *testing.T) {
	db, err := dataset.GenerateCensus(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	bdb, err := EncodeDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	if bdb.N() != 100 {
		t.Fatalf("N = %d", bdb.N())
	}
	for i, row := range bdb.Rows {
		if bits.OnesCount64(row) != db.Schema.M() {
			t.Fatalf("row %d has %d ones", i, bits.OnesCount64(row))
		}
	}
}

func TestItemsetMask(t *testing.T) {
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	mask, err := m.ItemsetMask([]int{0, 2}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if mask != (1<<1)|(1<<8) {
		t.Fatalf("mask = %b", mask)
	}
	if _, err := m.ItemsetMask([]int{0}, []int{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := m.ItemsetMask([]int{0, 0}, []int{1, 1}); err == nil {
		t.Fatal("duplicate item accepted")
	}
	if _, err := m.ItemsetMask([]int{5}, []int{0}); err == nil {
		t.Fatal("bad attribute accepted")
	}
}
