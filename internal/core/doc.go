// Package core implements the FRAPP framework of Agrawal & Haritsa
// (ICDE 2005): a matrix-theoretic model of random perturbation for
// privacy-preserving mining of categorical data.
//
// The pieces map onto the paper as follows:
//
//   - privacy.go    — the (ρ1, ρ2) amplification privacy measure and its
//     reduction to the γ bound on perturbation-matrix entries (Section 2.1),
//     plus the posterior-probability analysis for randomized matrices
//     (Section 4.1).
//   - uniform.go    — the "gamma-diagonal" family: matrices with a constant
//     diagonal and constant off-diagonal (Section 3), including closed-form
//     condition numbers, inverses, solves, and the Eq. 28 marginal matrices
//     for itemset reconstruction (Section 6).
//   - perturb.go    — perturbation engines: the naive full-domain CDF walk
//     and the efficient O(Σ|S_j|) dependent-column sampler (Section 5), for
//     both deterministic (DET-GD) and randomized (RAN-GD) matrices
//     (Section 4).
//   - boolean.go    — the categorical→boolean record mapping shared by the
//     two baseline schemes.
//   - mask.go       — the MASK flip-perturbation baseline (Rizvi & Haritsa,
//     VLDB 2002) with its tensor-structured reconstruction matrices.
//   - cutpaste.go   — the Cut-and-Paste randomization operator baseline
//     (Evfimievski et al., KDD 2002) with its select-a-size distribution,
//     per-pair transition probabilities, and (l+1)×(l+1) partial-support
//     matrices.
//   - reconstruct.go — generic distribution reconstruction X̂ = A⁻¹Y and the
//     Theorem 1 estimation-error machinery (Section 2.2–2.3).
package core
