package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestPrivacySpecValidate(t *testing.T) {
	bad := []PrivacySpec{
		{Rho1: 0, Rho2: 0.5},
		{Rho1: 0.5, Rho2: 0},
		{Rho1: 0.5, Rho2: 1},
		{Rho1: 1, Rho2: 0.5},
		{Rho1: 0.5, Rho2: 0.5},
		{Rho1: 0.6, Rho2: 0.5},
		{Rho1: -0.1, Rho2: 0.5},
	}
	for _, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrPrivacy) {
			t.Errorf("spec %+v accepted", p)
		}
	}
	if err := (PrivacySpec{Rho1: 0.05, Rho2: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPaperValue(t *testing.T) {
	// The paper's running example: (ρ1, ρ2) = (5%, 50%) gives γ = 19.
	g, err := PrivacySpec{Rho1: 0.05, Rho2: 0.50}.Gamma()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(g, 19, 1e-12) {
		t.Fatalf("gamma = %v, want 19", g)
	}
}

func TestGammaPosteriorInverse(t *testing.T) {
	for _, spec := range []PrivacySpec{
		{0.05, 0.5}, {0.01, 0.3}, {0.2, 0.8}, {0.1, 0.11},
	} {
		g, err := spec.Gamma()
		if err != nil {
			t.Fatal(err)
		}
		back, err := PosteriorFromGamma(g, spec.Rho1)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(back, spec.Rho2, 1e-12) {
			t.Fatalf("spec %+v: round-trip posterior %v", spec, back)
		}
	}
	if _, err := PosteriorFromGamma(0.5, 0.1); !errors.Is(err, ErrPrivacy) {
		t.Fatal("gamma < 1 accepted")
	}
	if _, err := PosteriorFromGamma(19, 1.5); !errors.Is(err, ErrPrivacy) {
		t.Fatal("rho1 out of range accepted")
	}
}

func TestAmplificationGammaDiagonal(t *testing.T) {
	m, err := NewGammaDiagonal(8, 19)
	if err != nil {
		t.Fatal(err)
	}
	if got := Amplification(m.Dense()); !approx(got, 19, 1e-12) {
		t.Fatalf("amplification = %v, want 19", got)
	}
}

func TestAmplificationEdgeCases(t *testing.T) {
	id := linalg.Identity(3)
	if got := Amplification(id); !math.IsInf(got, 1) {
		t.Fatalf("identity amplification = %v, want +Inf (zero/nonzero rows)", got)
	}
	z := linalg.NewDense(2, 2)
	if got := Amplification(z); got != 1 {
		t.Fatalf("all-zero amplification = %v, want 1 (no reachable rows)", got)
	}
	u, _ := linalg.NewDenseFrom(2, 2, []float64{0.5, 0.5, 0.5, 0.5})
	if got := Amplification(u); got != 1 {
		t.Fatalf("uniform amplification = %v, want 1", got)
	}
}

func TestRandomizedPosteriorPaperValues(t *testing.T) {
	// Section 4.1 example: P(Q)=5%, γ=19, α=γx/2 → posterior range
	// [33%, 60%], with ρ2(0)=50%.
	const gamma = 19.0
	n := 2000 // CENSUS domain
	x := 1 / (gamma + float64(n) - 1)
	alpha := gamma * x / 2

	mid, err := RandomizedPosterior(gamma, n, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mid, 0.5, 1e-12) {
		t.Fatalf("rho2(0) = %v, want 0.5", mid)
	}
	lo, hi, err := PosteriorRange(gamma, n, 0.05, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1.0/3) > 0.01 {
		t.Fatalf("rho2(-alpha) = %v, want ≈0.333", lo)
	}
	if math.Abs(hi-0.6) > 0.01 {
		t.Fatalf("rho2(+alpha) = %v, want ≈0.60", hi)
	}
}

func TestRandomizedPosteriorMonotoneInR(t *testing.T) {
	const gamma, n, rho1 = 19.0, 100, 0.05
	x := 1 / (gamma + float64(n) - 1)
	prev := -1.0
	for r := -gamma * x; r <= gamma*x; r += gamma * x / 10 {
		p, err := RandomizedPosterior(gamma, n, rho1, r)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Fatalf("posterior not monotone at r=%v: %v < %v", r, p, prev)
		}
		prev = p
	}
}

func TestRandomizedPosteriorErrors(t *testing.T) {
	if _, err := RandomizedPosterior(1, 10, 0.05, 0); !errors.Is(err, ErrPrivacy) {
		t.Fatal("gamma ≤ 1 accepted")
	}
	if _, err := RandomizedPosterior(19, 1, 0.05, 0); !errors.Is(err, ErrPrivacy) {
		t.Fatal("n < 2 accepted")
	}
	if _, err := RandomizedPosterior(19, 10, 0, 0); !errors.Is(err, ErrPrivacy) {
		t.Fatal("rho1 = 0 accepted")
	}
	if _, err := RandomizedPosterior(19, 10, 0.05, 100); !errors.Is(err, ErrPrivacy) {
		t.Fatal("r beyond feasible range accepted")
	}
	if _, _, err := PosteriorRange(19, 10, 0.05, -1); !errors.Is(err, ErrPrivacy) {
		t.Fatal("negative alpha accepted")
	}
}

func TestBreachProbabilityPaperExample(t *testing.T) {
	// Section 4.1: at α=γx/2 the posterior's "probability of being
	// greater than 50% equals its probability of being less than 50%" —
	// i.e. P(ρ2(r) > ρ2(0)) = 1/2.
	const gamma, n, rho1 = 19.0, 2000, 0.05
	x := 1 / (gamma + float64(n) - 1)
	alpha := gamma * x / 2
	p, err := BreachProbability(gamma, n, rho1, alpha, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-6 {
		t.Fatalf("P(rho2 > 0.5) = %v, want 0.5", p)
	}
}

func TestBreachProbabilityBounds(t *testing.T) {
	const gamma, n, rho1 = 19.0, 100, 0.05
	x := 1 / (gamma + float64(n) - 1)
	alpha := gamma * x / 2
	lo, hi, err := PosteriorRange(gamma, n, rho1, alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Threshold above the range: probability 0; below: probability 1.
	if p, err := BreachProbability(gamma, n, rho1, alpha, hi+0.01); err != nil || p != 0 {
		t.Fatalf("above-range: p=%v err=%v", p, err)
	}
	if p, err := BreachProbability(gamma, n, rho1, alpha, lo-0.01); err != nil || p != 1 {
		t.Fatalf("below-range: p=%v err=%v", p, err)
	}
	// Monotone decreasing in the threshold.
	prev := 2.0
	for th := lo; th <= hi; th += (hi - lo) / 10 {
		p, err := BreachProbability(gamma, n, rho1, alpha, th)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-9 {
			t.Fatalf("breach probability not monotone at threshold %v", th)
		}
		prev = p
	}
	// Degenerate alpha.
	if p, err := BreachProbability(gamma, n, rho1, 0, 0.4); err != nil || p != 1 {
		t.Fatalf("alpha=0 below point: p=%v err=%v", p, err)
	}
	if p, err := BreachProbability(gamma, n, rho1, 0, 0.6); err != nil || p != 0 {
		t.Fatalf("alpha=0 above point: p=%v err=%v", p, err)
	}
	if _, err := BreachProbability(gamma, n, rho1, -1, 0.5); !errors.Is(err, ErrPrivacy) {
		t.Fatal("negative alpha accepted")
	}
}
