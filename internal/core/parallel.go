package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/dataset"
)

// ForEachSpan splits [0, n) into contiguous spans, one per worker
// goroutine, runs fn(w, lo, hi) on each concurrently, and returns the
// lowest-indexed worker's error. workers <= 0 defaults to
// runtime.GOMAXPROCS(0); the worker count is capped at n, and a single
// worker runs inline on the caller's goroutine. The span boundaries are
// a pure function of (n, workers), which parallel perturbation relies
// on for deterministic per-span RNG seeding.
func ForEachSpan(n, workers int, fn func(w, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return fn(0, 0, n)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PerturbDatabaseParallel perturbs every record using a pool of worker
// goroutines. Client-side perturbation is embarrassingly parallel — each
// record's distortion is independent — so the only care needed is
// determinism: the database is split into contiguous spans and each span
// gets its own RNG seeded from baseSeed and the span index, making the
// output a pure function of (db, perturber parameters, baseSeed,
// workers). Note that changing the worker count changes the span
// boundaries and therefore the (equally valid) random outcome.
func PerturbDatabaseParallel(db *dataset.Database, p Perturber, baseSeed int64, workers int) (*dataset.Database, error) {
	n := db.N()
	if n == 0 {
		return dataset.NewDatabase(db.Schema, 0), nil
	}
	out := make([]dataset.Record, n)
	err := ForEachSpan(n, workers, func(w, lo, hi int) error {
		const spanMix = int64(0x5851F42D4C957F2D) // per-span seed decorrelation
		rng := rand.New(rand.NewSource(baseSeed ^ (int64(w)+1)*spanMix))
		for i := lo; i < hi; i++ {
			rec, err := p.Perturb(db.Records[i], rng)
			if err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			out[i] = rec
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &dataset.Database{Schema: db.Schema, Records: out}, nil
}
