package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

// MaskScheme is the MASK perturbation baseline (Rizvi & Haritsa,
// VLDB 2002): the categorical database is mapped to booleans and every
// bit is independently flipped with probability 1−p.
type MaskScheme struct {
	Mapping *BoolMapping
	P       float64 // probability a bit is KEPT; 1−p is the flip probability
}

// MaskPForGamma returns the retention probability p implied by the strict
// privacy constraint of Section 7: because every encoded record contains
// exactly M ones, two records differ in at most 2M bit positions, so
// (p/(1−p))^(2M) ≤ γ suffices, giving p = γ^(1/2M) / (1 + γ^(1/2M)).
// For γ=19 this yields p=0.5610 on CENSUS (M=6) and p=0.5524 on
// HEALTH (M=7), the paper's reported values.
func MaskPForGamma(mAttrs int, gamma float64) (float64, error) {
	if mAttrs < 1 {
		return 0, fmt.Errorf("%w: %d attributes", ErrPerturb, mAttrs)
	}
	if gamma <= 1 {
		return 0, fmt.Errorf("%w: gamma %v must exceed 1", ErrPerturb, gamma)
	}
	g := math.Pow(gamma, 1/(2*float64(mAttrs)))
	return g / (1 + g), nil
}

// NewMaskScheme validates p ∈ (1/2, 1): p must exceed one half for the
// reconstruction matrix to be invertible (2p−1 > 0).
func NewMaskScheme(m *BoolMapping, p float64) (*MaskScheme, error) {
	if !(p > 0.5 && p < 1) {
		return nil, fmt.Errorf("%w: MASK p = %v must lie in (0.5, 1)", ErrPerturb, p)
	}
	return &MaskScheme{Mapping: m, P: p}, nil
}

// NewMaskSchemeForPrivacy builds the scheme with p chosen for the γ
// constraint.
func NewMaskSchemeForPrivacy(m *BoolMapping, gamma float64) (*MaskScheme, error) {
	p, err := MaskPForGamma(m.Schema.M(), gamma)
	if err != nil {
		return nil, err
	}
	return NewMaskScheme(m, p)
}

// PerturbRecord encodes one categorical record and flips every bit
// independently with probability 1−p — the client-side unit of MASK
// perturbation.
func (s *MaskScheme) PerturbRecord(rec dataset.Record, rng *rand.Rand) (uint64, error) {
	b, err := s.Mapping.Encode(rec)
	if err != nil {
		return 0, err
	}
	var flip uint64
	for k := 0; k < s.Mapping.Mb; k++ {
		if rng.Float64() >= s.P {
			flip |= 1 << uint(k)
		}
	}
	return b ^ flip, nil
}

// PerturbDatabase flips every bit of every encoded record independently
// with probability 1−p.
func (s *MaskScheme) PerturbDatabase(db *dataset.Database, rng *rand.Rand) (*BoolDatabase, error) {
	rows := make([]uint64, 0, db.N())
	for i, rec := range db.Records {
		row, err := s.PerturbRecord(rec, rng)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		rows = append(rows, row)
	}
	return &BoolDatabase{Mapping: s.Mapping, Rows: rows}, nil
}

// Amplification returns the worst-case row-entry ratio of the full MASK
// perturbation matrix restricted to valid categorical records:
// (p/(1−p))^(2M), since any two encoded records differ in at most 2M bits.
func (s *MaskScheme) Amplification() float64 {
	return math.Pow(s.P/(1-s.P), 2*float64(s.Mapping.Schema.M()))
}

// ReconMatrix materializes the 2^l × 2^l reconstruction matrix for
// itemsets of length l: the l-fold tensor power of the single-bit
// transition matrix [[p, 1−p], [1−p, p]], indexed by the observed (row)
// and true (column) bit combinations.
func (s *MaskScheme) ReconMatrix(l int) (*linalg.Dense, error) {
	if l < 0 || l > 20 {
		return nil, fmt.Errorf("%w: itemset length %d", ErrPerturb, l)
	}
	n := 1 << uint(l)
	a := linalg.NewDense(n, n)
	for obs := 0; obs < n; obs++ {
		for tru := 0; tru < n; tru++ {
			mismatches := bits.OnesCount(uint(obs ^ tru))
			a.Set(obs, tru, math.Pow(s.P, float64(l-mismatches))*math.Pow(1-s.P, float64(mismatches)))
		}
	}
	return a, nil
}

// Cond returns the 2-norm condition number of the length-l reconstruction
// matrix in closed form: the single-bit matrix has eigenvalues 1 and
// 2p−1, so the tensor power's condition number is (2p−1)^(−l) — the
// exponential growth visible in Figure 4 of the paper.
func (s *MaskScheme) Cond(l int) float64 {
	return math.Pow(2*s.P-1, -float64(l))
}

// EstimateSupport reconstructs the original support count of the itemset
// whose boolean items are itemBits (an l-element list of bit positions)
// from the perturbed boolean database, using the tensor-structured
// inverse applied in O(N·l + l·2^l): count the 2^l observed combinations,
// then apply the single-bit inverse along each of the l axes and read off
// the all-ones entry.
func (s *MaskScheme) EstimateSupport(db *BoolDatabase, itemBits []int) (float64, error) {
	l := len(itemBits)
	if l == 0 {
		return float64(db.N()), nil
	}
	if l > 20 {
		return 0, fmt.Errorf("%w: itemset length %d too large", ErrPerturb, l)
	}
	for _, b := range itemBits {
		if b < 0 || b >= s.Mapping.Mb {
			return 0, fmt.Errorf("%w: bit %d out of range", ErrPerturb, b)
		}
	}
	n := 1 << uint(l)
	counts := make([]float64, n)
	for _, row := range db.Rows {
		idx := 0
		for k, b := range itemBits {
			if row&(1<<uint(b)) != 0 {
				idx |= 1 << uint(k)
			}
		}
		counts[idx]++
	}
	return s.ReconstructPatternCounts(counts)
}

// ReconstructPatternCounts inverts the observed bit-combination counts of
// one length-l itemset — counts[idx] is the number of perturbed records
// whose itemset bits form pattern idx, so len(counts) must be 2^l — and
// returns the estimated original support (the all-ones entry). This is
// the estimator core shared by the record-scan EstimateSupport and the
// live materialized counter, which accumulates the same pattern counts
// incrementally.
func (s *MaskScheme) ReconstructPatternCounts(counts []float64) (float64, error) {
	n := len(counts)
	l := bits.TrailingZeros(uint(n))
	if n == 0 || n != 1<<uint(l) || l > 20 {
		return 0, fmt.Errorf("%w: pattern count vector length %d is not a power of two within 2^20", ErrPerturb, n)
	}
	work := make([]float64, n)
	copy(work, counts)
	// Apply T2⁻¹ = [[p, −(1−p)], [−(1−p), p]]/(2p−1) along each axis.
	det := 2*s.P - 1
	ip, iq := s.P/det, -(1-s.P)/det
	for k := 0; k < l; k++ {
		bit := 1 << uint(k)
		for i := 0; i < n; i++ {
			if i&bit != 0 {
				continue
			}
			y0, y1 := work[i], work[i|bit]
			work[i] = ip*y0 + iq*y1
			work[i|bit] = iq*y0 + ip*y1
		}
	}
	return work[n-1], nil
}

// PatternWeights returns the linear-estimator weights of
// ReconstructPatternCounts for a length-l itemset: the estimate is
// Σ_idx w[idx]·counts[idx], with w[idx] the all-ones row of the l-fold
// tensor inverse — (p/(2p−1))^ones · (−(1−p)/(2p−1))^zeros. The weights
// feed the plug-in multinomial variance of the live query estimator.
func (s *MaskScheme) PatternWeights(l int) ([]float64, error) {
	if l < 1 || l > 20 {
		return nil, fmt.Errorf("%w: itemset length %d", ErrPerturb, l)
	}
	det := 2*s.P - 1
	ip, iq := s.P/det, -(1-s.P)/det
	w := make([]float64, 1<<uint(l))
	for idx := range w {
		ones := bits.OnesCount(uint(idx))
		w[idx] = math.Pow(ip, float64(ones)) * math.Pow(iq, float64(l-ones))
	}
	return w, nil
}
