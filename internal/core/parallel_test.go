package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestPerturbDatabaseParallelBasics(t *testing.T) {
	db, err := dataset.GenerateCensus(5000, 70)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewGammaDiagonal(db.Schema.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGammaPerturber(db.Schema, m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := PerturbDatabaseParallel(db, p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != db.N() {
		t.Fatalf("N = %d, want %d", out.N(), db.N())
	}
	for i, rec := range out.Records {
		if err := db.Schema.Validate(rec); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
	}
}

func TestPerturbDatabaseParallelDeterministic(t *testing.T) {
	db, err := dataset.GenerateCensus(2000, 71)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewGammaDiagonal(db.Schema.DomainSize(), 19)
	p, _ := NewGammaPerturber(db.Schema, m)
	a, err := PerturbDatabaseParallel(db, p, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PerturbDatabaseParallel(db, p, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		for j := range a.Records[i] {
			if a.Records[i][j] != b.Records[i][j] {
				t.Fatal("same seed and workers produced different output")
			}
		}
	}
	c, err := PerturbDatabaseParallel(db, p, 43, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Records {
		for j := range a.Records[i] {
			if a.Records[i][j] != c.Records[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical output")
	}
}

func TestPerturbDatabaseParallelStatisticallyCorrect(t *testing.T) {
	// The parallel path must produce the same transition distribution as
	// the matrix prescribes: check retention frequency of a constant DB.
	s := testSchema(t)
	db := dataset.NewDatabase(s, 0)
	const n = 120000
	for i := 0; i < n; i++ {
		if err := db.Append(dataset.Record{1, 0, 2}); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := NewGammaDiagonal(s.DomainSize(), 19)
	p, _ := NewGammaPerturber(s, m)
	out, err := PerturbDatabaseParallel(db, p, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, rec := range out.Records {
		if rec[0] == 1 && rec[1] == 0 && rec[2] == 2 {
			kept++
		}
	}
	got := float64(kept) / n
	sigma := math.Sqrt(m.Diag * (1 - m.Diag) / n)
	if math.Abs(got-m.Diag) > 5*sigma {
		t.Fatalf("retention %v, want %v (±%v)", got, m.Diag, 5*sigma)
	}
}

func TestPerturbDatabaseParallelEdgeCases(t *testing.T) {
	s := testSchema(t)
	db := dataset.NewDatabase(s, 0)
	m, _ := NewGammaDiagonal(s.DomainSize(), 19)
	p, _ := NewGammaPerturber(s, m)
	out, err := PerturbDatabaseParallel(db, p, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != 0 {
		t.Fatal("empty database grew")
	}
	// More workers than records.
	if err := db.Append(dataset.Record{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	out, err = PerturbDatabaseParallel(db, p, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != 1 {
		t.Fatalf("N = %d", out.N())
	}
	// workers ≤ 0 defaults to GOMAXPROCS.
	if _, err := PerturbDatabaseParallel(db, p, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Errors propagate.
	bad := dataset.NewDatabase(s, 0)
	bad.Records = append(bad.Records, dataset.Record{9, 9, 9})
	if _, err := PerturbDatabaseParallel(bad, p, 1, 2); err == nil {
		t.Fatal("invalid record accepted")
	}
}
