package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

func TestReconstructHistogramEndToEnd(t *testing.T) {
	// Perturb a sizable database with DET-GD and check that the
	// reconstructed histogram is close to the truth.
	s := testSchema(t)
	db := dataset.NewDatabase(s, 0)
	rng := rand.New(rand.NewSource(101))
	const n = 120000
	for i := 0; i < n; i++ {
		// Skewed distribution to make reconstruction non-trivial.
		rec := dataset.Record{0, 0, 0}
		if rng.Float64() < 0.4 {
			rec = dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
		}
		if err := db.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := PerturbDatabase(db, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	y, err := pdb.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := ReconstructHistogram(m, y)
	if err != nil {
		t.Fatal(err)
	}
	x, err := db.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	relErr, err := RelativeError(xhat, x)
	if err != nil {
		t.Fatal(err)
	}
	if relErr > 0.10 {
		t.Fatalf("relative reconstruction error %v too large", relErr)
	}
	// Cross-check closed-form solve against the dense LU path.
	xhat2, err := ReconstructHistogramDense(m.Dense(), y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xhat {
		if !approx(xhat[i], xhat2[i], 1e-8) {
			t.Fatalf("closed-form vs LU reconstruction differ at %d: %v vs %v", i, xhat[i], xhat2[i])
		}
	}
}

func TestTheoremOneBoundHolds(t *testing.T) {
	// ‖X̂−X‖/‖X‖ ≤ cond · ‖Y−E(Y)‖/‖E(Y)‖ must hold on every run.
	s := testSchema(t)
	m, err := NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		db := dataset.NewDatabase(s, 0)
		for i := 0; i < 30000; i++ {
			if err := db.Append(dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}); err != nil {
				t.Fatal(err)
			}
		}
		pdb, err := PerturbDatabase(db, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := db.Histogram()
		y, _ := pdb.Histogram()
		ey, err := ExpectedPerturbedHistogram(m, x)
		if err != nil {
			t.Fatal(err)
		}
		xhat, err := ReconstructHistogram(m, y)
		if err != nil {
			t.Fatal(err)
		}
		lhs, err := RelativeError(xhat, x)
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := EstimationErrorBound(m.Cond(), y, ey)
		if err != nil {
			t.Fatal(err)
		}
		if lhs > rhs+1e-9 {
			t.Fatalf("trial %d: Theorem 1 violated: %v > %v", trial, lhs, rhs)
		}
	}
}

func TestPerturbedCountDistribution(t *testing.T) {
	s := testSchema(t)
	m, err := NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, s.DomainSize())
	x[0] = 50
	x[5] = 30
	x[10] = 20
	d, err := PerturbedCountDistribution(m, x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 100 {
		t.Fatalf("trials = %d, want 100", d.N())
	}
	// E[Y_5] = (A·X)[5].
	ey, err := ExpectedPerturbedHistogram(m, x)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(d.Mean(), ey[5], 1e-10) {
		t.Fatalf("Poisson-Binomial mean %v vs A·X %v", d.Mean(), ey[5])
	}
	if _, err := PerturbedCountDistribution(m, x[:3], 0); !errors.Is(err, ErrMatrix) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := PerturbedCountDistribution(m, x, -1); !errors.Is(err, ErrMatrix) {
		t.Fatal("bad index accepted")
	}
}

func TestErrorHelpersValidate(t *testing.T) {
	if _, err := EstimationErrorBound(1, []float64{1}, []float64{1, 2}); !errors.Is(err, ErrMatrix) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := EstimationErrorBound(1, []float64{1}, []float64{0}); !errors.Is(err, ErrMatrix) {
		t.Fatal("zero expectation accepted")
	}
	if _, err := RelativeError([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrMatrix) {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RelativeError([]float64{1}, []float64{0}); !errors.Is(err, ErrMatrix) {
		t.Fatal("zero truth accepted")
	}
	v, err := RelativeError([]float64{1, 2}, []float64{1, 2})
	if err != nil || v != 0 {
		t.Fatalf("identical vectors: err=%v rel=%v", err, v)
	}
}

func TestTrueHistogramWrapper(t *testing.T) {
	db, err := dataset.GenerateCensus(50, 9)
	if err != nil {
		t.Fatal(err)
	}
	h, err := TrueHistogram(db)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, c := range h {
		total += c
	}
	if total != 50 {
		t.Fatalf("histogram total %v", total)
	}
}
