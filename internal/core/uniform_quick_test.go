package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: marginalization composes — taking the Eq. 28 marginal to n1
// and then to n2 equals marginalizing directly to n2, whenever the
// divisibility chain n2 | n1 | N holds. This is what lets Apriori reuse
// one matrix family across every pass.
func TestMarginalCompositionProperty(t *testing.T) {
	f := func(aRaw, bRaw, cRaw uint8, gRaw float64) bool {
		// Build N = a·b·c with small factors ≥ 2; n1 = a·b, n2 = a.
		a := 2 + int(aRaw%5)
		b := 2 + int(bRaw%5)
		c := 2 + int(cRaw%5)
		gamma := 1.5 + math.Abs(math.Mod(gRaw, 50))
		n := a * b * c
		m, err := NewGammaDiagonal(n, gamma)
		if err != nil {
			return false
		}
		n1, n2 := a*b, a
		via1, err := m.Marginal(n1)
		if err != nil {
			return false
		}
		twoStep, err := via1.Marginal(n2)
		if err != nil {
			return false
		}
		direct, err := m.Marginal(n2)
		if err != nil {
			return false
		}
		return math.Abs(twoStep.Diag-direct.Diag) < 1e-12 &&
			math.Abs(twoStep.Off-direct.Off) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the amplification of the materialized dense matrix equals
// the closed-form Gamma() for every valid gamma-diagonal matrix.
func TestAmplificationMatchesGammaProperty(t *testing.T) {
	f := func(nRaw uint8, gRaw float64) bool {
		n := 2 + int(nRaw%30)
		gamma := 1.1 + math.Abs(math.Mod(gRaw, 100))
		m, err := NewGammaDiagonal(n, gamma)
		if err != nil {
			return false
		}
		amp := Amplification(m.Dense())
		return math.Abs(amp-m.Gamma()) < 1e-9*gamma
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every feasible randomization keeps the matrix Markov, keeps
// its marginals Markov, and the mean of ±r realizations recovers the
// base matrix entries exactly.
func TestRandomizeInvariantsProperty(t *testing.T) {
	f := func(nRaw uint8, gRaw, fracRaw float64) bool {
		n := 3 + int(nRaw%20)
		gamma := 2 + math.Abs(math.Mod(gRaw, 30))
		frac := math.Abs(math.Mod(fracRaw, 1))
		m, err := NewGammaDiagonal(n, gamma)
		if err != nil {
			return false
		}
		r := frac * m.MaxRandomization()
		plus, err := m.Randomize(r)
		if err != nil {
			return false
		}
		minus, err := m.Randomize(-r)
		if err != nil {
			return false
		}
		if plus.Validate() != nil || minus.Validate() != nil {
			return false
		}
		if math.Abs((plus.Diag+minus.Diag)/2-m.Diag) > 1e-12 {
			return false
		}
		// Marginals of realizations remain Markov.
		for _, sub := range []int{1, n} {
			if n%sub != 0 {
				continue
			}
			mg, err := plus.Marginal(sub)
			if err != nil {
				return false
			}
			if sub >= 2 && mg.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Solve is the exact inverse of MulVec for well-conditioned
// gamma-diagonal matrices, for arbitrary integer-count vectors.
func TestSolveMulVecInverseProperty(t *testing.T) {
	m, err := NewGammaDiagonal(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [12]uint16) bool {
		x := make([]float64, 12)
		for i, v := range raw {
			x[i] = float64(v)
		}
		y, err := m.MulVec(x)
		if err != nil {
			return false
		}
		back, err := m.Solve(y)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-7*(1+x[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
