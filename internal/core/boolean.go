package core

import (
	"fmt"
	"math/bits"

	"repro/internal/dataset"
)

// BoolMapping is the categorical→boolean conversion used by the MASK and
// C&P baselines (Section 7): each category of each attribute becomes one
// boolean item, so a record with M attributes maps to a boolean vector of
// length Mb = Σ_j |S_j| containing exactly M ones. Vectors are packed into
// uint64 bitsets, which caps Mb at 64 — ample for the paper's schemas
// (CENSUS Mb=23, HEALTH Mb=27).
type BoolMapping struct {
	Schema  *dataset.Schema
	Offsets []int // bit position of (attribute j, value 0)
	Mb      int
}

// NewBoolMapping precomputes bit offsets.
func NewBoolMapping(s *dataset.Schema) (*BoolMapping, error) {
	offsets := make([]int, s.M())
	total := 0
	for j, a := range s.Attrs {
		offsets[j] = total
		total += a.Cardinality()
	}
	if total > 64 {
		return nil, fmt.Errorf("%w: Mb = %d exceeds 64-bit bitset capacity", ErrPerturb, total)
	}
	return &BoolMapping{Schema: s, Offsets: offsets, Mb: total}, nil
}

// Bit returns the bit position of (attribute, value).
func (m *BoolMapping) Bit(attr, value int) (int, error) {
	if attr < 0 || attr >= m.Schema.M() {
		return 0, fmt.Errorf("%w: attribute %d out of range", ErrPerturb, attr)
	}
	if value < 0 || value >= m.Schema.Attrs[attr].Cardinality() {
		return 0, fmt.Errorf("%w: value %d out of range for attribute %d", ErrPerturb, value, attr)
	}
	return m.Offsets[attr] + value, nil
}

// Encode converts a categorical record to its bitset.
func (m *BoolMapping) Encode(rec dataset.Record) (uint64, error) {
	if err := m.Schema.Validate(rec); err != nil {
		return 0, err
	}
	var b uint64
	for j, v := range rec {
		b |= 1 << uint(m.Offsets[j]+v)
	}
	return b, nil
}

// Decode converts a bitset with exactly one bit per attribute back to a
// categorical record; it errors if any attribute has zero or multiple
// bits set (which perturbed boolean records generally do — only original
// records round-trip).
func (m *BoolMapping) Decode(b uint64) (dataset.Record, error) {
	rec := make(dataset.Record, m.Schema.M())
	for j, a := range m.Schema.Attrs {
		card := a.Cardinality()
		seg := (b >> uint(m.Offsets[j])) & (1<<uint(card) - 1)
		if bits.OnesCount64(seg) != 1 {
			return nil, fmt.Errorf("%w: attribute %d has %d bits set", ErrPerturb, j, bits.OnesCount64(seg))
		}
		rec[j] = bits.TrailingZeros64(seg)
	}
	return rec, nil
}

// BoolDatabase is a perturbed boolean database: one bitset per record.
// Unlike categorical databases, rows may contain any number of ones —
// MASK flips bits independently and C&P pastes arbitrary item sets.
type BoolDatabase struct {
	Mapping *BoolMapping
	Rows    []uint64
}

// N returns the number of rows.
func (db *BoolDatabase) N() int { return len(db.Rows) }

// EncodeDatabase converts an entire categorical database to boolean form
// (without perturbation).
func EncodeDatabase(db *dataset.Database) (*BoolDatabase, error) {
	m, err := NewBoolMapping(db.Schema)
	if err != nil {
		return nil, err
	}
	rows := make([]uint64, 0, db.N())
	for i, rec := range db.Records {
		b, err := m.Encode(rec)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		rows = append(rows, b)
	}
	return &BoolDatabase{Mapping: m, Rows: rows}, nil
}

// ItemsetMask converts an itemset — a list of (attribute, value) pairs —
// into the bitset of its boolean items.
func (m *BoolMapping) ItemsetMask(attrs, values []int) (uint64, error) {
	if len(attrs) != len(values) {
		return 0, fmt.Errorf("%w: %d attributes vs %d values", ErrPerturb, len(attrs), len(values))
	}
	var mask uint64
	for k := range attrs {
		bit, err := m.Bit(attrs[k], values[k])
		if err != nil {
			return 0, err
		}
		if mask&(1<<uint(bit)) != 0 {
			return 0, fmt.Errorf("%w: duplicate item in itemset", ErrPerturb)
		}
		mask |= 1 << uint(bit)
	}
	return mask, nil
}
