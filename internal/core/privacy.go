package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrPrivacy is returned for invalid privacy parameters.
var ErrPrivacy = errors.New("core: invalid privacy parameter")

// PrivacySpec is the strict (ρ1, ρ2) amplification privacy requirement of
// Evfimievski et al. (PODS 2003), adopted by FRAPP: for any property with
// prior probability below Rho1, the posterior probability after seeing the
// perturbed record must stay below Rho2.
type PrivacySpec struct {
	Rho1 float64
	Rho2 float64
}

// Validate checks 0 < ρ1 < ρ2 < 1.
func (p PrivacySpec) Validate() error {
	if !(p.Rho1 > 0 && p.Rho1 < 1) {
		return fmt.Errorf("%w: rho1 = %v not in (0,1)", ErrPrivacy, p.Rho1)
	}
	if !(p.Rho2 > 0 && p.Rho2 < 1) {
		return fmt.Errorf("%w: rho2 = %v not in (0,1)", ErrPrivacy, p.Rho2)
	}
	if p.Rho2 <= p.Rho1 {
		return fmt.Errorf("%w: rho2 = %v must exceed rho1 = %v", ErrPrivacy, p.Rho2, p.Rho1)
	}
	return nil
}

// Gamma returns the bound γ = ρ2(1−ρ1)/(ρ1(1−ρ2)) that any two entries in
// a row of the perturbation matrix may differ by (Equation 2 of the
// paper). The paper's running example (5%, 50%) gives γ = 19.
func (p PrivacySpec) Gamma() (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	return p.Rho2 * (1 - p.Rho1) / (p.Rho1 * (1 - p.Rho2)), nil
}

// PosteriorFromGamma inverts Gamma: the worst-case posterior probability
// ρ2 guaranteed for priors up to rho1 by a matrix with amplification γ.
func PosteriorFromGamma(gamma, rho1 float64) (float64, error) {
	if gamma < 1 {
		return 0, fmt.Errorf("%w: gamma = %v < 1", ErrPrivacy, gamma)
	}
	if !(rho1 > 0 && rho1 < 1) {
		return 0, fmt.Errorf("%w: rho1 = %v not in (0,1)", ErrPrivacy, rho1)
	}
	return gamma * rho1 / ((1 - rho1) + gamma*rho1), nil
}

// Amplification returns the actual amplification of a perturbation matrix:
// the maximum over rows v of max_{u1,u2} A[v][u1]/A[v][u2]. A matrix
// satisfies a (ρ1, ρ2) requirement iff Amplification(A) ≤ γ(ρ1, ρ2).
// Zero-probability rows are skipped; a row with both zero and nonzero
// entries has infinite amplification.
func Amplification(a *linalg.Dense) float64 {
	rows, cols := a.Dims()
	worst := 1.0
	for v := 0; v < rows; v++ {
		mn, mx := math.Inf(1), 0.0
		for u := 0; u < cols; u++ {
			p := a.At(v, u)
			if p < mn {
				mn = p
			}
			if p > mx {
				mx = p
			}
		}
		if mx == 0 {
			continue // row unreachable from every input: no breach channel
		}
		if mn == 0 {
			return math.Inf(1)
		}
		if r := mx / mn; r > worst {
			worst = r
		}
	}
	return worst
}

// WorstCasePosterior returns the posterior probability the miner can pin
// on a property with prior rho1 after observing output v of a fixed
// matrix with row-ratio amplification gammaActual: the Section 4.1
// worst-case data distribution concentrates the property on the
// max-probability inputs and its complement on the min-probability ones.
func WorstCasePosterior(gammaActual, rho1 float64) (float64, error) {
	return PosteriorFromGamma(gammaActual, rho1)
}

// RandomizedPosterior computes ρ2(r) of Section 4.1 for the randomized
// gamma-diagonal matrix of order n: diagonal γx+r, off-diagonal
// x − r/(n−1), evaluated at a specific realization r.
func RandomizedPosterior(gamma float64, n int, rho1, r float64) (float64, error) {
	if gamma <= 1 {
		return 0, fmt.Errorf("%w: gamma = %v must exceed 1", ErrPrivacy, gamma)
	}
	if n < 2 {
		return 0, fmt.Errorf("%w: domain size %d", ErrPrivacy, n)
	}
	if !(rho1 > 0 && rho1 < 1) {
		return 0, fmt.Errorf("%w: rho1 = %v", ErrPrivacy, rho1)
	}
	x := 1 / (gamma + float64(n) - 1)
	d := gamma*x + r
	o := x - r/float64(n-1)
	if d < 0 || o < 0 {
		return 0, fmt.Errorf("%w: randomization r = %v leaves negative probabilities", ErrPrivacy, r)
	}
	num := rho1 * d
	den := rho1*d + (1-rho1)*o
	if den == 0 {
		return 1, nil
	}
	return num / den, nil
}

// PosteriorRange returns [ρ2(−α), ρ2(+α)], the posterior-probability range
// that is all the miner can determine under RAN-GD randomization with
// amplitude α (Figure 3(a) of the paper). The low end is the worst-case
// breach the miner can actually assert.
func PosteriorRange(gamma float64, n int, rho1, alpha float64) (lo, hi float64, err error) {
	if alpha < 0 {
		return 0, 0, fmt.Errorf("%w: alpha = %v negative", ErrPrivacy, alpha)
	}
	lo, err = RandomizedPosterior(gamma, n, rho1, -alpha)
	if err != nil {
		return 0, 0, err
	}
	hi, err = RandomizedPosterior(gamma, n, rho1, +alpha)
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// BreachProbability returns P(ρ2(r) > threshold) for r ~ U(−α, α) — the
// distributional statement of Section 4.1's example ("its probability of
// being greater than 50% equal to its probability of being less than
// 50%"). Because ρ2(r) is strictly increasing in r, the probability is
// the uniform measure of {r : r > ρ2⁻¹(threshold)}, computed by bisection.
func BreachProbability(gamma float64, n int, rho1, alpha, threshold float64) (float64, error) {
	if alpha < 0 {
		return 0, fmt.Errorf("%w: alpha = %v negative", ErrPrivacy, alpha)
	}
	lo, hi, err := PosteriorRange(gamma, n, rho1, alpha)
	if err != nil {
		return 0, err
	}
	if threshold >= hi {
		return 0, nil
	}
	if threshold < lo {
		return 1, nil
	}
	if alpha == 0 {
		// Degenerate distribution at ρ2(0); thresholds below it were
		// handled above.
		return 0, nil
	}
	// Bisect for r* with ρ2(r*) = threshold on [−α, α].
	rLo, rHi := -alpha, alpha
	for i := 0; i < 200 && rHi-rLo > 1e-15*alpha; i++ {
		mid := (rLo + rHi) / 2
		p, err := RandomizedPosterior(gamma, n, rho1, mid)
		if err != nil {
			return 0, err
		}
		if p > threshold {
			rHi = mid
		} else {
			rLo = mid
		}
	}
	rStar := (rLo + rHi) / 2
	return (alpha - rStar) / (2 * alpha), nil
}
