package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// ErrMatrix is returned for invalid perturbation-matrix parameters.
var ErrMatrix = errors.New("core: invalid perturbation matrix")

// UniformMatrix is a perturbation matrix with one value on the diagonal
// and another everywhere else: A = Diag·I + Off·(J−I), of order N. The
// paper's gamma-diagonal matrix (Section 3) and its Eq. 28 marginals are
// both of this form, which admits O(1) condition numbers and O(n) solves
// via the Sherman–Morrison identity.
type UniformMatrix struct {
	N    int
	Diag float64
	Off  float64
}

// NewGammaDiagonal builds the paper's gamma-diagonal matrix for domain
// size n and amplification bound γ: diagonal γx, off-diagonal x, with
// x = 1/(γ+n−1). This is the minimum-condition-number symmetric
// perturbation matrix under the γ privacy constraint (Section 3).
func NewGammaDiagonal(n int, gamma float64) (UniformMatrix, error) {
	if n < 2 {
		return UniformMatrix{}, fmt.Errorf("%w: order %d", ErrMatrix, n)
	}
	if gamma <= 1 {
		return UniformMatrix{}, fmt.Errorf("%w: gamma = %v must exceed 1 for invertibility", ErrMatrix, gamma)
	}
	x := 1 / (gamma + float64(n) - 1)
	return UniformMatrix{N: n, Diag: gamma * x, Off: x}, nil
}

// Validate checks that the matrix is a proper Markov perturbation matrix:
// nonnegative entries with unit column sums.
func (m UniformMatrix) Validate() error {
	if m.N < 2 {
		return fmt.Errorf("%w: order %d", ErrMatrix, m.N)
	}
	if m.Diag < 0 || m.Off < 0 {
		return fmt.Errorf("%w: negative entries d=%v o=%v", ErrMatrix, m.Diag, m.Off)
	}
	sum := m.Diag + float64(m.N-1)*m.Off
	if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
		return fmt.Errorf("%w: column sum %v ≠ 1", ErrMatrix, sum)
	}
	return nil
}

// X returns the paper's normalizer x = 1/(γ+n−1) for the matrix's
// effective gamma; for a gamma-diagonal matrix this equals Off.
func (m UniformMatrix) X() float64 { return m.Off }

// Gamma returns the amplification Diag/Off of the matrix (its actual
// row-entry ratio). Returns +Inf when Off is zero.
func (m UniformMatrix) Gamma() float64 {
	if m.Off == 0 {
		if m.Diag == 0 {
			return 1
		}
		return inf()
	}
	return m.Diag / m.Off
}

// Dense materializes the matrix; intended for small orders (tests,
// condition-number cross-checks).
func (m UniformMatrix) Dense() *linalg.Dense {
	a := linalg.NewDense(m.N, m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if i == j {
				a.Set(i, j, m.Diag)
			} else {
				a.Set(i, j, m.Off)
			}
		}
	}
	return a
}

// Eigenvalues returns the two distinct eigenvalues: Diag−Off with
// multiplicity N−1, and Diag+(N−1)·Off (which is 1 for a Markov matrix).
func (m UniformMatrix) Eigenvalues() (small, large float64) {
	return m.Diag - m.Off, m.Diag + float64(m.N-1)*m.Off
}

// Cond returns the 2-norm condition number in closed form:
// (γ+n−1)/(γ−1) for the gamma-diagonal matrix, the paper's headline
// optimality quantity. Returns +Inf if the matrix is singular.
func (m UniformMatrix) Cond() float64 {
	small, large := m.Eigenvalues()
	if abs(small) == 0 {
		return inf()
	}
	lo, hi := abs(small), abs(large)
	if lo > hi {
		lo, hi = hi, lo
	}
	return hi / lo
}

// Solve solves A·x = y in O(n) using the structure
// A = aI + bJ with a = Diag−Off, b = Off:
// A⁻¹ = (1/a)·I − b/(a(a+nb))·J.
func (m UniformMatrix) Solve(y []float64) ([]float64, error) {
	if len(y) != m.N {
		return nil, fmt.Errorf("%w: rhs length %d for order %d", ErrMatrix, len(y), m.N)
	}
	a := m.Diag - m.Off
	if a == 0 {
		return nil, fmt.Errorf("%w: singular (diag == off)", ErrMatrix)
	}
	var total float64
	for _, v := range y {
		total += v
	}
	denom := a + float64(m.N)*m.Off
	if denom == 0 {
		return nil, fmt.Errorf("%w: singular (a+nb = 0)", ErrMatrix)
	}
	shift := m.Off * total / (a * denom)
	x := make([]float64, m.N)
	for i, v := range y {
		x[i] = v/a - shift
	}
	return x, nil
}

// MulVec computes A·x in O(n) without materializing the matrix.
func (m UniformMatrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.N {
		return nil, fmt.Errorf("%w: vector length %d for order %d", ErrMatrix, len(x), m.N)
	}
	var total float64
	for _, v := range x {
		total += v
	}
	a := m.Diag - m.Off
	y := make([]float64, m.N)
	for i, v := range x {
		y[i] = a*v + m.Off*total
	}
	return y, nil
}

// Marginal returns the Eq. 28 reconstruction matrix for itemsets over an
// attribute subset whose value-combination space has size nSub, given the
// full domain size m.N: diagonal γx + (nC/nCs − 1)x, off-diagonal
// (nC/nCs)x. Its condition number equals the full matrix's — the reason
// DET-GD's accuracy does not degrade with itemset length (Figure 4).
func (m UniformMatrix) Marginal(nSub int) (UniformMatrix, error) {
	if nSub < 1 || nSub > m.N {
		return UniformMatrix{}, fmt.Errorf("%w: sub-domain size %d for full domain %d", ErrMatrix, nSub, m.N)
	}
	if m.N%nSub != 0 {
		return UniformMatrix{}, fmt.Errorf("%w: sub-domain size %d does not divide %d", ErrMatrix, nSub, m.N)
	}
	ratio := float64(m.N) / float64(nSub)
	return UniformMatrix{
		N:    nSub,
		Diag: m.Diag + (ratio-1)*m.Off,
		Off:  ratio * m.Off,
	}, nil
}

// Randomize returns the realization of the Section 4 randomized matrix
// for a draw r ∈ [−α, α]: diagonal Diag+r, off-diagonal Off−r/(N−1). The
// expectation over r is the original matrix.
func (m UniformMatrix) Randomize(r float64) (UniformMatrix, error) {
	out := UniformMatrix{
		N:    m.N,
		Diag: m.Diag + r,
		Off:  m.Off - r/float64(m.N-1),
	}
	if out.Diag < 0 || out.Off < 0 {
		return UniformMatrix{}, fmt.Errorf("%w: randomization r = %v leaves negative probabilities", ErrMatrix, r)
	}
	return out, nil
}

// MaxRandomization returns the largest α keeping all entries of the
// randomized matrix nonnegative for every r in [−α, α].
func (m UniformMatrix) MaxRandomization() float64 {
	fromDiag := m.Diag                // Diag − α ≥ 0
	fromOff := m.Off * float64(m.N-1) // Off − α/(N−1) ≥ 0
	if fromDiag < fromOff {
		return fromDiag
	}
	return fromOff
}

func abs(v float64) float64 { return math.Abs(v) }

func inf() float64 { return math.Inf(1) }
