package core

import (
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

func TestMaskPForGammaPaperValues(t *testing.T) {
	// Section 7: γ=19 gives p=0.5610 for CENSUS (M=6) and p=0.5524 for
	// HEALTH (M=7).
	p6, err := MaskPForGamma(6, 19)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p6-0.5610) > 5e-4 {
		t.Fatalf("CENSUS p = %v, want 0.5610", p6)
	}
	p7, err := MaskPForGamma(7, 19)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p7-0.5524) > 5e-4 {
		t.Fatalf("HEALTH p = %v, want 0.5524", p7)
	}
}

func TestMaskPForGammaErrors(t *testing.T) {
	if _, err := MaskPForGamma(0, 19); !errors.Is(err, ErrPerturb) {
		t.Fatal("0 attributes accepted")
	}
	if _, err := MaskPForGamma(6, 1); !errors.Is(err, ErrPerturb) {
		t.Fatal("gamma = 1 accepted")
	}
}

func TestMaskSchemeValidation(t *testing.T) {
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	for _, p := range []float64{0.5, 0.3, 1, 1.2} {
		if _, err := NewMaskScheme(m, p); !errors.Is(err, ErrPerturb) {
			t.Errorf("p = %v accepted", p)
		}
	}
	if _, err := NewMaskScheme(m, 0.6); err != nil {
		t.Fatal(err)
	}
}

func TestMaskAmplificationSatisfiesGamma(t *testing.T) {
	s := dataset.CensusSchema()
	m, _ := NewBoolMapping(s)
	sch, err := NewMaskSchemeForPrivacy(m, 19)
	if err != nil {
		t.Fatal(err)
	}
	amp := sch.Amplification()
	if amp > 19+1e-6 {
		t.Fatalf("MASK amplification %v exceeds γ=19", amp)
	}
	// The chosen p is tight: amplification should be close to γ.
	if amp < 18 {
		t.Fatalf("MASK amplification %v unexpectedly slack", amp)
	}
}

func TestMaskReconMatrixStochasticAndSymmetric(t *testing.T) {
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	sch, err := NewMaskScheme(m, 0.57)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l <= 4; l++ {
		a, err := sch.ReconMatrix(l)
		if err != nil {
			t.Fatal(err)
		}
		if !a.IsStochasticColumns(1e-9) {
			t.Fatalf("l=%d recon matrix not column-stochastic", l)
		}
		if !a.IsSymmetric(1e-12) {
			t.Fatalf("l=%d recon matrix not symmetric", l)
		}
	}
	if _, err := sch.ReconMatrix(-1); !errors.Is(err, ErrPerturb) {
		t.Fatal("negative l accepted")
	}
	if _, err := sch.ReconMatrix(21); !errors.Is(err, ErrPerturb) {
		t.Fatal("huge l accepted")
	}
}

func TestMaskCondClosedFormMatchesJacobi(t *testing.T) {
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	sch, _ := NewMaskScheme(m, 0.561)
	for l := 1; l <= 5; l++ {
		a, err := sch.ReconMatrix(l)
		if err != nil {
			t.Fatal(err)
		}
		jac, err := linalg.Cond2Symmetric(a)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(sch.Cond(l), jac, 1e-6) {
			t.Fatalf("l=%d: closed form %v vs Jacobi %v", l, sch.Cond(l), jac)
		}
	}
}

func TestMaskCondGrowsExponentially(t *testing.T) {
	s := dataset.CensusSchema()
	m, _ := NewBoolMapping(s)
	sch, _ := NewMaskSchemeForPrivacy(m, 19)
	ratio := sch.Cond(2) / sch.Cond(1)
	for l := 2; l < 6; l++ {
		r := sch.Cond(l+1) / sch.Cond(l)
		if !approx(r, ratio, 1e-9) {
			t.Fatalf("condition growth not geometric at l=%d", l)
		}
	}
	if sch.Cond(6) < 1e4 {
		t.Fatalf("MASK cond at l=6 is %v; paper reports ~1e5", sch.Cond(6))
	}
}

func TestMaskPerturbDatabaseFlipRate(t *testing.T) {
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	sch, _ := NewMaskScheme(m, 0.7)
	db := dataset.NewDatabase(s, 0)
	for i := 0; i < 4000; i++ {
		if err := db.Append(dataset.Record{0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	bdb, err := sch.PerturbDatabase(db, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := m.Encode(dataset.Record{0, 0, 0})
	var flips, total float64
	for _, row := range bdb.Rows {
		flips += float64(bits.OnesCount64(row ^ orig))
		total += float64(m.Mb)
	}
	got := flips / total
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("flip rate %v, want 0.3", got)
	}
}

func TestMaskEstimateSupportRecovers(t *testing.T) {
	// Build a database where itemset {a=0, b=1} has known support, mask
	// it with a mild flip rate, and check reconstruction.
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	sch, _ := NewMaskScheme(m, 0.9)
	db := dataset.NewDatabase(s, 0)
	const n = 30000
	const trueSupport = 9000
	for i := 0; i < n; i++ {
		if i < trueSupport {
			if err := db.Append(dataset.Record{0, 1, 0}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := db.Append(dataset.Record{1, 0, 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	bdb, err := sch.PerturbDatabase(db, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	bitA, _ := m.Bit(0, 0)
	bitB, _ := m.Bit(1, 1)
	est, err := sch.EstimateSupport(bdb, []int{bitA, bitB})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-trueSupport) > 0.05*trueSupport {
		t.Fatalf("estimated support %v, want ≈%d", est, trueSupport)
	}
	// Empty itemset is supported by everything.
	all, err := sch.EstimateSupport(bdb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if all != n {
		t.Fatalf("empty-itemset support %v, want %d", all, n)
	}
	if _, err := sch.EstimateSupport(bdb, []int{99}); !errors.Is(err, ErrPerturb) {
		t.Fatal("out-of-range bit accepted")
	}
}

func TestMaskEstimateMatchesExplicitInverse(t *testing.T) {
	// The O(l·2^l) tensor application must agree with the explicit
	// LU inverse of the materialized 2^l matrix.
	s := testSchema(t)
	m, _ := NewBoolMapping(s)
	sch, _ := NewMaskScheme(m, 0.75)
	db := dataset.NewDatabase(s, 0)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		if err := db.Append(dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}); err != nil {
			t.Fatal(err)
		}
	}
	bdb, err := sch.PerturbDatabase(db, rng)
	if err != nil {
		t.Fatal(err)
	}
	itemBits := []int{0, 3, 5} // a=0, b=0, c=0
	fast, err := sch.EstimateSupport(bdb, itemBits)
	if err != nil {
		t.Fatal(err)
	}
	// Slow path: counts → LU solve on materialized tensor matrix.
	l := len(itemBits)
	counts := make([]float64, 1<<uint(l))
	for _, row := range bdb.Rows {
		idx := 0
		for k, b := range itemBits {
			if row&(1<<uint(b)) != 0 {
				idx |= 1 << uint(k)
			}
		}
		counts[idx]++
	}
	a, err := sch.ReconMatrix(l)
	if err != nil {
		t.Fatal(err)
	}
	x, err := linalg.Solve(a, counts)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fast, x[len(x)-1], 1e-8) {
		t.Fatalf("tensor estimate %v vs LU %v", fast, x[len(x)-1])
	}
}
