package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// ErrPerturb is returned for perturbation setup failures.
var ErrPerturb = errors.New("core: invalid perturbation setup")

// Perturber maps an original categorical record to a randomly perturbed
// one. Implementations must not retain rec.
type Perturber interface {
	Perturb(rec dataset.Record, rng *rand.Rand) (dataset.Record, error)
}

// PerturbDatabase applies p independently to every record, the FRAPP
// client-side model in which each customer distorts their own record
// before submission (Section 2).
func PerturbDatabase(db *dataset.Database, p Perturber, rng *rand.Rand) (*dataset.Database, error) {
	out := dataset.NewDatabase(db.Schema, db.N())
	for i, rec := range db.Records {
		v, err := p.Perturb(rec, rng)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out.Records = append(out.Records, v)
	}
	return out, nil
}

// GammaPerturber is the efficient dependent-column perturbation of
// Section 5 for a deterministic uniform-off-diagonal matrix (DET-GD).
// Its per-record cost is O(M) — versus O(Π_j |S_j|) for the naive CDF
// walk — because of the chain factorization of Eq. 26: while the
// perturbed prefix still equals the original prefix, column j keeps its
// original value with the closed-form conditional probability; as soon
// as one column deviates, all remaining columns become uniform.
type GammaPerturber struct {
	schema *dataset.Schema
	matrix UniformMatrix
}

// NewGammaPerturber validates that the matrix order matches the schema
// domain.
func NewGammaPerturber(s *dataset.Schema, m UniformMatrix) (*GammaPerturber, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.N != s.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain size %d", ErrPerturb, m.N, s.DomainSize())
	}
	return &GammaPerturber{schema: s, matrix: m}, nil
}

// Matrix returns the perturbation matrix in use.
func (g *GammaPerturber) Matrix() UniformMatrix { return g.matrix }

// Perturb draws one perturbed record.
func (g *GammaPerturber) Perturb(rec dataset.Record, rng *rand.Rand) (dataset.Record, error) {
	if err := g.schema.Validate(rec); err != nil {
		return nil, err
	}
	return perturbChained(g.schema, g.matrix.Diag, g.matrix.Off, rec, rng), nil
}

// perturbChained implements the Section 5 sampler for any matrix of the
// form Diag·I + Off·(J−I) over the schema's mixed-radix domain.
func perturbChained(s *dataset.Schema, d, o float64, rec dataset.Record, rng *rand.Rand) dataset.Record {
	nC := float64(s.DomainSize())
	out := make(dataset.Record, s.M())
	matched := true
	nPrefix := 1.0
	// P(perturbed prefix equals original prefix through column j−1);
	// n_0 = 1 gives d + (nC−1)·o = 1 for a Markov matrix.
	prev := d + (nC-1)*o
	for j := 0; j < s.M(); j++ {
		card := s.Attrs[j].Cardinality()
		if !matched {
			out[j] = rng.Intn(card)
			continue
		}
		nPrefix *= float64(card)
		pPrefix := d + (nC/nPrefix-1)*o
		pMatch := pPrefix / prev
		if rng.Float64() < pMatch {
			out[j] = rec[j]
			prev = pPrefix
			continue
		}
		// Deviate: uniform over the other card−1 values; subsequent
		// columns are uniform over their full domains.
		v := rng.Intn(card - 1)
		if v >= rec[j] {
			v++
		}
		out[j] = v
		matched = false
	}
	return out
}

// RandomizedGammaPerturber implements RAN-GD (Section 4): each record is
// perturbed with a fresh realization of the randomized gamma-diagonal
// matrix, diagonal γx+r and off-diagonal x−r/(n−1) with r ~ U(−α, α).
// The miner only ever learns the expected matrix.
type RandomizedGammaPerturber struct {
	schema *dataset.Schema
	base   UniformMatrix
	alpha  float64
}

// NewRandomizedGammaPerturber validates α against the base matrix: every
// realization in [−α, α] must remain a valid Markov matrix.
func NewRandomizedGammaPerturber(s *dataset.Schema, base UniformMatrix, alpha float64) (*RandomizedGammaPerturber, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if base.N != s.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain size %d", ErrPerturb, base.N, s.DomainSize())
	}
	if alpha < 0 {
		return nil, fmt.Errorf("%w: negative randomization amplitude %v", ErrPerturb, alpha)
	}
	if max := base.MaxRandomization(); alpha > max+1e-12 {
		return nil, fmt.Errorf("%w: alpha %v exceeds maximum %v for this matrix", ErrPerturb, alpha, max)
	}
	return &RandomizedGammaPerturber{schema: s, base: base, alpha: alpha}, nil
}

// ExpectedMatrix returns E[Ã], the matrix the miner reconstructs with.
func (g *RandomizedGammaPerturber) ExpectedMatrix() UniformMatrix { return g.base }

// Alpha returns the randomization amplitude.
func (g *RandomizedGammaPerturber) Alpha() float64 { return g.alpha }

// Perturb draws the per-client matrix realization, then perturbs.
func (g *RandomizedGammaPerturber) Perturb(rec dataset.Record, rng *rand.Rand) (dataset.Record, error) {
	if err := g.schema.Validate(rec); err != nil {
		return nil, err
	}
	r := (2*rng.Float64() - 1) * g.alpha
	m, err := g.base.Randomize(r)
	if err != nil {
		return nil, err
	}
	return perturbChained(g.schema, m.Diag, m.Off, rec, rng), nil
}

// NaiveGammaPerturber is the "straightforward algorithm" of Section 5: it
// materializes the full discrete distribution over the record domain and
// walks its CDF, at O(|S_V|) cost per record. Retained as the correctness
// oracle for GammaPerturber and for the Section 5 complexity benchmark;
// only usable for small domains.
type NaiveGammaPerturber struct {
	schema *dataset.Schema
	matrix UniformMatrix
}

// NewNaiveGammaPerturber builds the oracle perturber.
func NewNaiveGammaPerturber(s *dataset.Schema, m UniformMatrix) (*NaiveGammaPerturber, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.N != s.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain size %d", ErrPerturb, m.N, s.DomainSize())
	}
	return &NaiveGammaPerturber{schema: s, matrix: m}, nil
}

// Perturb walks the CDF of column u of the perturbation matrix.
func (g *NaiveGammaPerturber) Perturb(rec dataset.Record, rng *rand.Rand) (dataset.Record, error) {
	u, err := g.schema.Index(rec)
	if err != nil {
		return nil, err
	}
	r := rng.Float64()
	var acc float64
	v := g.matrix.N - 1
	for i := 0; i < g.matrix.N; i++ {
		if i == u {
			acc += g.matrix.Diag
		} else {
			acc += g.matrix.Off
		}
		if r <= acc {
			v = i
			break
		}
	}
	return g.schema.Decode(v)
}

// DensePerturber perturbs with an arbitrary dense perturbation matrix
// (column u is the output distribution for input u), realizing FRAPP's
// "design the matrix first, derive the method" philosophy for matrices
// without exploitable structure. Sampling uses per-column alias tables:
// O(1) per draw after O(n²) setup.
type DensePerturber struct {
	schema   *dataset.Schema
	matrix   *linalg.Dense
	samplers []*stats.AliasSampler
}

// NewDensePerturber validates the matrix (column-stochastic, matching the
// schema domain) and builds the per-column samplers.
func NewDensePerturber(s *dataset.Schema, a *linalg.Dense) (*DensePerturber, error) {
	rows, cols := a.Dims()
	n := s.DomainSize()
	if rows != n || cols != n {
		return nil, fmt.Errorf("%w: matrix %dx%d vs domain size %d", ErrPerturb, rows, cols, n)
	}
	if !a.IsStochasticColumns(1e-9) {
		return nil, fmt.Errorf("%w: matrix is not column-stochastic", ErrPerturb)
	}
	samplers := make([]*stats.AliasSampler, n)
	for u := 0; u < n; u++ {
		col := a.Col(u)
		smp, err := stats.NewAliasSampler(col)
		if err != nil {
			return nil, fmt.Errorf("%w: column %d: %v", ErrPerturb, u, err)
		}
		samplers[u] = smp
	}
	return &DensePerturber{schema: s, matrix: a, samplers: samplers}, nil
}

// Perturb samples the perturbed record index from column u's alias table.
func (p *DensePerturber) Perturb(rec dataset.Record, rng *rand.Rand) (dataset.Record, error) {
	u, err := p.schema.Index(rec)
	if err != nil {
		return nil, err
	}
	return p.schema.Decode(p.samplers[u].Sample(rng))
}
