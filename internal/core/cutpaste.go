package core

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// CutPasteScheme is the Cut-and-Paste randomization baseline (Evfimievski
// et al., KDD 2002) applied to the boolean encoding of a categorical
// database, where every transaction contains exactly M items (one per
// attribute) drawn from a universe of Mb boolean items.
//
// Operator (parameters K, ρ): for each transaction t,
//  1. draw j uniformly from {0,…,K} and set w = min(j, M) — the
//     "select-a-size" choice, whose mass function is the paper's p_M[z]
//     after folding in step 3;
//  2. "cut": keep a uniformly random w-subset of t;
//  3. "paste within": include each unselected item of t independently
//     with probability ρ;
//  4. "paste outside": include each item of the universe outside t
//     independently with probability ρ.
type CutPasteScheme struct {
	Mapping *BoolMapping
	K       int
	Rho     float64
}

// NewCutPasteScheme validates the operator parameters.
func NewCutPasteScheme(m *BoolMapping, k int, rho float64) (*CutPasteScheme, error) {
	if k < 0 {
		return nil, fmt.Errorf("%w: C&P K = %d negative", ErrPerturb, k)
	}
	if !(rho > 0 && rho < 1) {
		return nil, fmt.Errorf("%w: C&P rho = %v not in (0,1)", ErrPerturb, rho)
	}
	return &CutPasteScheme{Mapping: m, K: k, Rho: rho}, nil
}

// SelectSizePMF returns p_M[z] for z = 0..M: the distribution of the
// number of t's items that survive into the perturbed transaction
// (Equation 12's inner distribution). It combines the truncated-uniform
// cut size w with binomial ρ-insertions from the unselected items.
func (s *CutPasteScheme) SelectSizePMF() []float64 {
	m := s.Mapping.Schema.M()
	pmf := make([]float64, m+1)
	for w := 0; w <= min(m, s.K); w++ {
		var weight float64
		if w == m && m < s.K {
			// Uniform j ≥ M all truncate to w = M.
			weight = 1 - float64(m)/float64(s.K+1)
		} else {
			weight = 1 / float64(s.K+1)
		}
		for z := w; z <= m; z++ {
			pmf[z] += weight * stats.BinomialPMF(m-w, s.Rho, z-w)
		}
	}
	return pmf
}

// TransitionProb returns the exact probability that transaction t (with
// exactly M items) is perturbed to the specific item set v, as a function
// of s = |v∩t| and o = |v\t|: p_M[s]/C(M,s) · ρ^o (1−ρ)^(Mb−M−o).
// Given the survivor count z, the surviving subset is uniform among
// z-subsets by exchangeability, which yields the 1/C(M,s) factor.
func (s *CutPasteScheme) TransitionProb(overlap, outside int) (float64, error) {
	m := s.Mapping.Schema.M()
	mb := s.Mapping.Mb
	if overlap < 0 || overlap > m {
		return 0, fmt.Errorf("%w: overlap %d out of [0,%d]", ErrPerturb, overlap, m)
	}
	if outside < 0 || outside > mb-m {
		return 0, fmt.Errorf("%w: outside count %d out of [0,%d]", ErrPerturb, outside, mb-m)
	}
	pmf := s.SelectSizePMF()
	pIn := pmf[overlap] / stats.Choose(m, overlap)
	pOut := math.Pow(s.Rho, float64(outside)) * math.Pow(1-s.Rho, float64(mb-m-outside))
	return pIn * pOut, nil
}

// Amplification returns the worst-case ratio of transition probabilities
// across two possible originals for any observable output — the quantity
// Equation 2 bounds by γ. For fixed v, the ratio between originals with
// overlaps s1 and s2 reduces to g(s1)/g(s2) with
// g(s) = p_M[s]/C(M,s) · ((1−ρ)/ρ)^s, so the amplification is
// max g / min g over s = 0..M.
func (s *CutPasteScheme) Amplification() float64 {
	m := s.Mapping.Schema.M()
	pmf := s.SelectSizePMF()
	ratio := (1 - s.Rho) / s.Rho
	mn, mx := math.Inf(1), 0.0
	for k := 0; k <= m; k++ {
		g := pmf[k] / stats.Choose(m, k) * math.Pow(ratio, float64(k))
		if g < mn {
			mn = g
		}
		if g > mx {
			mx = g
		}
	}
	if mn == 0 {
		return math.Inf(1)
	}
	return mx / mn
}

// FindRhoForGamma scans ρ on a fine grid and returns the feasible ρ
// closest to the requested target (pass the paper's 0.494 to reproduce
// its operating point, or 0 to get the smallest feasible ρ). It returns
// an error if no ρ satisfies the γ constraint for this K.
func FindRhoForGamma(m *BoolMapping, k int, gamma, target float64) (float64, error) {
	best, bestDist := -1.0, math.Inf(1)
	for i := 1; i < 2000; i++ {
		rho := float64(i) / 2000
		s, err := NewCutPasteScheme(m, k, rho)
		if err != nil {
			return 0, err
		}
		if s.Amplification() <= gamma+1e-9 {
			d := math.Abs(rho - target)
			if target == 0 {
				// Smallest feasible ρ wins.
				if best < 0 {
					best = rho
				}
				continue
			}
			if d < bestDist {
				best, bestDist = rho, d
			}
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("%w: no rho satisfies gamma=%v for K=%d", ErrPerturb, gamma, k)
	}
	return best, nil
}

// PerturbRecord applies the operator to one categorical record — the
// client-side unit of C&P perturbation.
func (s *CutPasteScheme) PerturbRecord(rec dataset.Record, rng *rand.Rand) (uint64, error) {
	m := s.Mapping.Schema.M()
	t, err := s.Mapping.Encode(rec)
	if err != nil {
		return 0, err
	}
	// Enumerate t's items.
	items := make([]int, 0, m)
	for b := t; b != 0; b &= b - 1 {
		items = append(items, bits.TrailingZeros64(b))
	}
	// Cut: keep a uniform w-subset, w = min(uniform{0..K}, M).
	w := rng.Intn(s.K + 1)
	if w > m {
		w = m
	}
	var v uint64
	// Partial Fisher–Yates for the w kept items.
	for x := 0; x < w; x++ {
		y := x + rng.Intn(len(items)-x)
		items[x], items[y] = items[y], items[x]
		v |= 1 << uint(items[x])
	}
	// Paste within: unselected items of t.
	for _, it := range items[w:] {
		if rng.Float64() < s.Rho {
			v |= 1 << uint(it)
		}
	}
	// Paste outside: items of the universe not in t.
	for b := 0; b < s.Mapping.Mb; b++ {
		if t&(1<<uint(b)) == 0 && rng.Float64() < s.Rho {
			v |= 1 << uint(b)
		}
	}
	return v, nil
}

// PerturbDatabase applies the operator to every record.
func (s *CutPasteScheme) PerturbDatabase(db *dataset.Database, rng *rand.Rand) (*BoolDatabase, error) {
	rows := make([]uint64, 0, db.N())
	for i, rec := range db.Records {
		v, err := s.PerturbRecord(rec, rng)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		rows = append(rows, v)
	}
	return &BoolDatabase{Mapping: s.Mapping, Rows: rows}, nil
}

// PartialSupportMatrix returns the (l+1)×(l+1) transition matrix over
// "number of itemset items present" used for support reconstruction of a
// length-l itemset (the KDD 2002 partial-support method): entry [q][q']
// is the probability that the perturbed transaction contains exactly q of
// the itemset's items given the original contained q'. With z survivors
// from t, the overlap with the q' in-transaction itemset items is
// hypergeometric; the l−q' out-of-transaction items each paste in with
// probability ρ.
func (s *CutPasteScheme) PartialSupportMatrix(l int) (*linalg.Dense, error) {
	m := s.Mapping.Schema.M()
	if l < 0 || l > m {
		return nil, fmt.Errorf("%w: itemset length %d out of [0,%d]", ErrPerturb, l, m)
	}
	pmf := s.SelectSizePMF()
	a := linalg.NewDense(l+1, l+1)
	for qPrime := 0; qPrime <= l; qPrime++ {
		for q := 0; q <= l; q++ {
			var p float64
			for z := 0; z <= m; z++ {
				if pmf[z] == 0 {
					continue
				}
				var inner float64
				for h := 0; h <= q && h <= qPrime; h++ {
					inner += stats.HypergeomPMF(m, qPrime, z, h) *
						stats.BinomialPMF(l-qPrime, s.Rho, q-h)
				}
				p += pmf[z] * inner
			}
			a.Set(q, qPrime, p)
		}
	}
	return a, nil
}

// Cond returns the 1-norm condition number of the length-l partial
// support matrix (it is not symmetric, so the 2-norm closed forms do not
// apply). This is the quantity whose exponential growth explains C&P's
// collapse beyond 3-itemsets in Figures 1, 2 and 4.
func (s *CutPasteScheme) Cond(l int) (float64, error) {
	a, err := s.PartialSupportMatrix(l)
	if err != nil {
		return 0, err
	}
	return linalg.Cond1(a)
}

// EstimateSupport reconstructs the original support count of the itemset
// whose boolean items are itemBits: count the perturbed partial supports
// Y[q] = #records containing exactly q itemset items, solve A·X̂ = Y, and
// return X̂[l].
func (s *CutPasteScheme) EstimateSupport(db *BoolDatabase, itemBits []int) (float64, error) {
	l := len(itemBits)
	if l == 0 {
		return float64(db.N()), nil
	}
	var mask uint64
	for _, b := range itemBits {
		if b < 0 || b >= s.Mapping.Mb {
			return 0, fmt.Errorf("%w: bit %d out of range", ErrPerturb, b)
		}
		mask |= 1 << uint(b)
	}
	y := make([]float64, l+1)
	for _, row := range db.Rows {
		y[bits.OnesCount64(row&mask)]++
	}
	return s.ReconstructPartialCounts(y)
}

// ReconstructPartialCounts inverts the observed partial-support counts of
// one length-l itemset — y[q] is the number of perturbed records
// containing exactly q of the itemset's items, so len(y) must be l+1 —
// and returns the estimated original support X̂[l]. This is the estimator
// core shared by the record-scan EstimateSupport and the live
// materialized counter, which accumulates the same partial supports
// incrementally.
func (s *CutPasteScheme) ReconstructPartialCounts(y []float64) (float64, error) {
	l := len(y) - 1
	if l < 1 || l > s.Mapping.Schema.M() {
		return 0, fmt.Errorf("%w: partial support vector length %d out of [2,%d]", ErrPerturb, len(y), s.Mapping.Schema.M()+1)
	}
	a, err := s.PartialSupportMatrix(l)
	if err != nil {
		return 0, err
	}
	x, err := linalg.Solve(a, y)
	if err != nil {
		return 0, err
	}
	return x[l], nil
}

// PartialWeights returns the linear-estimator weights of
// ReconstructPartialCounts for a length-l itemset: the estimate is
// Σ_q w[q]·y[q] with w the last row of the partial-support matrix's
// inverse, obtained by solving Aᵀ·w = e_l. The weights feed the plug-in
// multinomial variance of the live query estimator.
func (s *CutPasteScheme) PartialWeights(l int) ([]float64, error) {
	a, err := s.PartialSupportMatrix(l)
	if err != nil {
		return nil, err
	}
	at := linalg.NewDense(l+1, l+1)
	for i := 0; i <= l; i++ {
		for j := 0; j <= l; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	e := make([]float64, l+1)
	e[l] = 1
	return linalg.Solve(at, e)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
