package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/linalg"
)

func testSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("perturb-test", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// transitionFrequencies estimates the empirical transition distribution
// from one fixed record under a perturber.
func transitionFrequencies(t *testing.T, s *dataset.Schema, p Perturber, rec dataset.Record, trials int, seed int64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	freq := make([]float64, s.DomainSize())
	for i := 0; i < trials; i++ {
		v, err := p.Perturb(rec, rng)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := s.Index(v)
		if err != nil {
			t.Fatal(err)
		}
		freq[idx]++
	}
	for i := range freq {
		freq[i] /= float64(trials)
	}
	return freq
}

func TestGammaPerturberMatchesMatrix(t *testing.T) {
	s := testSchema(t)
	m, err := NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	rec := dataset.Record{1, 0, 2}
	u, _ := s.Index(rec)
	const trials = 400000
	freq := transitionFrequencies(t, s, p, rec, trials, 99)
	// Empirical frequencies must match matrix column u: Diag at u, Off
	// elsewhere. Binomial std ≈ sqrt(p/n): allow 5 sigma.
	for v := 0; v < s.DomainSize(); v++ {
		want := m.Off
		if v == u {
			want = m.Diag
		}
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(freq[v]-want) > 5*sigma+1e-9 {
			t.Fatalf("transition %d→%d: freq %v, want %v (±%v)", u, v, freq[v], want, 5*sigma)
		}
	}
}

func TestGammaPerturberAgreesWithNaive(t *testing.T) {
	s := testSchema(t)
	m, err := NewGammaDiagonal(s.DomainSize(), 7)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NewNaiveGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	rec := dataset.Record{2, 1, 3}
	const trials = 300000
	f1 := transitionFrequencies(t, s, fast, rec, trials, 5)
	f2 := transitionFrequencies(t, s, naive, rec, trials, 6)
	for v := range f1 {
		if math.Abs(f1[v]-f2[v]) > 0.01 {
			t.Fatalf("samplers disagree at %d: chained %v vs naive %v", v, f1[v], f2[v])
		}
	}
}

func TestDensePerturberMatchesGamma(t *testing.T) {
	s := testSchema(t)
	m, err := NewGammaDiagonal(s.DomainSize(), 7)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewDensePerturber(s, m.Dense())
	if err != nil {
		t.Fatal(err)
	}
	rec := dataset.Record{0, 1, 0}
	u, _ := s.Index(rec)
	const trials = 300000
	freq := transitionFrequencies(t, s, dp, rec, trials, 31)
	for v := range freq {
		want := m.Off
		if v == u {
			want = m.Diag
		}
		sigma := math.Sqrt(want * (1 - want) / trials)
		if math.Abs(freq[v]-want) > 5*sigma+1e-9 {
			t.Fatalf("dense perturber off at %d: %v vs %v", v, freq[v], want)
		}
	}
}

func TestRandomizedGammaPerturberExpectation(t *testing.T) {
	s := testSchema(t)
	m, err := NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	alpha := m.Diag / 2 // γx/2, the paper's Figure 1–2 setting
	p, err := NewRandomizedGammaPerturber(s, m, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if p.Alpha() != alpha {
		t.Fatalf("Alpha() = %v", p.Alpha())
	}
	if p.ExpectedMatrix() != m {
		t.Fatal("ExpectedMatrix() changed")
	}
	rec := dataset.Record{1, 1, 1}
	u, _ := s.Index(rec)
	const trials = 400000
	freq := transitionFrequencies(t, s, p, rec, trials, 77)
	// Marginally over r, transitions follow the EXPECTED matrix.
	for v := range freq {
		want := m.Off
		if v == u {
			want = m.Diag
		}
		// Extra variance from randomization: widen tolerance.
		sigma := math.Sqrt(want*(1-want)/trials) + alpha/math.Sqrt(trials)
		if math.Abs(freq[v]-want) > 6*sigma+2e-3 {
			t.Fatalf("RAN-GD marginal off at %d: %v vs %v", v, freq[v], want)
		}
	}
}

func TestRandomizedPerturberAlphaValidation(t *testing.T) {
	s := testSchema(t)
	m, _ := NewGammaDiagonal(s.DomainSize(), 19)
	if _, err := NewRandomizedGammaPerturber(s, m, -1); !errors.Is(err, ErrPerturb) {
		t.Fatal("negative alpha accepted")
	}
	if _, err := NewRandomizedGammaPerturber(s, m, m.MaxRandomization()*2); !errors.Is(err, ErrPerturb) {
		t.Fatal("excessive alpha accepted")
	}
	if _, err := NewRandomizedGammaPerturber(s, m, m.MaxRandomization()); err != nil {
		t.Fatalf("maximal alpha rejected: %v", err)
	}
}

func TestPerturberSetupErrors(t *testing.T) {
	s := testSchema(t)
	wrongOrder, _ := NewGammaDiagonal(s.DomainSize()+1, 19)
	if _, err := NewGammaPerturber(s, wrongOrder); !errors.Is(err, ErrPerturb) {
		t.Fatal("order mismatch accepted")
	}
	if _, err := NewNaiveGammaPerturber(s, wrongOrder); !errors.Is(err, ErrPerturb) {
		t.Fatal("naive order mismatch accepted")
	}
	bad := UniformMatrix{N: s.DomainSize(), Diag: 2, Off: 0}
	if _, err := NewGammaPerturber(s, bad); err == nil {
		t.Fatal("invalid matrix accepted")
	}
	if _, err := NewDensePerturber(s, linalg.NewDense(3, 3)); err == nil {
		t.Fatal("wrong-size dense matrix accepted")
	}
}

func TestPerturbDatabase(t *testing.T) {
	s := testSchema(t)
	db := dataset.NewDatabase(s, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		rec := dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
		if err := db.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := NewGammaDiagonal(s.DomainSize(), 19)
	p, err := NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := PerturbDatabase(db, p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if out.N() != db.N() {
		t.Fatalf("perturbed N = %d, want %d", out.N(), db.N())
	}
	for i, rec := range out.Records {
		if err := s.Validate(rec); err != nil {
			t.Fatalf("perturbed record %d invalid: %v", i, err)
		}
	}
	// With γ=19 and n=24, a substantial share of records must be changed.
	changed := 0
	for i := range db.Records {
		for j := range db.Records[i] {
			if db.Records[i][j] != out.Records[i][j] {
				changed++
				break
			}
		}
	}
	if changed == 0 {
		t.Fatal("no record changed — perturbation not happening")
	}
}

func TestPerturbRejectsInvalidRecord(t *testing.T) {
	s := testSchema(t)
	m, _ := NewGammaDiagonal(s.DomainSize(), 19)
	p, _ := NewGammaPerturber(s, m)
	rng := rand.New(rand.NewSource(3))
	if _, err := p.Perturb(dataset.Record{9, 9, 9}, rng); err == nil {
		t.Fatal("invalid record accepted")
	}
	rp, _ := NewRandomizedGammaPerturber(s, m, 0)
	if _, err := rp.Perturb(dataset.Record{9}, rng); err == nil {
		t.Fatal("invalid record accepted by RAN-GD")
	}
	np, _ := NewNaiveGammaPerturber(s, m)
	if _, err := np.Perturb(dataset.Record{0}, rng); err == nil {
		t.Fatal("invalid record accepted by naive")
	}
}
