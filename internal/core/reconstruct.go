package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// ReconstructHistogram estimates the original record-count distribution X̂
// from the perturbed histogram Y by solving Y = A·X̂ (Equation 8 of the
// paper) in O(n) using the uniform-off-diagonal structure.
func ReconstructHistogram(m UniformMatrix, y []float64) ([]float64, error) {
	return m.Solve(y)
}

// ReconstructHistogramDense is the general-matrix reconstruction via LU,
// usable with any invertible perturbation matrix; it cross-checks the
// closed-form path in tests and supports custom DensePerturber matrices.
func ReconstructHistogramDense(a *linalg.Dense, y []float64) ([]float64, error) {
	return linalg.Solve(a, y)
}

// EstimationErrorBound evaluates Theorem 1 of the paper: given the
// condition number of the perturbation matrix, the observed perturbed
// histogram y and its expectation Ey = A·X, the relative reconstruction
// error ‖X̂−X‖/‖X‖ is bounded by cond · ‖y−Ey‖/‖Ey‖ (2-norms).
func EstimationErrorBound(cond float64, y, ey []float64) (float64, error) {
	if len(y) != len(ey) {
		return 0, fmt.Errorf("%w: length mismatch %d vs %d", ErrMatrix, len(y), len(ey))
	}
	diff := make([]float64, len(y))
	for i := range y {
		diff[i] = y[i] - ey[i]
	}
	den := linalg.VecNorm2(ey)
	if den == 0 {
		return 0, fmt.Errorf("%w: zero expectation vector", ErrMatrix)
	}
	return cond * linalg.VecNorm2(diff) / den, nil
}

// RelativeError returns ‖X̂−X‖/‖X‖ (2-norms), the left side of Theorem 1.
func RelativeError(xhat, x []float64) (float64, error) {
	if len(xhat) != len(x) {
		return 0, fmt.Errorf("%w: length mismatch %d vs %d", ErrMatrix, len(xhat), len(x))
	}
	diff := make([]float64, len(x))
	for i := range x {
		diff[i] = xhat[i] - x[i]
	}
	den := linalg.VecNorm2(x)
	if den == 0 {
		return 0, fmt.Errorf("%w: zero truth vector", ErrMatrix)
	}
	return linalg.VecNorm2(diff) / den, nil
}

// PerturbedCountDistribution returns the Poisson-Binomial distribution of
// Y_v, the count of perturbed records with value v, for a database whose
// original histogram is x and a uniform-off-diagonal matrix (Section 2.2):
// each original record at u contributes a Bernoulli trial with success
// probability A[v][u].
func PerturbedCountDistribution(m UniformMatrix, x []float64, v int) (*stats.PoissonBinomial, error) {
	if len(x) != m.N {
		return nil, fmt.Errorf("%w: histogram length %d vs order %d", ErrMatrix, len(x), m.N)
	}
	if v < 0 || v >= m.N {
		return nil, fmt.Errorf("%w: value index %d out of range", ErrMatrix, v)
	}
	var probs []float64
	for u, cnt := range x {
		n := int(cnt)
		p := m.Off
		if u == v {
			p = m.Diag
		}
		for i := 0; i < n; i++ {
			probs = append(probs, p)
		}
	}
	return stats.NewPoissonBinomial(probs)
}

// ExpectedPerturbedHistogram returns E[Y] = A·X for the uniform matrix.
func ExpectedPerturbedHistogram(m UniformMatrix, x []float64) ([]float64, error) {
	return m.MulVec(x)
}

// TrueHistogram is a convenience wrapper exposing the dataset histogram
// through the core package for callers assembling end-to-end pipelines.
func TrueHistogram(db *dataset.Database) ([]float64, error) {
	return db.Histogram()
}
