package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestNewGammaDiagonalBasics(t *testing.T) {
	m, err := NewGammaDiagonal(5, 19)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	x := 1.0 / (19 + 5 - 1)
	if !approx(m.Diag, 19*x, 1e-15) || !approx(m.Off, x, 1e-15) {
		t.Fatalf("entries %v/%v, want %v/%v", m.Diag, m.Off, 19*x, x)
	}
	if !approx(m.Gamma(), 19, 1e-12) {
		t.Fatalf("Gamma() = %v", m.Gamma())
	}
	if m.X() != m.Off {
		t.Fatal("X() must equal Off for gamma-diagonal")
	}
	if !m.Dense().IsStochasticColumns(1e-12) {
		t.Fatal("gamma-diagonal matrix not column-stochastic")
	}
}

func TestNewGammaDiagonalErrors(t *testing.T) {
	if _, err := NewGammaDiagonal(1, 19); !errors.Is(err, ErrMatrix) {
		t.Fatal("order 1 accepted")
	}
	if _, err := NewGammaDiagonal(5, 1); !errors.Is(err, ErrMatrix) {
		t.Fatal("gamma = 1 accepted")
	}
	if _, err := NewGammaDiagonal(5, 0.5); !errors.Is(err, ErrMatrix) {
		t.Fatal("gamma < 1 accepted")
	}
}

func TestUniformValidate(t *testing.T) {
	bad := []UniformMatrix{
		{N: 1, Diag: 1, Off: 0},
		{N: 3, Diag: -0.1, Off: 0.55},
		{N: 3, Diag: 0.5, Off: -0.1},
		{N: 3, Diag: 0.5, Off: 0.5}, // sums to 1.5
	}
	for _, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrMatrix) {
			t.Errorf("matrix %+v accepted", m)
		}
	}
}

func TestCondClosedFormPaper(t *testing.T) {
	// Section 3: condition number of the gamma-diagonal matrix is
	// (γ+n−1)/(γ−1), e.g. CENSUS n=2000, γ=19 → ≈112.1.
	cases := []struct {
		n     int
		gamma float64
	}{
		{2000, 19}, {7500, 19}, {10, 3}, {100, 50},
	}
	for _, c := range cases {
		m, err := NewGammaDiagonal(c.n, c.gamma)
		if err != nil {
			t.Fatal(err)
		}
		want := (c.gamma + float64(c.n) - 1) / (c.gamma - 1)
		if !approx(m.Cond(), want, 1e-12) {
			t.Fatalf("n=%d γ=%v: Cond=%v, want %v", c.n, c.gamma, m.Cond(), want)
		}
	}
}

func TestCondMatchesJacobi(t *testing.T) {
	for _, n := range []int{2, 5, 12, 30} {
		m, err := NewGammaDiagonal(n, 7)
		if err != nil {
			t.Fatal(err)
		}
		jac, err := linalg.Cond2Symmetric(m.Dense())
		if err != nil {
			t.Fatal(err)
		}
		if !approx(m.Cond(), jac, 1e-8) {
			t.Fatalf("n=%d: closed form %v vs Jacobi %v", n, m.Cond(), jac)
		}
	}
}

func TestGammaDiagonalIsOptimalCond(t *testing.T) {
	// Section 3's optimality theorem: no symmetric column-stochastic
	// matrix with row-ratio ≤ γ can have condition number below
	// (γ+n−1)/(γ−1). Spot-check against random valid competitors.
	const n, gamma = 6, 9.0
	gd, err := NewGammaDiagonal(n, gamma)
	if err != nil {
		t.Fatal(err)
	}
	best := gd.Cond()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		// Random symmetric stochastic matrix under the gamma constraint:
		// start from gamma-diagonal and apply random symmetric
		// perturbations that preserve column sums, then check constraints.
		a := gd.Dense()
		for k := 0; k < 5; k++ {
			i, j, l := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if i == j || j == l || i == l {
				continue
			}
			eps := (rng.Float64() - 0.5) * 0.01
			// Symmetric update preserving row and column sums.
			a.Add(i, j, eps)
			a.Add(j, i, eps)
			a.Add(i, l, -eps)
			a.Add(l, i, -eps)
			a.Add(j, l, -eps)
			a.Add(l, j, -eps)
			a.Add(j, j, eps)
			a.Add(l, l, eps)
			a.Add(i, i, 0)
		}
		if !a.IsStochasticColumns(1e-9) || !a.IsSymmetric(1e-9) {
			continue
		}
		if Amplification(a) > gamma {
			continue
		}
		c, err := linalg.Cond2Symmetric(a)
		if err != nil {
			continue
		}
		if c < best-1e-9 {
			t.Fatalf("found symmetric constrained matrix with cond %v < optimal %v", c, best)
		}
	}
}

func TestSolveMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{2, 7, 40} {
		m, err := NewGammaDiagonal(n, 19)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, n)
		for i := range y {
			y[i] = rng.Float64() * 100
		}
		fast, err := m.Solve(y)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := linalg.Solve(m.Dense(), y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast {
			if !approx(fast[i], slow[i], 1e-9) {
				t.Fatalf("n=%d: closed-form solve[%d]=%v vs LU %v", n, i, fast[i], slow[i])
			}
		}
	}
}

func TestSolveRoundTripProperty(t *testing.T) {
	m, err := NewGammaDiagonal(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [8]float64) bool {
		y := make([]float64, 8)
		for i, v := range raw {
			y[i] = math.Mod(math.Abs(v), 1000)
		}
		x, err := m.Solve(y)
		if err != nil {
			return false
		}
		back, err := m.MulVec(x)
		if err != nil {
			return false
		}
		for i := range y {
			if math.Abs(back[i]-y[i]) > 1e-8*(1+math.Abs(y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveErrors(t *testing.T) {
	m, _ := NewGammaDiagonal(4, 19)
	if _, err := m.Solve([]float64{1, 2}); !errors.Is(err, ErrMatrix) {
		t.Fatal("length mismatch accepted")
	}
	sing := UniformMatrix{N: 4, Diag: 0.25, Off: 0.25}
	if _, err := sing.Solve([]float64{1, 2, 3, 4}); !errors.Is(err, ErrMatrix) {
		t.Fatal("singular matrix solve accepted")
	}
	if _, err := m.MulVec([]float64{1}); !errors.Is(err, ErrMatrix) {
		t.Fatal("MulVec length mismatch accepted")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	m, _ := NewGammaDiagonal(9, 4)
	x := []float64{1, 0, 2, 0, 3, 0, 4, 0, 5}
	fast, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := m.Dense().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if !approx(fast[i], slow[i], 1e-12) {
			t.Fatalf("MulVec[%d] = %v vs dense %v", i, fast[i], slow[i])
		}
	}
}

func TestMarginalEq28(t *testing.T) {
	// Full domain 24 = 3·2·4; marginal over a sub-domain of size 6.
	m, err := NewGammaDiagonal(24, 19)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := m.Marginal(6)
	if err != nil {
		t.Fatal(err)
	}
	x := m.Off
	ratio := 24.0 / 6.0
	if !approx(sub.Diag, 19*x+(ratio-1)*x, 1e-14) {
		t.Fatalf("marginal diag %v", sub.Diag)
	}
	if !approx(sub.Off, ratio*x, 1e-14) {
		t.Fatalf("marginal off %v", sub.Off)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("marginal not a valid Markov matrix: %v", err)
	}
	// Figure 4 claim: marginal condition number equals the full matrix's.
	if !approx(sub.Cond(), m.Cond(), 1e-10) {
		t.Fatalf("marginal cond %v != full cond %v", sub.Cond(), m.Cond())
	}
}

func TestMarginalErrors(t *testing.T) {
	m, _ := NewGammaDiagonal(24, 19)
	if _, err := m.Marginal(0); !errors.Is(err, ErrMatrix) {
		t.Fatal("sub-size 0 accepted")
	}
	if _, err := m.Marginal(25); !errors.Is(err, ErrMatrix) {
		t.Fatal("oversize accepted")
	}
	if _, err := m.Marginal(7); !errors.Is(err, ErrMatrix) {
		t.Fatal("non-divisor accepted")
	}
}

func TestMarginalFullIsIdentityOp(t *testing.T) {
	m, _ := NewGammaDiagonal(24, 19)
	sub, err := m.Marginal(24)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sub.Diag, m.Diag, 1e-15) || !approx(sub.Off, m.Off, 1e-15) {
		t.Fatal("Marginal(n) must be the matrix itself")
	}
}

func TestRandomizeExpectationAndBounds(t *testing.T) {
	m, _ := NewGammaDiagonal(10, 19)
	alpha := m.MaxRandomization()
	if alpha <= 0 {
		t.Fatalf("MaxRandomization = %v", alpha)
	}
	plus, err := m.Randomize(alpha)
	if err != nil {
		t.Fatal(err)
	}
	minus, err := m.Randomize(-alpha)
	if err != nil {
		t.Fatal(err)
	}
	// Expectation of the two extremes is the base matrix.
	if !approx((plus.Diag+minus.Diag)/2, m.Diag, 1e-12) {
		t.Fatal("Randomize not mean-preserving on diagonal")
	}
	if !approx((plus.Off+minus.Off)/2, m.Off, 1e-12) {
		t.Fatal("Randomize not mean-preserving off diagonal")
	}
	// Realizations remain valid Markov matrices.
	if err := plus.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := minus.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Randomize(alpha * 10); !errors.Is(err, ErrMatrix) {
		t.Fatal("out-of-range r accepted")
	}
}

func TestEigenvaluesMarkov(t *testing.T) {
	m, _ := NewGammaDiagonal(13, 19)
	small, large := m.Eigenvalues()
	if !approx(large, 1, 1e-12) {
		t.Fatalf("Markov dominant eigenvalue %v", large)
	}
	if !approx(small, m.Off*(19-1), 1e-12) {
		t.Fatalf("small eigenvalue %v", small)
	}
}

func TestGammaDegenerate(t *testing.T) {
	if g := (UniformMatrix{N: 3, Diag: 0, Off: 0.5}).Gamma(); g != 0 {
		t.Fatalf("Gamma = %v, want 0", g)
	}
	if g := (UniformMatrix{N: 3, Diag: 0, Off: 0}).Gamma(); g != 1 {
		t.Fatalf("Gamma of zero matrix = %v, want 1", g)
	}
	if g := (UniformMatrix{N: 3, Diag: 1, Off: 0}).Gamma(); !math.IsInf(g, 1) {
		t.Fatalf("Gamma of identity = %v, want +Inf", g)
	}
	if c := (UniformMatrix{N: 3, Diag: 0.5, Off: 0.5}).Cond(); !math.IsInf(c, 1) {
		t.Fatalf("Cond of singular = %v, want +Inf", c)
	}
}
