package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
)

// ErrCSV is returned for malformed CSV input.
var ErrCSV = errors.New("dataset: bad csv")

// WriteCSV serializes the database with a header row of attribute names
// and one row of category names per record.
func WriteCSV(w io.Writer, db *Database) error {
	cw := csv.NewWriter(w)
	header := make([]string, db.Schema.M())
	for j, a := range db.Schema.Attrs {
		header[j] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, db.Schema.M())
	for i, rec := range db.Records {
		if err := db.Schema.Validate(rec); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		for j, v := range rec {
			row[j] = db.Schema.Attrs[j].Categories[v]
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a database in WriteCSV's format against the given schema.
// The header must name the schema's attributes in order.
func ReadCSV(r io.Reader, s *Schema) (*Database, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrCSV, err)
	}
	if len(header) != s.M() {
		return nil, fmt.Errorf("%w: header has %d columns, schema has %d attributes", ErrCSV, len(header), s.M())
	}
	for j, name := range header {
		if name != s.Attrs[j].Name {
			return nil, fmt.Errorf("%w: column %d is %q, schema expects %q", ErrCSV, j, name, s.Attrs[j].Name)
		}
	}
	db := NewDatabase(s, 0)
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrCSV, line+1, err)
		}
		line++
		rec := make(Record, s.M())
		for j, cell := range row {
			v := s.Attrs[j].CategoryIndex(cell)
			if v < 0 {
				return nil, fmt.Errorf("%w: line %d: unknown category %q for attribute %q", ErrCSV, line, cell, s.Attrs[j].Name)
			}
			rec[j] = v
		}
		if err := db.Append(rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	return db, nil
}
