package dataset

import (
	"bytes"
	"testing"
)

// FuzzIndexDecode exercises the record↔index bijection with arbitrary
// indices: Decode must either reject the index or round-trip through
// Index exactly.
func FuzzIndexDecode(f *testing.F) {
	s := CensusSchema()
	f.Add(0)
	f.Add(1999)
	f.Add(-1)
	f.Add(2000)
	f.Add(12345)
	f.Fuzz(func(t *testing.T, idx int) {
		rec, err := s.Decode(idx)
		if err != nil {
			if idx >= 0 && idx < s.DomainSize() {
				t.Fatalf("valid index %d rejected: %v", idx, err)
			}
			return
		}
		back, err := s.Index(rec)
		if err != nil {
			t.Fatalf("decoded record invalid: %v", err)
		}
		if back != idx {
			t.Fatalf("round trip %d → %v → %d", idx, rec, back)
		}
	})
}

// FuzzReadCSV feeds arbitrary bytes to the CSV reader: it must never
// panic, and anything it accepts must re-serialize losslessly.
func FuzzReadCSV(f *testing.F) {
	s := HealthSchema()
	var good bytes.Buffer
	db, err := GenerateHealth(5, 1)
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteCSV(&good, db); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("AGE\n"))
	f.Add([]byte("a,b\n1,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := ReadCSV(bytes.NewReader(data), s)
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, parsed); err != nil {
			t.Fatalf("accepted database failed to serialize: %v", err)
		}
		back, err := ReadCSV(&out, s)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N() != parsed.N() {
			t.Fatalf("round trip lost records: %d vs %d", back.N(), parsed.N())
		}
	})
}

// FuzzBinner checks that arbitrary (range, value) combinations keep the
// bin index in range.
func FuzzBinner(f *testing.F) {
	f.Add(0.0, 10.0, 4, 5.0)
	f.Add(-100.0, 100.0, 2, 0.0)
	f.Fuzz(func(t *testing.T, lo, hi float64, bins int, v float64) {
		if bins > 1000 {
			bins = 1000
		}
		b, err := NewEquiWidthBinner("x", lo, hi, bins)
		if err != nil {
			return
		}
		got := b.Bin(v)
		if got < 0 || got >= b.Bins() {
			t.Fatalf("Bin(%v) = %d out of [0,%d)", v, got, b.Bins())
		}
	})
}
