package dataset

import (
	"fmt"
)

// Database is a set of N records conforming to one schema, the object U
// (or its perturbed counterpart V) of the paper.
type Database struct {
	Schema  *Schema
	Records []Record
}

// NewDatabase creates an empty database with capacity hint n.
func NewDatabase(s *Schema, n int) *Database {
	return &Database{Schema: s, Records: make([]Record, 0, n)}
}

// N returns the number of records.
func (db *Database) N() int { return len(db.Records) }

// Append validates and adds a record.
func (db *Database) Append(rec Record) error {
	if err := db.Schema.Validate(rec); err != nil {
		return err
	}
	db.Records = append(db.Records, rec)
	return nil
}

// Histogram returns X: the count of records at each index of I_U
// (length |S_U|). This is the vector the FRAPP reconstruction estimates.
func (db *Database) Histogram() ([]float64, error) {
	h := make([]float64, db.Schema.DomainSize())
	for i, rec := range db.Records {
		idx, err := db.Schema.Index(rec)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		h[idx]++
	}
	return h, nil
}

// SubHistogram returns the marginal histogram over the attribute subset
// cols (length SubdomainSize(cols)), used for itemset-support
// reconstruction in each Apriori pass.
func (db *Database) SubHistogram(cols []int) ([]float64, error) {
	n, err := db.Schema.SubdomainSize(cols)
	if err != nil {
		return nil, err
	}
	h := make([]float64, n)
	for i, rec := range db.Records {
		idx, err := db.Schema.SubIndex(rec, cols)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		h[idx]++
	}
	return h, nil
}

// Clone deep-copies the database.
func (db *Database) Clone() *Database {
	out := NewDatabase(db.Schema, db.N())
	for _, rec := range db.Records {
		cp := make(Record, len(rec))
		copy(cp, rec)
		out.Records = append(out.Records, cp)
	}
	return out
}

// ValueCounts returns, for attribute position j, the count of each
// category value.
func (db *Database) ValueCounts(j int) ([]int, error) {
	if j < 0 || j >= db.Schema.M() {
		return nil, fmt.Errorf("%w: attribute position %d out of range", ErrSchema, j)
	}
	counts := make([]int, db.Schema.Attrs[j].Cardinality())
	for _, rec := range db.Records {
		counts[rec[j]]++
	}
	return counts, nil
}
