package dataset

import "math/rand"

// HealthSchema reproduces Table 2 of the paper: seven attributes selected
// from the US government NHIS health survey, with continuous attributes
// pre-partitioned into equi-width intervals.
func HealthSchema() *Schema {
	return MustSchema("HEALTH", []Attribute{
		{Name: "AGE", Categories: []string{"[0-20)", "[20-40)", "[40-60)", "[60-80)", ">=80"}},
		{Name: "BDDAY12", Categories: []string{"[0-7)", "[7-15)", "[15-30)", "[30-60)", ">=60"}},
		{Name: "DV12", Categories: []string{"[0-7)", "[7-15)", "[15-30)", "[30-60)", ">=60"}},
		{Name: "PHONE", Categories: []string{"Yes, phone number given", "Yes, no phone number given", "No"}},
		{Name: "SEX", Categories: []string{"Male", "Female"}},
		{Name: "INCFAM20", Categories: []string{"Less than $20,000", "$20,000 or more"}},
		{Name: "HEALTH", Categories: []string{"Excellent", "Very Good", "Good", "Fair", "Poor"}},
	})
}

// HealthModel is the synthetic stand-in for the NHIS health data (see
// DESIGN.md §4), tuned so that frequent itemsets at supmin = 2% reach the
// full length M=7 as in the paper's Table 3 HEALTH row.
func HealthModel() *MixtureModel {
	s := HealthSchema()
	// Heavily skewed marginals, as in the real NHIS survey (most
	// respondents report few bed days, few doctor visits, and having a
	// phone): the modal combinations then have the tens-of-percent
	// supports that make long patterns discoverable under perturbation,
	// matching the regime of the paper's Figure 2.
	marginals := [][]float64{
		{0.32, 0.30, 0.20, 0.13, 0.05}, // AGE
		{0.80, 0.10, 0.05, 0.03, 0.02}, // BDDAY12
		{0.68, 0.18, 0.08, 0.04, 0.02}, // DV12
		{0.86, 0.08, 0.06},             // PHONE
		{0.48, 0.52},                   // SEX
		{0.40, 0.60},                   // INCFAM20
		{0.26, 0.30, 0.26, 0.12, 0.06}, // HEALTH status
	}
	// Profiles share the modal (BDDAY12, DV12, PHONE) combination and
	// vary the demographic attributes, mirroring the structure of real
	// survey data: the mid-length subsets of every long pattern then ride
	// on tens-of-percent background co-occurrence mass, which is what
	// makes long patterns discoverable under perturbation noise — the
	// regime the paper's Figure 2 evaluates. Profile supports
	// (weight·fidelity^7 ≈ 2.6–4%) stay comfortably above supmin = 2%.
	profiles := []Profile{
		{Values: Record{1, 0, 0, 0, 1, 1, 1}, Weight: 0.050, Fidelity: 0.98},
		{Values: Record{1, 0, 0, 0, 0, 1, 0}, Weight: 0.048, Fidelity: 0.98},
		{Values: Record{0, 0, 0, 0, 1, 1, 0}, Weight: 0.046, Fidelity: 0.98},
		{Values: Record{2, 0, 0, 0, 0, 1, 1}, Weight: 0.044, Fidelity: 0.97},
		{Values: Record{2, 0, 0, 0, 1, 1, 2}, Weight: 0.042, Fidelity: 0.97},
		{Values: Record{1, 0, 0, 0, 1, 0, 2}, Weight: 0.041, Fidelity: 0.97},
		{Values: Record{0, 0, 0, 0, 0, 0, 1}, Weight: 0.040, Fidelity: 0.97},
		{Values: Record{1, 0, 1, 0, 1, 1, 0}, Weight: 0.039, Fidelity: 0.97},
		{Values: Record{2, 0, 1, 0, 0, 1, 2}, Weight: 0.038, Fidelity: 0.97},
		{Values: Record{0, 0, 0, 0, 1, 0, 1}, Weight: 0.037, Fidelity: 0.97},
		{Values: Record{1, 0, 0, 0, 0, 0, 1}, Weight: 0.036, Fidelity: 0.96},
		{Values: Record{2, 0, 0, 0, 1, 0, 0}, Weight: 0.035, Fidelity: 0.96},
		{Values: Record{0, 0, 1, 0, 0, 1, 2}, Weight: 0.034, Fidelity: 0.96},
		{Values: Record{1, 0, 0, 0, 1, 1, 2}, Weight: 0.033, Fidelity: 0.96},
	}
	return &MixtureModel{Schema: s, Marginals: marginals, Profiles: profiles}
}

// GenerateHealth draws an n-record synthetic HEALTH database. The paper
// uses over 100,000 patient records; pass n=100000 to match.
func GenerateHealth(n int, seed int64) (*Database, error) {
	return HealthModel().Generate(n, rand.New(rand.NewSource(seed)))
}
