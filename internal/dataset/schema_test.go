package dataset

import (
	"errors"
	"testing"
	"testing/quick"
)

func smallSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("small", []Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
	}{
		{"empty", nil},
		{"unnamed", []Attribute{{Name: "", Categories: []string{"x", "y"}}}},
		{"dup attr", []Attribute{
			{Name: "a", Categories: []string{"x", "y"}},
			{Name: "a", Categories: []string{"x", "y"}},
		}},
		{"one category", []Attribute{{Name: "a", Categories: []string{"x"}}}},
		{"dup category", []Attribute{{Name: "a", Categories: []string{"x", "x"}}}},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.name, c.attrs); !errors.Is(err, ErrSchema) {
			t.Errorf("%s: want ErrSchema, got %v", c.name, err)
		}
	}
}

func TestSchemaBasics(t *testing.T) {
	s := smallSchema(t)
	if s.M() != 3 {
		t.Fatalf("M = %d", s.M())
	}
	if s.DomainSize() != 24 {
		t.Fatalf("DomainSize = %d, want 24", s.DomainSize())
	}
	cards := s.Cardinalities()
	if cards[0] != 3 || cards[1] != 2 || cards[2] != 4 {
		t.Fatalf("Cardinalities = %v", cards)
	}
	if got := s.Attrs[0].CategoryIndex("a2"); got != 2 {
		t.Fatalf("CategoryIndex = %d", got)
	}
	if got := s.Attrs[0].CategoryIndex("nope"); got != -1 {
		t.Fatalf("CategoryIndex missing = %d", got)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestIndexDecodeRoundTrip(t *testing.T) {
	s := smallSchema(t)
	seen := make(map[int]bool)
	for a := 0; a < 3; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 4; c++ {
				rec := Record{a, b, c}
				idx, err := s.Index(rec)
				if err != nil {
					t.Fatal(err)
				}
				if idx < 0 || idx >= s.DomainSize() {
					t.Fatalf("index %d out of range", idx)
				}
				if seen[idx] {
					t.Fatalf("index %d repeated: mapping not injective", idx)
				}
				seen[idx] = true
				back, err := s.Decode(idx)
				if err != nil {
					t.Fatal(err)
				}
				for j := range rec {
					if back[j] != rec[j] {
						t.Fatalf("Decode(Index(%v)) = %v", rec, back)
					}
				}
			}
		}
	}
	if len(seen) != s.DomainSize() {
		t.Fatalf("bijection covers %d of %d", len(seen), s.DomainSize())
	}
}

func TestIndexRejectsInvalid(t *testing.T) {
	s := smallSchema(t)
	if _, err := s.Index(Record{0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("short record accepted")
	}
	if _, err := s.Index(Record{3, 0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("out-of-range value accepted")
	}
	if _, err := s.Decode(-1); !errors.Is(err, ErrSchema) {
		t.Fatal("negative index accepted")
	}
	if _, err := s.Decode(24); !errors.Is(err, ErrSchema) {
		t.Fatal("overflow index accepted")
	}
}

func TestSubIndexRoundTrip(t *testing.T) {
	s := smallSchema(t)
	cols := []int{0, 2}
	n, err := s.SubdomainSize(cols)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("SubdomainSize = %d, want 12", n)
	}
	seen := make(map[int][]int)
	for a := 0; a < 3; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 4; c++ {
				rec := Record{a, b, c}
				idx, err := s.SubIndex(rec, cols)
				if err != nil {
					t.Fatal(err)
				}
				if prev, ok := seen[idx]; ok {
					if prev[0] != a || prev[1] != c {
						t.Fatalf("sub-index %d maps to both %v and (%d,%d)", idx, prev, a, c)
					}
				}
				seen[idx] = []int{a, c}
				vals, err := s.DecodeSub(idx, cols)
				if err != nil {
					t.Fatal(err)
				}
				if vals[0] != a || vals[1] != c {
					t.Fatalf("DecodeSub(%d) = %v, want (%d,%d)", idx, vals, a, c)
				}
			}
		}
	}
	if len(seen) != 12 {
		t.Fatalf("sub-bijection covers %d of 12", len(seen))
	}
}

func TestSubIndexErrors(t *testing.T) {
	s := smallSchema(t)
	if _, err := s.SubIndex(Record{0, 0, 0}, []int{5}); !errors.Is(err, ErrSchema) {
		t.Fatal("bad column accepted")
	}
	if _, err := s.SubdomainSize([]int{-1}); !errors.Is(err, ErrSchema) {
		t.Fatal("negative column accepted")
	}
	if _, err := s.DecodeSub(100, []int{0}); !errors.Is(err, ErrSchema) {
		t.Fatal("overflow sub-index accepted")
	}
}

func TestIndexBijectionPropertyCensus(t *testing.T) {
	s := CensusSchema()
	f := func(raw [6]uint8) bool {
		rec := make(Record, s.M())
		for j := range rec {
			rec[j] = int(raw[j]) % s.Attrs[j].Cardinality()
		}
		idx, err := s.Index(rec)
		if err != nil {
			return false
		}
		back, err := s.Decode(idx)
		if err != nil {
			return false
		}
		for j := range rec {
			if back[j] != rec[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperSchemas(t *testing.T) {
	c := CensusSchema()
	if c.M() != 6 {
		t.Fatalf("CENSUS M = %d, want 6", c.M())
	}
	if c.DomainSize() != 2000 {
		t.Fatalf("CENSUS |S_U| = %d, want 4·5·5·5·2·2 = 2000", c.DomainSize())
	}
	var censusCats int
	for _, a := range c.Attrs {
		censusCats += a.Cardinality()
	}
	if censusCats != 23 {
		t.Fatalf("CENSUS total categories = %d, want 23", censusCats)
	}

	h := HealthSchema()
	if h.M() != 7 {
		t.Fatalf("HEALTH M = %d, want 7", h.M())
	}
	if h.DomainSize() != 7500 {
		t.Fatalf("HEALTH |S_U| = %d, want 5·5·5·3·2·2·5 = 7500", h.DomainSize())
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustSchema("bad", nil)
}
