package dataset

import (
	"fmt"
	"math/rand"
)

// A Profile is a strongly correlated sub-population used by the synthetic
// generators: a full value assignment plus a fidelity — the probability
// (per attribute, independently) that a record drawn from the profile
// keeps the profile's value rather than falling back to the background
// marginal. Profiles are what give the synthetic data frequent itemsets of
// every length, matching the spectrum the paper's Table 3 reports for the
// real CENSUS and HEALTH datasets.
type Profile struct {
	Values   Record
	Weight   float64
	Fidelity float64
}

// MixtureModel is a correlated categorical data distribution: with
// probability Σweights a record comes from one of the profiles; otherwise
// every attribute is drawn independently from the background marginals.
type MixtureModel struct {
	Schema    *Schema
	Marginals [][]float64 // background per-attribute category distributions
	Profiles  []Profile
}

// Validate checks internal consistency of the model.
func (m *MixtureModel) Validate() error {
	if m.Schema == nil {
		return fmt.Errorf("%w: nil schema", ErrSchema)
	}
	if len(m.Marginals) != m.Schema.M() {
		return fmt.Errorf("%w: %d marginals for %d attributes", ErrSchema, len(m.Marginals), m.Schema.M())
	}
	for j, marg := range m.Marginals {
		if len(marg) != m.Schema.Attrs[j].Cardinality() {
			return fmt.Errorf("%w: marginal %d has %d entries, attribute has %d categories",
				ErrSchema, j, len(marg), m.Schema.Attrs[j].Cardinality())
		}
		var sum float64
		for _, p := range marg {
			if p < 0 {
				return fmt.Errorf("%w: negative marginal probability in attribute %d", ErrSchema, j)
			}
			sum += p
		}
		if sum <= 0 {
			return fmt.Errorf("%w: marginal %d sums to %v", ErrSchema, j, sum)
		}
	}
	var totalW float64
	for i, p := range m.Profiles {
		if err := m.Schema.Validate(p.Values); err != nil {
			return fmt.Errorf("profile %d: %w", i, err)
		}
		if p.Weight < 0 || p.Fidelity < 0 || p.Fidelity > 1 {
			return fmt.Errorf("%w: profile %d has weight %v fidelity %v", ErrSchema, i, p.Weight, p.Fidelity)
		}
		totalW += p.Weight
	}
	if totalW > 1 {
		return fmt.Errorf("%w: profile weights sum to %v > 1", ErrSchema, totalW)
	}
	return nil
}

// Generate draws n records from the model using rng.
func (m *MixtureModel) Generate(n int, rng *rand.Rand) (*Database, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	// Normalize marginals once.
	marg := make([][]float64, len(m.Marginals))
	for j, raw := range m.Marginals {
		var sum float64
		for _, p := range raw {
			sum += p
		}
		norm := make([]float64, len(raw))
		for k, p := range raw {
			norm[k] = p / sum
		}
		marg[j] = norm
	}
	drawMarginal := func(j int) int {
		r := rng.Float64()
		var acc float64
		for k, p := range marg[j] {
			acc += p
			if r <= acc {
				return k
			}
		}
		return len(marg[j]) - 1
	}

	db := NewDatabase(m.Schema, n)
	for i := 0; i < n; i++ {
		rec := make(Record, m.Schema.M())
		r := rng.Float64()
		var acc float64
		profile := -1
		for pi, p := range m.Profiles {
			acc += p.Weight
			if r <= acc {
				profile = pi
				break
			}
		}
		if profile >= 0 {
			p := m.Profiles[profile]
			for j := range rec {
				if rng.Float64() < p.Fidelity {
					rec[j] = p.Values[j]
				} else {
					rec[j] = drawMarginal(j)
				}
			}
		} else {
			for j := range rec {
				rec[j] = drawMarginal(j)
			}
		}
		db.Records = append(db.Records, rec)
	}
	return db, nil
}
