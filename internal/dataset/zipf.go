package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf-skewed synthetic populations for load generation. Real
// categorical traffic is never uniform: a few categories per attribute
// absorb most of the probability mass (cities, diagnoses, user agents),
// and attributes co-vary. The load harness (internal/loadgen) builds its
// million-user populations from ZipfMixture so that submissions and
// queries concentrate on realistically hot cells of the domain instead
// of spreading evenly across it — the access pattern that actually
// stresses shard striping and the counter's hot paths.

// ZipfWeights returns n probabilities with weight ∝ 1/rank^skew,
// normalized to sum to 1: index 0 is the hottest rank. skew = 0 is the
// uniform distribution; skew around 1 is the classic Zipf shape.
func ZipfWeights(n int, skew float64) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: zipf over %d ranks", ErrSchema, n)
	}
	if skew < 0 || math.IsNaN(skew) || math.IsInf(skew, 0) {
		return nil, fmt.Errorf("%w: zipf skew %v", ErrSchema, skew)
	}
	w := make([]float64, n)
	var sum float64
	for r := range w {
		w[r] = math.Pow(float64(r+1), -skew)
		sum += w[r]
	}
	for r := range w {
		w[r] /= sum
	}
	return w, nil
}

// ZipfConfig shapes a ZipfMixture population.
type ZipfConfig struct {
	// Skew is the Zipf exponent of every attribute's category
	// frequencies (0 = uniform, ~1 = classic heavy skew).
	Skew float64
	// Profiles is the number of correlated sub-populations layered on
	// top of the skewed marginals. Each profile is drawn FROM the Zipf
	// marginals, so correlation concentrates on already-hot cells.
	Profiles int
	// ProfileWeight is the total probability mass shared equally by the
	// profiles (0 ≤ ProfileWeight ≤ 1); the remainder draws attributes
	// independently from the marginals.
	ProfileWeight float64
	// Fidelity is the per-attribute probability that a profile record
	// keeps the profile's value instead of falling back to the
	// marginals (see Profile.Fidelity).
	Fidelity float64
}

// ZipfMixture builds a MixtureModel whose per-attribute category
// frequencies follow ZipfWeights(cardinality, cfg.Skew) under a seeded
// random rank permutation (so the hot category differs per attribute and
// per seed), with cfg.Profiles correlated profiles drawn from those
// marginals. The rank permutation and profile draws consume rng, so a
// fixed seed reproduces the exact population model.
func ZipfMixture(schema *Schema, cfg ZipfConfig, rng *rand.Rand) (*MixtureModel, error) {
	if schema == nil {
		return nil, fmt.Errorf("%w: nil schema", ErrSchema)
	}
	if cfg.Profiles < 0 {
		return nil, fmt.Errorf("%w: %d profiles", ErrSchema, cfg.Profiles)
	}
	if cfg.ProfileWeight < 0 || cfg.ProfileWeight > 1 || math.IsNaN(cfg.ProfileWeight) {
		return nil, fmt.Errorf("%w: profile weight %v", ErrSchema, cfg.ProfileWeight)
	}
	if cfg.Profiles > 0 && cfg.ProfileWeight > 0 && (cfg.Fidelity <= 0 || cfg.Fidelity > 1) {
		return nil, fmt.Errorf("%w: profile fidelity %v", ErrSchema, cfg.Fidelity)
	}
	marginals := make([][]float64, schema.M())
	for j, a := range schema.Attrs {
		w, err := ZipfWeights(a.Cardinality(), cfg.Skew)
		if err != nil {
			return nil, err
		}
		// Scatter the rank order across category indices so "hot" is not
		// always category 0.
		marg := make([]float64, a.Cardinality())
		for rank, cat := range rng.Perm(a.Cardinality()) {
			marg[cat] = w[rank]
		}
		marginals[j] = marg
	}
	model := &MixtureModel{Schema: schema, Marginals: marginals}
	if cfg.Profiles > 0 && cfg.ProfileWeight > 0 {
		each := cfg.ProfileWeight / float64(cfg.Profiles)
		for p := 0; p < cfg.Profiles; p++ {
			values := make(Record, schema.M())
			for j := range values {
				values[j] = sampleWeighted(marginals[j], rng)
			}
			model.Profiles = append(model.Profiles, Profile{
				Values: values, Weight: each, Fidelity: cfg.Fidelity,
			})
		}
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return model, nil
}

// HotCategories returns the category indices of attribute j sorted from
// most to least probable under the model's effective distribution
// (profiles folded into the marginals) — the cells a realistic workload
// hammers. Ties break toward lower category index.
func (m *MixtureModel) HotCategories(j int) ([]int, error) {
	if m.Schema == nil || j < 0 || j >= m.Schema.M() {
		return nil, fmt.Errorf("%w: attribute position %d", ErrSchema, j)
	}
	eff, err := m.EffectiveMarginal(j)
	if err != nil {
		return nil, err
	}
	order := make([]int, len(eff))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending probability: cardinalities are tiny.
	for i := 1; i < len(order); i++ {
		for k := i; k > 0 && eff[order[k]] > eff[order[k-1]]; k-- {
			order[k], order[k-1] = order[k-1], order[k]
		}
	}
	return order, nil
}

// EffectiveMarginal returns attribute j's true category distribution
// under the full mixture: the background marginal blended with every
// profile's fidelity-weighted contribution. This is what a generated
// population's empirical frequencies converge to.
func (m *MixtureModel) EffectiveMarginal(j int) ([]float64, error) {
	if m.Schema == nil || j < 0 || j >= m.Schema.M() {
		return nil, fmt.Errorf("%w: attribute position %d", ErrSchema, j)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	base := make([]float64, len(m.Marginals[j]))
	var sum float64
	for _, p := range m.Marginals[j] {
		sum += p
	}
	for v, p := range m.Marginals[j] {
		base[v] = p / sum
	}
	var profileW float64
	for _, p := range m.Profiles {
		profileW += p.Weight
	}
	eff := make([]float64, len(base))
	for v := range eff {
		eff[v] = (1 - profileW) * base[v]
	}
	for _, p := range m.Profiles {
		// A profile record keeps the profile value with prob Fidelity,
		// otherwise falls back to the background marginal.
		for v := range eff {
			eff[v] += p.Weight * (1 - p.Fidelity) * base[v]
		}
		eff[p.Values[j]] += p.Weight * p.Fidelity
	}
	return eff, nil
}

// sampleWeighted draws an index proportional to the (normalized)
// weights.
func sampleWeighted(w []float64, rng *rand.Rand) int {
	r := rng.Float64()
	var acc float64
	for i, p := range w {
		acc += p
		if r <= acc {
			return i
		}
	}
	return len(w) - 1
}
