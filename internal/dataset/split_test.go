package dataset

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSplitSizesAndDisjointness(t *testing.T) {
	db, err := GenerateCensus(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	train, test, err := Split(db, 0.25, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.N()+test.N() != db.N() {
		t.Fatalf("split loses records: %d + %d != %d", train.N(), test.N(), db.N())
	}
	if test.N() != 250 {
		t.Fatalf("test size %d, want 250", test.N())
	}
	if train.Schema != db.Schema || test.Schema != db.Schema {
		t.Fatal("schemas not preserved")
	}
}

func TestSplitValidation(t *testing.T) {
	db, _ := GenerateCensus(10, 6)
	rng := rand.New(rand.NewSource(2))
	for _, f := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := Split(db, f, rng); !errors.Is(err, ErrSchema) {
			t.Errorf("fraction %v accepted", f)
		}
	}
	tiny := NewDatabase(db.Schema, 0)
	if _, _, err := Split(tiny, 0.5, rng); !errors.Is(err, ErrSchema) {
		t.Fatal("empty database accepted")
	}
	// Extreme fractions still leave both sides non-empty.
	train, test, err := Split(db, 0.01, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.N() == 0 || test.N() == 0 {
		t.Fatalf("degenerate split %d/%d", train.N(), test.N())
	}
}

func TestSample(t *testing.T) {
	db, _ := GenerateCensus(500, 7)
	rng := rand.New(rand.NewSource(3))
	s, err := Sample(db, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 100 {
		t.Fatalf("sample size %d", s.N())
	}
	if _, err := Sample(db, 0, rng); !errors.Is(err, ErrSchema) {
		t.Fatal("size 0 accepted")
	}
	if _, err := Sample(db, 501, rng); !errors.Is(err, ErrSchema) {
		t.Fatal("oversample accepted")
	}
}

func TestStratifiedSplitPreservesShares(t *testing.T) {
	db, err := GenerateHealth(8000, 8)
	if err != nil {
		t.Fatal(err)
	}
	const classAttr = 6
	rng := rand.New(rand.NewSource(4))
	train, test, err := StratifiedSplit(db, classAttr, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if train.N()+test.N() != db.N() {
		t.Fatalf("records lost: %d + %d != %d", train.N(), test.N(), db.N())
	}
	full, _ := db.ValueCounts(classAttr)
	tr, _ := train.ValueCounts(classAttr)
	te, _ := test.ValueCounts(classAttr)
	for v := range full {
		if full[v] == 0 {
			continue
		}
		fullFrac := float64(full[v]) / float64(db.N())
		trFrac := float64(tr[v]) / float64(train.N())
		teFrac := float64(te[v]) / float64(test.N())
		if math.Abs(trFrac-fullFrac) > 0.01 || math.Abs(teFrac-fullFrac) > 0.02 {
			t.Fatalf("class %d share drifted: full %.3f train %.3f test %.3f", v, fullFrac, trFrac, teFrac)
		}
	}
}

func TestStratifiedSplitValidation(t *testing.T) {
	db, _ := GenerateCensus(100, 9)
	rng := rand.New(rand.NewSource(5))
	if _, _, err := StratifiedSplit(db, -1, 0.3, rng); !errors.Is(err, ErrSchema) {
		t.Fatal("bad class attribute accepted")
	}
	if _, _, err := StratifiedSplit(db, 0, 0, rng); !errors.Is(err, ErrSchema) {
		t.Fatal("fraction 0 accepted")
	}
}
