package dataset

import (
	"fmt"
	"math/rand"
)

// Split randomly partitions a database into train and test sets with the
// given test fraction. Records are shared (not copied); the source
// database is not modified.
func Split(db *Database, testFraction float64, rng *rand.Rand) (train, test *Database, err error) {
	if !(testFraction > 0 && testFraction < 1) {
		return nil, nil, fmt.Errorf("%w: test fraction %v not in (0,1)", ErrSchema, testFraction)
	}
	if db.N() < 2 {
		return nil, nil, fmt.Errorf("%w: need at least 2 records to split", ErrSchema)
	}
	perm := rng.Perm(db.N())
	nTest := int(float64(db.N()) * testFraction)
	if nTest == 0 {
		nTest = 1
	}
	if nTest == db.N() {
		nTest = db.N() - 1
	}
	test = NewDatabase(db.Schema, nTest)
	train = NewDatabase(db.Schema, db.N()-nTest)
	for i, idx := range perm {
		if i < nTest {
			test.Records = append(test.Records, db.Records[idx])
		} else {
			train.Records = append(train.Records, db.Records[idx])
		}
	}
	return train, test, nil
}

// Sample returns a uniform random subsample of n records (without
// replacement). Records are shared, not copied.
func Sample(db *Database, n int, rng *rand.Rand) (*Database, error) {
	if n < 1 || n > db.N() {
		return nil, fmt.Errorf("%w: sample size %d for %d records", ErrSchema, n, db.N())
	}
	perm := rng.Perm(db.N())
	out := NewDatabase(db.Schema, n)
	for _, idx := range perm[:n] {
		out.Records = append(out.Records, db.Records[idx])
	}
	return out, nil
}

// StratifiedSplit partitions by attribute value so the train and test
// sets preserve each category's share of the class attribute — useful
// when evaluating classifiers on imbalanced labels.
func StratifiedSplit(db *Database, classAttr int, testFraction float64, rng *rand.Rand) (train, test *Database, err error) {
	if classAttr < 0 || classAttr >= db.Schema.M() {
		return nil, nil, fmt.Errorf("%w: class attribute %d out of range", ErrSchema, classAttr)
	}
	if !(testFraction > 0 && testFraction < 1) {
		return nil, nil, fmt.Errorf("%w: test fraction %v not in (0,1)", ErrSchema, testFraction)
	}
	byClass := make([][]int, db.Schema.Attrs[classAttr].Cardinality())
	for i, rec := range db.Records {
		byClass[rec[classAttr]] = append(byClass[rec[classAttr]], i)
	}
	train = NewDatabase(db.Schema, 0)
	test = NewDatabase(db.Schema, 0)
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(a, b int) { idxs[a], idxs[b] = idxs[b], idxs[a] })
		nTest := int(float64(len(idxs)) * testFraction)
		for i, idx := range idxs {
			if i < nTest {
				test.Records = append(test.Records, db.Records[idx])
			} else {
				train.Records = append(train.Records, db.Records[idx])
			}
		}
	}
	if train.N() == 0 || test.N() == 0 {
		return nil, nil, fmt.Errorf("%w: split produced an empty side (n=%d, fraction=%v)", ErrSchema, db.N(), testFraction)
	}
	return train, test, nil
}
