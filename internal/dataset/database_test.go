package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestDatabaseAppendValidate(t *testing.T) {
	s := smallSchema(t)
	db := NewDatabase(s, 4)
	if err := db.Append(Record{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(Record{9, 0, 0}); !errors.Is(err, ErrSchema) {
		t.Fatal("invalid record accepted")
	}
	if db.N() != 1 {
		t.Fatalf("N = %d", db.N())
	}
}

func TestHistogram(t *testing.T) {
	s := smallSchema(t)
	db := NewDatabase(s, 4)
	recs := []Record{{0, 0, 0}, {0, 0, 0}, {1, 1, 3}, {2, 0, 2}}
	for _, r := range recs {
		if err := db.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	h, err := db.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 24 {
		t.Fatalf("histogram length %d", len(h))
	}
	var total float64
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Fatalf("histogram total %v", total)
	}
	idx, _ := s.Index(Record{0, 0, 0})
	if h[idx] != 2 {
		t.Fatalf("h[{0,0,0}] = %v, want 2", h[idx])
	}
}

func TestSubHistogramMarginalizes(t *testing.T) {
	s := smallSchema(t)
	db := NewDatabase(s, 0)
	recs := []Record{{0, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 3}}
	for _, r := range recs {
		if err := db.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	h, err := db.SubHistogram([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != 3 || h[1] != 1 || h[2] != 0 {
		t.Fatalf("SubHistogram over a = %v", h)
	}
	// Marginal of full histogram must equal sub-histogram.
	full, _ := db.Histogram()
	hAC, err := db.SubHistogram([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for idx := range full {
		rec, _ := s.Decode(idx)
		sub, _ := s.SubIndex(rec, []int{0, 2})
		hAC[sub] -= full[idx]
	}
	for i, v := range hAC {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("sub-histogram inconsistent with full histogram at %d: %v", i, v)
		}
	}
}

func TestValueCounts(t *testing.T) {
	s := smallSchema(t)
	db := NewDatabase(s, 0)
	for _, r := range []Record{{0, 0, 0}, {0, 1, 0}, {2, 0, 1}} {
		if err := db.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := db.ValueCounts(0)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 2 || counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("ValueCounts = %v", counts)
	}
	if _, err := db.ValueCounts(7); !errors.Is(err, ErrSchema) {
		t.Fatal("bad attribute accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := smallSchema(t)
	db := NewDatabase(s, 0)
	if err := db.Append(Record{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	cp := db.Clone()
	cp.Records[0][0] = 2
	if db.Records[0][0] != 1 {
		t.Fatal("Clone shares record storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db, err := GenerateCensus(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != db.N() {
		t.Fatalf("round-trip N = %d, want %d", back.N(), db.N())
	}
	for i := range db.Records {
		for j := range db.Records[i] {
			if db.Records[i][j] != back.Records[i][j] {
				t.Fatalf("record %d differs after round trip", i)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := smallSchema(t)
	cases := []string{
		"",                    // no header
		"a,b\n",               // wrong column count
		"a,b,x\n",             // wrong column name
		"a,b,c\na0,b0,nope\n", // unknown category
		"a,b,c\na0,b0\n",      // ragged row
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), s); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, err := GenerateHealth(500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateHealth(500, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Records {
		for j := range a.Records[i] {
			if a.Records[i][j] != b.Records[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c, err := GenerateHealth(500, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Records {
		for j := range a.Records[i] {
			if a.Records[i][j] != c.Records[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratorMarginalsRoughlyMatchModel(t *testing.T) {
	m := CensusModel()
	db, err := GenerateCensus(40000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The "race=White" share should be near its effective mixture value;
	// just sanity-check it is dominant as designed.
	counts, err := db.ValueCounts(3)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(counts[0]) / float64(db.N())
	if frac < 0.60 || frac > 0.95 {
		t.Fatalf("White share %v implausible for model %v", frac, m.Marginals[3])
	}
}

func TestMixtureModelValidation(t *testing.T) {
	s := smallSchema(t)
	good := &MixtureModel{
		Schema:    s,
		Marginals: [][]float64{{1, 1, 1}, {1, 1}, {1, 1, 1, 1}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*MixtureModel{
		{Schema: nil},
		{Schema: s, Marginals: [][]float64{{1, 1, 1}}},
		{Schema: s, Marginals: [][]float64{{1, 1}, {1, 1}, {1, 1, 1, 1}}},
		{Schema: s, Marginals: [][]float64{{-1, 1, 1}, {1, 1}, {1, 1, 1, 1}}},
		{Schema: s, Marginals: [][]float64{{0, 0, 0}, {1, 1}, {1, 1, 1, 1}}},
		{Schema: s, Marginals: good.Marginals,
			Profiles: []Profile{{Values: Record{0, 0}, Weight: 0.1, Fidelity: 1}}},
		{Schema: s, Marginals: good.Marginals,
			Profiles: []Profile{{Values: Record{0, 0, 0}, Weight: 2, Fidelity: 1}}},
		{Schema: s, Marginals: good.Marginals,
			Profiles: []Profile{{Values: Record{0, 0, 0}, Weight: 0.1, Fidelity: 2}}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}
