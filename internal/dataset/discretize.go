package dataset

import (
	"fmt"
	"math"
	"strconv"
)

// The paper converts continuous attributes into categorical ones "by
// partitioning the domain of the attribute into fixed length intervals"
// (Section 1.1) — that is how the age/fnlwgt/hours columns of Table 1
// and the AGE/BDDAY12/DV12 columns of Table 2 were produced. This file
// provides that conversion for callers bringing their own raw data.

// Binner maps one continuous column to category indices.
type Binner struct {
	Name string
	// Cuts are the interior cut points: value v falls in bin i where
	// Cuts[i-1] < v ≤ Cuts[i] (first bin is v ≤ Cuts[0], last bin is
	// v > Cuts[len-1]).
	Cuts []float64
}

// NewEquiWidthBinner partitions [lo, hi] into bins fixed-length intervals
// (the paper's method). Values outside [lo, hi] are clamped into the
// first/last bin.
func NewEquiWidthBinner(name string, lo, hi float64, bins int) (*Binner, error) {
	if bins < 2 {
		return nil, fmt.Errorf("%w: %d bins for attribute %q, need ≥2", ErrSchema, bins, name)
	}
	if !(hi > lo) || math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("%w: bad range [%v, %v] for attribute %q", ErrSchema, lo, hi, name)
	}
	width := (hi - lo) / float64(bins)
	cuts := make([]float64, bins-1)
	for i := range cuts {
		cuts[i] = lo + width*float64(i+1)
	}
	return &Binner{Name: name, Cuts: cuts}, nil
}

// NewQuantileBinner cuts at the empirical quantiles of a sample so every
// bin holds roughly the same mass — an alternative to equi-width when
// the column is heavily skewed (the paper's datasets use equi-width; the
// quantile variant is provided for practitioners whose data would
// otherwise put almost all records into one category).
func NewQuantileBinner(name string, sample []float64, bins int) (*Binner, error) {
	if bins < 2 {
		return nil, fmt.Errorf("%w: %d bins for attribute %q, need ≥2", ErrSchema, bins, name)
	}
	if len(sample) < bins {
		return nil, fmt.Errorf("%w: %d sample values for %d bins", ErrSchema, len(sample), bins)
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	for _, v := range sorted {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("%w: NaN in sample for attribute %q", ErrSchema, name)
		}
	}
	insertionSort(sorted)
	if sorted[0] == sorted[len(sorted)-1] {
		return nil, fmt.Errorf("%w: sample for attribute %q is constant", ErrSchema, name)
	}
	cuts := make([]float64, 0, bins-1)
	for i := 1; i < bins; i++ {
		idx := i * len(sorted) / bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		c := sorted[idx]
		// Skip duplicate cuts caused by ties; the resulting binner may
		// have fewer bins than requested.
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	if len(cuts) == 0 {
		return nil, fmt.Errorf("%w: sample for attribute %q is constant", ErrSchema, name)
	}
	return &Binner{Name: name, Cuts: cuts}, nil
}

func insertionSort(a []float64) {
	// Samples for binning are modest; avoid importing sort for one call
	// site? No — use a simple shell sort for O(n log² n) worst case.
	gap := len(a) / 2
	for gap > 0 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j-gap] > a[j]; j -= gap {
				a[j-gap], a[j] = a[j], a[j-gap]
			}
		}
		gap /= 2
	}
}

// Bins returns the number of categories the binner produces.
func (b *Binner) Bins() int { return len(b.Cuts) + 1 }

// Bin maps a continuous value to its category index.
func (b *Binner) Bin(v float64) int {
	for i, c := range b.Cuts {
		if v <= c {
			return i
		}
	}
	return len(b.Cuts)
}

// Attribute materializes the categorical attribute with interval-style
// category names, e.g. "(35-55]" — the Table 1/2 naming convention.
func (b *Binner) Attribute() Attribute {
	cats := make([]string, b.Bins())
	for i := range cats {
		switch {
		case i == 0:
			cats[i] = "<=" + trimFloat(b.Cuts[0])
		case i == len(b.Cuts):
			cats[i] = ">" + trimFloat(b.Cuts[len(b.Cuts)-1])
		default:
			cats[i] = "(" + trimFloat(b.Cuts[i-1]) + "-" + trimFloat(b.Cuts[i]) + "]"
		}
	}
	return Attribute{Name: b.Name, Categories: cats}
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Discretize converts a table of continuous columns (rows[i][j] is row i,
// column j) into a categorical Database using one binner per column.
func Discretize(name string, binners []*Binner, rows [][]float64) (*Database, error) {
	if len(binners) == 0 {
		return nil, fmt.Errorf("%w: no binners", ErrSchema)
	}
	attrs := make([]Attribute, len(binners))
	for j, b := range binners {
		attrs[j] = b.Attribute()
	}
	schema, err := NewSchema(name, attrs)
	if err != nil {
		return nil, err
	}
	db := NewDatabase(schema, len(rows))
	for i, row := range rows {
		if len(row) != len(binners) {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrSchema, i, len(row), len(binners))
		}
		rec := make(Record, len(binners))
		for j, v := range row {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("%w: NaN at row %d column %d", ErrSchema, i, j)
			}
			rec[j] = binners[j].Bin(v)
		}
		if err := db.Append(rec); err != nil {
			return nil, err
		}
	}
	return db, nil
}
