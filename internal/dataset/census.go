package dataset

import "math/rand"

// CensusSchema reproduces Table 1 of the paper: the six attributes
// selected from the UCI "adult" census database, with the continuous
// attributes pre-partitioned into equi-width intervals.
func CensusSchema() *Schema {
	return MustSchema("CENSUS", []Attribute{
		{Name: "age", Categories: []string{"(15-35]", "(35-55]", "(55-75]", ">75"}},
		{Name: "fnlwgt", Categories: []string{"(0-1e5]", "(1e5-2e5]", "(2e5-3e5]", "(3e5-4e5]", ">4e5"}},
		{Name: "hours-per-week", Categories: []string{"(0-20]", "(20-40]", "(40-60]", "(60-80]", ">80"}},
		{Name: "race", Categories: []string{"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"}},
		{Name: "sex", Categories: []string{"Female", "Male"}},
		{Name: "native-country", Categories: []string{"United-States", "Other"}},
	})
}

// CensusModel is the synthetic stand-in for the UCI census data (see
// DESIGN.md §4): background marginals shaped like the real adult dataset
// plus overlapping high-fidelity profiles that produce frequent itemsets
// of every length up to M=6 at the paper's supmin = 2%.
func CensusModel() *MixtureModel {
	s := CensusSchema()
	marginals := [][]float64{
		{0.42, 0.38, 0.16, 0.04},       // age: working-age dominated
		{0.38, 0.40, 0.14, 0.05, 0.03}, // fnlwgt
		{0.14, 0.62, 0.18, 0.04, 0.02}, // hours-per-week: 20–40 modal
		{0.78, 0.06, 0.03, 0.04, 0.09}, // race: White dominant
		{0.44, 0.56},                   // sex
		{0.90, 0.10},                   // native-country: US dominant
	}
	// Profiles overlap heavily on the modal values so that subsets of the
	// profile itemsets are themselves frequent, yielding the bell-shaped
	// length spectrum of Table 3.
	// Profile supports sit comfortably above the 2% mining threshold
	// (weight·fidelity^6 ≈ 2.5–4%) so that long-pattern discoverability
	// is limited by the perturbation mechanism, not by the threshold —
	// the regime the paper's figures evaluate.
	profiles := []Profile{
		{Values: Record{0, 0, 1, 0, 1, 0}, Weight: 0.044, Fidelity: 0.97},
		{Values: Record{0, 1, 1, 0, 0, 0}, Weight: 0.042, Fidelity: 0.97},
		{Values: Record{1, 0, 1, 0, 1, 0}, Weight: 0.040, Fidelity: 0.96},
		{Values: Record{1, 1, 1, 0, 0, 0}, Weight: 0.039, Fidelity: 0.96},
		{Values: Record{1, 1, 2, 0, 1, 0}, Weight: 0.037, Fidelity: 0.96},
		{Values: Record{0, 0, 1, 4, 0, 0}, Weight: 0.036, Fidelity: 0.96},
		{Values: Record{2, 0, 1, 0, 0, 0}, Weight: 0.036, Fidelity: 0.96},
		{Values: Record{0, 1, 2, 0, 1, 0}, Weight: 0.035, Fidelity: 0.96},
		{Values: Record{1, 0, 1, 4, 1, 0}, Weight: 0.034, Fidelity: 0.95},
		{Values: Record{0, 0, 1, 1, 1, 1}, Weight: 0.033, Fidelity: 0.95},
		{Values: Record{2, 1, 1, 0, 1, 0}, Weight: 0.032, Fidelity: 0.95},
		{Values: Record{1, 2, 2, 0, 0, 0}, Weight: 0.032, Fidelity: 0.95},
	}
	return &MixtureModel{Schema: s, Marginals: marginals, Profiles: profiles}
}

// GenerateCensus draws an n-record synthetic CENSUS database. The paper
// uses approximately 50,000 adult records; pass n=50000 to match.
func GenerateCensus(n int, seed int64) (*Database, error) {
	return CensusModel().Generate(n, rand.New(rand.NewSource(seed)))
}
