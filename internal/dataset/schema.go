// Package dataset implements the categorical data model of the FRAPP
// paper (Section 2): databases of N records over M categorical
// attributes, the bijection between records and the index set
// I_U = {0,…,|S_U|−1}, histograms over that index set, CSV
// serialization, and synthetic generators for the paper's CENSUS and
// HEALTH evaluation datasets.
package dataset

import (
	"errors"
	"fmt"
	"strings"
)

// ErrSchema is returned for malformed schemas or records that do not
// conform to a schema.
var ErrSchema = errors.New("dataset: schema violation")

// Attribute is one categorical attribute: a name and its finite category
// domain S_U^j.
type Attribute struct {
	Name       string
	Categories []string
}

// Cardinality returns |S_U^j|, the number of categories.
func (a Attribute) Cardinality() int { return len(a.Categories) }

// CategoryIndex returns the index of the named category, or −1 if absent.
func (a Attribute) CategoryIndex(name string) int {
	for i, c := range a.Categories {
		if c == name {
			return i
		}
	}
	return -1
}

// Record is one database tuple: the category index chosen for each
// attribute, in schema order. Values are 0-based.
type Record []int

// Schema describes the record domain S_U = Π_j S_U^j.
type Schema struct {
	Name  string
	Attrs []Attribute

	// radix[j] = Π_{k>j} |S_U^k|, the mixed-radix place value of
	// attribute j in the record↔index bijection.
	radix []int
	size  int
}

// NewSchema validates the attributes and precomputes the index mapping.
// Every attribute must have at least two categories (a single-category
// attribute carries no information and breaks perturbation-matrix
// invertibility assumptions).
func NewSchema(name string, attrs []Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: no attributes", ErrSchema)
	}
	seen := make(map[string]bool, len(attrs))
	size := 1
	for _, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("%w: unnamed attribute", ErrSchema)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("%w: duplicate attribute %q", ErrSchema, a.Name)
		}
		seen[a.Name] = true
		if a.Cardinality() < 2 {
			return nil, fmt.Errorf("%w: attribute %q has %d categories, need ≥2", ErrSchema, a.Name, a.Cardinality())
		}
		catSeen := make(map[string]bool, a.Cardinality())
		for _, c := range a.Categories {
			if catSeen[c] {
				return nil, fmt.Errorf("%w: attribute %q has duplicate category %q", ErrSchema, a.Name, c)
			}
			catSeen[c] = true
		}
		if size > 1<<40/a.Cardinality() {
			return nil, fmt.Errorf("%w: domain size overflow", ErrSchema)
		}
		size *= a.Cardinality()
	}
	s := &Schema{Name: name, Attrs: attrs, size: size}
	s.radix = make([]int, len(attrs))
	r := 1
	for j := len(attrs) - 1; j >= 0; j-- {
		s.radix[j] = r
		r *= attrs[j].Cardinality()
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for statically known
// schemas such as the built-in CENSUS and HEALTH ones.
func MustSchema(name string, attrs []Attribute) *Schema {
	s, err := NewSchema(name, attrs)
	if err != nil {
		panic(err)
	}
	return s
}

// M returns the number of attributes.
func (s *Schema) M() int { return len(s.Attrs) }

// DomainSize returns |S_U| = Π_j |S_U^j|.
func (s *Schema) DomainSize() int { return s.size }

// Cardinalities returns the per-attribute domain sizes.
func (s *Schema) Cardinalities() []int {
	out := make([]int, len(s.Attrs))
	for j, a := range s.Attrs {
		out[j] = a.Cardinality()
	}
	return out
}

// SubdomainSize returns n_Cs = Π_{j∈cols} |S_U^j| for a subset of
// attribute positions, the order of the marginal reconstruction matrix in
// Section 6 of the paper.
func (s *Schema) SubdomainSize(cols []int) (int, error) {
	n := 1
	for _, j := range cols {
		if j < 0 || j >= len(s.Attrs) {
			return 0, fmt.Errorf("%w: attribute position %d out of range", ErrSchema, j)
		}
		n *= s.Attrs[j].Cardinality()
	}
	return n, nil
}

// Validate checks that rec conforms to the schema.
func (s *Schema) Validate(rec Record) error {
	if len(rec) != len(s.Attrs) {
		return fmt.Errorf("%w: record has %d values, schema has %d attributes", ErrSchema, len(rec), len(s.Attrs))
	}
	for j, v := range rec {
		if v < 0 || v >= s.Attrs[j].Cardinality() {
			return fmt.Errorf("%w: value %d out of range for attribute %q", ErrSchema, v, s.Attrs[j].Name)
		}
	}
	return nil
}

// Index maps a record to its position in I_U via mixed-radix encoding.
// The record must be valid.
func (s *Schema) Index(rec Record) (int, error) {
	if err := s.Validate(rec); err != nil {
		return 0, err
	}
	idx := 0
	for j, v := range rec {
		idx += v * s.radix[j]
	}
	return idx, nil
}

// Decode is the inverse of Index.
func (s *Schema) Decode(idx int) (Record, error) {
	if idx < 0 || idx >= s.size {
		return nil, fmt.Errorf("%w: index %d out of range [0,%d)", ErrSchema, idx, s.size)
	}
	rec := make(Record, len(s.Attrs))
	for j := range s.Attrs {
		rec[j] = idx / s.radix[j]
		idx %= s.radix[j]
	}
	return rec, nil
}

// SubIndex maps the projection of rec onto the attribute positions cols to
// an index in [0, SubdomainSize(cols)), using the same mixed-radix order.
func (s *Schema) SubIndex(rec Record, cols []int) (int, error) {
	if err := s.Validate(rec); err != nil {
		return 0, err
	}
	idx := 0
	for _, j := range cols {
		if j < 0 || j >= len(s.Attrs) {
			return 0, fmt.Errorf("%w: attribute position %d out of range", ErrSchema, j)
		}
		idx = idx*s.Attrs[j].Cardinality() + rec[j]
	}
	return idx, nil
}

// DecodeSub is the inverse of SubIndex for the attribute subset cols: it
// returns the projected values in cols order.
func (s *Schema) DecodeSub(idx int, cols []int) ([]int, error) {
	n, err := s.SubdomainSize(cols)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= n {
		return nil, fmt.Errorf("%w: sub-index %d out of range [0,%d)", ErrSchema, idx, n)
	}
	vals := make([]int, len(cols))
	for k := len(cols) - 1; k >= 0; k-- {
		card := s.Attrs[cols[k]].Cardinality()
		vals[k] = idx % card
		idx /= card
	}
	return vals, nil
}

// String renders a compact schema description.
func (s *Schema) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(", s.Name)
	for j, a := range s.Attrs {
		if j > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s:%d", a.Name, a.Cardinality())
	}
	fmt.Fprintf(&sb, ") |S_U|=%d", s.size)
	return sb.String()
}
