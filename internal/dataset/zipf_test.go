package dataset

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfWeightsShape(t *testing.T) {
	w, err := ZipfWeights(5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for r := 1; r < len(w); r++ {
		if w[r] >= w[r-1] {
			t.Fatalf("weights not strictly decreasing: %v", w)
		}
	}
	for _, p := range w {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Zipf(1) over 5 ranks: w_r ∝ 1/r, H_5 = 137/60.
	if math.Abs(w[0]-60.0/137.0) > 1e-12 {
		t.Fatalf("w[0] = %v, want 60/137", w[0])
	}
	// skew 0 is uniform.
	u, err := ZipfWeights(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range u {
		if math.Abs(p-0.25) > 1e-12 {
			t.Fatalf("uniform weights %v", u)
		}
	}
}

func TestZipfWeightsRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		n    int
		skew float64
	}{{0, 1}, {-3, 1}, {4, -0.5}, {4, math.NaN()}, {4, math.Inf(1)}} {
		if _, err := ZipfWeights(tc.n, tc.skew); err == nil {
			t.Errorf("ZipfWeights(%d, %v) accepted", tc.n, tc.skew)
		}
	}
}

// chiSquareStat computes Σ (obs−exp)²/exp for category counts against
// expected probabilities.
func chiSquareStat(counts []int, probs []float64, total int) float64 {
	var stat float64
	for i, c := range counts {
		exp := probs[i] * float64(total)
		d := float64(c) - exp
		stat += d * d / exp
	}
	return stat
}

// TestZipfGeneratorChiSquare is the goodness-of-fit gate for the Zipf
// category generator: at fixed seeds, per-attribute category counts of a
// profile-free ZipfMixture population must fit ZipfWeights under a
// chi-square test. Critical values are taken at alpha = 0.001 for the
// attribute's df = cardinality−1; with fixed seeds the statistic is
// deterministic, so the test cannot flake, and a generator regression
// (wrong exponent, broken permutation, biased sampler) blows through the
// bound immediately.
func TestZipfGeneratorChiSquare(t *testing.T) {
	// chi-square 99.9th percentile by df (1-based index).
	critical := map[int]float64{1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47, 5: 20.52}
	const n = 50000
	for _, seed := range []int64{1, 2005, 77} {
		rng := rand.New(rand.NewSource(seed))
		schema := CensusSchema()
		model, err := ZipfMixture(schema, ZipfConfig{Skew: 1.1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		db, err := model.Generate(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		for j, a := range schema.Attrs {
			counts := make([]int, a.Cardinality())
			for _, rec := range db.Records {
				counts[rec[j]]++
			}
			stat := chiSquareStat(counts, model.Marginals[j], n)
			crit := critical[a.Cardinality()-1]
			if stat > crit {
				t.Errorf("seed %d attribute %q: chi2 = %.2f exceeds %.2f (counts %v, want %v)",
					seed, a.Name, stat, crit, counts, model.Marginals[j])
			}
		}
	}
}

// TestZipfMixtureProfilesCorrelate proves the profiles actually induce
// pairwise correlation: with a single profile, the joint frequency of
// its (attr0, attr1) value pair provably exceeds the product of the
// marginals (a two-component mixture of product distributions is
// positively associated on the component's own values), and the
// generated population must show that co-occurrence above independence
// at a fixed seed.
func TestZipfMixtureProfilesCorrelate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := CensusSchema()
	model, err := ZipfMixture(schema, ZipfConfig{
		Skew: 1.0, Profiles: 1, ProfileWeight: 0.35, Fidelity: 0.95,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	db, err := model.Generate(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := model.Profiles[0]
	v0, v1 := p.Values[0], p.Values[1]
	joint := 0
	m0, m1 := 0, 0
	for _, rec := range db.Records {
		if rec[0] == v0 {
			m0++
		}
		if rec[1] == v1 {
			m1++
		}
		if rec[0] == v0 && rec[1] == v1 {
			joint++
		}
	}
	pJoint := float64(joint) / n
	pIndep := float64(m0) / n * float64(m1) / n
	if pJoint <= pIndep*1.05 {
		t.Fatalf("no correlation: P(joint) = %.4f vs independent %.4f", pJoint, pIndep)
	}
}

func TestEffectiveMarginalMatchesEmpirical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	schema := CensusSchema()
	model, err := ZipfMixture(schema, ZipfConfig{
		Skew: 0.8, Profiles: 4, ProfileWeight: 0.3, Fidelity: 0.9,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	db, err := model.Generate(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j, a := range schema.Attrs {
		eff, err := model.EffectiveMarginal(j)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, p := range eff {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("attribute %d effective marginal sums to %v", j, sum)
		}
		counts := make([]int, a.Cardinality())
		for _, rec := range db.Records {
			counts[rec[j]]++
		}
		for v := range eff {
			got := float64(counts[v]) / n
			if math.Abs(got-eff[v]) > 0.015 {
				t.Errorf("attribute %q category %d: empirical %.4f vs effective %.4f",
					a.Name, v, got, eff[v])
			}
		}
	}
}

func TestHotCategoriesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model, err := ZipfMixture(CensusSchema(), ZipfConfig{Skew: 1.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j := range model.Marginals {
		hot, err := model.HotCategories(j)
		if err != nil {
			t.Fatal(err)
		}
		eff, err := model.EffectiveMarginal(j)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(hot); i++ {
			if eff[hot[i]] > eff[hot[i-1]] {
				t.Fatalf("attribute %d hot order %v not descending under %v", j, hot, eff)
			}
		}
	}
	if _, err := model.HotCategories(-1); err == nil {
		t.Fatal("HotCategories(-1) accepted")
	}
}

func TestZipfMixtureRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	schema := CensusSchema()
	for _, cfg := range []ZipfConfig{
		{Skew: -1},
		{Skew: 1, Profiles: -2},
		{Skew: 1, Profiles: 2, ProfileWeight: 1.5},
		{Skew: 1, Profiles: 2, ProfileWeight: 0.5, Fidelity: 0},
		{Skew: 1, Profiles: 2, ProfileWeight: 0.5, Fidelity: 1.2},
	} {
		if _, err := ZipfMixture(schema, cfg, rng); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := ZipfMixture(nil, ZipfConfig{Skew: 1}, rng); err == nil {
		t.Fatal("nil schema accepted")
	}
}
