package dataset

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEquiWidthBinnerBasics(t *testing.T) {
	b, err := NewEquiWidthBinner("age", 15, 75, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() != 3 {
		t.Fatalf("Bins = %d", b.Bins())
	}
	// Cuts at 35 and 55, mirroring Table 1's age partitioning.
	if math.Abs(b.Cuts[0]-35) > 1e-12 || math.Abs(b.Cuts[1]-55) > 1e-12 {
		t.Fatalf("cuts = %v", b.Cuts)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{14, 0}, {15, 0}, {35, 0}, {35.01, 1}, {55, 1}, {56, 2}, {200, 2},
	}
	for _, c := range cases {
		if got := b.Bin(c.v); got != c.want {
			t.Errorf("Bin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	attr := b.Attribute()
	if attr.Name != "age" || attr.Cardinality() != 3 {
		t.Fatalf("attribute %+v", attr)
	}
}

func TestEquiWidthBinnerValidation(t *testing.T) {
	cases := []struct {
		lo, hi float64
		bins   int
	}{
		{0, 10, 1},
		{10, 0, 5},
		{0, 0, 5},
		{math.NaN(), 10, 5},
		{0, math.Inf(1), 5},
	}
	for _, c := range cases {
		if _, err := NewEquiWidthBinner("x", c.lo, c.hi, c.bins); !errors.Is(err, ErrSchema) {
			t.Errorf("range [%v,%v] bins=%d accepted", c.lo, c.hi, c.bins)
		}
	}
}

func TestEquiWidthBinMonotoneProperty(t *testing.T) {
	b, err := NewEquiWidthBinner("x", -10, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, bb float64) bool {
		if math.IsNaN(a) || math.IsNaN(bb) {
			return true
		}
		if a > bb {
			a, bb = bb, a
		}
		return b.Bin(a) <= b.Bin(bb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileBinnerBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 10000)
	for i := range sample {
		// Heavy skew: exponential-ish.
		sample[i] = math.Exp(rng.NormFloat64())
	}
	b, err := NewQuantileBinner("skewed", sample, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, b.Bins())
	for _, v := range sample {
		counts[b.Bin(v)]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(len(sample))
		if frac < 0.1 || frac > 0.35 {
			t.Fatalf("quantile bin %d holds %.1f%% of mass: %v", i, frac*100, counts)
		}
	}
}

func TestQuantileBinnerValidation(t *testing.T) {
	if _, err := NewQuantileBinner("x", []float64{1, 2, 3}, 1); !errors.Is(err, ErrSchema) {
		t.Fatal("1 bin accepted")
	}
	if _, err := NewQuantileBinner("x", []float64{1}, 3); !errors.Is(err, ErrSchema) {
		t.Fatal("tiny sample accepted")
	}
	if _, err := NewQuantileBinner("x", []float64{1, math.NaN(), 3}, 2); !errors.Is(err, ErrSchema) {
		t.Fatal("NaN sample accepted")
	}
	if _, err := NewQuantileBinner("x", []float64{5, 5, 5, 5}, 2); !errors.Is(err, ErrSchema) {
		t.Fatal("constant sample accepted")
	}
	// Ties collapse duplicate cuts but still produce a valid binner.
	b, err := NewQuantileBinner("x", []float64{1, 1, 1, 1, 1, 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Bins() < 2 {
		t.Fatalf("collapsed binner has %d bins", b.Bins())
	}
}

func TestDiscretizeEndToEnd(t *testing.T) {
	age, err := NewEquiWidthBinner("age", 0, 90, 3)
	if err != nil {
		t.Fatal(err)
	}
	income, err := NewEquiWidthBinner("income", 0, 100000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]float64{
		{25, 30000},
		{70, 90000},
		{45, 10000},
	}
	db, err := Discretize("people", []*Binner{age, income}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 3 {
		t.Fatalf("N = %d", db.N())
	}
	if db.Schema.DomainSize() != 12 {
		t.Fatalf("domain = %d", db.Schema.DomainSize())
	}
	if db.Records[0][0] != 0 || db.Records[1][0] != 2 || db.Records[2][0] != 1 {
		t.Fatalf("age bins wrong: %v", db.Records)
	}
	// The discretized database plugs straight into the existing pipeline.
	if _, err := db.Histogram(); err != nil {
		t.Fatal(err)
	}
}

func TestDiscretizeErrors(t *testing.T) {
	if _, err := Discretize("x", nil, nil); !errors.Is(err, ErrSchema) {
		t.Fatal("no binners accepted")
	}
	b, _ := NewEquiWidthBinner("a", 0, 1, 2)
	if _, err := Discretize("x", []*Binner{b}, [][]float64{{0.5, 0.5}}); !errors.Is(err, ErrSchema) {
		t.Fatal("ragged row accepted")
	}
	if _, err := Discretize("x", []*Binner{b}, [][]float64{{math.NaN()}}); !errors.Is(err, ErrSchema) {
		t.Fatal("NaN value accepted")
	}
}
