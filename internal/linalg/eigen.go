package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes all eigenvalues (ascending) and, optionally, the
// corresponding orthonormal eigenvectors of a symmetric matrix using the
// cyclic Jacobi rotation method. The eigenvectors, when requested, are the
// columns of the returned matrix.
//
// Jacobi is quadratically convergent and unconditionally stable for
// symmetric input, which covers every matrix whose spectrum FRAPP needs
// (gamma-diagonal, MASK tensor, C&P count matrices are all symmetric or
// symmetrizable; see internal/core).
func SymEigen(a *Dense, wantVectors bool) (values []float64, vectors *Dense, err error) {
	if !a.IsSquare() {
		return nil, nil, fmt.Errorf("%w: eigen of %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	const symTol = 1e-9
	if !a.IsSymmetric(symTol) {
		return nil, nil, fmt.Errorf("linalg: SymEigen requires a symmetric matrix (tol %g)", symTol)
	}
	n := a.rows
	w := a.Clone()
	var v *Dense
	if wantVectors {
		v = Identity(n)
	}

	offDiag := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				x := w.At(i, j)
				s += x * x
			}
		}
		return s
	}

	const maxSweeps = 100
	frob := FrobeniusNorm(w)
	tol := 1e-14 * frob * frob
	if tol == 0 {
		tol = 1e-300
	}
	for sweep := 0; sweep < maxSweeps && offDiag() > tol; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation that annihilates w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation: W ← Jᵀ W J.
				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				if v != nil {
					for k := 0; k < n; k++ {
						vkp := v.At(k, p)
						vkq := v.At(k, q)
						v.Set(k, p, c*vkp-s*vkq)
						v.Set(k, q, s*vkp+c*vkq)
					}
				}
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	if v == nil {
		sort.Float64s(values)
		return values, nil, nil
	}
	// Sort eigenpairs by eigenvalue ascending.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return values[idx[x]] < values[idx[y]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// PowerIteration estimates the dominant eigenvalue (largest |λ|) of a
// square matrix by repeated multiplication, returning the eigenvalue
// estimate and the number of iterations used. It is used as an
// independent cross-check of the Jacobi solver in tests and for
// non-symmetric matrices where Jacobi does not apply.
func PowerIteration(a *Dense, maxIter int, tol float64) (float64, int, error) {
	if !a.IsSquare() {
		return 0, 0, fmt.Errorf("%w: power iteration on %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	if n == 0 {
		return 0, 0, fmt.Errorf("linalg: power iteration on empty matrix")
	}
	// Deterministic non-degenerate start vector.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	normalize(x)
	var lambda float64
	for it := 1; it <= maxIter; it++ {
		y, err := a.MulVec(x)
		if err != nil {
			return 0, it, err
		}
		// Rayleigh quotient estimate.
		var num float64
		for i := range x {
			num += x[i] * y[i]
		}
		ny := vecNorm(y)
		if ny == 0 {
			return 0, it, fmt.Errorf("linalg: power iteration collapsed to zero vector")
		}
		for i := range y {
			y[i] /= ny
		}
		if math.Abs(num-lambda) <= tol*math.Max(1, math.Abs(num)) && it > 1 {
			return num, it, nil
		}
		lambda = num
		x = y
	}
	return lambda, maxIter, nil
}

func vecNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

func normalize(x []float64) {
	n := vecNorm(x)
	if n == 0 {
		return
	}
	for i := range x {
		x[i] /= n
	}
}
