package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigenDiagonal(t *testing.T) {
	a, _ := NewDenseFrom(3, 3, []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	})
	vals, _, err := SymEigen(a, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-12) {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a, _ := NewDenseFrom(2, 2, []float64{2, 1, 1, 2})
	vals, vecs, err := SymEigen(a, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 1, 1e-12) || !almostEqual(vals[1], 3, 1e-12) {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
	// Verify A·v = λ·v for each pair.
	for k := 0; k < 2; k++ {
		v := vecs.Col(k)
		av, _ := a.MulVec(v)
		for i := range v {
			if !almostEqual(av[i], vals[k]*v[i], 1e-10) {
				t.Fatalf("eigenpair %d violated: Av=%v, λv=%v", k, av[i], vals[k]*v[i])
			}
		}
	}
}

func TestSymEigenGammaDiagonalClosedForm(t *testing.T) {
	// The FRAPP gamma-diagonal matrix x·(γ I + (J−I)) has eigenvalues
	// x(γ−1) with multiplicity n−1 and 1 (Markov dominant eigenvalue).
	gamma := 19.0
	for _, n := range []int{2, 5, 10, 25} {
		x := 1 / (gamma + float64(n) - 1)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					a.Set(i, j, gamma*x)
				} else {
					a.Set(i, j, x)
				}
			}
		}
		vals, _, err := SymEigen(a, false)
		if err != nil {
			t.Fatal(err)
		}
		small := x * (gamma - 1)
		for i := 0; i < n-1; i++ {
			if !almostEqual(vals[i], small, 1e-10) {
				t.Fatalf("n=%d: vals[%d]=%g, want %g", n, i, vals[i], small)
			}
		}
		if !almostEqual(vals[n-1], 1, 1e-10) {
			t.Fatalf("n=%d: dominant eigenvalue %g, want 1", n, vals[n-1])
		}
	}
}

func TestSymEigenTraceAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(10)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEigen(a, true)
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 3 of the paper: Σλ = trace.
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		if !almostEqual(trace, sum, 1e-9) {
			t.Fatalf("trial %d: Σλ=%g != trace=%g", trial, sum, trace)
		}
		// VᵀV = I.
		vtv, _ := vecs.T().Mul(vecs)
		d, _ := vtv.MaxAbsDiff(Identity(n))
		if d > 1e-9 {
			t.Fatalf("trial %d: eigenvectors not orthonormal, dev %g", trial, d)
		}
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := SymEigen(a, false); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
	if _, _, err := SymEigen(NewDense(2, 3), false); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestPowerIterationAgreesWithJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Float64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		// Make dominant eigenvalue clearly separated and positive.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(2*n))
		}
		vals, _, err := SymEigen(a, false)
		if err != nil {
			t.Fatal(err)
		}
		lmax, _, err := PowerIteration(a, 5000, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(lmax, vals[n-1], 1e-6) {
			t.Fatalf("trial %d: power=%g, jacobi=%g", trial, lmax, vals[n-1])
		}
	}
}

func TestPowerIterationErrors(t *testing.T) {
	if _, _, err := PowerIteration(NewDense(2, 3), 10, 1e-6); err == nil {
		t.Fatal("expected shape error")
	}
	if _, _, err := PowerIteration(NewDense(0, 0), 10, 1e-6); err == nil {
		t.Fatal("expected empty-matrix error")
	}
}

func TestCondSymmetricIdentity(t *testing.T) {
	c, err := Cond2Symmetric(Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-12) {
		t.Fatalf("cond(I) = %v, want 1", c)
	}
}

func TestCondSingular(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{1, 1, 1, 1})
	c, err := Cond2Symmetric(a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c, 1) {
		t.Fatalf("cond of singular = %v, want +Inf", c)
	}
	c1, err := Cond1(a)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(c1, 1) {
		t.Fatalf("Cond1 of singular = %v, want +Inf", c1)
	}
}

func TestCond1Identity(t *testing.T) {
	c, err := Cond1(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-12) {
		t.Fatalf("Cond1(I) = %v, want 1", c)
	}
	if _, err := Cond1(NewDense(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestNorms(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{1, -2, 3, -4})
	if got := Norm1(a); got != 6 {
		t.Fatalf("Norm1 = %v, want 6", got)
	}
	if got := NormInf(a); got != 7 {
		t.Fatalf("NormInf = %v, want 7", got)
	}
	if got := FrobeniusNorm(a); !almostEqual(got, math.Sqrt(30), 1e-12) {
		t.Fatalf("Frobenius = %v, want sqrt(30)", got)
	}
	if got := VecNorm1([]float64{1, -2, 3}); got != 6 {
		t.Fatalf("VecNorm1 = %v", got)
	}
	if got := VecNormInf([]float64{1, -5, 3}); got != 5 {
		t.Fatalf("VecNormInf = %v", got)
	}
	if got := VecNorm2([]float64{3, 4}); got != 5 {
		t.Fatalf("VecNorm2 = %v", got)
	}
}
