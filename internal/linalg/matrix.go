// Package linalg provides the dense linear-algebra substrate used by the
// FRAPP framework: matrices, LU factorization, linear solves, eigenvalue
// computation for symmetric matrices, norms, and condition numbers.
//
// The package is intentionally self-contained (standard library only) and
// tuned for the moderate matrix orders that arise in perturbation-matrix
// analysis (up to a few thousand), not for BLAS-level throughput.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned when matrix dimensions are incompatible with the
// requested operation.
var ErrShape = errors.New("linalg: dimension mismatch")

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular")

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty (0×0) matrix; use NewDense to allocate a
// matrix of a given shape.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates an r×c matrix of zeros. It panics if r or c is
// negative, mirroring make's behaviour for negative lengths.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds an r×c matrix from the given row-major data slice.
// The slice is used directly (not copied); len(data) must equal r*c.
func NewDenseFrom(r, c int, data []float64) (*Dense, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("%w: %d elements for %dx%d matrix", ErrShape, len(data), r, c)
	}
	return &Dense{rows: r, cols: c, data: data}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Dims reports the number of rows and columns.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: column %d out of range", j))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// RawData exposes the backing row-major slice. Mutating it mutates the
// matrix; callers that need isolation should use Clone.
func (m *Dense) RawData() []float64 { return m.data }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Plus returns m + b as a new matrix.
func (m *Dense) Plus(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out, nil
}

// Minus returns m − b as a new matrix.
func (m *Dense) Minus(b *Dense) (*Dense, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := m.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out, nil
}

// Mul returns the matrix product m·b as a new matrix.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// IsSquare reports whether the matrix is square.
func (m *Dense) IsSquare() bool { return m.rows == m.cols }

// IsSymmetric reports whether the matrix is symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if !m.IsSquare() {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// IsStochasticColumns reports whether every column sums to 1 within tol and
// all entries are nonnegative, i.e. whether the matrix is a valid Markov
// perturbation matrix in the FRAPP sense (Equation 1 of the paper).
func (m *Dense) IsStochasticColumns(tol float64) bool {
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			v := m.At(i, j)
			if v < -tol {
				return false
			}
			s += v
		}
		if math.Abs(s-1) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the maximum absolute elementwise difference between m
// and b, or an error if shapes differ.
func (m *Dense) MaxAbsDiff(b *Dense) (float64, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return 0, fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, m.rows, m.cols, b.rows, b.cols)
	}
	var d float64
	for i := range m.data {
		if v := math.Abs(m.data[i] - b.data[i]); v > d {
			d = v
		}
	}
	return d, nil
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShown = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows && i < maxShown; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols && j < maxShown; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.4g", m.At(i, j))
		}
		if m.cols > maxShown {
			sb.WriteString(" …")
		}
	}
	if m.rows > maxShown {
		sb.WriteString("; …")
	}
	sb.WriteByte(']')
	return sb.String()
}
