package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims() = (%d,%d), want (3,4)", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewDenseFromShapeError(t *testing.T) {
	if _, err := NewDenseFrom(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected shape error for 3 elements in 2x2")
	}
	m, err := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("row-major layout broken: At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if got := m.At(0, 1); got != 7 {
		t.Fatalf("At(0,1) = %v, want 7", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	NewDense(2, 2).At(2, 0)
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(4) wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	mt := m.T()
	if r, c := mt.Dims(); r != 3 || c != 2 {
		t.Fatalf("transpose dims = (%d,%d), want (3,2)", r, c)
	}
	if mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", mt)
	}
}

func TestDoubleTransposeIsIdentityProperty(t *testing.T) {
	f := func(vals [12]float64) bool {
		m, _ := NewDenseFrom(3, 4, append([]float64(nil), vals[:]...))
		d, _ := m.T().T().MaxAbsDiff(m)
		return d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMul(t *testing.T) {
	a, _ := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := NewDenseFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if got := c.RawData()[i]; got != w {
			t.Fatalf("Mul[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := a.Mul(NewDense(2, 2)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("expected shape error for MulVec")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{2, 0, 1, 3})
	y, err := a.MulVec([]float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 8 || y[1] != 19 {
		t.Fatalf("MulVec = %v, want [8 19]", y)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randMat := func(r, c int) *Dense {
		m := NewDense(r, c)
		for i := range m.RawData() {
			m.RawData()[i] = rng.NormFloat64()
		}
		return m
	}
	for trial := 0; trial < 25; trial++ {
		a, b, c := randMat(4, 3), randMat(3, 5), randMat(5, 2)
		ab, _ := a.Mul(b)
		left, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		right, _ := a.Mul(bc)
		d, _ := left.MaxAbsDiff(right)
		if d > 1e-10 {
			t.Fatalf("trial %d: (AB)C != A(BC), max diff %g", trial, d)
		}
	}
}

func TestPlusMinus(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b, _ := NewDenseFrom(2, 2, []float64{5, 6, 7, 8})
	sum, err := a.Plus(b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := sum.Minus(b)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := diff.MaxAbsDiff(a)
	if d != 0 {
		t.Fatalf("(a+b)-b != a, diff %g", d)
	}
	if _, err := a.Plus(NewDense(3, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestScaleClone(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Scale(2)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases original data")
	}
	if b.At(1, 1) != 8 {
		t.Fatalf("Scale result wrong: %v", b.At(1, 1))
	}
}

func TestRowCol(t *testing.T) {
	a, _ := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := a.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	c := a.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col(2) = %v", c)
	}
	r[0] = 99
	if a.At(1, 0) == 99 {
		t.Fatal("Row must return a copy")
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := NewDenseFrom(2, 2, []float64{1, 2, 2, 5})
	if !s.IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	a, _ := NewDenseFrom(2, 2, []float64{1, 2, 3, 5})
	if a.IsSymmetric(1e-12) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestIsStochasticColumns(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{0.9, 0.3, 0.1, 0.7})
	if !a.IsStochasticColumns(1e-12) {
		t.Fatal("column-stochastic matrix rejected")
	}
	b, _ := NewDenseFrom(2, 2, []float64{0.9, 0.3, 0.2, 0.7})
	if b.IsStochasticColumns(1e-12) {
		t.Fatal("non-stochastic matrix accepted")
	}
	c, _ := NewDenseFrom(2, 2, []float64{1.5, 0.3, -0.5, 0.7})
	if c.IsStochasticColumns(1e-12) {
		t.Fatal("negative-entry matrix accepted")
	}
}

func TestStringElides(t *testing.T) {
	big := NewDense(20, 20)
	s := big.String()
	if len(s) == 0 || len(s) > 2000 {
		t.Fatalf("String() of big matrix has unreasonable length %d", len(s))
	}
}
