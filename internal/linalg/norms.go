package linalg

import (
	"fmt"
	"math"
)

// VecNorm2 returns the Euclidean norm of x.
func VecNorm2(x []float64) float64 { return vecNorm(x) }

// VecNorm1 returns the 1-norm (sum of absolute values) of x.
func VecNorm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// VecNormInf returns the infinity norm (max absolute value) of x.
func VecNormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Dense) float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the induced 1-norm (maximum absolute column sum).
func Norm1(m *Dense) float64 {
	var mx float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.At(i, j))
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// NormInf returns the induced infinity norm (maximum absolute row sum).
func NormInf(m *Dense) float64 {
	var mx float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for j := 0; j < m.cols; j++ {
			s += math.Abs(m.At(i, j))
		}
		if s > mx {
			mx = s
		}
	}
	return mx
}

// Cond2Symmetric computes the 2-norm condition number λmax/λmin of a
// symmetric positive-definite matrix via the Jacobi eigensolver, exactly
// the quantity Theorem 1 of the FRAPP paper bounds estimation error with.
// It returns +Inf if the smallest eigenvalue is not positive.
func Cond2Symmetric(a *Dense) (float64, error) {
	vals, _, err := SymEigen(a, false)
	if err != nil {
		return 0, err
	}
	n := len(vals)
	if n == 0 {
		return 0, fmt.Errorf("linalg: condition number of empty matrix")
	}
	lmin, lmax := vals[0], vals[n-1]
	absMax := math.Max(math.Abs(lmin), math.Abs(lmax))
	absMin := math.Inf(1)
	for _, v := range vals {
		if a := math.Abs(v); a < absMin {
			absMin = a
		}
	}
	if absMin == 0 {
		return math.Inf(1), nil
	}
	return absMax / absMin, nil
}

// Cond1 computes the 1-norm condition number ‖A‖₁·‖A⁻¹‖₁ via explicit
// inversion. It applies to any invertible square matrix (symmetric or not)
// and is used for the non-symmetric reconstruction matrices of the C&P
// baseline. Returns +Inf for singular input.
func Cond1(a *Dense) (float64, error) {
	if !a.IsSquare() {
		return 0, fmt.Errorf("%w: condition number of %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	inv, err := Inverse(a)
	if err != nil {
		if isSingularErr(err) {
			return math.Inf(1), nil
		}
		return 0, err
	}
	return Norm1(a) * Norm1(inv), nil
}

func isSingularErr(err error) bool {
	for err != nil {
		if err == ErrSingular {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
