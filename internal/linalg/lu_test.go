package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveKnownSystem(t *testing.T) {
	a, _ := NewDenseFrom(3, 3, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-12) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveResidualRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(20)
		a := NewDense(n, n)
		for i := range a.RawData() {
			a.RawData()[i] = rng.NormFloat64()
		}
		// Diagonal boost keeps matrices comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ax, _ := a.MulVec(x)
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-9) {
				t.Fatalf("trial %d: residual at %d: %v vs %v", trial, i, ax[i], b[i])
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	a, _ := NewDenseFrom(3, 3, []float64{
		4, 7, 2,
		3, 6, 1,
		2, 5, 3,
	})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := a.Mul(inv)
	d, _ := prod.MaxAbsDiff(Identity(3))
	if d > 1e-12 {
		t.Fatalf("A·A⁻¹ deviates from identity by %g", d)
	}
}

func TestSingularDetection(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	_, err := Factor(a)
	if err == nil {
		t.Fatal("expected singular error")
	}
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("error %v does not wrap ErrSingular", err)
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewDense(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("expected ErrShape, got %v", err)
	}
}

func TestSolveRHSLength(t *testing.T) {
	f, err := Factor(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("expected ErrShape, got %v", err)
	}
	if f.Order() != 3 {
		t.Fatalf("Order() = %d, want 3", f.Order())
	}
}

func TestDet(t *testing.T) {
	a, _ := NewDenseFrom(2, 2, []float64{3, 8, 4, 6})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); !almostEqual(got, -14, 1e-12) {
		t.Fatalf("Det = %v, want -14", got)
	}
	fi, _ := Factor(Identity(5))
	if got := fi.Det(); got != 1 {
		t.Fatalf("Det(I) = %v, want 1", got)
	}
}

func TestDetProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		mk := func() *Dense {
			m := NewDense(n, n)
			for i := range m.RawData() {
				m.RawData()[i] = rng.NormFloat64()
			}
			for i := 0; i < n; i++ {
				m.Add(i, i, 3)
			}
			return m
		}
		a, b := mk(), mk()
		ab, _ := a.Mul(b)
		fa, _ := Factor(a)
		fb, _ := Factor(b)
		fab, err := Factor(ab)
		if err != nil {
			continue
		}
		if !almostEqual(fab.Det(), fa.Det()*fb.Det(), 1e-8) {
			t.Fatalf("trial %d: det(AB)=%g != det(A)det(B)=%g",
				trial, fab.Det(), fa.Det()*fb.Det())
		}
	}
}

func TestSolveHilbertIllConditioned(t *testing.T) {
	// 5x5 Hilbert matrix: the paper's own example of ill-conditioning
	// (condition number ~1e5, Section 2.3). The solve should still work
	// to reasonable accuracy at this size.
	n := 5
	h := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	xTrue := []float64{1, 1, 1, 1, 1}
	b, _ := h.MulVec(xTrue)
	x, err := Solve(h, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-8 {
			t.Fatalf("Hilbert solve x[%d] = %v, want 1", i, x[i])
		}
	}
	c, err := Cond2Symmetric(h)
	if err != nil {
		t.Fatal(err)
	}
	if c < 1e4 || c > 1e6 {
		t.Fatalf("Hilbert(5) condition number = %g, want ~5e5", c)
	}
}
