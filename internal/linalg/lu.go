package linalg

import (
	"fmt"
	"math"
)

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U, with L unit lower triangular and U upper triangular, stored
// compactly in lu. It supports repeated solves against different
// right-hand sides, matrix inversion, and determinant computation.
type LU struct {
	lu    *Dense
	pivot []int // pivot[i] is the row swapped into position i
	sign  int   // +1 or −1: parity of the permutation, for Det
}

// Factor computes the LU factorization of a. The input matrix is not
// modified. It returns ErrSingular if a pivot underflows to zero.
func Factor(a *Dense) (*LU, error) {
	if !a.IsSquare() {
		return nil, fmt.Errorf("%w: LU of %dx%d matrix", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1

	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude entry in column k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		pivot[k] = p
		if p != k {
			rowK := lu.data[k*n : (k+1)*n]
			rowP := lu.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			sign = -sign
		}
		pv := lu.At(k, k)
		if pv == 0 {
			return nil, fmt.Errorf("%w: zero pivot at column %d", ErrSingular, k)
		}
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pv
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			rowI := lu.data[i*n : (i+1)*n]
			rowK := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Order returns the order n of the factored matrix.
func (f *LU) Order() int { return f.lu.rows }

// Solve solves A·x = b for x, reusing the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d for order-%d system", ErrShape, len(b), n)
	}
	x := make([]float64, n)
	copy(x, b)
	// Apply the row permutation.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with unit lower triangular L.
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := i + 1; j < n; j++ {
			s += row[j] * x[j]
		}
		x[i] = (x[i] - s) / row[i]
	}
	return x, nil
}

// Inverse computes A⁻¹ column by column from the factorization.
func (f *LU) Inverse() (*Dense, error) {
	n := f.lu.rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve is a convenience wrapper: factor a and solve a·x = b.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse is a convenience wrapper: factor a and invert it.
func Inverse(a *Dense) (*Dense, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse()
}
