package store

import "time"

// Observer receives durability telemetry from a FileStore: WAL append
// and fsync latency, segment growth, checkpoint compaction cost, and
// the recovery outcome. Implementations must be cheap and must not call
// back into the store; they run on the service's flusher goroutine (and
// once on the recovery path), so no internal synchronization is needed
// beyond what the implementation itself requires.
//
// All quantities are operational aggregates — byte and record counts,
// durations, error presence. No counter content ever passes through.
type Observer interface {
	// ObserveAppend reports one Append call: payload bytes framed into
	// the WAL, records carried by the delta, time spent inside fsync
	// (zero under SyncOff and on the no-op path), the total call
	// duration, and the outcome. A no-op flush (nothing changed)
	// reports zero bytes and records.
	ObserveAppend(bytes, records int, fsync, total time.Duration, err error)
	// ObserveCheckpoint reports one checkpoint compaction: serialized
	// counter-state bytes, total duration (delta pull, freeze, atomic
	// write, WAL rotation, prune), and the outcome.
	ObserveCheckpoint(stateBytes int, total time.Duration, err error)
	// ObserveWALSize reports the current WAL segment's size in bytes
	// after every append and rotation.
	ObserveWALSize(bytes int64)
	// ObserveRecovery reports the Recover outcome once per store
	// lifecycle: how many records the recovered counter holds and
	// whether any durable state existed.
	ObserveRecovery(records int, hadState bool, err error)
}

// SetObserver installs the durability telemetry hook. Call it before
// Recover/Attach; the field is read unsynchronized from the store's
// single-threaded method surface.
func (s *FileStore) SetObserver(o Observer) { s.obs = o }
