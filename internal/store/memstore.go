package store

import (
	"bytes"
	"fmt"

	"repro/internal/mining"
)

// MemStore is an in-memory StateStore with FileStore's semantics but no
// disk: the WAL is a delta slice, the checkpoint a byte buffer. It backs
// tests that need store-driven behavior (checkpoint triggers, recovery
// after an abandoned counter) without filesystem coupling, and it is the
// proof that the service programs against the StateStore contract rather
// than against files.
type MemStore struct {
	counter   *mining.ShardedCounter
	ckptState []byte
	ckptRepl  mining.ReplicationState
	wal       []*mining.CounterDelta
	lastToken uint64
	sinceCkpt int
	recovered bool
	closed    bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Recover implements StateStore. A MemStore outliving one counter can
// recover the next from its retained checkpoint and WAL, which is how
// tests simulate a crash without a filesystem.
func (s *MemStore) Recover(scheme mining.CounterScheme, shards int) (*mining.ShardedCounter, error) {
	s.recovered = true
	if s.ckptState == nil {
		return nil, nil
	}
	counter, err := mining.LoadLiveCounter(bytes.NewReader(s.ckptState), scheme, shards)
	if err != nil {
		return nil, err
	}
	token := s.ckptRepl.LastToken
	for _, d := range s.wal {
		if err := counter.ApplyDelta(d); err != nil {
			return nil, err
		}
		token = d.ToVersion
	}
	if s.ckptRepl.Epoch != 0 {
		rs := s.ckptRepl
		if token > rs.LastToken {
			rs.LastToken = token
		}
		if err := counter.RestoreReplicationState(rs); err != nil {
			return nil, err
		}
	}
	return counter, nil
}

// Attach implements StateStore.
func (s *MemStore) Attach(counter *mining.ShardedCounter) error {
	if counter == nil {
		return fmt.Errorf("%w: nil counter", ErrStore)
	}
	if s.counter != nil {
		return fmt.Errorf("%w: a counter is already attached", ErrStore)
	}
	s.counter = counter
	s.closed = false // a closed MemStore is reusable: Recover then re-Attach
	return s.Checkpoint()
}

// Append implements StateStore.
func (s *MemStore) Append() error {
	if err := s.attached(); err != nil {
		return err
	}
	d, err := s.counter.DeltaSince(s.lastToken)
	if err != nil {
		return err
	}
	if d.Full() {
		return s.Checkpoint()
	}
	if d.ToVersion == s.lastToken {
		return nil
	}
	s.wal = append(s.wal, d)
	s.lastToken = d.ToVersion
	s.sinceCkpt += d.Records
	return nil
}

// Checkpoint implements StateStore.
func (s *MemStore) Checkpoint() error {
	if err := s.attached(); err != nil {
		return err
	}
	d, err := s.counter.DeltaSince(0)
	if err != nil {
		return err
	}
	frozen, err := mining.NewShardedCounter(s.counter.CounterScheme(), 1)
	if err != nil {
		return err
	}
	if err := frozen.ApplyDelta(d); err != nil {
		return err
	}
	var state bytes.Buffer
	if err := frozen.Save(&state); err != nil {
		return err
	}
	s.ckptState = state.Bytes()
	s.ckptRepl = s.counter.ReplicationState()
	s.ckptRepl.LastToken = d.ToVersion
	s.wal = nil
	s.lastToken = d.ToVersion
	s.sinceCkpt = 0
	return nil
}

// SinceCheckpoint implements StateStore.
func (s *MemStore) SinceCheckpoint() int { return s.sinceCkpt }

// Close implements StateStore. The retained state survives Close so a
// test can Recover a successor counter from it.
func (s *MemStore) Close() error {
	s.closed = true
	s.counter = nil
	return nil
}

func (s *MemStore) attached() error {
	if s.closed {
		return fmt.Errorf("%w: store is closed", ErrStore)
	}
	if s.counter == nil {
		return fmt.Errorf("%w: no counter attached", ErrStore)
	}
	return nil
}
