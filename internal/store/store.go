// Package store provides durable incremental persistence for FRAPP live
// counters: a write-ahead log of sparse CounterDelta records plus
// periodic compacted checkpoints, behind a pluggable StateStore
// interface.
//
// The design leans on a property of the FRAPP trust model: server-side
// state is purely additive (joint/marginal histograms of perturbed
// submissions — no raw record ever reaches the server), so the existing
// replication delta layer (mining.CounterDelta / DeltaSince) is already
// an exact, compact change log. The store chains those deltas into an
// append-only WAL off the ingest hot path, compacts them into full
// counter checkpoints (the v3 scheme-tagged state format), and after a
// crash recovers by loading the newest valid checkpoint and replaying
// the WAL tail; a torn trailing record ends the replay, it is never
// fatal. Checkpoints also carry the counter's replication identity
// (delta epoch + retained baselines), so federation pullers resume
// incremental replication against the recovered counter instead of
// being forced into a full re-pull.
package store

import (
	"errors"

	"repro/internal/mining"
)

// ErrStore is returned for invalid store state or configuration.
var ErrStore = errors.New("store: invalid state")

// StateStore is the pluggable durable-persistence contract the
// collection service programs against. The lifecycle is: Recover once
// (before serving), Attach the live counter (writes a fresh compacted
// boot checkpoint), then Append periodically from a background flusher,
// Checkpoint on record thresholds, and Close on shutdown. FileStore is
// the production implementation; MemStore backs tests.
//
// Append and Checkpoint are safe to call while the attached counter
// ingests concurrently; the store's own methods must not be called
// concurrently with each other (the service serializes them on one
// flusher goroutine).
type StateStore interface {
	// Recover rebuilds the durable state — newest valid checkpoint plus
	// the replayed WAL tail — as a live counter with the store's
	// persisted replication identity restored. Returns (nil, nil) when
	// the store holds no state yet.
	Recover(scheme mining.CounterScheme, shards int) (*mining.ShardedCounter, error)
	// Attach binds the live counter the store will log, writes a
	// compacted checkpoint of its current state, and starts a fresh WAL
	// segment chained to it.
	Attach(counter *mining.ShardedCounter) error
	// Append flushes the counter's changes since the last append into
	// the WAL as one delta record. A no-op when nothing changed.
	Append() error
	// Checkpoint compacts: writes the counter's full current state as a
	// new checkpoint, rotates the WAL, and prunes obsolete files.
	Checkpoint() error
	// SinceCheckpoint reports how many records the WAL has accumulated
	// since the last checkpoint — the service's checkpoint trigger.
	SinceCheckpoint() int
	// Close releases the store. It does not flush: callers Append (and
	// usually Checkpoint) first on the graceful path.
	Close() error
}
