package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/mining"
)

// On-disk layout of a FileStore directory:
//
//	checkpoint-<seq>.ckpt  gob checkpointFile: full counter state at one
//	                       WAL token, plus the replication identity
//	wal-<seq>.log          framed header + CounterDelta records chained
//	                       from checkpoint <seq>'s token
//	legacy-state.gob       a migrated legacy single-file -state payload,
//	                       removed once the first real checkpoint is
//	                       durable
//
// Every record and the segment header are framed as
// [len uint32][crc32 uint32][gob payload], both big-endian, so a torn
// trailing write is detected (short frame or CRC mismatch) and ends the
// replay instead of corrupting it. Checkpoints are written atomically —
// temp file, fsync, rename, directory fsync — so the newest checkpoint
// named by the directory is always complete.

const (
	checkpointMagic = "frapp-checkpoint"
	walMagic        = "frapp-wal"
	formatVersion   = 1

	checkpointSuffix = ".ckpt"
	walSuffix        = ".log"
	legacyStateName  = "legacy-state.gob"
	migratingSuffix  = ".migrating"

	// tmpPattern prefixes every temp file the store creates; stale ones
	// (a crash between create and rename) are swept at Open. The legacy
	// single-file persist path uses .frapp-state-* (swept by
	// service.NewServerWithState for plain files, and here for migrated
	// directories).
	tmpPattern       = ".frapp-ckpt-*"
	legacyTmpPattern = ".frapp-state-*"
)

// SyncMode controls WAL append durability. Checkpoints are always
// written with full fsync discipline regardless of mode.
type SyncMode int

const (
	// SyncAlways fsyncs the WAL after every appended delta (the
	// default). Appends are already batched by the service's flush
	// interval, so this costs one fsync per flush, not per record.
	SyncAlways SyncMode = iota
	// SyncOff leaves WAL appends to the OS page cache: a machine crash
	// can lose the un-synced tail (a process crash cannot). Recovery
	// semantics are unchanged — the durable prefix is still recovered
	// exactly.
	SyncOff
)

// Option configures a FileStore.
type Option func(*FileStore)

// WithSyncMode selects the WAL append durability mode.
func WithSyncMode(m SyncMode) Option {
	return func(s *FileStore) { s.sync = m }
}

// FileStore is the production StateStore: one directory holding
// checkpoints and WAL segments. A directory belongs to exactly one
// server process at a time; concurrent writers are unsupported.
type FileStore struct {
	dir  string
	sync SyncMode

	counter *mining.ShardedCounter
	wal     *os.File
	seq     uint64 // current checkpoint/WAL generation
	// lastToken is the stream token of the last WAL-appended delta; the
	// next Append chains from it.
	lastToken uint64
	sinceCkpt int
	// legacyPath is a migrated legacy state file pending removal after
	// the first durable checkpoint.
	legacyPath string
	recovered  bool
	closed     bool

	// walWrite, when set (tests), intercepts WAL frame writes to inject
	// partial or failing writers.
	walWrite func(f *os.File, p []byte) (int, error)

	// walBytes tracks the current WAL segment's size (header included)
	// for telemetry; obs, when set, receives durability observations.
	walBytes int64
	obs      Observer
}

// Open opens (or creates) a store directory. A legacy single-file
// -state payload at the same path is migrated into the directory: the
// file becomes dir/legacy-state.gob, is recovered like a checkpoint,
// and is removed once the first real checkpoint is durable. Stale temp
// files from crashed atomic writes are swept.
func Open(dir string, opts ...Option) (*FileStore, error) {
	s := &FileStore{dir: dir, sync: SyncAlways}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.openDir(); err != nil {
		return nil, err
	}
	if err := s.sweepTemps(); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, legacyStateName)); err == nil {
		s.legacyPath = filepath.Join(dir, legacyStateName)
	}
	return s, nil
}

// openDir creates the directory, migrating a legacy regular file at the
// same path when present. A crash mid-migration leaves path.migrating,
// which the next Open finishes moving in.
func (s *FileStore) openDir() error {
	migrating := s.dir + migratingSuffix
	info, err := os.Stat(s.dir)
	switch {
	case err == nil && info.Mode().IsRegular():
		// Legacy single-file state: move it aside, build the directory,
		// move it in. Both renames stay within the parent directory, so
		// each is atomic and the state file exists at every instant.
		if err := os.Rename(s.dir, migrating); err != nil {
			return fmt.Errorf("%w: migrating legacy state file %s: %v", ErrStore, s.dir, err)
		}
	case err == nil && !info.IsDir():
		return fmt.Errorf("%w: %s is neither a directory nor a regular state file", ErrStore, s.dir)
	case err != nil && !errors.Is(err, fs.ErrNotExist):
		return err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(migrating); err == nil {
		if err := os.Rename(migrating, filepath.Join(s.dir, legacyStateName)); err != nil {
			return fmt.Errorf("%w: migrating legacy state file into %s: %v", ErrStore, s.dir, err)
		}
		if err := SyncDir(s.dir); err != nil {
			return err
		}
		if err := SyncDir(filepath.Dir(s.dir)); err != nil {
			return err
		}
	}
	return nil
}

// sweepTemps removes orphaned temp files left by writes that crashed
// between create and rename.
func (s *FileStore) sweepTemps() error {
	for _, pattern := range []string{tmpPattern, legacyTmpPattern} {
		matches, err := filepath.Glob(filepath.Join(s.dir, pattern))
		if err != nil {
			return err
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// checkpointFile is the serialized checkpoint: the counter state (the
// v3 scheme-tagged gob payload of LiveCounter.Save) frozen at WALToken,
// plus the replication identity to restore into the recovered counter.
type checkpointFile struct {
	Magic       string
	Version     int
	Seq         uint64
	WALToken    uint64
	Replication mining.ReplicationState
	State       []byte
}

// walHeader opens every WAL segment: records in segment Seq chain from
// StartToken (checkpoint Seq's WALToken).
type walHeader struct {
	Magic      string
	Version    int
	Seq        uint64
	StartToken uint64
}

// Recover implements StateStore.
func (s *FileStore) Recover(scheme mining.CounterScheme, shards int) (*mining.ShardedCounter, error) {
	counter, err := s.recover(scheme, shards)
	if s.obs != nil {
		records := 0
		if counter != nil {
			records = counter.N()
		}
		s.obs.ObserveRecovery(records, counter != nil, err)
	}
	return counter, err
}

func (s *FileStore) recover(scheme mining.CounterScheme, shards int) (*mining.ShardedCounter, error) {
	if s.recovered {
		return nil, fmt.Errorf("%w: Recover called twice", ErrStore)
	}
	s.recovered = true
	seqs, err := s.listSeqs(checkpointSuffix)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		return s.recoverLegacy(scheme, shards)
	}
	// Newest valid checkpoint wins; a corrupt newest checkpoint falls
	// back to its predecessor (whose WAL segment still carries the
	// interval, minus whatever the corrupt checkpoint alone held).
	var firstErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		counter, ck, err := s.loadCheckpoint(seqs[i], scheme, shards)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		token, err := s.replayWAL(counter, ck.Seq, ck.WALToken)
		if err != nil {
			return nil, err
		}
		if ck.Replication.Epoch != 0 {
			rs := ck.Replication
			if token > rs.LastToken {
				rs.LastToken = token
			}
			if err := counter.RestoreReplicationState(rs); err != nil {
				return nil, err
			}
		}
		s.seq = seqs[len(seqs)-1] // continue numbering past every file present
		return counter, nil
	}
	return nil, fmt.Errorf("no valid checkpoint in %s (restore a backup, or remove the directory to start empty): %w", s.dir, firstErr)
}

// recoverLegacy restores a migrated legacy single-file state when the
// directory holds no checkpoints yet.
func (s *FileStore) recoverLegacy(scheme mining.CounterScheme, shards int) (*mining.ShardedCounter, error) {
	if s.legacyPath == "" {
		return nil, nil
	}
	f, err := os.Open(s.legacyPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	counter, err := mining.LoadLiveCounter(f, scheme, shards)
	if err != nil {
		return nil, fmt.Errorf("state file %s is unreadable (restore it from a backup, or delete it to start empty): %w", s.legacyPath, err)
	}
	return counter, nil
}

// loadCheckpoint decodes and validates one checkpoint file.
func (s *FileStore) loadCheckpoint(seq uint64, scheme mining.CounterScheme, shards int) (*mining.ShardedCounter, *checkpointFile, error) {
	path := s.checkpointPath(seq)
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var ck checkpointFile
	if err := gob.NewDecoder(bufio.NewReader(f)).Decode(&ck); err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s: %w: %v", path, mining.ErrCorruptState, err)
	}
	if ck.Magic != checkpointMagic || ck.Version != formatVersion || ck.Seq != seq {
		return nil, nil, fmt.Errorf("checkpoint %s: %w: bad header (magic %q, version %d, seq %d)",
			path, mining.ErrCorruptState, ck.Magic, ck.Version, ck.Seq)
	}
	counter, err := mining.LoadLiveCounter(bytes.NewReader(ck.State), scheme, shards)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return counter, &ck, nil
}

// replayWAL folds every decodable WAL record chained after (seq, token)
// into the counter and returns the last applied token. Corruption — a
// torn frame, a CRC mismatch, a broken chain — ends the replay at the
// last good record; it is never fatal, because everything before the
// tear is a consistent prefix of the acknowledged-and-flushed records.
func (s *FileStore) replayWAL(counter *mining.ShardedCounter, seq, token uint64) (uint64, error) {
	seqs, err := s.listSeqs(walSuffix)
	if err != nil {
		return 0, err
	}
	for _, ws := range seqs {
		if ws < seq {
			continue
		}
		ok, err := s.replaySegment(counter, ws, &token)
		if err != nil || !ok {
			return token, err
		}
	}
	return token, nil
}

// replaySegment replays one segment; ok=false means the chain ended
// inside it (tear or break), so later segments must not be applied.
func (s *FileStore) replaySegment(counter *mining.ShardedCounter, seq uint64, token *uint64) (bool, error) {
	f, err := os.Open(s.walPath(seq))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			// A crash between checkpoint write and WAL rotation: the
			// checkpoint already covers everything.
			return false, nil
		}
		return false, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	payload, err := readFrame(r)
	if err != nil {
		return false, nil // torn or empty header: segment carries nothing
	}
	var hdr walHeader
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&hdr); err != nil {
		return false, nil
	}
	if hdr.Magic != walMagic || hdr.Version != formatVersion || hdr.Seq != seq || hdr.StartToken != *token {
		return false, nil // not the segment this chain expects
	}
	for {
		payload, err := readFrame(r)
		if err != nil {
			// io.EOF is the clean end of a fully replayed segment; any
			// other error is a torn/corrupt tail — stop at the last good
			// record either way.
			return errors.Is(err, io.EOF), nil
		}
		var d mining.CounterDelta
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&d); err != nil {
			return false, nil
		}
		if d.Full() || d.FromVersion != *token {
			return false, nil // chain break: treat like a tear
		}
		if err := counter.ApplyDelta(&d); err != nil {
			return false, fmt.Errorf("replaying %s: %w", s.walPath(seq), err)
		}
		*token = d.ToVersion
	}
}

// Attach implements StateStore: it writes a boot checkpoint of the
// counter's current state (recovered or empty), rotates onto a fresh
// WAL segment, and — once that checkpoint is durable — removes a
// migrated legacy state file.
func (s *FileStore) Attach(counter *mining.ShardedCounter) error {
	if counter == nil {
		return fmt.Errorf("%w: nil counter", ErrStore)
	}
	if s.counter != nil {
		return fmt.Errorf("%w: a counter is already attached", ErrStore)
	}
	s.counter = counter
	if err := s.checkpoint(); err != nil {
		s.counter = nil
		return err
	}
	if s.legacyPath != "" {
		if err := os.Remove(s.legacyPath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		if err := SyncDir(s.dir); err != nil {
			return err
		}
		s.legacyPath = ""
	}
	return nil
}

// Append implements StateStore: one DeltaSince pull chained onto the
// last appended token, framed into the current WAL segment. When the
// counter no longer retains the chain baseline (possible when many
// replication pullers churn the baseline ring between flushes), the
// delta comes back FULL — then the store compacts instead of appending,
// which restores a clean chain.
func (s *FileStore) Append() error {
	start := time.Now()
	n, records, fsyncDur, err := s.append()
	if s.obs != nil {
		s.obs.ObserveAppend(n, records, fsyncDur, time.Since(start), err)
		s.obs.ObserveWALSize(s.walBytes)
	}
	return err
}

func (s *FileStore) append() (appended, records int, fsyncDur time.Duration, err error) {
	if err := s.attached(); err != nil {
		return 0, 0, 0, err
	}
	d, err := s.counter.DeltaSince(s.lastToken)
	if err != nil {
		return 0, 0, 0, err
	}
	if d.Full() {
		return 0, 0, 0, s.checkpoint()
	}
	if d.ToVersion == s.lastToken {
		return 0, 0, 0, nil // unchanged
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return 0, 0, 0, err
	}
	if err := s.writeFrame(buf.Bytes()); err != nil {
		return 0, 0, 0, err
	}
	if s.sync == SyncAlways {
		t0 := time.Now()
		if err := s.wal.Sync(); err != nil {
			return buf.Len(), 0, time.Since(t0), err
		}
		fsyncDur = time.Since(t0)
	}
	s.lastToken = d.ToVersion
	s.sinceCkpt += d.Records
	return buf.Len(), d.Records, fsyncDur, nil
}

// Checkpoint implements StateStore.
func (s *FileStore) Checkpoint() error {
	if err := s.attached(); err != nil {
		return err
	}
	return s.checkpoint()
}

// checkpoint compacts the counter's full current state into
// checkpoint-(seq+1), rotates the WAL onto segment seq+1, and prunes
// files older than seq (the previous generation is kept as the
// fallback for a corrupt newest checkpoint).
func (s *FileStore) checkpoint() error {
	start := time.Now()
	stateBytes, err := s.compact()
	if s.obs != nil {
		s.obs.ObserveCheckpoint(stateBytes, time.Since(start), err)
		s.obs.ObserveWALSize(s.walBytes)
	}
	return err
}

// compact is the checkpoint body, returning the serialized state size
// for telemetry.
func (s *FileStore) compact() (int, error) {
	// One full pull both captures the state and retains its baseline in
	// the counter's ring, so the checkpoint token is a real stream
	// position the WAL chain and replication pullers can chain onto.
	d, err := s.counter.DeltaSince(0)
	if err != nil {
		return 0, err
	}
	// Bridge the outgoing segment onto the checkpoint token: appending
	// the pending tail to the old WAL lets a recovery that falls back
	// past a corrupt checkpoint file chain straight through into the
	// next segment. Best-effort — a failure here only shortens the
	// fallback prefix, never the primary recovery path.
	if s.wal != nil && s.lastToken != d.ToVersion {
		if inc, err := s.counter.DeltaSince(s.lastToken); err == nil && !inc.Full() && inc.ToVersion != s.lastToken {
			var buf bytes.Buffer
			if gob.NewEncoder(&buf).Encode(inc) == nil && s.writeFrame(buf.Bytes()) == nil {
				s.wal.Sync()
				s.lastToken = inc.ToVersion
			}
		}
	}
	// Rebuild a frozen counter from the delta: its serialized form is
	// the state at exactly d.ToVersion, unaffected by records still
	// arriving on the live counter.
	frozen, err := mining.NewShardedCounter(s.counter.CounterScheme(), 1)
	if err != nil {
		return 0, err
	}
	if err := frozen.ApplyDelta(d); err != nil {
		return 0, err
	}
	var state bytes.Buffer
	if err := frozen.Save(&state); err != nil {
		return 0, err
	}
	newSeq := s.seq + 1
	ck := checkpointFile{
		Magic:       checkpointMagic,
		Version:     formatVersion,
		Seq:         newSeq,
		WALToken:    d.ToVersion,
		Replication: s.counter.ReplicationState(),
		State:       state.Bytes(),
	}
	if err := s.writeCheckpointFile(&ck); err != nil {
		return state.Len(), err
	}
	if err := s.rotateWAL(newSeq, d.ToVersion); err != nil {
		return state.Len(), err
	}
	s.seq = newSeq
	s.lastToken = d.ToVersion
	s.sinceCkpt = 0
	s.prune(newSeq - 1)
	return state.Len(), nil
}

// writeCheckpointFile writes one checkpoint atomically and durably:
// temp file, fsync, rename, directory fsync.
func (s *FileStore) writeCheckpointFile(ck *checkpointFile) error {
	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	w := bufio.NewWriter(tmp)
	if err := gob.NewEncoder(w).Encode(ck); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, s.checkpointPath(ck.Seq)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(s.dir)
}

// rotateWAL closes the current segment and opens segment seq, chained
// from token.
func (s *FileStore) rotateWAL(seq, token uint64) error {
	if s.wal != nil {
		s.wal.Sync()
		s.wal.Close()
		s.wal = nil
	}
	f, err := os.OpenFile(s.walPath(seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.wal = f
	s.walBytes = 0
	var buf bytes.Buffer
	hdr := walHeader{Magic: walMagic, Version: formatVersion, Seq: seq, StartToken: token}
	if err := gob.NewEncoder(&buf).Encode(&hdr); err != nil {
		return err
	}
	if err := s.writeFrame(buf.Bytes()); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	return SyncDir(s.dir)
}

// prune removes checkpoints and WAL segments older than keepFrom.
func (s *FileStore) prune(keepFrom uint64) {
	for _, suffix := range []string{checkpointSuffix, walSuffix} {
		seqs, err := s.listSeqs(suffix)
		if err != nil {
			return
		}
		for _, seq := range seqs {
			if seq < keepFrom {
				if suffix == checkpointSuffix {
					os.Remove(s.checkpointPath(seq))
				} else {
					os.Remove(s.walPath(seq))
				}
			}
		}
	}
}

// SinceCheckpoint implements StateStore.
func (s *FileStore) SinceCheckpoint() int { return s.sinceCkpt }

// Close implements StateStore. Idempotent.
func (s *FileStore) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		s.wal.Sync()
		err := s.wal.Close()
		s.wal = nil
		return err
	}
	return nil
}

// Dir returns the store directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) attached() error {
	if s.closed {
		return fmt.Errorf("%w: store is closed", ErrStore)
	}
	if s.counter == nil || s.wal == nil {
		return fmt.Errorf("%w: no counter attached", ErrStore)
	}
	return nil
}

// writeFrame appends one [len][crc][payload] frame to the WAL.
func (s *FileStore) writeFrame(payload []byte) error {
	if len(payload) > mining.MaxDeltaWireBytes {
		return fmt.Errorf("%w: WAL record of %d bytes exceeds cap", ErrStore, len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	write := s.walWrite
	if write == nil {
		write = (*os.File).Write
	}
	n, err := write(s.wal, frame)
	s.walBytes += int64(n)
	return err
}

// errTornFrame marks an incomplete or corrupt trailing frame.
var errTornFrame = errors.New("store: torn WAL frame")

// readFrame reads one frame; io.EOF means a clean end exactly at a
// frame boundary, errTornFrame anything short or corrupt — a partial
// header, a short payload, an oversized length, or a CRC mismatch.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, errTornFrame
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	if length > mining.MaxDeltaWireBytes {
		return nil, errTornFrame
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornFrame
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, errTornFrame
	}
	return payload, nil
}

func (s *FileStore) checkpointPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("checkpoint-%016d%s", seq, checkpointSuffix))
}

func (s *FileStore) walPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%016d%s", seq, walSuffix))
}

// listSeqs returns the sequence numbers of all files with the given
// suffix, ascending. Unparsable names are ignored.
func (s *FileStore) listSeqs(suffix string) ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	prefix := "checkpoint-"
	if suffix == walSuffix {
		prefix = "wal-"
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// SyncDir fsyncs a directory so a rename or create inside it is durable
// — without it, a power loss can roll back the directory entry even
// though the file's own bytes were synced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
