package store

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
)

// testSchemes is the full scheme matrix every durability property is
// checked under.
var testSchemes = []string{mining.SchemeGamma, mining.SchemeMask, mining.SchemeCutPaste}

func testSchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("store-test", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testScheme(t *testing.T, name string) mining.CounterScheme {
	t.Helper()
	scheme, err := mining.SchemeForContract(name, testSchema(t), 19)
	if err != nil {
		t.Fatal(err)
	}
	return scheme
}

// testRecords derives a deterministic record stream: ingestion is
// deterministic given the records (the server counts already-perturbed
// submissions; nothing random happens inside Add), so any prefix of
// this stream can be re-counted into an exact reference counter.
func testRecords(t *testing.T, n int, seed int64) []dataset.Record {
	t.Helper()
	s := testSchema(t)
	rng := rand.New(rand.NewSource(seed))
	recs := make([]dataset.Record, n)
	for i := range recs {
		rec := make(dataset.Record, s.M())
		for j, a := range s.Attrs {
			rec[j] = rng.Intn(a.Cardinality())
		}
		recs[i] = rec
	}
	return recs
}

func addAll(t *testing.T, c *mining.ShardedCounter, recs []dataset.Record) {
	t.Helper()
	for _, rec := range recs {
		if err := c.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
}

// referenceCounter re-counts a record prefix from scratch.
func referenceCounter(t *testing.T, scheme mining.CounterScheme, recs []dataset.Record) *mining.ShardedCounter {
	t.Helper()
	c, err := mining.NewShardedCounter(scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	addAll(t, c, recs)
	return c
}

// jointOf extracts a counter's full sparse joint histogram.
func jointOf(t *testing.T, c *mining.ShardedCounter) (int, map[uint64]float64) {
	t.Helper()
	d, err := c.DeltaSince(0)
	if err != nil {
		t.Fatal(err)
	}
	joint := make(map[uint64]float64, len(d.Cells))
	for _, cell := range d.Cells {
		joint[cell.Idx] = cell.Count
	}
	return d.Records, joint
}

// countersMatch asserts two counters hold identical state, cell by cell.
func countersMatch(t *testing.T, want, got *mining.ShardedCounter) {
	t.Helper()
	wn, wj := jointOf(t, want)
	gn, gj := jointOf(t, got)
	if wn != gn {
		t.Fatalf("recovered %d records, want %d", gn, wn)
	}
	if len(wj) != len(gj) {
		t.Fatalf("recovered %d distinct cells, want %d", len(gj), len(wj))
	}
	for idx, v := range wj {
		if math.Abs(gj[idx]-v) > 1e-9 {
			t.Fatalf("cell %d: %v, want %v", idx, gj[idx], v)
		}
	}
}

func TestFileStoreRoundTripAllSchemes(t *testing.T) {
	for _, name := range testSchemes {
		t.Run(name, func(t *testing.T) {
			scheme := testScheme(t, name)
			recs := testRecords(t, 120, 7)
			dir := filepath.Join(t.TempDir(), "state")

			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if c, err := st.Recover(scheme, 2); err != nil || c != nil {
				t.Fatalf("empty store Recover = (%v, %v), want (nil, nil)", c, err)
			}
			counter, err := mining.NewShardedCounter(scheme, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Attach(counter); err != nil {
				t.Fatal(err)
			}
			// Interleave ingest batches, WAL appends, and a mid-stream
			// checkpoint — then leave an unflushed-by-checkpoint WAL tail.
			addAll(t, counter, recs[:40])
			if err := st.Append(); err != nil {
				t.Fatal(err)
			}
			addAll(t, counter, recs[40:80])
			if err := st.Append(); err != nil {
				t.Fatal(err)
			}
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			addAll(t, counter, recs[80:])
			if err := st.Append(); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Recover under a different shard count: shard layout is a
			// runtime choice, not part of the durable state.
			st2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			recovered, err := st2.Recover(scheme, 3)
			if err != nil {
				t.Fatal(err)
			}
			if recovered == nil {
				t.Fatal("store recovered nothing")
			}
			countersMatch(t, referenceCounter(t, scheme, recs), recovered)
		})
	}
}

func TestFileStoreTornWALTailRecoversPrefix(t *testing.T) {
	scheme := testScheme(t, mining.SchemeGamma)
	recs := testRecords(t, 60, 11)
	dir := filepath.Join(t.TempDir(), "state")

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := mining.NewShardedCounter(scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(counter); err != nil {
		t.Fatal(err)
	}
	addAll(t, counter, recs[:30])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	addAll(t, counter, recs[30:])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear the WAL mid-frame: chop a few bytes off the tail, as a crash
	// during a write would.
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL segment: %v", err)
	}
	wal := wals[len(wals)-1]
	info, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover(scheme, 2)
	if err != nil {
		t.Fatal(err) // a torn tail must never be fatal
	}
	countersMatch(t, referenceCounter(t, scheme, recs[:30]), recovered)
}

func TestFileStoreCorruptNewestCheckpointFallsBack(t *testing.T) {
	scheme := testScheme(t, mining.SchemeMask)
	recs := testRecords(t, 90, 13)
	dir := filepath.Join(t.TempDir(), "state")

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := mining.NewShardedCounter(scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(counter); err != nil {
		t.Fatal(err)
	}
	addAll(t, counter, recs[:30])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	addAll(t, counter, recs[30:60])
	if err := st.Checkpoint(); err != nil { // seq 2, bridges the seq-1 WAL
		t.Fatal(err)
	}
	addAll(t, counter, recs[60:])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Scribble over the newest checkpoint (disk corruption).
	ckpts, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(ckpts) < 2 {
		t.Fatalf("checkpoints on disk: %v (err %v)", ckpts, err)
	}
	if err := os.WriteFile(ckpts[len(ckpts)-1], []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Fallback path: previous checkpoint, bridged old WAL segment, then
	// the new segment — nothing durable is lost.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover(scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	countersMatch(t, referenceCounter(t, scheme, recs), recovered)
}

func TestFileStoreAllCheckpointsCorruptIsActionableError(t *testing.T) {
	scheme := testScheme(t, mining.SchemeGamma)
	dir := filepath.Join(t.TempDir(), "state")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := mining.NewShardedCounter(scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(counter); err != nil {
		t.Fatal(err)
	}
	st.Close()
	ckpts, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	for _, p := range ckpts {
		if err := os.WriteFile(p, nil, 0o644); err != nil { // zero-byte
			t.Fatal(err)
		}
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st2.Recover(scheme, 1)
	if err == nil {
		t.Fatal("all-corrupt store recovered")
	}
	if !errors.Is(err, mining.ErrCorruptState) {
		t.Fatalf("error %v does not wrap ErrCorruptState", err)
	}
	for _, want := range []string{dir, "restore", "remove"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q names no %q — the operator gets no recovery options", err, want)
		}
	}
}

func TestFileStoreSweepsTempOrphans(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphans := []string{".frapp-ckpt-123", ".frapp-state-456"}
	for _, name := range orphans {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range orphans {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("orphan %s survived Open", name)
		}
	}
}

func TestFileStoreMigratesLegacySingleFileState(t *testing.T) {
	for _, name := range testSchemes {
		t.Run(name, func(t *testing.T) {
			scheme := testScheme(t, name)
			recs := testRecords(t, 50, 17)
			path := filepath.Join(t.TempDir(), "state.gob")

			// A legacy deployment's single-file state at the -state path.
			legacy := referenceCounter(t, scheme, recs)
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := legacy.Save(f); err != nil {
				t.Fatal(err)
			}
			f.Close()

			st, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			recovered, err := st.Recover(scheme, 2)
			if err != nil {
				t.Fatal(err)
			}
			if recovered == nil {
				t.Fatal("migrated store recovered nothing")
			}
			countersMatch(t, legacy, recovered)
			if err := st.Attach(recovered); err != nil {
				t.Fatal(err)
			}
			// The migrated payload is deleted only after its content is
			// durable in the first real checkpoint.
			if _, err := os.Stat(filepath.Join(path, "legacy-state.gob")); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("legacy state file survived the boot checkpoint")
			}
			st.Close()

			st2, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			again, err := st2.Recover(scheme, 1)
			if err != nil {
				t.Fatal(err)
			}
			countersMatch(t, legacy, again)
		})
	}
}

func TestFileStoreZeroByteLegacyStateIsActionableError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.gob")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Recover(testScheme(t, mining.SchemeGamma), 1)
	if err == nil {
		t.Fatal("zero-byte state accepted")
	}
	if !errors.Is(err, mining.ErrCorruptState) {
		t.Fatalf("error %v does not wrap ErrCorruptState", err)
	}
	if !strings.Contains(err.Error(), "legacy-state.gob") || !strings.Contains(err.Error(), "backup") {
		t.Fatalf("error %q names neither the file nor a recovery option", err)
	}
	if strings.Contains(strings.ToLower(err.Error()), "gob: ") {
		t.Fatalf("error %q leaks raw decoder internals as its headline", err)
	}
}

// TestFileStorePartialWriteInjection drives the WAL through a writer
// that fails mid-frame — the in-process stand-in for a crash during a
// write — and checks recovery lands exactly on the last durable append.
func TestFileStorePartialWriteInjection(t *testing.T) {
	for _, name := range testSchemes {
		t.Run(name, func(t *testing.T) {
			scheme := testScheme(t, name)
			recs := testRecords(t, 80, 23)
			dir := filepath.Join(t.TempDir(), "state")

			st, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			counter, err := mining.NewShardedCounter(scheme, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Attach(counter); err != nil {
				t.Fatal(err)
			}
			addAll(t, counter, recs[:50])
			if err := st.Append(); err != nil {
				t.Fatal(err)
			}
			// The next frame dies halfway through its bytes.
			st.walWrite = func(f *os.File, p []byte) (int, error) {
				n, _ := f.Write(p[:len(p)/2])
				return n, fmt.Errorf("injected: disk gone")
			}
			addAll(t, counter, recs[50:])
			if err := st.Append(); err == nil {
				t.Fatal("append with failing writer succeeded")
			}
			// Crash: the store is abandoned, never Closed.

			st2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			recovered, err := st2.Recover(scheme, 2)
			if err != nil {
				t.Fatal(err)
			}
			countersMatch(t, referenceCounter(t, scheme, recs[:50]), recovered)

			// And the recovered store keeps working: attach, log, recover.
			if err := st2.Attach(recovered); err != nil {
				t.Fatal(err)
			}
			addAll(t, recovered, recs[50:])
			if err := st2.Append(); err != nil {
				t.Fatal(err)
			}
			st2.Close()
			st3, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			final, err := st3.Recover(scheme, 1)
			if err != nil {
				t.Fatal(err)
			}
			countersMatch(t, referenceCounter(t, scheme, recs), final)
		})
	}
}

// TestFileStoreEvictedBaselineForcesCompaction: when concurrent
// replication pullers churn the counter's bounded baseline ring until
// the logger's own baseline is evicted, Append's delta comes back full
// — the store must respond by compacting, not by corrupting the chain.
func TestFileStoreEvictedBaselineForcesCompaction(t *testing.T) {
	scheme := testScheme(t, mining.SchemeGamma)
	recs := testRecords(t, 60, 29)
	dir := filepath.Join(t.TempDir(), "state")

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := mining.NewShardedCounter(scheme, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(counter); err != nil {
		t.Fatal(err)
	}
	addAll(t, counter, recs[:20])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	seqBefore := st.seq
	// A flood of replication pullers, each minting a fresh baseline,
	// evicts the store's chain baseline from the bounded ring.
	for i := 20; i < 40; i++ {
		addAll(t, counter, recs[i:i+1])
		if _, err := counter.DeltaSince(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	if st.seq <= seqBefore {
		t.Fatal("evicted baseline did not force a compaction")
	}
	addAll(t, counter, recs[40:])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover(scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	countersMatch(t, referenceCounter(t, scheme, recs), recovered)
}

// TestMemStoreRoundTrip proves the second StateStore implementation
// honors the same contract: recover-nothing when empty, checkpoint +
// WAL replay, and reuse across a simulated crash.
func TestMemStoreRoundTrip(t *testing.T) {
	scheme := testScheme(t, mining.SchemeCutPaste)
	recs := testRecords(t, 70, 31)
	st := NewMemStore()
	if c, err := st.Recover(scheme, 1); err != nil || c != nil {
		t.Fatalf("empty MemStore Recover = (%v, %v)", c, err)
	}
	counter, err := mining.NewShardedCounter(scheme, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(counter); err != nil {
		t.Fatal(err)
	}
	addAll(t, counter, recs[:30])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	if st.SinceCheckpoint() != 30 {
		t.Fatalf("SinceCheckpoint = %d, want 30", st.SinceCheckpoint())
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st.SinceCheckpoint() != 0 {
		t.Fatalf("SinceCheckpoint after checkpoint = %d, want 0", st.SinceCheckpoint())
	}
	addAll(t, counter, recs[30:])
	if err := st.Append(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the counter, recover a successor from the store.
	recovered, err := st.Recover(scheme, 3)
	if err != nil {
		t.Fatal(err)
	}
	countersMatch(t, referenceCounter(t, scheme, recs), recovered)
}
