package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mining"
)

// Randomized crash-point property test: a store-backed counter ingests
// batches with WAL appends and occasional checkpoints, then "crashes" at
// a random point — the store is abandoned mid-flight and, half the time,
// the WAL tail is additionally torn at a random byte. The property:
// recovery lands EXACTLY on a flush boundary — the recovered counter
// equals the reference counter over the first k batches for some k
// between the last boundary guaranteed durable and the last boundary
// written, cell for cell. Nothing partial, nothing invented, nothing
// past the tear.
func TestCrashRecoveryLandsOnFlushBoundary(t *testing.T) {
	for _, name := range testSchemes {
		t.Run(name, func(t *testing.T) {
			for iter := 0; iter < 6; iter++ {
				runCrashIteration(t, name, int64(100+iter))
			}
		})
	}
}

func runCrashIteration(t *testing.T, schemeName string, seed int64) {
	t.Helper()
	scheme := testScheme(t, schemeName)
	rng := rand.New(rand.NewSource(seed))
	const batches = 8
	batchLen := 5 + rng.Intn(10)
	recs := testRecords(t, batches*batchLen, seed*77)

	dir := filepath.Join(t.TempDir(), "state")
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := mining.NewShardedCounter(scheme, 1+rng.Intn(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Attach(counter); err != nil {
		t.Fatal(err)
	}

	// Ingest batch by batch; every batch boundary is flushed (Append) and
	// some are compacted (Checkpoint). The crash interrupts after a
	// random number of boundaries.
	crashAfter := 1 + rng.Intn(batches)
	flushed := 0
	for b := 0; b < crashAfter; b++ {
		addAll(t, counter, recs[b*batchLen:(b+1)*batchLen])
		if err := st.Append(); err != nil {
			t.Fatal(err)
		}
		flushed = (b + 1) * batchLen
		if rng.Intn(3) == 0 {
			if err := st.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Crash: no Close, no final checkpoint. Half the time, also tear the
	// newest WAL segment at a random byte, as a mid-write power cut
	// would.
	torn := rng.Intn(2) == 0
	if torn {
		wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
		if err != nil || len(wals) == 0 {
			t.Fatalf("no WAL segments: %v", err)
		}
		wal := wals[len(wals)-1]
		info, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > 1 {
			if err := os.Truncate(wal, rng.Int63n(info.Size())); err != nil {
				t.Fatal(err)
			}
		}
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover(scheme, 2)
	if err != nil {
		t.Fatalf("seed %d: recover: %v", seed, err)
	}
	if recovered == nil {
		t.Fatalf("seed %d: recovered nothing", seed)
	}

	// The recovered record count must sit on a batch boundary; with an
	// untorn WAL it must be exactly the last flushed boundary.
	n := recovered.N()
	if n%batchLen != 0 || n > flushed {
		t.Fatalf("seed %d: recovered %d records — not a flush boundary <= %d (batch %d)",
			seed, n, flushed, batchLen)
	}
	if !torn && n != flushed {
		t.Fatalf("seed %d: untorn WAL recovered %d records, want all %d flushed", seed, n, flushed)
	}
	// And the content must equal the reference prefix exactly.
	countersMatch(t, referenceCounter(t, scheme, recs[:n]), recovered)
}
