package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); got != c.want {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestChooseSymmetryProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 40)
		kk := int(k % 40)
		return Choose(nn, kk) == Choose(nn, nn-kk) || kk > nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoosePascalProperty(t *testing.T) {
	for n := 1; n <= 30; n++ {
		for k := 1; k < n; k++ {
			lhs := Choose(n, k)
			rhs := Choose(n-1, k-1) + Choose(n-1, k)
			if !approx(lhs, rhs, 1e-12) {
				t.Fatalf("Pascal violated at (%d,%d): %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestLogChooseMatchesChoose(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			if !approx(math.Exp(LogChoose(n, k)), Choose(n, k), 1e-10) {
				t.Fatalf("LogChoose(%d,%d) inconsistent", n, k)
			}
		}
	}
	if !math.IsInf(LogChoose(3, 5), -1) {
		t.Fatal("LogChoose out of range should be -Inf")
	}
}

func TestLogFactorialLargeMatchesLgamma(t *testing.T) {
	for _, n := range []int{0, 1, 10, 256, 257, 1000, 50000} {
		lg, _ := math.Lgamma(float64(n) + 1)
		if !approx(LogFactorial(n), lg, 1e-12) {
			t.Fatalf("LogFactorial(%d) = %v, want %v", n, LogFactorial(n), lg)
		}
	}
}

func TestLogFactorialPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogFactorial(-1)
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{0, 1, 5, 20} {
		for _, p := range []float64{0, 0.2, 0.5, 0.99, 1} {
			var sum float64
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, p, k)
			}
			if !approx(sum, 1, 1e-12) {
				t.Fatalf("Binomial(%d,%v) PMF sums to %v", n, p, sum)
			}
		}
	}
}

func TestBinomialPMFKnown(t *testing.T) {
	if got := BinomialPMF(4, 0.5, 2); !approx(got, 0.375, 1e-12) {
		t.Fatalf("Binomial(4,0.5,2) = %v, want 0.375", got)
	}
	if BinomialPMF(4, 0.5, -1) != 0 || BinomialPMF(4, 0.5, 5) != 0 {
		t.Fatal("out-of-range k must be 0")
	}
	if BinomialPMF(3, 0, 0) != 1 || BinomialPMF(3, 1, 3) != 1 {
		t.Fatal("degenerate p handling wrong")
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	cases := []struct{ N, K, n int }{
		{10, 4, 3}, {20, 20, 5}, {20, 0, 5}, {7, 3, 7},
	}
	for _, c := range cases {
		var sum float64
		for k := 0; k <= c.n; k++ {
			sum += HypergeomPMF(c.N, c.K, c.n, k)
		}
		if !approx(sum, 1, 1e-12) {
			t.Fatalf("Hypergeom(%+v) sums to %v", c, sum)
		}
	}
}

func TestHypergeomPMFKnown(t *testing.T) {
	// Drawing 2 from {3 marked, 2 unmarked}: P(both marked) = C(3,2)/C(5,2) = 0.3.
	if got := HypergeomPMF(5, 3, 2, 2); !approx(got, 0.3, 1e-12) {
		t.Fatalf("Hypergeom(5,3,2,2) = %v, want 0.3", got)
	}
	if HypergeomPMF(5, 3, 2, 3) != 0 {
		t.Fatal("impossible outcome must have probability 0")
	}
}
