package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrInvalidDistribution is returned when weights are negative, NaN, or
// sum to zero.
var ErrInvalidDistribution = errors.New("stats: invalid discrete distribution")

// Sampler draws indices from a fixed discrete distribution.
type Sampler interface {
	// Sample draws one index in [0, n) using rng.
	Sample(rng *rand.Rand) int
	// N returns the support size.
	N() int
}

// validateWeights checks weights and returns their sum.
func validateWeights(w []float64) (float64, error) {
	if len(w) == 0 {
		return 0, fmt.Errorf("%w: empty support", ErrInvalidDistribution)
	}
	var sum float64
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0, fmt.Errorf("%w: weight[%d] = %v", ErrInvalidDistribution, i, v)
		}
		sum += v
	}
	if sum <= 0 {
		return 0, fmt.Errorf("%w: weights sum to %v", ErrInvalidDistribution, sum)
	}
	return sum, nil
}

// CDFSampler samples by inverting the cumulative distribution with a
// linear scan: the "straightforward algorithm" of Section 5 of the paper,
// with per-draw cost proportional to the support size. It is retained both
// as the correctness oracle for fancier samplers and to reproduce the
// paper's complexity comparison.
type CDFSampler struct {
	cdf []float64
}

// NewCDFSampler builds a sampler over weights (not necessarily
// normalized).
func NewCDFSampler(weights []float64) (*CDFSampler, error) {
	sum, err := validateWeights(weights)
	if err != nil {
		return nil, err
	}
	cdf := make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1 // guard against rounding drift
	return &CDFSampler{cdf: cdf}, nil
}

// Sample draws one index by linear CDF walk.
func (s *CDFSampler) Sample(rng *rand.Rand) int {
	r := rng.Float64()
	for i, c := range s.cdf {
		if r <= c {
			return i
		}
	}
	return len(s.cdf) - 1
}

// N returns the support size.
func (s *CDFSampler) N() int { return len(s.cdf) }

// AliasSampler implements Walker's alias method: O(n) preprocessing and
// O(1) per draw, the production sampler for large supports.
type AliasSampler struct {
	prob  []float64
	alias []int
}

// NewAliasSampler builds an alias table over weights (not necessarily
// normalized).
func NewAliasSampler(weights []float64) (*AliasSampler, error) {
	sum, err := validateWeights(weights)
	if err != nil {
		return nil, err
	}
	n := len(weights)
	prob := make([]float64, n)
	alias := make([]int, n)
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w / sum * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return &AliasSampler{prob: prob, alias: alias}, nil
}

// Sample draws one index in O(1).
func (s *AliasSampler) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// N returns the support size.
func (s *AliasSampler) N() int { return len(s.prob) }

// SampleBinomial draws from Binomial(n, p) by explicit Bernoulli summation.
// The n values in FRAPP's operators are tiny (≤ number of attributes), so
// this is both simple and fast enough.
func SampleBinomial(rng *rand.Rand, n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			k++
		}
	}
	return k
}

// SampleHypergeom draws from Hypergeometric(N, K, n) by sequential
// sampling without replacement.
func SampleHypergeom(rng *rand.Rand, N, K, n int) int {
	k := 0
	remaining, marked := N, K
	for i := 0; i < n; i++ {
		if remaining <= 0 {
			break
		}
		if rng.Float64() < float64(marked)/float64(remaining) {
			k++
			marked--
		}
		remaining--
	}
	return k
}
