package stats

import (
	"fmt"
	"math"
)

// PoissonBinomial is the distribution of the number of successes in N
// independent but non-identical Bernoulli trials — exactly the
// distribution of each perturbed-database count Y_v in Section 2.2 of the
// paper (the trials' success probabilities are A[v][U_i], which vary
// record by record).
type PoissonBinomial struct {
	p []float64
}

// NewPoissonBinomial validates the success probabilities and returns the
// distribution.
func NewPoissonBinomial(probs []float64) (*PoissonBinomial, error) {
	for i, p := range probs {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return nil, fmt.Errorf("stats: Poisson-Binomial probability[%d] = %v out of [0,1]", i, p)
		}
	}
	cp := make([]float64, len(probs))
	copy(cp, probs)
	return &PoissonBinomial{p: cp}, nil
}

// N returns the number of trials.
func (d *PoissonBinomial) N() int { return len(d.p) }

// Mean returns E[Y] = Σ p_i.
func (d *PoissonBinomial) Mean() float64 {
	var s float64
	for _, p := range d.p {
		s += p
	}
	return s
}

// Variance returns Var[Y] = Σ p_i(1−p_i).
//
// This is equation 25 of the paper in its standard form: with
// p̄ = (1/N)Σp_i, Var = N·p̄ − Σp_i², and the paper's observation follows —
// for fixed mean the variance is maximized when all p_i are equal, so
// randomizing the perturbation matrix (which spreads the p_i) can only
// shrink the fluctuation term.
func (d *PoissonBinomial) Variance() float64 {
	var s float64
	for _, p := range d.p {
		s += p * (1 - p)
	}
	return s
}

// PMF returns the full probability mass function over {0,…,N} computed by
// the standard O(N²) dynamic program. Exact (up to float rounding) and
// fine for the sizes used in analysis and tests.
func (d *PoissonBinomial) PMF() []float64 {
	pmf := make([]float64, len(d.p)+1)
	pmf[0] = 1
	for _, p := range d.p {
		for k := len(pmf) - 1; k >= 1; k-- {
			pmf[k] = pmf[k]*(1-p) + pmf[k-1]*p
		}
		pmf[0] *= (1 - p)
	}
	return pmf
}

// MaxVarianceForMean returns the largest possible Poisson-Binomial
// variance achievable with N trials whose mean success probability is
// pbar: N·pbar·(1−pbar), attained when all trials are identical. The
// paper's Section 4.2 argument compares the deterministic scheme (all p_i
// equal → maximal variance) against the randomized scheme.
func MaxVarianceForMean(n int, pbar float64) float64 {
	return float64(n) * pbar * (1 - pbar)
}
