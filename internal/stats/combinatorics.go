// Package stats provides the probability substrate for FRAPP: exact
// combinatorics, the discrete distributions used by the perturbation
// operators (binomial, hypergeometric), efficient discrete samplers
// (linear CDF walk and Walker alias method), and the Poisson-Binomial
// distribution that governs perturbed-count variance in the paper's
// reconstruction analysis (Section 2.3).
package stats

import (
	"fmt"
	"math"
)

// logFactCache memoizes ln(k!) for small k; larger arguments fall back to
// Stirling via math.Lgamma, which is exact enough for all our uses.
var logFactCache = func() []float64 {
	c := make([]float64, 257)
	for k := 2; k < len(c); k++ {
		c[k] = c[k-1] + math.Log(float64(k))
	}
	return c
}()

// LogFactorial returns ln(n!). It panics for negative n.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("stats: LogFactorial(%d)", n))
	}
	if n < len(logFactCache) {
		return logFactCache[n]
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogChoose returns ln C(n, k), or -Inf when the coefficient is zero
// (k < 0 or k > n).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns the binomial coefficient C(n, k) as a float64. For k < 0
// or k > n it returns 0. Values are exact for small arguments and accurate
// to double precision for large ones.
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	if k == 0 {
		return 1
	}
	// Multiplicative form keeps intermediate values small and exact for
	// the modest n seen in perturbation-matrix entries.
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// HypergeomPMF returns P(X = k) for X ~ Hypergeometric(N, K, n): the number
// of marked items in a uniform draw of n items from a population of N
// containing K marked items.
func HypergeomPMF(N, K, n, k int) float64 {
	if k < 0 || k > K || k > n || n-k > N-K {
		return 0
	}
	lp := LogChoose(K, k) + LogChoose(N-K, n-k) - LogChoose(N, n)
	return math.Exp(lp)
}
