package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSamplerValidation(t *testing.T) {
	for _, w := range [][]float64{
		nil,
		{},
		{-1, 2},
		{0, 0},
		{math.NaN(), 1},
		{math.Inf(1), 1},
	} {
		if _, err := NewCDFSampler(w); !errors.Is(err, ErrInvalidDistribution) {
			t.Errorf("CDF weights %v: want ErrInvalidDistribution, got %v", w, err)
		}
		if _, err := NewAliasSampler(w); !errors.Is(err, ErrInvalidDistribution) {
			t.Errorf("alias weights %v: want ErrInvalidDistribution, got %v", w, err)
		}
	}
}

// chiSquare computes the chi-square statistic of observed counts against
// expected probabilities.
func chiSquare(counts []int, probs []float64, total int) float64 {
	var x2 float64
	for i, c := range counts {
		e := probs[i] * float64(total)
		if e == 0 {
			if c != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(c) - e
		x2 += d * d / e
	}
	return x2
}

func testSamplerDistribution(t *testing.T, name string, mk func([]float64) (Sampler, error)) {
	t.Helper()
	weights := []float64{5, 1, 3, 0, 11, 2}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	probs := make([]float64, len(weights))
	for i, w := range weights {
		probs[i] = w / sum
	}
	s, err := mk(weights)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != len(weights) {
		t.Fatalf("%s: N() = %d, want %d", name, s.N(), len(weights))
	}
	rng := rand.New(rand.NewSource(123))
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		k := s.Sample(rng)
		if k < 0 || k >= len(weights) {
			t.Fatalf("%s: sample %d out of range", name, k)
		}
		counts[k]++
	}
	if counts[3] != 0 {
		t.Fatalf("%s: zero-weight outcome sampled %d times", name, counts[3])
	}
	// 4 effective degrees of freedom; χ² 99.9th percentile ≈ 18.5.
	if x2 := chiSquare(counts, probs, n); x2 > 25 {
		t.Fatalf("%s: chi-square %v too large; counts %v", name, x2, counts)
	}
}

func TestCDFSamplerDistribution(t *testing.T) {
	testSamplerDistribution(t, "cdf", func(w []float64) (Sampler, error) { return NewCDFSampler(w) })
}

func TestAliasSamplerDistribution(t *testing.T) {
	testSamplerDistribution(t, "alias", func(w []float64) (Sampler, error) { return NewAliasSampler(w) })
}

func TestAliasSamplerSingleOutcome(t *testing.T) {
	s, err := NewAliasSampler([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if s.Sample(rng) != 0 {
			t.Fatal("single-outcome sampler must always return 0")
		}
	}
}

func TestAliasSamplerUniform(t *testing.T) {
	s, err := NewAliasSampler([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/4) > 4*math.Sqrt(n/4) {
			t.Fatalf("uniform alias sampler biased at %d: %d", i, c)
		}
	}
}

func TestSampleBinomialMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, p := 12, 0.3
	const trials = 100000
	var sum, sumsq float64
	for i := 0; i < trials; i++ {
		k := SampleBinomial(rng, n, p)
		if k < 0 || k > n {
			t.Fatalf("binomial sample %d out of range", k)
		}
		sum += float64(k)
		sumsq += float64(k) * float64(k)
	}
	mean := sum / trials
	varr := sumsq/trials - mean*mean
	if math.Abs(mean-float64(n)*p) > 0.05 {
		t.Fatalf("binomial mean %v, want %v", mean, float64(n)*p)
	}
	if math.Abs(varr-float64(n)*p*(1-p)) > 0.1 {
		t.Fatalf("binomial variance %v, want %v", varr, float64(n)*p*(1-p))
	}
}

func TestSampleHypergeomMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	N, K, n := 50, 20, 10
	const trials = 100000
	var sum float64
	for i := 0; i < trials; i++ {
		k := SampleHypergeom(rng, N, K, n)
		if k < 0 || k > n || k > K {
			t.Fatalf("hypergeom sample %d out of range", k)
		}
		sum += float64(k)
	}
	want := float64(n) * float64(K) / float64(N)
	if mean := sum / trials; math.Abs(mean-want) > 0.05 {
		t.Fatalf("hypergeom mean %v, want %v", mean, want)
	}
}

func TestSampleHypergeomExhaustsPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Drawing the whole population must return exactly K.
	for i := 0; i < 50; i++ {
		if got := SampleHypergeom(rng, 8, 3, 8); got != 3 {
			t.Fatalf("full draw returned %d, want 3", got)
		}
	}
	if got := SampleHypergeom(rng, 4, 2, 10); got != 2 {
		t.Fatalf("over-draw returned %d, want 2", got)
	}
}
