package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoissonBinomialValidation(t *testing.T) {
	for _, p := range [][]float64{{-0.1}, {1.1}, {math.NaN()}} {
		if _, err := NewPoissonBinomial(p); err == nil {
			t.Errorf("probs %v accepted", p)
		}
	}
	d, err := NewPoissonBinomial(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 0 || d.Mean() != 0 || d.Variance() != 0 {
		t.Fatal("empty distribution should be degenerate at 0")
	}
}

func TestPoissonBinomialReducesToBinomial(t *testing.T) {
	n, p := 10, 0.35
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = p
	}
	d, err := NewPoissonBinomial(probs)
	if err != nil {
		t.Fatal(err)
	}
	pmf := d.PMF()
	for k := 0; k <= n; k++ {
		if !approx(pmf[k], BinomialPMF(n, p, k), 1e-12) {
			t.Fatalf("PMF[%d] = %v, want binomial %v", k, pmf[k], BinomialPMF(n, p, k))
		}
	}
	if !approx(d.Mean(), float64(n)*p, 1e-12) {
		t.Fatalf("mean %v", d.Mean())
	}
	if !approx(d.Variance(), float64(n)*p*(1-p), 1e-12) {
		t.Fatalf("variance %v", d.Variance())
	}
}

func TestPoissonBinomialPMFMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		probs := make([]float64, n)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		d, err := NewPoissonBinomial(probs)
		if err != nil {
			t.Fatal(err)
		}
		pmf := d.PMF()
		var sum, mean, m2 float64
		for k, p := range pmf {
			sum += p
			mean += float64(k) * p
			m2 += float64(k) * float64(k) * p
		}
		if !approx(sum, 1, 1e-10) {
			t.Fatalf("PMF sums to %v", sum)
		}
		if !approx(mean, d.Mean(), 1e-9) {
			t.Fatalf("PMF mean %v vs analytic %v", mean, d.Mean())
		}
		if !approx(m2-mean*mean, d.Variance(), 1e-9) {
			t.Fatalf("PMF variance %v vs analytic %v", m2-mean*mean, d.Variance())
		}
	}
}

// The paper's Section 4.2 claim: among all {p_i} with fixed mean, variance
// is maximal when all p_i are equal. Property-test it.
func TestVarianceMaximizedByUniformProbsProperty(t *testing.T) {
	f := func(raw [8]float64) bool {
		probs := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			p := math.Abs(v)
			p -= math.Floor(p) // into [0,1)
			probs[i] = p
			sum += p
		}
		d, err := NewPoissonBinomial(probs)
		if err != nil {
			return false
		}
		pbar := sum / float64(len(probs))
		return d.Variance() <= MaxVarianceForMean(len(probs), pbar)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxVarianceForMean(t *testing.T) {
	if got := MaxVarianceForMean(10, 0.5); got != 2.5 {
		t.Fatalf("MaxVarianceForMean(10,0.5) = %v, want 2.5", got)
	}
}
