package experiment

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/mining"
)

// ClassifyResult is the privacy-preserving classification study: exact
// vs perturbed-trained Naive Bayes accuracy on held-out data.
type ClassifyResult struct {
	Dataset    string
	ClassAttr  string
	Majority   float64
	Exact      float64
	Private    float64
	PrivacyGap float64 // Exact − Private
}

// ClassifyStudy trains Naive Bayes models for one class attribute on a
// stratified train/test split of the bundle: once on raw data, once on
// DET-GD-perturbed data with Eq. 28 reconstruction.
func ClassifyStudy(b *Bundle, cfg Config, classAttr int) (*ClassifyResult, error) {
	gamma, err := cfg.Gamma()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 31337))
	train, test, err := dataset.StratifiedSplit(b.DB, classAttr, 0.25, rng)
	if err != nil {
		return nil, err
	}
	m, err := core.NewGammaDiagonal(b.DB.Schema.DomainSize(), gamma)
	if err != nil {
		return nil, err
	}
	p, err := core.NewGammaPerturber(b.DB.Schema, m)
	if err != nil {
		return nil, err
	}
	perturbed, err := core.PerturbDatabase(train, p, rng)
	if err != nil {
		return nil, err
	}

	exact, err := classify.TrainExact(train, classAttr)
	if err != nil {
		return nil, err
	}
	private, err := classify.TrainPerturbed(perturbed, m, classAttr)
	if err != nil {
		return nil, err
	}
	accExact, err := classify.Accuracy(exact, test)
	if err != nil {
		return nil, err
	}
	accPrivate, err := classify.Accuracy(private, test)
	if err != nil {
		return nil, err
	}
	majority, err := classify.MajorityBaseline(test, classAttr)
	if err != nil {
		return nil, err
	}
	return &ClassifyResult{
		Dataset:    b.Name,
		ClassAttr:  b.DB.Schema.Attrs[classAttr].Name,
		Majority:   majority,
		Exact:      accExact,
		Private:    accPrivate,
		PrivacyGap: accExact - accPrivate,
	}, nil
}

// String renders the classification study.
func (r *ClassifyResult) String() string {
	return fmt.Sprintf(
		"%s — Naive Bayes on %q: majority %.1f%%, exact %.1f%%, private %.1f%% (privacy cost %.1f points)\n",
		r.Dataset, r.ClassAttr, r.Majority*100, r.Exact*100, r.Private*100, r.PrivacyGap*100)
}

// RelaxationPoint is one setting of the candidate-relaxation ablation.
type RelaxationPoint struct {
	Relaxation     float64
	FalseNegatives float64 // overall σ− (%)
	FalsePositives float64 // overall σ+ (%)
}

// RelaxationStudy quantifies the AprioriWithOptions candidate-relaxation
// extension on DET-GD-perturbed data: lower relaxation keeps noisy
// candidates alive between passes, trading false positives at the margin
// for recovered true itemsets at longer lengths.
func RelaxationStudy(b *Bundle, cfg Config, relaxations []float64) ([]RelaxationPoint, error) {
	if len(relaxations) == 0 {
		return nil, fmt.Errorf("%w: no relaxation settings", ErrExperiment)
	}
	gamma, err := cfg.Gamma()
	if err != nil {
		return nil, err
	}
	m, err := core.NewGammaDiagonal(b.DB.Schema.DomainSize(), gamma)
	if err != nil {
		return nil, err
	}
	p, err := core.NewGammaPerturber(b.DB.Schema, m)
	if err != nil {
		return nil, err
	}
	pdb, err := core.PerturbDatabase(b.DB, p, rand.New(rand.NewSource(cfg.Seed+777)))
	if err != nil {
		return nil, err
	}
	counter, err := mining.NewGammaCounter(pdb, m)
	if err != nil {
		return nil, err
	}
	out := make([]RelaxationPoint, 0, len(relaxations))
	for _, relax := range relaxations {
		res, err := mining.AprioriWithOptions(counter, cfg.MinSupport, mining.Options{CandidateRelaxation: relax})
		if err != nil {
			return nil, err
		}
		rep, err := metrics.Evaluate(b.Truth, res)
		if err != nil {
			return nil, err
		}
		out = append(out, RelaxationPoint{
			Relaxation:     relax,
			FalseNegatives: rep.Overall.FalseNegatives,
			FalsePositives: rep.Overall.FalsePositives,
		})
	}
	return out, nil
}

// FormatRelaxation renders the ablation.
func FormatRelaxation(name string, pts []RelaxationPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — Apriori candidate-relaxation ablation (DET-GD)\n", name)
	sb.WriteString("relaxation   sigma- %   sigma+ %\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%10.2f %10.2f %10.2f\n", p.Relaxation, p.FalseNegatives, p.FalsePositives)
	}
	return sb.String()
}
