package experiment

import (
	"errors"
	"strings"
	"testing"
)

func TestReconstructionStudyBoundHolds(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ReconstructionStudy(census, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		// Theorem 1 must hold on every trial.
		if p.ActualErr > p.BoundErr+1e-9 {
			t.Fatalf("trial %d: actual %v exceeds bound %v", p.Trial, p.ActualErr, p.BoundErr)
		}
		// The Poisson-Binomial prediction of ‖Y−E(Y)‖ should be the right
		// scale: the observed deviation within a factor of 2 of √ΣVar.
		if p.ObservedY < p.PredictedY/2 || p.ObservedY > p.PredictedY*2 {
			t.Fatalf("trial %d: observed ||Y-EY|| %v vs predicted %v", p.Trial, p.ObservedY, p.PredictedY)
		}
		if p.Cond <= 1 {
			t.Fatalf("condition number %v", p.Cond)
		}
	}
	out := FormatReconstruction("CENSUS", pts)
	if !strings.Contains(out, "Theorem 1") {
		t.Fatal("rendering wrong")
	}
}

func TestReconstructionStudyValidation(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconstructionStudy(census, cfg, 0); !errors.Is(err, ErrExperiment) {
		t.Fatal("0 trials accepted")
	}
}

func TestHealthBundleQuick(t *testing.T) {
	cfg := QuickConfig()
	health, err := LoadHealth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if health.DB.N() != cfg.HealthN {
		t.Fatalf("N = %d", health.DB.N())
	}
	run, err := RunScheme(health, DetGD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.Report.Overall.TrueCount == 0 {
		t.Fatal("empty truth")
	}
}
