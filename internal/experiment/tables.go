package experiment

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// SchemaTable renders a dataset schema in the style of the paper's
// Tables 1 and 2: one row per attribute with its categories.
func SchemaTable(s *dataset.Schema) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s dataset (M=%d, |S_U|=%d)\n", s.Name, s.M(), s.DomainSize())
	fmt.Fprintf(&sb, "%-16s %s\n", "Attribute", "Categories")
	for _, a := range s.Attrs {
		fmt.Fprintf(&sb, "%-16s %s\n", a.Name, strings.Join(a.Categories, "; "))
	}
	return sb.String()
}

// Table1 renders the CENSUS schema (paper Table 1).
func Table1() string { return SchemaTable(dataset.CensusSchema()) }

// Table2 renders the HEALTH schema (paper Table 2).
func Table2() string { return SchemaTable(dataset.HealthSchema()) }

// Table3Result holds the frequent-itemset length spectrum of both
// datasets at supmin (paper Table 3).
type Table3Result struct {
	MinSupport float64
	Census     []int
	Health     []int
}

// Table3 mines both datasets exactly and reports the number of frequent
// itemsets at each length.
func Table3(census, health *Bundle, cfg Config) *Table3Result {
	return &Table3Result{
		MinSupport: cfg.MinSupport,
		Census:     census.Truth.Counts(),
		Health:     health.Truth.Counts(),
	}
}

// String renders Table 3 in the paper's row format.
func (t *Table3Result) String() string {
	maxLen := len(t.Census)
	if len(t.Health) > maxLen {
		maxLen = len(t.Health)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Frequent itemsets for supmin = %.2g\n", t.MinSupport)
	sb.WriteString("            Itemset Length\n")
	sb.WriteString("Dataset  ")
	for l := 1; l <= maxLen; l++ {
		fmt.Fprintf(&sb, "%6d", l)
	}
	sb.WriteByte('\n')
	writeRow := func(name string, counts []int) {
		fmt.Fprintf(&sb, "%-9s", name)
		for l := 0; l < maxLen; l++ {
			if l < len(counts) {
				fmt.Fprintf(&sb, "%6d", counts[l])
			} else {
				fmt.Fprintf(&sb, "%6s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	writeRow("CENSUS", t.Census)
	writeRow("HEALTH", t.Health)
	return sb.String()
}
