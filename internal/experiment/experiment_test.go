package experiment

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := QuickConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.CensusN = 0 },
		func(c *Config) { c.HealthN = -1 },
		func(c *Config) { c.MinSupport = 0 },
		func(c *Config) { c.MinSupport = 2 },
		func(c *Config) { c.Privacy.Rho1 = 0.9 },
		func(c *Config) { c.AlphaFraction = -0.1 },
		func(c *Config) { c.AlphaFraction = 1.5 },
		func(c *Config) { c.CnPK = -1 },
		func(c *Config) { c.CnPRho = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigGamma(t *testing.T) {
	g, err := DefaultConfig().Gamma()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-19) > 1e-12 {
		t.Fatalf("gamma = %v, want 19", g)
	}
}

func TestTables(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1, "CENSUS") || !strings.Contains(t1, "native-country") {
		t.Fatalf("Table 1 rendering wrong:\n%s", t1)
	}
	t2 := Table2()
	if !strings.Contains(t2, "HEALTH") || !strings.Contains(t2, "INCFAM20") {
		t.Fatalf("Table 2 rendering wrong:\n%s", t2)
	}
}

func TestBundlesAndTable3Shape(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	health, err := LoadHealth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic data must have frequent itemsets at every length up
	// to M, like the paper's Table 3.
	if census.MaxLen() != census.DB.Schema.M() {
		t.Fatalf("CENSUS max frequent length %d, want %d", census.MaxLen(), census.DB.Schema.M())
	}
	if health.MaxLen() != health.DB.Schema.M() {
		t.Fatalf("HEALTH max frequent length %d, want %d", health.MaxLen(), health.DB.Schema.M())
	}
	t3 := Table3(census, health, cfg)
	// Bell shape: interior counts exceed both endpoints.
	peak := 0
	for _, c := range t3.Census {
		if c > peak {
			peak = c
		}
	}
	if peak <= t3.Census[0] || peak <= t3.Census[len(t3.Census)-1] {
		t.Fatalf("CENSUS spectrum not bell-shaped: %v", t3.Census)
	}
	out := t3.String()
	if !strings.Contains(out, "CENSUS") || !strings.Contains(out, "HEALTH") {
		t.Fatalf("Table 3 rendering wrong:\n%s", out)
	}
}

func TestRunSchemeAllOnCensusQuick(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSchemes() {
		run, err := RunScheme(census, s, cfg)
		if err != nil {
			t.Fatalf("scheme %s: %v", s, err)
		}
		if run.Report == nil || run.Mined == nil {
			t.Fatalf("scheme %s: empty run", s)
		}
		if run.Params == "" {
			t.Fatalf("scheme %s: missing params", s)
		}
	}
	if _, err := RunScheme(census, Scheme("bogus"), cfg); !errors.Is(err, ErrExperiment) {
		t.Fatal("unknown scheme accepted")
	}
}

func TestHeadlineComparisonHolds(t *testing.T) {
	// The paper's central result: at longer itemset lengths the
	// gamma-diagonal schemes keep finding itemsets while MASK and C&P
	// collapse. Use a mid-size run for statistical stability.
	cfg := DefaultConfig()
	cfg.CensusN = 20000
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := RunScheme(census, DetGD, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cnp, err := RunScheme(census, CutPaste, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mask, err := RunScheme(census, Mask, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// DET-GD must mine deeper than both baselines.
	if len(det.Mined.ByLength) <= len(cnp.Mined.ByLength)-1 {
		t.Fatalf("DET-GD depth %d vs C&P %d", len(det.Mined.ByLength), len(cnp.Mined.ByLength))
	}
	// At length 4+, the baselines' false negatives must exceed DET-GD's.
	detL4, _ := det.Report.Level(4)
	maskL4, _ := mask.Report.Level(4)
	cnpL4, _ := cnp.Report.Level(4)
	if detL4.FalseNegatives >= maskL4.FalseNegatives {
		t.Fatalf("DET-GD sigma- at L4 (%v) not better than MASK (%v)", detL4.FalseNegatives, maskL4.FalseNegatives)
	}
	if detL4.FalseNegatives >= cnpL4.FalseNegatives {
		t.Fatalf("DET-GD sigma- at L4 (%v) not better than C&P (%v)", detL4.FalseNegatives, cnpL4.FalseNegatives)
	}
}

func TestAccuracyStudyRenders(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := AccuracyStudy(census, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Runs) != 4 {
		t.Fatalf("got %d runs", len(fig.Runs))
	}
	out := fig.String()
	for _, want := range []string{"support error", "false negatives", "false positives", "DET-GD", "MASK"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRandomizationStudy(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RandomizationStudy(census, cfg, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 5 {
		t.Fatalf("got %d points", len(fig.Points))
	}
	// Posterior range widens monotonically with alpha; midpoint fixed at
	// the deterministic rho2.
	for i, p := range fig.Points {
		if math.Abs(p.PosteriorMid-0.5) > 1e-9 {
			t.Fatalf("rho2(0) = %v, want 0.5", p.PosteriorMid)
		}
		if p.PosteriorLo > p.PosteriorMid+1e-12 || p.PosteriorHi < p.PosteriorMid-1e-12 {
			t.Fatalf("point %d: posterior range [%v,%v] does not bracket %v", i, p.PosteriorLo, p.PosteriorHi, p.PosteriorMid)
		}
		if i > 0 {
			prev := fig.Points[i-1]
			if p.PosteriorLo > prev.PosteriorLo+1e-12 || p.PosteriorHi < prev.PosteriorHi-1e-12 {
				t.Fatalf("posterior range not widening at point %d", i)
			}
		}
		if p.SupportError < 0 {
			t.Fatalf("negative support error at point %d", i)
		}
	}
	if !strings.Contains(fig.String(), "randomization tradeoff") {
		t.Fatal("rendering wrong")
	}
	if _, err := RandomizationStudy(census, cfg, 1, 4); !errors.Is(err, ErrExperiment) {
		t.Fatal("steps=1 accepted")
	}
	if _, err := RandomizationStudy(census, cfg, 5, 99); !errors.Is(err, ErrExperiment) {
		t.Fatal("absurd target length accepted")
	}
}

func TestConditionStudyShape(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := ConditionStudy(census, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	det := fig.Series[DetGD]
	ran := fig.Series[RanGD]
	mask := fig.Series[Mask]
	cnp := fig.Series[CutPaste]
	// Figure 4 claims: DET-GD/RAN-GD constant and equal; MASK and C&P
	// grow with length and overtake by orders of magnitude.
	for i := range det {
		if det[i] != det[0] || ran[i] != det[i] {
			t.Fatalf("gamma condition numbers not constant: %v %v", det, ran)
		}
		if i > 0 && (mask[i] <= mask[i-1] || cnp[i] <= cnp[i-1]) {
			t.Fatalf("baseline condition numbers not increasing at %d", i)
		}
	}
	if mask[5] < 100*det[5] {
		t.Fatalf("MASK cond at L6 (%v) should dwarf DET-GD (%v)", mask[5], det[5])
	}
	if cnp[5] < 100*det[5] {
		t.Fatalf("C&P cond at L6 (%v) should dwarf DET-GD (%v)", cnp[5], det[5])
	}
	if !strings.Contains(fig.String(), "condition numbers") {
		t.Fatal("rendering wrong")
	}
	if _, err := ConditionStudy(census, cfg, 0); !errors.Is(err, ErrExperiment) {
		t.Fatal("maxLen=0 accepted")
	}
	if _, err := ConditionStudy(census, cfg, 99); !errors.Is(err, ErrExperiment) {
		t.Fatal("maxLen=99 accepted")
	}
}

func TestLoadRejectsInvalidConfig(t *testing.T) {
	cfg := QuickConfig()
	cfg.CensusN = 0
	if _, err := LoadCensus(cfg); err == nil {
		t.Fatal("invalid config accepted by LoadCensus")
	}
	cfg = QuickConfig()
	cfg.HealthN = -5
	if _, err := LoadHealth(cfg); err == nil {
		t.Fatal("invalid config accepted by LoadHealth")
	}
}

func TestRunSchemeRejectsInvalidConfig(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.MinSupport = 0
	if _, err := RunScheme(census, DetGD, bad); err == nil {
		t.Fatal("invalid config accepted by RunScheme")
	}
}
