package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// GammaPoint is one privacy setting of the sweep: the (ρ1, ρ2)
// requirement, its γ, the resulting condition number, and DET-GD's
// overall mining errors at that setting.
type GammaPoint struct {
	Spec           core.PrivacySpec
	Gamma          float64
	Cond           float64
	SupportError   float64
	FalseNegatives float64
	FalsePositives float64
}

// GammaSweepStudy quantifies the privacy/accuracy frontier the paper
// alludes to ("we experimented with a variety of privacy settings"):
// DET-GD accuracy across a range of (ρ1, ρ2) requirements. Stricter
// privacy (smaller γ) inflates the condition number (γ+n−1)/(γ−1) and
// with it every error metric.
func GammaSweepStudy(b *Bundle, cfg Config, specs []core.PrivacySpec) ([]GammaPoint, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: no privacy settings", ErrExperiment)
	}
	out := make([]GammaPoint, 0, len(specs))
	for _, spec := range specs {
		gamma, err := spec.Gamma()
		if err != nil {
			return nil, err
		}
		m, err := core.NewGammaDiagonal(b.DB.Schema.DomainSize(), gamma)
		if err != nil {
			return nil, err
		}
		pointCfg := cfg
		pointCfg.Privacy = spec
		run, err := RunScheme(b, DetGD, pointCfg)
		if err != nil {
			return nil, fmt.Errorf("gamma %v: %w", gamma, err)
		}
		out = append(out, GammaPoint{
			Spec:           spec,
			Gamma:          gamma,
			Cond:           m.Cond(),
			SupportError:   run.Report.Overall.SupportError,
			FalseNegatives: run.Report.Overall.FalseNegatives,
			FalsePositives: run.Report.Overall.FalsePositives,
		})
	}
	return out, nil
}

// FormatGammaSweep renders the privacy/accuracy frontier.
func FormatGammaSweep(name string, pts []GammaPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — DET-GD accuracy vs privacy level\n", name)
	sb.WriteString("rho1%   rho2%    gamma      cond    rho %   sigma- %  sigma+ %\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%5.1f %7.1f %8.4g %9.4g %8.1f %9.1f %9.1f\n",
			p.Spec.Rho1*100, p.Spec.Rho2*100, p.Gamma, p.Cond,
			p.SupportError, p.FalseNegatives, p.FalsePositives)
	}
	return sb.String()
}
