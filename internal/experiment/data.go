package experiment

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mining"
)

// Bundle is a prepared evaluation dataset: the synthetic database plus
// its ground-truth frequent itemsets at the configured support.
type Bundle struct {
	Name  string
	DB    *dataset.Database
	Truth *mining.Result
}

// LoadCensus generates the synthetic CENSUS dataset and mines its ground
// truth.
func LoadCensus(cfg Config) (*Bundle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db, err := dataset.GenerateCensus(cfg.CensusN, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return newBundle("CENSUS", db, cfg)
}

// LoadHealth generates the synthetic HEALTH dataset and mines its ground
// truth.
func LoadHealth(cfg Config) (*Bundle, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	db, err := dataset.GenerateHealth(cfg.HealthN, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	return newBundle("HEALTH", db, cfg)
}

func newBundle(name string, db *dataset.Database, cfg Config) (*Bundle, error) {
	truth, err := mining.Apriori(&mining.ExactCounter{DB: db}, cfg.MinSupport)
	if err != nil {
		return nil, fmt.Errorf("mining %s ground truth: %w", name, err)
	}
	return &Bundle{Name: name, DB: db, Truth: truth}, nil
}

// MaxLen returns the longest frequent-itemset length in the ground truth.
func (b *Bundle) MaxLen() int { return len(b.Truth.ByLength) }
