package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/mining"
)

// AccuracyFigure holds one of the paper's Figure 1/2 panels: per-length
// support error ρ, false negatives σ− and false positives σ+ for every
// scheme on one dataset.
type AccuracyFigure struct {
	Dataset string
	Runs    []*SchemeRun
	MaxLen  int
}

// AccuracyStudy runs all four schemes on a bundle (Figures 1 and 2).
func AccuracyStudy(b *Bundle, cfg Config) (*AccuracyFigure, error) {
	fig := &AccuracyFigure{Dataset: b.Name, MaxLen: b.MaxLen()}
	for _, s := range AllSchemes() {
		run, err := RunScheme(b, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("scheme %s: %w", s, err)
		}
		fig.Runs = append(fig.Runs, run)
	}
	return fig, nil
}

// String renders the three panels (ρ, σ−, σ+) as text tables with one
// column per itemset length and one row per scheme.
func (f *AccuracyFigure) String() string {
	var sb strings.Builder
	panel := func(title string, pick func(metricsLevel int, run *SchemeRun) float64) {
		fmt.Fprintf(&sb, "%s — %s by frequent itemset length\n", f.Dataset, title)
		sb.WriteString("scheme   ")
		for l := 1; l <= f.MaxLen; l++ {
			fmt.Fprintf(&sb, "%10d", l)
		}
		sb.WriteByte('\n')
		for _, run := range f.Runs {
			fmt.Fprintf(&sb, "%-9s", run.Scheme)
			for l := 1; l <= f.MaxLen; l++ {
				v := pick(l, run)
				switch {
				case math.IsNaN(v):
					fmt.Fprintf(&sb, "%10s", "n/a")
				case math.IsInf(v, 1):
					fmt.Fprintf(&sb, "%10s", "inf")
				case v >= 1e5:
					fmt.Fprintf(&sb, "%10.3g", v)
				default:
					fmt.Fprintf(&sb, "%10.2f", v)
				}
			}
			sb.WriteByte('\n')
		}
		sb.WriteByte('\n')
	}
	panel("support error rho (%)", func(l int, run *SchemeRun) float64 {
		if le, ok := run.Report.Level(l); ok {
			return le.SupportError
		}
		return math.NaN()
	})
	panel("false negatives sigma- (%)", func(l int, run *SchemeRun) float64 {
		if le, ok := run.Report.Level(l); ok {
			return le.FalseNegatives
		}
		return math.NaN()
	})
	panel("false positives sigma+ (%)", func(l int, run *SchemeRun) float64 {
		if le, ok := run.Report.Level(l); ok {
			return le.FalsePositives
		}
		return math.NaN()
	})
	return sb.String()
}

// RandomizationPoint is one α setting of Figure 3: the posterior range
// the miner can determine and the support error at itemset length 4.
type RandomizationPoint struct {
	AlphaFraction float64 // α/(γx)
	PosteriorLo   float64 // ρ2(−α)
	PosteriorMid  float64 // ρ2(0)
	PosteriorHi   float64 // ρ2(+α)
	SupportError  float64 // ρ (%) at itemset length 4, RAN-GD
}

// RandomizationFigure is the paper's Figure 3 for one dataset.
type RandomizationFigure struct {
	Dataset string
	// DetGDError is the DET-GD (α=0) support error at length 4, the
	// flat comparison line in Figures 3(b,c).
	DetGDError float64
	Points     []RandomizationPoint
}

// RandomizationStudy sweeps α/(γx) over [0,1] and, at each point,
// perturbs with RAN-GD and measures the reconstruction error of the TRUE
// frequent itemsets of length targetLen (the paper uses 4), plus the
// posterior-probability range of Section 4.1.
func RandomizationStudy(b *Bundle, cfg Config, steps, targetLen int) (*RandomizationFigure, error) {
	if steps < 2 {
		return nil, fmt.Errorf("%w: need at least 2 sweep steps", ErrExperiment)
	}
	gamma, err := cfg.Gamma()
	if err != nil {
		return nil, err
	}
	if targetLen < 1 || targetLen > b.MaxLen() {
		return nil, fmt.Errorf("%w: target length %d outside ground truth (max %d)", ErrExperiment, targetLen, b.MaxLen())
	}
	trueLevel := b.Truth.ByLength[targetLen-1]
	targets := make([]mining.Itemset, len(trueLevel))
	trueSup := make([]float64, len(trueLevel))
	for i, f := range trueLevel {
		targets[i] = f.Items
		trueSup[i] = f.Support * float64(b.DB.N())
	}

	n := b.DB.Schema.DomainSize()
	m, err := core.NewGammaDiagonal(n, gamma)
	if err != nil {
		return nil, err
	}
	fig := &RandomizationFigure{Dataset: b.Name}
	for step := 0; step < steps; step++ {
		frac := float64(step) / float64(steps-1)
		alpha := frac * m.Diag // α as a fraction of γx
		rng := rand.New(rand.NewSource(cfg.Seed + int64(step)*7919))

		var counter *mining.GammaCounter
		if alpha == 0 {
			p, err := core.NewGammaPerturber(b.DB.Schema, m)
			if err != nil {
				return nil, err
			}
			pdb, err := core.PerturbDatabase(b.DB, p, rng)
			if err != nil {
				return nil, err
			}
			counter, err = mining.NewGammaCounter(pdb, m)
			if err != nil {
				return nil, err
			}
		} else {
			p, err := core.NewRandomizedGammaPerturber(b.DB.Schema, m, alpha)
			if err != nil {
				return nil, err
			}
			pdb, err := core.PerturbDatabase(b.DB, p, rng)
			if err != nil {
				return nil, err
			}
			counter, err = mining.NewGammaCounter(pdb, p.ExpectedMatrix())
			if err != nil {
				return nil, err
			}
		}
		est, err := counter.Supports(targets)
		if err != nil {
			return nil, err
		}
		var rho float64
		for i := range est {
			rho += math.Abs(est[i]-trueSup[i]) / trueSup[i]
		}
		rho = rho / float64(len(est)) * 100

		lo, hi, err := core.PosteriorRange(gamma, n, cfg.Privacy.Rho1, alpha)
		if err != nil {
			return nil, err
		}
		mid, err := core.RandomizedPosterior(gamma, n, cfg.Privacy.Rho1, 0)
		if err != nil {
			return nil, err
		}
		pt := RandomizationPoint{
			AlphaFraction: frac,
			PosteriorLo:   lo,
			PosteriorMid:  mid,
			PosteriorHi:   hi,
			SupportError:  rho,
		}
		if step == 0 {
			fig.DetGDError = rho
		}
		fig.Points = append(fig.Points, pt)
	}
	return fig, nil
}

// String renders the Figure 3 series.
func (f *RandomizationFigure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — randomization tradeoff (itemset length 4)\n", f.Dataset)
	sb.WriteString("alpha/(gamma·x)   rho2-    rho2(0)   rho2+    support err %  (DET-GD baseline: ")
	fmt.Fprintf(&sb, "%.2f%%)\n", f.DetGDError)
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%15.2f %8.3f %9.3f %8.3f %14.2f\n",
			p.AlphaFraction, p.PosteriorLo, p.PosteriorMid, p.PosteriorHi, p.SupportError)
	}
	return sb.String()
}

// ConditionFigure is the paper's Figure 4 for one dataset: condition
// number of the reconstruction matrix per itemset length per scheme.
type ConditionFigure struct {
	Dataset string
	Lengths []int
	// Series maps scheme → condition number per length.
	Series map[Scheme][]float64
}

// ConditionStudy computes the reconstruction-matrix condition numbers.
// DET-GD and RAN-GD share the constant (γ+|S_U|−1)/(γ−1); MASK grows as
// (2p−1)^(−l); C&P's comes from its (l+1)×(l+1) partial-support matrix.
func ConditionStudy(b *Bundle, cfg Config, maxLen int) (*ConditionFigure, error) {
	gamma, err := cfg.Gamma()
	if err != nil {
		return nil, err
	}
	if maxLen < 1 || maxLen > b.DB.Schema.M() {
		return nil, fmt.Errorf("%w: max length %d outside schema (M=%d)", ErrExperiment, maxLen, b.DB.Schema.M())
	}
	gd, err := core.NewGammaDiagonal(b.DB.Schema.DomainSize(), gamma)
	if err != nil {
		return nil, err
	}
	bm, err := core.NewBoolMapping(b.DB.Schema)
	if err != nil {
		return nil, err
	}
	mask, err := core.NewMaskSchemeForPrivacy(bm, gamma)
	if err != nil {
		return nil, err
	}
	cnp, err := core.NewCutPasteScheme(bm, cfg.CnPK, cfg.CnPRho)
	if err != nil {
		return nil, err
	}

	fig := &ConditionFigure{
		Dataset: b.Name,
		Series:  make(map[Scheme][]float64),
	}
	for l := 1; l <= maxLen; l++ {
		fig.Lengths = append(fig.Lengths, l)
		fig.Series[DetGD] = append(fig.Series[DetGD], gd.Cond())
		fig.Series[RanGD] = append(fig.Series[RanGD], gd.Cond()) // expected matrix is identical
		fig.Series[Mask] = append(fig.Series[Mask], mask.Cond(l))
		cc, err := cnp.Cond(l)
		if err != nil {
			return nil, err
		}
		fig.Series[CutPaste] = append(fig.Series[CutPaste], cc)
	}
	return fig, nil
}

// String renders the condition-number table (log10 values in
// parentheses, matching the paper's log-scale plot).
func (f *ConditionFigure) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — reconstruction matrix condition numbers\n", f.Dataset)
	sb.WriteString("scheme   ")
	for _, l := range f.Lengths {
		fmt.Fprintf(&sb, "%12d", l)
	}
	sb.WriteByte('\n')
	for _, s := range AllSchemes() {
		fmt.Fprintf(&sb, "%-9s", s)
		for i := range f.Lengths {
			fmt.Fprintf(&sb, "%12.4g", f.Series[s][i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
