package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/linalg"
)

// ReconstructionPoint is one trial of the Theorem 1 study: the actual
// relative reconstruction error and the bound cond·‖Y−E(Y)‖/‖E(Y)‖.
type ReconstructionPoint struct {
	Trial      int
	ActualErr  float64
	BoundErr   float64
	Cond       float64
	PredictedY float64 // √ΣVar(Y_v): the Poisson-Binomial prediction of ‖Y−E(Y)‖
	ObservedY  float64 // observed ‖Y−E(Y)‖
}

// ReconstructionStudy quantifies Section 2.3 empirically: perturb the
// bundle several times, reconstruct the full histogram, and compare the
// actual relative error against the Theorem 1 bound and the
// Poisson-Binomial variance prediction of the perturbed-count deviation.
func ReconstructionStudy(b *Bundle, cfg Config, trials int) ([]ReconstructionPoint, error) {
	if trials < 1 {
		return nil, fmt.Errorf("%w: %d trials", ErrExperiment, trials)
	}
	gamma, err := cfg.Gamma()
	if err != nil {
		return nil, err
	}
	m, err := core.NewGammaDiagonal(b.DB.Schema.DomainSize(), gamma)
	if err != nil {
		return nil, err
	}
	p, err := core.NewGammaPerturber(b.DB.Schema, m)
	if err != nil {
		return nil, err
	}
	x, err := b.DB.Histogram()
	if err != nil {
		return nil, err
	}
	ey, err := m.MulVec(x)
	if err != nil {
		return nil, err
	}
	// Predicted ‖Y−E(Y)‖ via ΣVar(Y_v) = Σ_v Σ_u A[v][u](1−A[v][u])X_u,
	// computed in closed form for the uniform matrix: each original
	// record contributes Diag(1−Diag) to its own cell's variance and
	// Off(1−Off) to each of the other n−1 cells.
	var totalVar float64
	n := float64(b.DB.N())
	totalVar = n * (m.Diag*(1-m.Diag) + float64(m.N-1)*m.Off*(1-m.Off))
	predictedY := math.Sqrt(totalVar)

	out := make([]ReconstructionPoint, 0, trials)
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*104729))
		pdb, err := core.PerturbDatabase(b.DB, p, rng)
		if err != nil {
			return nil, err
		}
		y, err := pdb.Histogram()
		if err != nil {
			return nil, err
		}
		xhat, err := m.Solve(y)
		if err != nil {
			return nil, err
		}
		actual, err := core.RelativeError(xhat, x)
		if err != nil {
			return nil, err
		}
		bound, err := core.EstimationErrorBound(m.Cond(), y, ey)
		if err != nil {
			return nil, err
		}
		diff := make([]float64, len(y))
		for i := range y {
			diff[i] = y[i] - ey[i]
		}
		out = append(out, ReconstructionPoint{
			Trial:      trial,
			ActualErr:  actual,
			BoundErr:   bound,
			Cond:       m.Cond(),
			PredictedY: predictedY,
			ObservedY:  linalg.VecNorm2(diff),
		})
	}
	return out, nil
}

// FormatReconstruction renders the study as text.
func FormatReconstruction(name string, pts []ReconstructionPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — Theorem 1 reconstruction error study (cond=%.4g)\n", name, pts[0].Cond)
	sb.WriteString("trial   actual rel err   Theorem-1 bound   ||Y-EY|| obs   ||Y-EY|| predicted\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%5d %16.4f %17.4f %14.1f %20.1f\n",
			p.Trial, p.ActualErr, p.BoundErr, p.ObservedY, p.PredictedY)
	}
	return sb.String()
}
