// Package experiment wires the FRAPP substrates into the paper's
// evaluation (Section 7): dataset preparation, the four perturbation
// mechanisms (DET-GD, RAN-GD, MASK, C&P), and one harness per table and
// figure, each returning structured results and a text rendering that
// mirrors what the paper reports.
package experiment

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrExperiment is returned for invalid experiment configuration.
var ErrExperiment = errors.New("experiment: invalid configuration")

// Config carries every knob of the Section 7 evaluation. The zero value
// is not useful; start from DefaultConfig.
type Config struct {
	// CensusN and HealthN are the synthetic dataset sizes. The paper uses
	// ≈50,000 CENSUS records and >100,000 HEALTH records.
	CensusN int
	HealthN int
	// Seed drives all data generation and perturbation randomness.
	Seed int64
	// MinSupport is supmin; the paper evaluates at 2%.
	MinSupport float64
	// Privacy is the strict privacy requirement; the paper reports
	// (ρ1, ρ2) = (5%, 50%), i.e. γ = 19.
	Privacy core.PrivacySpec
	// AlphaFraction is RAN-GD's randomization amplitude as a fraction of
	// γx; the paper's figures 1–2 use α = γx/2.
	AlphaFraction float64
	// CnPK and CnPRho are the Cut-and-Paste operator parameters; the
	// paper uses K=3, ρ=0.494 for γ=19.
	CnPK   int
	CnPRho float64
}

// DefaultConfig returns the paper's evaluation settings at full scale.
func DefaultConfig() Config {
	return Config{
		CensusN:       50000,
		HealthN:       100000,
		Seed:          2005, // ICDE 2005
		MinSupport:    0.02,
		Privacy:       core.PrivacySpec{Rho1: 0.05, Rho2: 0.50},
		AlphaFraction: 0.5,
		CnPK:          3,
		CnPRho:        0.494,
	}
}

// QuickConfig returns a scaled-down configuration for tests and smoke
// runs: same parameters, smaller datasets.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.CensusN = 8000
	cfg.HealthN = 8000
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CensusN < 1 || c.HealthN < 1 {
		return fmt.Errorf("%w: dataset sizes %d/%d", ErrExperiment, c.CensusN, c.HealthN)
	}
	if !(c.MinSupport > 0 && c.MinSupport <= 1) {
		return fmt.Errorf("%w: min support %v", ErrExperiment, c.MinSupport)
	}
	if err := c.Privacy.Validate(); err != nil {
		return err
	}
	if c.AlphaFraction < 0 || c.AlphaFraction > 1 {
		return fmt.Errorf("%w: alpha fraction %v", ErrExperiment, c.AlphaFraction)
	}
	if c.CnPK < 0 {
		return fmt.Errorf("%w: C&P K %d", ErrExperiment, c.CnPK)
	}
	if !(c.CnPRho > 0 && c.CnPRho < 1) {
		return fmt.Errorf("%w: C&P rho %v", ErrExperiment, c.CnPRho)
	}
	return nil
}

// Gamma returns the configured privacy level's γ.
func (c Config) Gamma() (float64, error) {
	return c.Privacy.Gamma()
}
