package experiment

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestClassifyStudy(t *testing.T) {
	cfg := QuickConfig()
	health, err := LoadHealth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClassifyStudy(health, cfg, 6) // HEALTH status
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassAttr != "HEALTH" {
		t.Fatalf("class attr %q", res.ClassAttr)
	}
	for _, acc := range []float64{res.Majority, res.Exact, res.Private} {
		if acc <= 0 || acc > 1 {
			t.Fatalf("accuracy out of range: %+v", res)
		}
	}
	// Private training cannot beat exact training by more than noise,
	// and must not collapse to zero.
	if res.Private > res.Exact+0.05 {
		t.Fatalf("private %v implausibly above exact %v", res.Private, res.Exact)
	}
	if !strings.Contains(res.String(), "privacy cost") {
		t.Fatal("rendering wrong")
	}
	if _, err := ClassifyStudy(health, cfg, 99); err == nil {
		t.Fatal("bad class attribute accepted")
	}
}

func TestRelaxationStudy(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := RelaxationStudy(census, cfg, []float64{1.0, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// Relaxed candidate retention can only help recall (same counter,
	// superset of candidates survives).
	if pts[1].FalseNegatives > pts[0].FalseNegatives+1e-9 {
		t.Fatalf("relaxation increased sigma-: %v -> %v", pts[0].FalseNegatives, pts[1].FalseNegatives)
	}
	if !strings.Contains(FormatRelaxation("CENSUS", pts), "relaxation") {
		t.Fatal("rendering wrong")
	}
	if _, err := RelaxationStudy(census, cfg, nil); !errors.Is(err, ErrExperiment) {
		t.Fatal("empty settings accepted")
	}
}

func TestAveragedAccuracyStudy(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := AveragedAccuracyStudy(census, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Trials != 3 || fig.MaxLen != census.MaxLen() {
		t.Fatalf("figure metadata %+v", fig)
	}
	for _, s := range AllSchemes() {
		stats, ok := fig.Stats[s]
		if !ok || len(stats) != fig.MaxLen {
			t.Fatalf("scheme %s stats missing", s)
		}
		for _, st := range stats {
			if st.FNMean < 0 || st.FNMean > 100 {
				t.Fatalf("scheme %s length %d: sigma- mean %v", s, st.Length, st.FNMean)
			}
			if st.FNStd < 0 {
				t.Fatalf("negative std")
			}
		}
	}
	out := fig.String()
	if !strings.Contains(out, "mean±std over 3 trials") {
		t.Fatalf("rendering wrong:\n%s", out)
	}
	if _, err := AveragedAccuracyStudy(census, cfg, 1); !errors.Is(err, ErrExperiment) {
		t.Fatal("1 trial accepted")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 {
		t.Fatalf("mean %v", m)
	}
	if s < 2.13 || s > 2.15 { // sample std of the classic example
		t.Fatalf("std %v", s)
	}
	m, s = meanStd(nil)
	if !math.IsNaN(m) || !math.IsNaN(s) {
		t.Fatal("empty input should be NaN")
	}
	m, s = meanStd([]float64{3})
	if m != 3 || s != 0 {
		t.Fatalf("singleton: %v ± %v", m, s)
	}
}

func TestGammaSweepStudy(t *testing.T) {
	cfg := QuickConfig()
	census, err := LoadCensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []core.PrivacySpec{
		{Rho1: 0.05, Rho2: 0.30}, // strict: gamma ≈ 8.1
		{Rho1: 0.05, Rho2: 0.50}, // paper: gamma = 19
		{Rho1: 0.05, Rho2: 0.90}, // loose: gamma = 171
	}
	pts, err := GammaSweepStudy(census, cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Condition number strictly decreases as privacy relaxes; false
	// negatives should not get worse.
	for i := 1; i < len(pts); i++ {
		if pts[i].Cond >= pts[i-1].Cond {
			t.Fatalf("cond not decreasing: %v -> %v", pts[i-1].Cond, pts[i].Cond)
		}
		if pts[i].FalseNegatives > pts[i-1].FalseNegatives+10 {
			t.Fatalf("sigma- worsened sharply as privacy relaxed: %v -> %v",
				pts[i-1].FalseNegatives, pts[i].FalseNegatives)
		}
	}
	if !strings.Contains(FormatGammaSweep("CENSUS", pts), "privacy level") {
		t.Fatal("rendering wrong")
	}
	if _, err := GammaSweepStudy(census, cfg, nil); !errors.Is(err, ErrExperiment) {
		t.Fatal("empty specs accepted")
	}
}
