package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mining"
)

// Scheme names the four perturbation mechanisms of the evaluation.
type Scheme string

// The evaluated mechanisms, in the paper's presentation order.
const (
	DetGD    Scheme = "DET-GD"
	RanGD    Scheme = "RAN-GD"
	Mask     Scheme = "MASK"
	CutPaste Scheme = "C&P"
)

// AllSchemes lists the mechanisms in presentation order.
func AllSchemes() []Scheme { return []Scheme{RanGD, DetGD, Mask, CutPaste} }

// SchemeRun is the outcome of perturbing a bundle with one mechanism and
// mining the perturbed data.
type SchemeRun struct {
	Scheme Scheme
	Mined  *mining.Result
	Report *metrics.Report
	// Params records the concrete parameters used (p for MASK, K/ρ for
	// C&P, γ and α for the gamma schemes) for display.
	Params string
}

// RunScheme executes the full privacy-preserving pipeline for one
// mechanism: client-side perturbation of every record, miner-side Apriori
// with per-pass support reconstruction, and evaluation against ground
// truth.
func RunScheme(b *Bundle, s Scheme, cfg Config) (*SchemeRun, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gamma, err := cfg.Gamma()
	if err != nil {
		return nil, err
	}
	// Distinct deterministic stream per (seed, scheme, dataset size).
	var schemeHash int64
	for _, c := range s {
		schemeHash = schemeHash*131 + int64(c)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ schemeHash<<24 ^ int64(b.DB.N())))

	var (
		counter mining.SupportCounter
		params  string
	)
	switch s {
	case DetGD:
		m, err := core.NewGammaDiagonal(b.DB.Schema.DomainSize(), gamma)
		if err != nil {
			return nil, err
		}
		p, err := core.NewGammaPerturber(b.DB.Schema, m)
		if err != nil {
			return nil, err
		}
		pdb, err := core.PerturbDatabase(b.DB, p, rng)
		if err != nil {
			return nil, err
		}
		counter, err = mining.NewGammaCounter(pdb, m)
		if err != nil {
			return nil, err
		}
		params = fmt.Sprintf("gamma=%.4g", gamma)

	case RanGD:
		m, err := core.NewGammaDiagonal(b.DB.Schema.DomainSize(), gamma)
		if err != nil {
			return nil, err
		}
		alpha := cfg.AlphaFraction * m.Diag // fraction of γx
		p, err := core.NewRandomizedGammaPerturber(b.DB.Schema, m, alpha)
		if err != nil {
			return nil, err
		}
		pdb, err := core.PerturbDatabase(b.DB, p, rng)
		if err != nil {
			return nil, err
		}
		counter, err = mining.NewGammaCounter(pdb, p.ExpectedMatrix())
		if err != nil {
			return nil, err
		}
		params = fmt.Sprintf("gamma=%.4g alpha=%.3g·gamma·x", gamma, cfg.AlphaFraction)

	case Mask:
		bm, err := core.NewBoolMapping(b.DB.Schema)
		if err != nil {
			return nil, err
		}
		sch, err := core.NewMaskSchemeForPrivacy(bm, gamma)
		if err != nil {
			return nil, err
		}
		bdb, err := sch.PerturbDatabase(b.DB, rng)
		if err != nil {
			return nil, err
		}
		counter = &mining.MaskCounter{Perturbed: bdb, Scheme: sch}
		params = fmt.Sprintf("p=%.4f", sch.P)

	case CutPaste:
		bm, err := core.NewBoolMapping(b.DB.Schema)
		if err != nil {
			return nil, err
		}
		sch, err := core.NewCutPasteScheme(bm, cfg.CnPK, cfg.CnPRho)
		if err != nil {
			return nil, err
		}
		bdb, err := sch.PerturbDatabase(b.DB, rng)
		if err != nil {
			return nil, err
		}
		counter = &mining.CutPasteCounter{Perturbed: bdb, Scheme: sch}
		params = fmt.Sprintf("K=%d rho=%.3f", sch.K, sch.Rho)

	default:
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrExperiment, s)
	}

	mined, err := mining.Apriori(counter, cfg.MinSupport)
	if err != nil {
		return nil, fmt.Errorf("%s mining: %w", s, err)
	}
	rep, err := metrics.Evaluate(b.Truth, mined)
	if err != nil {
		return nil, err
	}
	return &SchemeRun{Scheme: s, Mined: mined, Report: rep, Params: params}, nil
}
