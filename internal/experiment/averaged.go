package experiment

import (
	"fmt"
	"math"
	"strings"
)

// LevelStats aggregates one metric across trials for one itemset length.
type LevelStats struct {
	Length int
	// Mean and sample standard deviation of the support error ρ (%),
	// over the trials where the metric was defined (NaN trials — no
	// itemset of that length identified — are excluded; Defined counts
	// the rest).
	RhoMean, RhoStd float64
	RhoDefined      int
	// σ− and σ+ means/stds (always defined).
	FNMean, FNStd float64
	FPMean, FPStd float64
}

// AveragedFigure is an AccuracyFigure averaged over independent
// perturbation trials — the variance quantification the paper's single
// plots do not show.
type AveragedFigure struct {
	Dataset string
	Trials  int
	MaxLen  int
	Stats   map[Scheme][]LevelStats
}

// AveragedAccuracyStudy repeats the Figure 1/2 pipeline with trial-
// specific seeds and aggregates the per-length metrics.
func AveragedAccuracyStudy(b *Bundle, cfg Config, trials int) (*AveragedFigure, error) {
	if trials < 2 {
		return nil, fmt.Errorf("%w: need at least 2 trials for variance", ErrExperiment)
	}
	fig := &AveragedFigure{
		Dataset: b.Name,
		Trials:  trials,
		MaxLen:  b.MaxLen(),
		Stats:   make(map[Scheme][]LevelStats),
	}
	// samples[scheme][length-1] → per-trial values.
	type sample struct{ rho, fn, fp []float64 }
	samples := make(map[Scheme][]sample)
	for _, s := range AllSchemes() {
		samples[s] = make([]sample, fig.MaxLen)
	}
	for trial := 0; trial < trials; trial++ {
		trialCfg := cfg
		trialCfg.Seed = cfg.Seed + int64(trial)*65537
		for _, s := range AllSchemes() {
			run, err := RunScheme(b, s, trialCfg)
			if err != nil {
				return nil, fmt.Errorf("trial %d scheme %s: %w", trial, s, err)
			}
			for l := 1; l <= fig.MaxLen; l++ {
				smp := &samples[s][l-1]
				if le, ok := run.Report.Level(l); ok {
					if !math.IsNaN(le.SupportError) && !math.IsInf(le.SupportError, 0) {
						smp.rho = append(smp.rho, le.SupportError)
					}
					smp.fn = append(smp.fn, le.FalseNegatives)
					smp.fp = append(smp.fp, le.FalsePositives)
				} else {
					smp.fn = append(smp.fn, 100)
					smp.fp = append(smp.fp, 0)
				}
			}
		}
	}
	for _, s := range AllSchemes() {
		stats := make([]LevelStats, fig.MaxLen)
		for l := 0; l < fig.MaxLen; l++ {
			smp := samples[s][l]
			st := LevelStats{Length: l + 1, RhoDefined: len(smp.rho)}
			st.RhoMean, st.RhoStd = meanStd(smp.rho)
			st.FNMean, st.FNStd = meanStd(smp.fn)
			st.FPMean, st.FPStd = meanStd(smp.fp)
			stats[l] = st
		}
		fig.Stats[s] = stats
	}
	return fig, nil
}

// meanStd returns the mean and sample standard deviation; NaNs for empty
// input, zero std for singletons.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// String renders mean±std tables for the three metrics.
func (f *AveragedFigure) String() string {
	var sb strings.Builder
	panel := func(title string, pick func(LevelStats) (float64, float64)) {
		fmt.Fprintf(&sb, "%s — %s, mean±std over %d trials\n", f.Dataset, title, f.Trials)
		sb.WriteString("scheme   ")
		for l := 1; l <= f.MaxLen; l++ {
			fmt.Fprintf(&sb, "%16d", l)
		}
		sb.WriteByte('\n')
		for _, s := range AllSchemes() {
			fmt.Fprintf(&sb, "%-9s", s)
			for _, st := range f.Stats[s] {
				m, sd := pick(st)
				if math.IsNaN(m) {
					fmt.Fprintf(&sb, "%16s", "n/a")
				} else if m >= 1e5 {
					fmt.Fprintf(&sb, "%16.3g", m)
				} else {
					fmt.Fprintf(&sb, "%10.1f±%-5.1f", m, sd)
				}
			}
			sb.WriteByte('\n')
		}
		sb.WriteByte('\n')
	}
	panel("support error rho (%)", func(st LevelStats) (float64, float64) { return st.RhoMean, st.RhoStd })
	panel("false negatives sigma- (%)", func(st LevelStats) (float64, float64) { return st.FNMean, st.FNStd })
	panel("false positives sigma+ (%)", func(st LevelStats) (float64, float64) { return st.FPMean, st.FPStd })
	return sb.String()
}
