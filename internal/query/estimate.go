package query

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Estimate is a reconstructed count with its uncertainty.
type Estimate struct {
	// Count is the point estimate of the number of ORIGINAL records
	// matching the filter (may be negative under heavy noise; Clamped
	// reports the max(0, ·) version).
	Count float64
	// StdErr is the standard error of the estimator.
	StdErr float64
	// Lo and Hi bound the 95% confidence interval (normal
	// approximation, unclamped).
	Lo, Hi float64
	// N is the number of perturbed records the estimate is based on.
	N int
}

// Clamped returns the point estimate clamped to [0, N].
func (e Estimate) Clamped() float64 {
	c := e.Count
	if c < 0 {
		c = 0
	}
	if c > float64(e.N) {
		c = float64(e.N)
	}
	return c
}

// Proportion returns the estimate as a fraction of N, with scaled bounds.
func (e Estimate) Proportion() (p, lo, hi float64) {
	n := float64(e.N)
	if n == 0 {
		return 0, 0, 0
	}
	return e.Count / n, e.Lo / n, e.Hi / n
}

// Z95 is the two-sided 95% normal quantile — exported so layers that
// compose confidence intervals from mining.PointEstimates directly
// (the windowed query path) use exactly the constant this package's
// own intervals are built with.
const Z95 = 1.959963984540054

// z95 is the internal alias the estimator paths use.
const z95 = Z95

// Reconstruct is the estimator core shared by the record-scan Engine and
// the counter-backed CounterEngine: given the PERTURBED match count y
// among n submitted records and the marginal perturbation matrix for the
// filter's attribute subset, it inverts the marginal in closed form,
//
//	X̂ = (Y_L − ō·N) / (d̄ − ō),
//
// and attaches the standard error √(N·p̂(1−p̂))/(d̄−ō) with p̂ = Y_L/N —
// Y_L is a sum of N independent Bernoulli indicators (the
// Poisson-Binomial of the paper's Section 2.2, whose variance is bounded
// by the binomial at the same mean) — plus the 95% z-interval.
func Reconstruct(y float64, n int, marg core.UniformMatrix) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, fmt.Errorf("%w: empty database", ErrQuery)
	}
	a := marg.Diag - marg.Off
	if a == 0 {
		return Estimate{}, fmt.Errorf("%w: singular reconstruction matrix", ErrQuery)
	}
	est := (y - marg.Off*float64(n)) / a
	phat := y / float64(n)
	stderr := math.Sqrt(float64(n)*phat*(1-phat)) / a
	return Estimate{
		Count:  est,
		StdErr: stderr,
		Lo:     est - z95*stderr,
		Hi:     est + z95*stderr,
		N:      n,
	}, nil
}

// exactEstimate is the zero-arity case: an empty filter matches every
// record, so the count is n with no reconstruction noise and a
// zero-width interval.
func exactEstimate(n int) Estimate {
	return Estimate{Count: float64(n), Lo: float64(n), Hi: float64(n), N: n}
}

// marginalCache memoizes core.UniformMatrix.Marginal per sub-domain
// size within one batch, so CountAll computes one marginal per distinct
// attribute set instead of one per filter. (The marginal depends on the
// attribute set only through its sub-domain size, so keying by size
// reuses at least as much as keying by the set itself.)
type marginalCache struct {
	matrix core.UniformMatrix
	sub    map[int]core.UniformMatrix
	misses int
}

func newMarginalCache(m core.UniformMatrix) *marginalCache {
	return &marginalCache{matrix: m, sub: make(map[int]core.UniformMatrix)}
}

func (mc *marginalCache) get(nSub int) (core.UniformMatrix, error) {
	if marg, ok := mc.sub[nSub]; ok {
		return marg, nil
	}
	marg, err := mc.matrix.Marginal(nSub)
	if err != nil {
		return core.UniformMatrix{}, fmt.Errorf("%w: %w", ErrQuery, err)
	}
	mc.misses++
	mc.sub[nSub] = marg
	return marg, nil
}
