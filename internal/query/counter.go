package query

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// PerturbedCounter is the substrate of the counter-backed query path: a
// live counter that can answer the RAW perturbed match count Y_L for a
// batch of filters, together with the record count N observed in the
// same consistent sweep. Both mining.ShardedGammaCounter and
// mining.MaterializedGammaCounter satisfy it.
type PerturbedCounter interface {
	Schema() *dataset.Schema
	PerturbedSupports(filters []mining.Itemset) (ys []float64, n int, err error)
}

// CounterEngine answers filter-count queries directly from an
// incrementally materialized counter instead of the Engine's O(N)
// record scan per filter: a gamma batch costs O(#filters)
// merged-histogram lookups; a boolean-scheme batch sweeps the counter's
// sparse joint histogram of distinct perturbed rows once for the whole
// batch. It is safe for concurrent use whenever the underlying counter
// is, so the collection service serves interactive queries from the
// live ingestion counter without snapshotting or pausing submissions.
//
// Two construction paths exist: NewCounterEngine binds a gamma-diagonal
// matrix to any PerturbedCounter and inverts raw counts itself (the
// historical gamma path), while NewLiveCounterEngine wraps a
// scheme-polymorphic mining.LiveCounter and delegates estimation to the
// counter's own scheme — gamma, MASK, and cut-and-paste all answer
// through the same engine surface.
type CounterEngine struct {
	counter PerturbedCounter
	matrix  core.UniformMatrix
	// live, when set, answers through the counter's scheme estimator
	// instead of the engine-side gamma inversion.
	live mining.LiveCounter
}

// NewCounterEngine validates the matrix against the counter's schema.
func NewCounterEngine(c PerturbedCounter, m core.UniformMatrix) (*CounterEngine, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil counter", ErrQuery)
	}
	if m.N != c.Schema().DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain %d", ErrQuery, m.N, c.Schema().DomainSize())
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrQuery, err)
	}
	return &CounterEngine{counter: c, matrix: m}, nil
}

// NewLiveCounterEngine wraps a scheme-polymorphic live counter: every
// estimate is produced by the counter's own scheme estimator, so one
// engine serves gamma, MASK, and cut-and-paste collections. For a gamma
// counter the estimates are identical to NewCounterEngine's.
func NewLiveCounterEngine(c mining.LiveCounter) (*CounterEngine, error) {
	if c == nil {
		return nil, fmt.Errorf("%w: nil counter", ErrQuery)
	}
	return &CounterEngine{counter: c, live: c}, nil
}

// Count estimates how many original records match the filter, with a
// 95% confidence interval — the counter-backed analogue of Engine.Count.
func (e *CounterEngine) Count(filter mining.Itemset) (Estimate, error) {
	out, err := e.CountAll([]mining.Itemset{filter})
	if err != nil {
		return Estimate{}, err
	}
	return out[0], nil
}

// CountAll answers a batch of filters from one consistent counter
// sweep: every estimate in the batch is based on the same record count
// N, even while submissions keep arriving on the live counter. Filter
// validation happens inside PerturbedSupports (the counter must
// validate anyway before indexing its histograms), so invalid filters
// surface as wrapped ErrQuery errors without a second pass here.
func (e *CounterEngine) CountAll(filters []mining.Itemset) ([]Estimate, error) {
	if e.live != nil {
		return e.countAllLive(filters)
	}
	schema := e.counter.Schema()
	ys, n, err := e.counter.PerturbedSupports(filters)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrQuery, err)
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty database", ErrQuery)
	}
	marginals := newMarginalCache(e.matrix)
	out := make([]Estimate, len(filters))
	for i, f := range filters {
		if f.Len() == 0 {
			// Everything matches; no reconstruction noise.
			out[i] = exactEstimate(n)
			continue
		}
		nSub, err := schema.SubdomainSize(f.Attrs())
		if err != nil {
			return nil, fmt.Errorf("filter %d (%s): %w: %w", i, f.Key(), ErrQuery, err)
		}
		marg, err := marginals.get(nSub)
		if err != nil {
			return nil, fmt.Errorf("filter %d (%s): %w", i, f.Key(), err)
		}
		est, err := Reconstruct(ys[i], n, marg)
		if err != nil {
			return nil, fmt.Errorf("filter %d (%s): %w", i, f.Key(), err)
		}
		out[i] = est
	}
	return out, nil
}

// countAllLive answers through the live counter's scheme estimator: one
// consistent sweep yields every (point estimate, stderr) pair, to which
// the engine attaches the 95% z-interval. A zero stderr (the exact
// zero-arity case) yields a zero-width interval, matching the gamma
// path's exactEstimate.
func (e *CounterEngine) countAllLive(filters []mining.Itemset) ([]Estimate, error) {
	pes, n, err := e.live.Estimates(filters)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrQuery, err)
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty database", ErrQuery)
	}
	out := make([]Estimate, len(pes))
	for i, pe := range pes {
		out[i] = Estimate{
			Count:  pe.Count,
			StdErr: pe.StdErr,
			Lo:     pe.Count - z95*pe.StdErr,
			Hi:     pe.Count + z95*pe.StdErr,
			N:      n,
		}
	}
	return out, nil
}
