package query

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// randomSchema builds a seeded schema with 3–4 attributes of
// cardinality 2–5 each.
func randomSchema(t *testing.T, rng *rand.Rand) *dataset.Schema {
	t.Helper()
	m := 3 + rng.Intn(2)
	attrs := make([]dataset.Attribute, m)
	for j := range attrs {
		card := 2 + rng.Intn(4)
		cats := make([]string, card)
		for v := range cats {
			cats[v] = fmt.Sprintf("a%d v%d", j, v)
		}
		attrs[j] = dataset.Attribute{Name: fmt.Sprintf("attr%d", j), Categories: cats}
	}
	s, err := dataset.NewSchema("random", attrs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randomFilters samples filters of every arity 0..3 (capped at the
// schema width) over random attribute subsets and values.
func randomFilters(t *testing.T, s *dataset.Schema, rng *rand.Rand) []mining.Itemset {
	t.Helper()
	filters := []mining.Itemset{{}} // arity 0: matches everything
	maxArity := 3
	if s.M() < maxArity {
		maxArity = s.M()
	}
	for arity := 1; arity <= maxArity; arity++ {
		for trial := 0; trial < 4; trial++ {
			perm := rng.Perm(s.M())[:arity]
			items := make([]mining.Item, arity)
			for i, j := range perm {
				items[i] = mining.Item{Attr: j, Value: rng.Intn(s.Attrs[j].Cardinality())}
			}
			f, err := mining.NewItemset(items...)
			if err != nil {
				t.Fatal(err)
			}
			filters = append(filters, f)
		}
	}
	return filters
}

// TestCounterEngineMatchesScanEngine is the equivalence property: for
// seeded random schemas and perturbed databases, the counter-backed
// estimates must equal the record-scan Engine's (count, stderr, CI, N)
// to within float tolerance, across filter arities 0..3 — the counter
// path reads the same Y_L from histograms that the scan path counts
// record by record.
func TestCounterEngineMatchesScanEngine(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		s := randomSchema(t, rng)
		db := dataset.NewDatabase(s, 0)
		skew := make(dataset.Record, s.M()) // over-represented record
		n := 1000 + rng.Intn(1500)
		for i := 0; i < n; i++ {
			rec := make(dataset.Record, s.M())
			for j := range rec {
				rec[j] = rng.Intn(s.Attrs[j].Cardinality())
			}
			if rng.Float64() < 0.3 {
				copy(rec, skew)
			}
			if err := db.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		gamma := []float64{7, 19, 50}[rng.Intn(3)]
		m, err := core.NewGammaDiagonal(s.DomainSize(), gamma)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewGammaPerturber(s, m)
		if err != nil {
			t.Fatal(err)
		}
		pdb, err := core.PerturbDatabase(db, p, rng)
		if err != nil {
			t.Fatal(err)
		}

		scan, err := NewEngine(pdb, m)
		if err != nil {
			t.Fatal(err)
		}
		counters := map[string]PerturbedCounter{}
		sharded, err := mining.NewShardedGammaCounter(s, m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := sharded.AddDatabase(pdb); err != nil {
			t.Fatal(err)
		}
		counters["sharded"] = sharded
		mat, err := mining.NewMaterializedGammaCounter(s, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := mat.AddDatabase(pdb); err != nil {
			t.Fatal(err)
		}
		counters["materialized"] = mat

		filters := randomFilters(t, s, rng)
		want, err := scan.CountAll(filters)
		if err != nil {
			t.Fatal(err)
		}
		for name, ctr := range counters {
			eng, err := NewCounterEngine(ctr, m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.CountAll(filters)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			for i, f := range filters {
				w, g := want[i], got[i]
				if g.N != w.N {
					t.Fatalf("seed %d %s filter %s: N %d vs scan %d", seed, name, f.Key(), g.N, w.N)
				}
				for _, pair := range [][2]float64{
					{g.Count, w.Count}, {g.StdErr, w.StdErr}, {g.Lo, w.Lo}, {g.Hi, w.Hi},
				} {
					if math.Abs(pair[0]-pair[1]) > 1e-9*(1+math.Abs(pair[1])) {
						t.Fatalf("seed %d %s filter %s (arity %d): counter %+v vs scan %+v",
							seed, name, f.Key(), f.Len(), g, w)
					}
				}
				// Single Count must agree with the batch too.
				single, err := eng.Count(f)
				if err != nil {
					t.Fatal(err)
				}
				if single != g {
					t.Fatalf("seed %d %s filter %s: Count %+v vs CountAll %+v", seed, name, f.Key(), single, g)
				}
			}
		}
	}
}

// TestCounterEngineValidation covers the counter path's error
// discipline: every rejection must satisfy errors.Is(err, ErrQuery).
func TestCounterEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomSchema(t, rng)
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	ctr, err := mining.NewShardedGammaCounter(s, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCounterEngine(nil, m); !errors.Is(err, ErrQuery) {
		t.Fatal("nil counter accepted")
	}
	wrong, _ := core.NewGammaDiagonal(s.DomainSize()+1, 19)
	if _, err := NewCounterEngine(ctr, wrong); !errors.Is(err, ErrQuery) {
		t.Fatal("order mismatch accepted")
	}
	bad := core.UniformMatrix{N: s.DomainSize(), Diag: 0.5, Off: 0.5}
	if _, err := NewCounterEngine(ctr, bad); !errors.Is(err, ErrQuery) {
		t.Fatal("invalid Markov matrix accepted")
	}
	eng, err := NewCounterEngine(ctr, m)
	if err != nil {
		t.Fatal(err)
	}
	// Empty counter: querying before any ingestion is an ErrQuery.
	if _, err := eng.Count(mining.Itemset{{Attr: 0, Value: 0}}); !errors.Is(err, ErrQuery) {
		t.Fatal("empty counter query accepted")
	}
	if err := ctr.Add(make(dataset.Record, s.M())); err != nil {
		t.Fatal(err)
	}
	badFilter := mining.Itemset{{Attr: 99, Value: 0}}
	if _, err := eng.Count(badFilter); !errors.Is(err, ErrQuery) || !errors.Is(err, mining.ErrMining) {
		t.Fatalf("invalid filter error %v must wrap ErrQuery and ErrMining", err)
	}
}

// TestEngineErrorDiscipline pins the scan engine's rejections to
// ErrQuery while preserving the underlying cause in the chain.
func TestEngineErrorDiscipline(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randomSchema(t, rng)
	db := dataset.NewDatabase(s, 1)
	if err := db.Append(make(dataset.Record, s.M())); err != nil {
		t.Fatal(err)
	}
	bad := core.UniformMatrix{N: s.DomainSize(), Diag: 0.5, Off: 0.5}
	if _, err := NewEngine(db, bad); !errors.Is(err, ErrQuery) || !errors.Is(err, core.ErrMatrix) {
		t.Fatalf("invalid matrix error %v must wrap ErrQuery and ErrMatrix", err)
	}
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(db, m)
	if err != nil {
		t.Fatal(err)
	}
	badFilter := mining.Itemset{{Attr: 99, Value: 0}}
	if _, err := eng.Count(badFilter); !errors.Is(err, ErrQuery) || !errors.Is(err, mining.ErrMining) {
		t.Fatalf("invalid filter error %v must wrap ErrQuery and ErrMining", err)
	}
	if _, err := eng.CountAll([]mining.Itemset{badFilter}); !errors.Is(err, ErrQuery) {
		t.Fatalf("batch error %v must wrap ErrQuery", err)
	}
}

// TestCountAllReusesMarginals pins the batch optimization: one marginal
// computation per distinct sub-domain size, not one per filter.
func TestCountAllReusesMarginals(t *testing.T) {
	m, err := core.NewGammaDiagonal(24, 19)
	if err != nil {
		t.Fatal(err)
	}
	mc := newMarginalCache(m)
	for _, nSub := range []int{6, 6, 4, 6, 4, 24} {
		if _, err := mc.get(nSub); err != nil {
			t.Fatal(err)
		}
	}
	if mc.misses != 3 {
		t.Fatalf("marginal cache computed %d marginals for 3 distinct sizes", mc.misses)
	}
	if _, err := mc.get(7); err == nil {
		t.Fatal("non-divisor sub-domain accepted")
	}
}

// TestExactEmptyFilterInterval: the zero-arity estimate is exact, so
// its interval has zero width — Lo = Count = Hi = N.
func TestExactEmptyFilterInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomSchema(t, rng)
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	db := dataset.NewDatabase(s, 0)
	for i := 0; i < 50; i++ {
		if err := db.Append(make(dataset.Record, s.M())); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(db, m)
	if err != nil {
		t.Fatal(err)
	}
	est, err := eng.Count(mining.Itemset{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Count != 50 || est.Lo != 50 || est.Hi != 50 || est.StdErr != 0 || est.N != 50 {
		t.Fatalf("empty-filter estimate %+v, want exact zero-width interval at 50", est)
	}
}
