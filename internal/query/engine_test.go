package query

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

func querySchema(t *testing.T) *dataset.Schema {
	t.Helper()
	s, err := dataset.NewSchema("query-test", []dataset.Attribute{
		{Name: "a", Categories: []string{"a0", "a1", "a2"}},
		{Name: "b", Categories: []string{"b0", "b1"}},
		{Name: "c", Categories: []string{"c0", "c1", "c2", "c3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildQueryData(t *testing.T, n int, seed int64) (*dataset.Database, *dataset.Database, core.UniformMatrix) {
	t.Helper()
	s := querySchema(t)
	db := dataset.NewDatabase(s, n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		rec := dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
		if rng.Float64() < 0.35 {
			rec = dataset.Record{0, 1, 2}
		}
		if err := db.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	m, err := core.NewGammaDiagonal(s.DomainSize(), 19)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewGammaPerturber(s, m)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := core.PerturbDatabase(db, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	return db, pdb, m
}

func trueCount(db *dataset.Database, f mining.Itemset) float64 {
	var c float64
	for _, rec := range db.Records {
		if f.Supports(rec) {
			c++
		}
	}
	return c
}

func TestCountEstimateAccuracy(t *testing.T) {
	db, pdb, m := buildQueryData(t, 80000, 1)
	eng, err := NewEngine(pdb, m)
	if err != nil {
		t.Fatal(err)
	}
	filters := []mining.Itemset{
		{{Attr: 0, Value: 0}},
		{{Attr: 0, Value: 0}, {Attr: 1, Value: 1}},
		{{Attr: 0, Value: 0}, {Attr: 1, Value: 1}, {Attr: 2, Value: 2}},
	}
	ests, err := eng.CountAll(filters)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range filters {
		truth := trueCount(db, f)
		// The estimate should be within 5 standard errors of the truth.
		if math.Abs(ests[i].Count-truth) > 5*ests[i].StdErr {
			t.Fatalf("filter %s: estimate %v ± %v vs truth %v",
				f.Key(), ests[i].Count, ests[i].StdErr, truth)
		}
		if ests[i].Lo > ests[i].Count || ests[i].Hi < ests[i].Count {
			t.Fatalf("CI does not bracket the point estimate: %+v", ests[i])
		}
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Over repeated independent perturbations, the 95% CI must contain
	// the truth roughly 95% of the time (binomial tolerance).
	s := querySchema(t)
	db := dataset.NewDatabase(s, 0)
	rng := rand.New(rand.NewSource(9))
	const n = 20000
	for i := 0; i < n; i++ {
		rec := dataset.Record{rng.Intn(3), rng.Intn(2), rng.Intn(4)}
		if rng.Float64() < 0.3 {
			rec = dataset.Record{1, 0, 3}
		}
		if err := db.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := core.NewGammaDiagonal(s.DomainSize(), 19)
	p, _ := core.NewGammaPerturber(s, m)
	filter := mining.Itemset{{Attr: 0, Value: 1}, {Attr: 2, Value: 3}}
	truth := trueCount(db, filter)

	const trials = 120
	covered := 0
	for trial := 0; trial < trials; trial++ {
		pdb, err := core.PerturbDatabase(db, p, rand.New(rand.NewSource(int64(1000+trial))))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(pdb, m)
		if err != nil {
			t.Fatal(err)
		}
		est, err := eng.Count(filter)
		if err != nil {
			t.Fatal(err)
		}
		if truth >= est.Lo && truth <= est.Hi {
			covered++
		}
	}
	rate := float64(covered) / trials
	// 95% nominal; binomial std over 120 trials ≈ 2%; allow wide band.
	if rate < 0.86 || rate > 1.0 {
		t.Fatalf("CI coverage %.1f%% (%d/%d), want ≈95%%", rate*100, covered, trials)
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{Count: -50, StdErr: 10, Lo: -70, Hi: -30, N: 1000}
	if e.Clamped() != 0 {
		t.Fatalf("Clamped = %v", e.Clamped())
	}
	e.Count = 2000
	if e.Clamped() != 1000 {
		t.Fatalf("Clamped = %v", e.Clamped())
	}
	e.Count = 500
	p, lo, hi := e.Proportion()
	if p != 0.5 || lo != -0.07 || hi != -0.03 {
		t.Fatalf("Proportion = %v [%v, %v]", p, lo, hi)
	}
	empty := Estimate{}
	if p, _, _ := empty.Proportion(); p != 0 {
		t.Fatal("empty proportion should be 0")
	}
}

func TestEngineValidation(t *testing.T) {
	_, pdb, m := buildQueryData(t, 100, 2)
	if _, err := NewEngine(nil, m); !errors.Is(err, ErrQuery) {
		t.Fatal("nil database accepted")
	}
	wrong, _ := core.NewGammaDiagonal(5, 19)
	if _, err := NewEngine(pdb, wrong); !errors.Is(err, ErrQuery) {
		t.Fatal("order mismatch accepted")
	}
	eng, err := NewEngine(pdb, m)
	if err != nil {
		t.Fatal(err)
	}
	bad := mining.Itemset{{Attr: 9, Value: 0}}
	if _, err := eng.Count(bad); err == nil {
		t.Fatal("invalid filter accepted")
	}
	if _, err := eng.CountAll([]mining.Itemset{bad}); err == nil {
		t.Fatal("invalid filter accepted in batch")
	}
	// Empty filter matches everything exactly.
	est, err := eng.Count(mining.Itemset{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Count != 100 || est.StdErr != 0 {
		t.Fatalf("empty filter estimate %+v", est)
	}
	empty := dataset.NewDatabase(pdb.Schema, 0)
	engEmpty, err := NewEngine(empty, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engEmpty.Count(mining.Itemset{{Attr: 0, Value: 0}}); !errors.Is(err, ErrQuery) {
		t.Fatal("empty database query accepted")
	}
}
