// Package query provides an interactive count/proportion query engine
// over a gamma-perturbed database, with variance-based confidence
// intervals. The paper quantifies reconstruction error in aggregate
// (Theorem 1, Figures 1–2); this engine turns the same machinery into a
// per-query error bar: the estimator (Y_L − ō·N)/(d̄ − ō) has standard
// error √(N·p̂(1−p̂))/(d̄−ō) with p̂ = Y_L/N, since Y_L is a sum of N
// independent Bernoulli indicators (the Poisson-Binomial of Section 2.2,
// whose variance is bounded by the binomial at the same mean).
package query

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// ErrQuery is returned for invalid queries or engine configuration.
var ErrQuery = errors.New("query: invalid input")

// Estimate is a reconstructed count with its uncertainty.
type Estimate struct {
	// Count is the point estimate of the number of ORIGINAL records
	// matching the filter (may be negative under heavy noise; Clamped
	// reports the max(0, ·) version).
	Count float64
	// StdErr is the standard error of the estimator.
	StdErr float64
	// Lo and Hi bound the 95% confidence interval (normal
	// approximation, unclamped).
	Lo, Hi float64
	// N is the number of perturbed records the estimate is based on.
	N int
}

// Clamped returns the point estimate clamped to [0, N].
func (e Estimate) Clamped() float64 {
	c := e.Count
	if c < 0 {
		c = 0
	}
	if c > float64(e.N) {
		c = float64(e.N)
	}
	return c
}

// Proportion returns the estimate as a fraction of N, with scaled bounds.
func (e Estimate) Proportion() (p, lo, hi float64) {
	n := float64(e.N)
	if n == 0 {
		return 0, 0, 0
	}
	return e.Count / n, e.Lo / n, e.Hi / n
}

// Engine answers filter-count queries over one perturbed database.
type Engine struct {
	perturbed *dataset.Database
	matrix    core.UniformMatrix
}

// NewEngine validates the matrix against the database's schema.
func NewEngine(perturbed *dataset.Database, m core.UniformMatrix) (*Engine, error) {
	if perturbed == nil {
		return nil, fmt.Errorf("%w: nil database", ErrQuery)
	}
	if m.N != perturbed.Schema.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain %d", ErrQuery, m.N, perturbed.Schema.DomainSize())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Engine{perturbed: perturbed, matrix: m}, nil
}

// Count estimates how many original records match the filter (a
// conjunction of attribute=value conditions), with a 95% confidence
// interval.
func (e *Engine) Count(filter mining.Itemset) (Estimate, error) {
	if err := filter.Validate(e.perturbed.Schema); err != nil {
		return Estimate{}, err
	}
	n := e.perturbed.N()
	if n == 0 {
		return Estimate{}, fmt.Errorf("%w: empty database", ErrQuery)
	}
	if filter.Len() == 0 {
		// Everything matches; no reconstruction noise.
		return Estimate{Count: float64(n), N: n}, nil
	}
	cols := filter.Attrs()
	nSub, err := e.perturbed.Schema.SubdomainSize(cols)
	if err != nil {
		return Estimate{}, err
	}
	marg, err := e.matrix.Marginal(nSub)
	if err != nil {
		return Estimate{}, err
	}
	a := marg.Diag - marg.Off
	if a == 0 {
		return Estimate{}, fmt.Errorf("%w: singular reconstruction matrix", ErrQuery)
	}
	// Count perturbed matches Y_L.
	var y float64
	for _, rec := range e.perturbed.Records {
		if filter.Supports(rec) {
			y++
		}
	}
	est := (y - marg.Off*float64(n)) / a
	phat := y / float64(n)
	stderr := math.Sqrt(float64(n)*phat*(1-phat)) / a
	const z95 = 1.959963984540054
	return Estimate{
		Count:  est,
		StdErr: stderr,
		Lo:     est - z95*stderr,
		Hi:     est + z95*stderr,
		N:      n,
	}, nil
}

// CountAll answers many filters in one call.
func (e *Engine) CountAll(filters []mining.Itemset) ([]Estimate, error) {
	out := make([]Estimate, len(filters))
	for i, f := range filters {
		est, err := e.Count(f)
		if err != nil {
			return nil, fmt.Errorf("filter %d (%s): %w", i, f.Key(), err)
		}
		out[i] = est
	}
	return out, nil
}
