// Package query provides an interactive count/proportion query engine
// over gamma-perturbed data, with variance-based confidence intervals.
// The paper quantifies reconstruction error in aggregate (Theorem 1,
// Figures 1–2); this package turns the same machinery into a per-query
// error bar: the estimator (Y_L − ō·N)/(d̄ − ō) has standard error
// √(N·p̂(1−p̂))/(d̄−ō) with p̂ = Y_L/N, since Y_L is a sum of N
// independent Bernoulli indicators (the Poisson-Binomial of Section 2.2,
// whose variance is bounded by the binomial at the same mean).
//
// Two engines share that estimator core (Reconstruct): Engine scans a
// materialized perturbed database per filter, while CounterEngine reads
// the perturbed match counts from an incrementally materialized counter
// in O(#filters) histogram lookups — the collection service's live
// query path.
package query

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
)

// ErrQuery is returned for invalid queries or engine configuration.
var ErrQuery = errors.New("query: invalid input")

// Engine answers filter-count queries by scanning one perturbed
// database per filter — the offline path for materialized databases.
type Engine struct {
	perturbed *dataset.Database
	matrix    core.UniformMatrix
}

// NewEngine validates the matrix against the database's schema.
func NewEngine(perturbed *dataset.Database, m core.UniformMatrix) (*Engine, error) {
	if perturbed == nil {
		return nil, fmt.Errorf("%w: nil database", ErrQuery)
	}
	if m.N != perturbed.Schema.DomainSize() {
		return nil, fmt.Errorf("%w: matrix order %d vs domain %d", ErrQuery, m.N, perturbed.Schema.DomainSize())
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrQuery, err)
	}
	return &Engine{perturbed: perturbed, matrix: m}, nil
}

// Count estimates how many original records match the filter (a
// conjunction of attribute=value conditions), with a 95% confidence
// interval.
func (e *Engine) Count(filter mining.Itemset) (Estimate, error) {
	return e.count(filter, newMarginalCache(e.matrix))
}

// count is Count with a caller-owned marginal cache, so a batch shares
// marginals across filters.
func (e *Engine) count(filter mining.Itemset, marginals *marginalCache) (Estimate, error) {
	if err := filter.Validate(e.perturbed.Schema); err != nil {
		return Estimate{}, fmt.Errorf("%w: %w", ErrQuery, err)
	}
	n := e.perturbed.N()
	if n == 0 {
		return Estimate{}, fmt.Errorf("%w: empty database", ErrQuery)
	}
	if filter.Len() == 0 {
		// Everything matches; no reconstruction noise.
		return exactEstimate(n), nil
	}
	nSub, err := e.perturbed.Schema.SubdomainSize(filter.Attrs())
	if err != nil {
		return Estimate{}, fmt.Errorf("%w: %w", ErrQuery, err)
	}
	marg, err := marginals.get(nSub)
	if err != nil {
		return Estimate{}, err
	}
	// Count perturbed matches Y_L.
	var y float64
	for _, rec := range e.perturbed.Records {
		if filter.Supports(rec) {
			y++
		}
	}
	return Reconstruct(y, n, marg)
}

// CountAll answers many filters in one call, computing one marginal per
// distinct attribute set instead of one per filter.
func (e *Engine) CountAll(filters []mining.Itemset) ([]Estimate, error) {
	marginals := newMarginalCache(e.matrix)
	out := make([]Estimate, len(filters))
	for i, f := range filters {
		est, err := e.count(f, marginals)
		if err != nil {
			return nil, fmt.Errorf("filter %d (%s): %w", i, f.Key(), err)
		}
		out[i] = est
	}
	return out, nil
}
